//! Vendored, dependency-free stand-in for the slice of `criterion` this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships a miniature wall-clock benchmark harness with the same surface
//! syntax: [`Criterion::benchmark_group`], `bench_function`,
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Each benchmark is calibrated to a target
//! measurement window and reports mean ns/iteration to stdout; there is
//! no statistical analysis, plotting, or result persistence.
//!
//! When invoked by `cargo test` (which passes `--test` to `harness =
//! false` bench targets), benchmarks run one iteration each as a smoke
//! test so the test cycle stays fast.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    smoke_test: bool,
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let smoke_test = std::env::args().any(|a| a == "--test");
        Criterion {
            smoke_test,
            target: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            smoke_test: self.smoke_test,
            target: self.target,
            report: None,
        };
        f(&mut bencher);
        bencher.print(id);
        self
    }
}

/// A named set of benchmarks sharing a prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of samples taken per benchmark. The shim measures
    /// a single time window, so this only shortens the window for
    /// expensive benchmarks (matching the intent of the upstream call).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        let scale = (n.max(1) as u32).min(100);
        self.criterion.target = Duration::from_millis(2 * scale as u64);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            smoke_test: self.criterion.smoke_test,
            target: self.criterion.target,
            report: None,
        };
        f(&mut bencher);
        bencher.print(&format!("{}/{id}", self.name));
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            smoke_test: self.criterion.smoke_test,
            target: self.criterion.target,
            report: None,
        };
        f(&mut bencher, input);
        bencher.print(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Ends the group (report flushing is per-benchmark; this is a
    /// surface-compatibility no-op).
    pub fn finish(self) {}
}

/// A benchmark identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function/parameter` identifier.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{parameter}", function.into()))
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Times one closure.
#[derive(Debug)]
pub struct Bencher {
    smoke_test: bool,
    target: Duration,
    report: Option<(u64, Duration)>,
}

impl Bencher {
    /// Measures `routine`, auto-scaling the iteration count to the
    /// target window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke_test {
            black_box(routine());
            self.report = Some((1, Duration::ZERO));
            return;
        }
        // Calibrate: grow the batch until it fills ~1/10 of the target,
        // then measure whole batches until the window closes.
        let mut batch: u64 = 1;
        let calibration_floor = self.target / 10;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= calibration_floor || batch >= 1 << 40 {
                break;
            }
            batch *= 8;
        }
        let mut iters: u64 = 0;
        let mut spent = Duration::ZERO;
        while spent < self.target {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            spent += t.elapsed();
            iters += batch;
        }
        self.report = Some((iters, spent));
    }

    fn print(&self, id: &str) {
        match self.report {
            Some((1, d)) if d == Duration::ZERO => println!("  {id}: ok (smoke test)"),
            Some((iters, spent)) => {
                let ns = spent.as_nanos() as f64 / iters as f64;
                println!("  {id}: {ns:.1} ns/iter ({iters} iters)");
            }
            None => println!("  {id}: no measurement recorded"),
        }
    }
}

/// Declares a benchmark entry point running each listed function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_iterations() {
        let mut c = Criterion {
            smoke_test: false,
            target: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("g");
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.finish();
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut b = Bencher {
            smoke_test: true,
            target: Duration::from_secs(100),
            report: None,
        };
        let mut runs = 0;
        b.iter(|| runs += 1);
        assert_eq!(runs, 1);
    }
}
