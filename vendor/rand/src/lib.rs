//! Vendored, dependency-free stand-in for the slice of `rand` 0.8 this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships the handful of primitives it needs: a seedable generator
//! ([`rngs::StdRng`], here xoshiro256++ seeded through SplitMix64), the
//! [`SeedableRng`] constructor surface, and the [`Rng`] extension methods
//! `gen`, `gen_range`, and `gen_bool`. Streams are deterministic in the
//! seed but are **not** bit-compatible with upstream `rand`'s ChaCha12
//! `StdRng` — nothing in the workspace depends on a particular stream,
//! only on seed-reproducibility.

use std::ops::{Range, RangeInclusive};

/// A source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, available on any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a primitive type uniformly over its natural
    /// domain (`[0, 1)` for floats, the full range for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits_draw(self.next_u64())
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "probability must be in [0,1], got {p}"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs by expanding a 64-bit seed (SplitMix64, matching the
    /// upstream convention of deriving full seed material from one word).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut sm);
            for (dst, src) in chunk.iter_mut().zip(word.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `[0, 1)` with 53 uniform significand bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types [`Rng::gen`] can produce from one 64-bit draw.
pub trait Standard: Sized {
    /// Maps a fresh uniform 64-bit draw onto the type's natural domain.
    fn from_bits_draw(bits: u64) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_bits_draw(bits: u64) -> $t {
                bits as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_bits_draw(bits: u64) -> bool {
        bits & 1 == 1
    }
}

impl Standard for f64 {
    fn from_bits_draw(bits: u64) -> f64 {
        unit_f64(bits)
    }
}

impl Standard for f32 {
    fn from_bits_draw(bits: u64) -> f32 {
        ((bits >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from(self, rng: &mut (impl Rng + ?Sized)) -> T;
}

macro_rules! range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut (impl Rng + ?Sized)) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut (impl Rng + ?Sized)) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}
range_uint!(u8, u16, u32, u64, usize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut (impl Rng + ?Sized)) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (unit_f64(rng.next_u64()) as $t) * (self.end - self.start)
            }
        }
    )*};
}
range_float!(f32, f64);

/// Unbiased `[0, span)` via rejection sampling.
fn uniform_u64(rng: &mut (impl Rng + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), deterministic in the seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                let mut word = [0u8; 8];
                word.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(word);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_reproduce() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u8 = rng.gen_range(1..=u8::MAX);
            assert!(w >= 1);
            let f: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let s: u64 = rng.gen_range(0..5u64);
            assert!(s < 5);
        }
    }

    #[test]
    fn gen_range_covers_small_ranges_uniformly() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((800..1200).contains(&c), "bucket {i}: {c}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_unit_floats_stay_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn works_through_unsized_trait_bounds() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
            rng.gen_range(0..10)
        }
        let mut rng = StdRng::seed_from_u64(4);
        assert!(sample(&mut rng) < 10);
    }
}
