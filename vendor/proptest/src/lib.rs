//! Vendored, dependency-light stand-in for the slice of `proptest` this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships a miniature property-testing harness with the same surface
//! syntax: the [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `prop_filter`, range and tuple strategies, [`collection::vec`],
//! [`prop_oneof!`], [`Just`], [`any`], and the `prop_assert*` /
//! `prop_assume!` macros. Shrinking is not implemented — a failing case
//! reports the generated inputs and the deterministic case seed instead.
//!
//! Cases are seeded from the test's name, so runs are fully
//! deterministic: there is no persistence file and no environment
//! dependence.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Debug;
use std::ops::Range;

/// RNG handed to strategies.
pub type TestRng = StdRng;

/// Why a generated case did not produce a verdict.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded (`prop_assume!` / `prop_filter`).
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A discard with the given reason.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 128 }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generates one value, or a discard reason.
    ///
    /// # Errors
    ///
    /// Returns [`TestCaseError::Reject`] when a filter discards the draw.
    fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, TestCaseError>;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred`.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe strategy, for heterogeneous unions.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> Result<V, TestCaseError>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> Result<S::Value, TestCaseError> {
        self.generate(rng)
    }
}

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> Result<V, TestCaseError> {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice among equally weighted boxed strategies.
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V: Debug> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> Result<V, TestCaseError> {
        use rand::Rng;
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Result<T, TestCaseError> {
        Ok(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> Result<U, TestCaseError> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Result<S::Value, TestCaseError> {
        // Retry locally before escalating to a whole-case discard, so
        // sparse filters don't exhaust the runner's discard budget.
        for _ in 0..16 {
            let v = self.inner.generate(rng)?;
            if (self.pred)(&v) {
                return Ok(v);
            }
        }
        Err(TestCaseError::reject(self.whence.clone()))
    }
}

/// `any::<T>()`: the type's full natural domain, including edge cases.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Result<T, TestCaseError> {
        Ok(T::arbitrary(rng))
    }
}

/// Types with a full-domain generator.
pub trait Arbitrary: Debug + Sized {
    /// Draws one value covering the whole domain (all bit patterns for
    /// ints; floats include NaN, infinities, and subnormals).
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        use rand::Rng;
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        use rand::Rng;
        // Raw bit patterns cover NaNs/infinities/subnormals but almost
        // never land in human-scale magnitudes; mix in a bounded uniform
        // component so both regimes are exercised.
        if rng.gen_bool(0.5) {
            f64::from_bits(rng.gen::<u64>())
        } else {
            rng.gen_range(-1e6..1e6)
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        use rand::Rng;
        if rng.gen_bool(0.5) {
            f32::from_bits(rng.gen::<u64>() as u32)
        } else {
            rng.gen_range(-1e6f32..1e6)
        }
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Result<$t, TestCaseError> {
                use rand::Rng;
                Ok(rng.gen_range(self.clone()))
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, TestCaseError> {
                let ($($name,)+) = self;
                Ok(($($name.generate(rng)?,)+))
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestCaseError, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// `vec(element, len_range)`: a vector whose length is drawn from
    /// `len_range` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, TestCaseError> {
            use rand::Rng;
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the test files import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// FNV-1a over the test identifier: a stable per-test seed.
pub fn seed_of(ident: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in ident.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives one property: repeatedly generates a case and evaluates it
/// until `config.cases` cases pass.
///
/// # Panics
///
/// Panics when a case fails, or when the discard budget is exhausted.
pub fn run_property<F>(config: &ProptestConfig, ident: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = seed_of(ident);
    let mut passed: u64 = 0;
    let mut discarded: u64 = 0;
    let budget = (config.cases as u64) * 64 + 1024;
    while passed < config.cases as u64 {
        let case_seed = base ^ (passed + discarded).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(case_seed);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                discarded += 1;
                assert!(
                    discarded <= budget,
                    "{ident}: discard budget exhausted after {passed} passing cases \
                     ({discarded} discards) — loosen the filters"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{ident}: case failed (case seed {case_seed:#x})\n{msg}")
            }
        }
    }
}

/// The `proptest!` block: each `#[test] fn name(binding in strategy, ...)`
/// becomes a deterministic multi-case test.
#[macro_export]
macro_rules! proptest {
    (
        @with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                $(let $arg = $strat;)+
                let strategies = ( $(&$arg,)+ );
                $crate::run_property(
                    &config,
                    concat!(module_path!(), "::", stringify!($name)),
                    |rng| {
                        #[allow(non_snake_case)]
                        let ( $($arg,)+ ) = &strategies;
                        $(
                            let $arg = $crate::Strategy::generate(*$arg, rng)?;
                        )+
                        let values_desc = format!(
                            concat!($(stringify!($arg), " = {:?}; ",)+),
                            $(&$arg,)+
                        );
                        let verdict = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            Ok(())
                        })();
                        match verdict {
                            Err($crate::TestCaseError::Fail(msg)) => {
                                Err($crate::TestCaseError::Fail(format!(
                                    "inputs: {values_desc}\n{msg}"
                                )))
                            }
                            other => other,
                        }
                    },
                );
            }
        )*
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![ $( $crate::Strategy::boxed($strat) ),+ ])
    };
}

/// Asserts within a property; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Asserts inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn runner_is_deterministic_per_ident() {
        let mut first: Vec<u64> = Vec::new();
        let mut second: Vec<u64> = Vec::new();
        for out in [&mut first, &mut second] {
            crate::run_property(&ProptestConfig::with_cases(16), "t::x", |rng| {
                use rand::Rng;
                out.push(rng.gen());
                Ok(())
            });
        }
        assert_eq!(first, second);
        assert_eq!(first.len(), 16);
    }

    #[test]
    #[should_panic(expected = "case failed")]
    fn failures_panic_with_inputs() {
        crate::run_property(&ProptestConfig::default(), "t::fail", |_| {
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    #[should_panic(expected = "discard budget")]
    fn discard_budget_is_enforced() {
        crate::run_property(&ProptestConfig::with_cases(4), "t::reject", |_| {
            Err(TestCaseError::reject("always"))
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_binds_multiple_strategies(a in 0u32..10, b in 5usize..9, v in crate::collection::vec(0.0f64..1.0, 0..4)) {
            prop_assert!(a < 10);
            prop_assert!((5..9).contains(&b));
            prop_assert!(v.len() < 4);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn combinators_compose(x in (0u64..100, 0u64..100).prop_map(|(a, b)| a + b)) {
            prop_assert!(x < 199);
        }

        #[test]
        fn oneof_and_just_choose_arms(s in prop_oneof![Just("a"), Just("b")]) {
            prop_assert!(s == "a" || s == "b");
        }

        #[test]
        fn filters_discard(v in (0u32..100).prop_filter("even", |v| v % 2 == 0)) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn assume_discards_cases(v in 0u32..100) {
            prop_assume!(v >= 50);
            prop_assert!(v >= 50);
        }
    }
}
