//! Precision advisor: sweep every (device, benchmark, precision)
//! configuration of the study and report which precision maximizes the
//! Mean Executions Between Failures — the question a system designer
//! would actually ask of this library.
//!
//! ```text
//! cargo run --release --example precision_tradeoff
//! ```

use mixed_precision_reliability::exp::{
    CellKey, CellKind, ClassifierId, DeviceId, Engine, ExperimentPlan, SamplingPlan, WorkloadId,
};
use mixed_precision_reliability::kernels::MicroKernelOp;
use mixed_precision_reliability::metrics::Table;
use mixed_precision_reliability::softfloat::Precision;

fn beam_cell(device: DeviceId, workload: WorkloadId, precision: Precision) -> CellKey {
    CellKey {
        device,
        workload,
        precision,
        kind: CellKind::Beam {
            hours: 10.0,
            target_candidates: 800,
            classifier: ClassifierId::None,
            sampling: SamplingPlan::Fixed,
        },
    }
}

fn main() {
    let engine = Engine::new(7);

    let gemm = WorkloadId::Gemm { dim: 14 };
    let lavamd = WorkloadId::LavaMd {
        boxes: 2,
        particles: 3,
        knc_unit: false,
    };
    let lavamd_knc = WorkloadId::LavaMd {
        boxes: 2,
        particles: 3,
        knc_unit: true,
    };
    let lud = WorkloadId::Lud { dim: 16 };
    let micro_fma = WorkloadId::Micro {
        op: MicroKernelOp::Fma,
        threads: 16,
        iters: 128,
    };

    let configs: [(DeviceId, &str, WorkloadId); 7] = [
        (DeviceId::TitanV, "Micro-FMA", micro_fma),
        (DeviceId::TitanV, "LavaMD", lavamd),
        (DeviceId::TitanV, "MxM", gemm),
        (DeviceId::Knc3120a, "LavaMD", lavamd_knc),
        (DeviceId::Knc3120a, "MxM", gemm),
        (DeviceId::Knc3120a, "LUD", lud),
        (DeviceId::Zynq7000, "MxM", gemm),
    ];

    // Every supported cell of the survey goes into one plan, so the
    // whole sweep runs in parallel (note the KNC and FPGA rows reuse
    // the same MxM workload — only the device column differs).
    let mut plan = ExperimentPlan::new();
    let mut requested = Vec::new();
    for (device, _, workload) in &configs {
        for precision in Precision::ALL {
            let cell = beam_cell(*device, *workload, precision);
            if cell.supported() {
                plan.push(cell.clone());
                requested.push(Some(cell));
            } else {
                requested.push(None);
            }
        }
    }
    let mut results = engine.run(&plan).into_iter();

    let mut table = Table::new(vec![
        "device",
        "benchmark",
        "MEBF double",
        "MEBF single",
        "MEBF half",
        "best",
    ])
    .with_title("Which precision completes the most executions between failures?");

    for (i, (device, name, _)) in configs.iter().enumerate() {
        let mut cells = vec![device.token().to_string(), name.to_string()];
        let mut best: Option<(Precision, f64)> = None;
        for (p, precision) in Precision::ALL.iter().enumerate() {
            if requested[3 * i + p].is_none() {
                cells.push("n/a".to_string());
                continue;
            }
            let result = results.next().expect("one result per supported cell");
            let mebf = result.beam().mebf().executions();
            cells.push(format!("{mebf:.2e}"));
            if best.is_none_or(|(_, b)| mebf > b) {
                best = Some((*precision, mebf));
            }
        }
        let (winner, _) = best.expect("at least one supported precision");
        cells.push(winner.to_string());
        table.row(cells);
    }

    println!("{table}");
    println!(
        "Note the one inversion: on the Xeon Phi, MxM's prefetcher favors double\n\
         precision enough that double wins MEBF despite single's wider vectors —\n\
         the paper's Table 2 / Figure 9 crossover."
    );
}
