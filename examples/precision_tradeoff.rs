//! Precision advisor: sweep every (device, benchmark, precision)
//! configuration of the study and report which precision maximizes the
//! Mean Executions Between Failures — the question a system designer
//! would actually ask of this library.
//!
//! ```text
//! cargo run --release --example precision_tradeoff
//! ```

use mixed_precision_reliability::arch::{Device, Fpga, VoltaGpu, WorkloadProfile, XeonPhiKnc};
use mixed_precision_reliability::beam::{BeamCampaign, BeamSession};
use mixed_precision_reliability::fault::Workload;
use mixed_precision_reliability::kernels::{profiles, Gemm, LavaMd, Lud, Micro, MicroKernelOp};
use mixed_precision_reliability::metrics::Table;
use mixed_precision_reliability::softfloat::Precision;

fn survey(
    rows: &mut Table,
    device: &dyn Device,
    workload: &dyn Workload,
    profile: &WorkloadProfile,
) {
    let mut best: Option<(Precision, f64)> = None;
    let mut cells = vec![device.name().to_string(), workload.name().to_string()];
    for precision in Precision::ALL {
        if !device.supports(precision) || !workload.supports(precision) {
            cells.push("n/a".to_string());
            continue;
        }
        let result = BeamCampaign::new(device, workload, profile, precision)
            .session(BeamSession::quick(7).with_target_candidates(800))
            .run();
        let mebf = result.mebf().executions();
        cells.push(format!("{mebf:.2e}"));
        if best.is_none_or(|(_, b)| mebf > b) {
            best = Some((precision, mebf));
        }
    }
    let (winner, _) = best.expect("at least one supported precision");
    cells.push(winner.to_string());
    rows.row(cells);
}

fn main() {
    let mut table = Table::new(vec![
        "device",
        "benchmark",
        "MEBF double",
        "MEBF single",
        "MEBF half",
        "best",
    ])
    .with_title("Which precision completes the most executions between failures?");

    let gpu = VoltaGpu::titan_v();
    let knc = XeonPhiKnc::coprocessor_3120a();
    let fpga = Fpga::zynq7000();

    let gemm = Gemm::new(14);
    let lavamd = LavaMd::new(2, 3);
    let lavamd_knc = LavaMd::new(2, 3).for_knc();
    let lud = Lud::new(16);
    let micro_fma = Micro::new(MicroKernelOp::Fma, 16, 128);

    survey(
        &mut table,
        &gpu,
        &micro_fma,
        &profiles::micro(MicroKernelOp::Fma),
    );
    survey(&mut table, &gpu, &lavamd, &profiles::lavamd_gpu());
    survey(&mut table, &gpu, &gemm, &profiles::mxm_gpu());
    survey(&mut table, &knc, &lavamd_knc, &profiles::lavamd_knc());
    survey(&mut table, &knc, &gemm, &profiles::mxm_knc());
    survey(&mut table, &knc, &lud, &profiles::lud_knc());
    survey(&mut table, &fpga, &gemm, &profiles::mxm_fpga());

    println!("{table}");
    println!(
        "Note the one inversion: on the Xeon Phi, MxM's prefetcher favors double\n\
         precision enough that double wins MEBF despite single's wider vectors —\n\
         the paper's Table 2 / Figure 9 crossover."
    );
}
