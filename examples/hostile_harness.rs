//! Hostile-workload harness: demonstrates the engine's fault
//! tolerance end to end — per-cell isolation, deterministic retry,
//! watchdog timeouts, and checkpoint/resume.
//!
//! The plan mixes three healthy cells with one *flaky* cell that
//! panics on its first attempt (the paper's campaigns faced the same
//! reality: boards hang, kernels crash, the run must go on). With a
//! retry budget the flaky cell recovers and the process exits 0; with
//! `--stubborn` it panics on every attempt and the process exits 1
//! after printing the structured per-cell failure table.
//!
//! ```text
//! cargo run --release --example hostile_harness -- --retries 2 --cell-timeout 5s
//! cargo run --release --example hostile_harness -- --stubborn     # exits 1
//! cargo run --release --example hostile_harness -- --hang --cell-timeout 200ms
//! cargo run --release --example hostile_harness -- --cache-dir /tmp/mpr --resume
//! cargo run --release --example hostile_harness -- --hang --cancel-after 150ms \
//!     --cache-dir /tmp/mpr        # graceful shutdown; rerun with --resume
//! ```
//!
//! `--cancel-after DUR` plays the role of Ctrl-C: a watcher thread
//! fires the engine's cancel token mid-run. In-flight cells finish,
//! unstarted cells come back as `cancelled` with zero attempts, the
//! manifest ledger is flushed, and a `--resume` run completes exactly
//! the cancelled subset.

use mixed_precision_reliability::exp::{
    failure_table, CellKey, CellKind, DeviceId, Engine, ExperimentPlan, FailureKind, Manifest,
    ResultStore, WorkloadId,
};
use mixed_precision_reliability::fault::hostile::HostileMode;
use mixed_precision_reliability::softfloat::Precision;
use std::sync::Arc;
use std::time::Duration;

fn accumulate_cell(workload: WorkloadId, precision: Precision) -> CellKey {
    CellKey {
        device: DeviceId::Zynq7000,
        workload,
        precision,
        kind: CellKind::Accumulate {
            faults: 4,
            trials: 8,
        },
    }
}

/// `500ms`, `5s`, or bare seconds.
fn parse_duration(s: &str) -> Option<Duration> {
    let (num, unit_s) = if let Some(v) = s.strip_suffix("ms") {
        (v, 0.001)
    } else if let Some(v) = s.strip_suffix('s') {
        (v, 1.0)
    } else {
        (s, 1.0)
    };
    num.parse::<f64>()
        .ok()
        .map(|x| x * unit_s)
        .filter(|x| x.is_finite() && *x > 0.0)
        .map(Duration::from_secs_f64)
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let stubborn = args.iter().any(|a| a == "--stubborn");
    let hang = args.iter().any(|a| a == "--hang");
    let resume = args.iter().any(|a| a == "--resume");
    let retries: u32 = flag_value(&args, "--retries")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let cell_timeout = flag_value(&args, "--cell-timeout").and_then(|v| parse_duration(&v));
    let cancel_after = flag_value(&args, "--cancel-after").and_then(|v| parse_duration(&v));
    let cache_dir = flag_value(&args, "--cache-dir");

    // The harness catches every cell panic; silence the default hook so
    // the demo output is the *structured* story, not raw panic spew.
    std::panic::set_hook(Box::new(|_| {}));

    let mut engine = Engine::new(2019)
        .with_retries(retries)
        .with_cell_timeout(cell_timeout);
    if let Some(dir) = &cache_dir {
        let dir = std::path::Path::new(dir);
        if resume {
            match Manifest::load(dir) {
                Some(m) => println!(
                    "resume: {} of {} recorded cells unfinished",
                    m.unfinished().len(),
                    m.cells.len()
                ),
                None => println!("resume: no manifest yet in {}", dir.display()),
            }
        }
        engine = engine.with_store(Arc::new(ResultStore::with_cache_dir(dir)));
    }
    if let Some(delay) = cancel_after {
        // Stand-in for a SIGINT handler: the token is the shutdown
        // signal, whoever fires it.
        let token = engine.cancel_token();
        std::thread::spawn(move || {
            std::thread::sleep(delay);
            token.cancel();
        });
    }

    let flaky_mode = HostileMode::FlakyGolden {
        panics: if stubborn { u32::MAX } else { 1 },
    };
    let mut plan = ExperimentPlan::new();
    plan.push(accumulate_cell(
        WorkloadId::Gemm { dim: 8 },
        Precision::Double,
    ));
    plan.push(accumulate_cell(
        WorkloadId::Hostile {
            tag: 0xBAD,
            mode: flaky_mode,
        },
        Precision::Single,
    ));
    plan.push(accumulate_cell(
        WorkloadId::Gemm { dim: 8 },
        Precision::Single,
    ));
    plan.push(accumulate_cell(
        WorkloadId::Gemm { dim: 8 },
        Precision::Half,
    ));
    if hang {
        plan.push(accumulate_cell(
            WorkloadId::Hostile {
                tag: 0x51_0000,
                mode: HostileMode::SlowStrike { millis: 30_000 },
            },
            Precision::Single,
        ));
    }

    println!(
        "running {} cells (retries={retries}, cell-timeout={})",
        plan.len(),
        cell_timeout.map_or("off".to_string(), |t| format!("{t:?}"))
    );
    let results = engine.try_run(&plan);
    let completed = results.iter().filter(|r| r.is_ok()).count();
    let failures: Vec<_> = results.into_iter().filter_map(Result::err).collect();
    println!(
        "{completed}/{} cells completed, {} executed, {} cache hits",
        plan.len(),
        engine.store().executed(),
        engine.store().mem_hits() + engine.store().disk_hits()
    );
    if failures.is_empty() {
        println!("all cells resolved — the flaky cell recovered on retry");
        std::process::exit(0);
    }
    eprintln!("{}", failure_table(&failures));
    if failures.iter().all(|f| f.kind == FailureKind::Cancelled) {
        println!(
            "graceful shutdown: {} cells cancelled, state resumable; \
             rerun with --resume to finish them",
            failures.len()
        );
        std::process::exit(0);
    }
    std::process::exit(1);
}
