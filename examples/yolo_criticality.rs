//! Object-detection criticality study (the paper's Figure 11c): how
//! often does a transient fault in the detector change *what is
//! detected* rather than just perturbing scores — and how does the data
//! precision change that?
//!
//! ```text
//! cargo run --release --example yolo_criticality
//! ```

use mixed_precision_reliability::arch::VoltaGpu;
use mixed_precision_reliability::beam::{BeamCampaign, BeamSession};
use mixed_precision_reliability::fault::Workload;
use mixed_precision_reliability::metrics::Table;
use mixed_precision_reliability::nn::{classify_detections, profiles, DetectionImpact, TinyYolo};
use mixed_precision_reliability::softfloat::Precision;

fn main() {
    let gpu = VoltaGpu::titan_v();
    let yolo = TinyYolo::new();
    let profile = profiles::yolo_gpu();

    // Show what the fault-free detector sees.
    let golden = TinyYolo::decode(&yolo.run_golden(Precision::Single));
    println!("fault-free detections on the synthetic scene:");
    for d in &golden {
        println!(
            "  class {} score {:.2} box center ({:.1}, {:.1}) size {:.1}x{:.1}",
            d.class, d.score, d.bbox[0], d.bbox[1], d.bbox[2], d.bbox[3]
        );
    }
    println!();

    let classify = |golden: &[f64], out: &[f64]| -> &'static str {
        match classify_detections(&TinyYolo::decode(golden), &TinyYolo::decode(out)) {
            DetectionImpact::Tolerable => "tolerable",
            DetectionImpact::DetectionChanged => "detection changed",
            DetectionImpact::ClassificationChanged => "classification changed",
        }
    };

    let mut table = Table::new(vec![
        "precision",
        "SDCs",
        "tolerable",
        "detection changed",
        "classification changed",
    ])
    .with_title("YOLO-style detector under simulated beam (Titan V model)");

    for precision in Precision::ALL {
        let result = BeamCampaign::new(&gpu, &yolo, &profile, precision)
            .session(BeamSession::quick(3).with_target_candidates(1200))
            .classifier(&classify)
            .run();
        let fractions = result.label_fractions();
        let get = |label: &str| {
            fractions
                .iter()
                .find(|(l, _)| *l == label)
                .map_or(0.0, |(_, f)| *f)
        };
        table.row(vec![
            precision.to_string(),
            result.sdc.events().to_string(),
            format!("{:.1}%", get("tolerable") * 100.0),
            format!("{:.1}%", get("detection changed") * 100.0),
            format!("{:.1}%", get("classification changed") * 100.0),
        ]);
    }

    println!("{table}");
    println!(
        "Most corruptions only nudge scores; the critical ones grow as precision\n\
         shrinks because a flipped bit perturbs a larger share of a narrow value\n\
         (paper Section 6.3, Figure 11c)."
    );
}
