//! Object-detection criticality study (the paper's Figure 11c): how
//! often does a transient fault in the detector change *what is
//! detected* rather than just perturbing scores — and how does the data
//! precision change that?
//!
//! ```text
//! cargo run --release --example yolo_criticality
//! ```

use mixed_precision_reliability::exp::{
    CellKey, CellKind, ClassifierId, DeviceId, Engine, ExperimentPlan, SamplingPlan, WorkloadId,
};
use mixed_precision_reliability::metrics::Table;
use mixed_precision_reliability::nn::TinyYolo;
use mixed_precision_reliability::softfloat::Precision;

fn main() {
    let engine = Engine::new(3);

    // Show what the fault-free detector sees.
    let golden = TinyYolo::decode(&WorkloadId::Yolo.build().run_golden(Precision::Single));
    println!("fault-free detections on the synthetic scene:");
    for d in &golden {
        println!(
            "  class {} score {:.2} box center ({:.1}, {:.1}) size {:.1}x{:.1}",
            d.class, d.score, d.bbox[0], d.bbox[1], d.bbox[2], d.bbox[3]
        );
    }
    println!();

    // The named classifier rides inside the cell key, so these are the
    // same cells the full study's Figures 10-13 execute — at a shared
    // seed the results would come straight from the cache.
    let mut plan = ExperimentPlan::new();
    for precision in Precision::ALL {
        plan.push(CellKey {
            device: DeviceId::TitanV,
            workload: WorkloadId::Yolo,
            precision,
            kind: CellKind::Beam {
                hours: 10.0,
                target_candidates: 1200,
                classifier: ClassifierId::YoloDetections,
                sampling: SamplingPlan::Fixed,
            },
        });
    }
    let results = engine.run(&plan);

    let mut table = Table::new(vec![
        "precision",
        "SDCs",
        "tolerable",
        "detection changed",
        "classification changed",
    ])
    .with_title("YOLO-style detector under simulated beam (Titan V model)");

    for (precision, cell) in Precision::ALL.iter().zip(&results) {
        let result = cell.beam();
        let fractions = result.label_fractions();
        let get = |label: &str| {
            fractions
                .iter()
                .find(|(l, _)| *l == label)
                .map_or(0.0, |(_, f)| *f)
        };
        table.row(vec![
            precision.to_string(),
            result.sdc.events().to_string(),
            format!("{:.1}%", get("tolerable") * 100.0),
            format!("{:.1}%", get("detection") * 100.0),
            format!("{:.1}%", get("classification") * 100.0),
        ]);
    }

    println!("{table}");
    println!(
        "Most corruptions only nudge scores; the critical ones grow as precision\n\
         shrinks because a flipped bit perturbs a larger share of a narrow value\n\
         (paper Section 6.3, Figure 11c)."
    );
}
