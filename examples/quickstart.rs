//! Quickstart: measure how data precision changes the simulated
//! reliability of one benchmark on one device.
//!
//! Runs a beam campaign for the MxM kernel on the Volta GPU model at
//! double, single, and half precision, then reports the three headline
//! metrics of the paper: FIT (error rate), MEBF (performance-reliability
//! trade-off), and the fraction of errors a 1% output tolerance forgives.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mixed_precision_reliability::exp::{
    CellKey, CellKind, ClassifierId, DeviceId, Engine, ExperimentPlan, SamplingPlan, WorkloadId,
};
use mixed_precision_reliability::metrics::Table;
use mixed_precision_reliability::softfloat::Precision;

fn main() {
    let engine = Engine::new(42);
    let gemm = WorkloadId::Gemm { dim: 16 };

    println!("device: NVIDIA Titan V (model)");
    println!(
        "workload: MxM 16x16 ({} fault sites per run)\n",
        gemm.build().site_count(Precision::Single)
    );

    // One experiment cell per precision; the engine runs the three
    // campaigns in parallel and memoizes them under their cell keys.
    let mut plan = ExperimentPlan::new();
    for precision in Precision::ALL {
        plan.push(CellKey {
            device: DeviceId::TitanV,
            workload: gemm,
            precision,
            kind: CellKind::Beam {
                hours: 10.0,
                target_candidates: 1500,
                classifier: ClassifierId::None,
                sampling: SamplingPlan::Fixed,
            },
        });
    }
    let results = engine.run(&plan);

    let mut table = Table::new(vec![
        "precision",
        "exec time [s]",
        "SDC FIT [a.u.]",
        "DUE FIT [a.u.]",
        "MEBF [a.u.]",
        "tolerable @1% TRE",
    ])
    .with_title("MxM on the Titan V model under simulated beam");

    for (precision, cell) in Precision::ALL.iter().zip(&results) {
        let result = cell.beam();
        table.row(vec![
            precision.to_string(),
            format!("{:.3}", result.exec_time_s),
            format!("{:.3e}", result.fit_sdc().au()),
            format!("{:.3e}", result.fit_due().au()),
            format!("{:.3e}", result.mebf().executions()),
            format!(
                "{:.1}%",
                result.tre_curve().tolerable_fraction(0.01) * 100.0
            ),
        ]);
    }

    println!("{table}");
    println!(
        "Reading: half precision finishes faster and exposes fewer bits, so it\n\
         completes the most executions between failures — but when it does fail,\n\
         fewer of its errors are small enough to tolerate (the paper's core result)."
    );
}
