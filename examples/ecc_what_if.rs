//! What if the paper's GPU had ECC?
//!
//! The Titan V the paper irradiates ships without ECC; the same GV100
//! silicon in the Tesla V100 protects its register file and caches with
//! SECDED. The authors had to *triplicate their output data in HBM2* to
//! work around it (Section 3.2). This example answers the question the
//! fixed hardware could not: how much of each benchmark's FIT was
//! protectable array state vs naked arithmetic logic?
//!
//! ```text
//! cargo run --release --example ecc_what_if
//! ```

use mixed_precision_reliability::exp::{
    CellKey, CellKind, ClassifierId, DeviceId, Engine, ExperimentPlan, SamplingPlan, WorkloadId,
};
use mixed_precision_reliability::kernels::MicroKernelOp;
use mixed_precision_reliability::metrics::Table;
use mixed_precision_reliability::softfloat::Precision;

fn main() {
    let engine = Engine::new(99);

    let cases: [(&str, WorkloadId); 3] = [
        (
            "Micro-FMA",
            WorkloadId::Micro {
                op: MicroKernelOp::Fma,
                threads: 16,
                iters: 128,
            },
        ),
        ("MxM", WorkloadId::Gemm { dim: 14 }),
        ("YOLOv3", WorkloadId::Yolo),
    ];

    // Both GPU variants of every benchmark go into one plan: the engine
    // executes all 18 unique cells in parallel.
    let mut plan = ExperimentPlan::new();
    for device in [DeviceId::TitanV, DeviceId::TeslaV100] {
        for (_, workload) in &cases {
            for precision in Precision::ALL {
                plan.push(CellKey {
                    device,
                    workload: *workload,
                    precision,
                    kind: CellKind::Beam {
                        hours: 10.0,
                        target_candidates: 900,
                        classifier: match workload {
                            WorkloadId::Yolo => ClassifierId::YoloDetections,
                            _ => ClassifierId::None,
                        },
                        sampling: SamplingPlan::Fixed,
                    },
                });
            }
        }
    }
    let results = engine.run(&plan);
    let (bare, ecc) = results.split_at(9);

    let mut table = Table::new(vec![
        "benchmark",
        "precision",
        "SDC FIT no ECC",
        "SDC FIT ECC",
        "reduction",
        "DUE change",
    ])
    .with_title("Titan V vs Tesla V100 (ECC) under the same beam");

    for (c, (name, _)) in cases.iter().enumerate() {
        for (p, precision) in Precision::ALL.iter().enumerate() {
            let b = bare[3 * c + p].beam();
            let e = ecc[3 * c + p].beam();
            table.row(vec![
                name.to_string(),
                precision.to_string(),
                format!("{:.2e}", b.fit_sdc().au()),
                format!("{:.2e}", e.fit_sdc().au()),
                format!("{:.1}x", b.fit_sdc().au() / e.fit_sdc().au()),
                format!(
                    "{:+.0}%",
                    (e.fit_due().au() / b.fit_due().au() - 1.0) * 100.0
                ),
            ]);
        }
    }

    println!("{table}");
    println!(
        "ECC pays off in proportion to how much of the exposure is array state:\n\
         the memory-bound MxM collapses, the register-resident microbenchmark\n\
         keeps most of its FIT (arithmetic logic has no parity), and some of\n\
         what ECC removes comes back as detected-uncorrectable DUEs."
    );
}
