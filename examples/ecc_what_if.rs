//! What if the paper's GPU had ECC?
//!
//! The Titan V the paper irradiates ships without ECC; the same GV100
//! silicon in the Tesla V100 protects its register file and caches with
//! SECDED. The authors had to *triplicate their output data in HBM2* to
//! work around it (Section 3.2). This example answers the question the
//! fixed hardware could not: how much of each benchmark's FIT was
//! protectable array state vs naked arithmetic logic?
//!
//! ```text
//! cargo run --release --example ecc_what_if
//! ```

use mixed_precision_reliability::arch::VoltaGpu;
use mixed_precision_reliability::beam::{BeamCampaign, BeamSession};
use mixed_precision_reliability::fault::Workload;
use mixed_precision_reliability::kernels::{profiles, Gemm, Micro, MicroKernelOp};
use mixed_precision_reliability::metrics::Table;
use mixed_precision_reliability::nn::{profiles as nn_profiles, TinyYolo};
use mixed_precision_reliability::softfloat::Precision;

fn main() {
    let bare = VoltaGpu::titan_v();
    let ecc = VoltaGpu::tesla_v100();

    let micro = Micro::new(MicroKernelOp::Fma, 16, 128);
    let gemm = Gemm::new(14);
    let yolo = TinyYolo::new();

    let mut table = Table::new(vec![
        "benchmark",
        "precision",
        "SDC FIT no ECC",
        "SDC FIT ECC",
        "reduction",
        "DUE change",
    ])
    .with_title("Titan V vs Tesla V100 (ECC) under the same beam");

    let cases: [(
        &str,
        &dyn Workload,
        mixed_precision_reliability::arch::WorkloadProfile,
    ); 3] = [
        ("Micro-FMA", &micro, profiles::micro(MicroKernelOp::Fma)),
        ("MxM", &gemm, profiles::mxm_gpu()),
        ("YOLOv3", &yolo, nn_profiles::yolo_gpu()),
    ];

    for (name, workload, profile) in &cases {
        for precision in Precision::ALL {
            let session = BeamSession::quick(99).with_target_candidates(900);
            let b = BeamCampaign::new(&bare, *workload, profile, precision)
                .session(session)
                .run();
            let e = BeamCampaign::new(&ecc, *workload, profile, precision)
                .session(session)
                .run();
            table.row(vec![
                name.to_string(),
                precision.to_string(),
                format!("{:.2e}", b.fit_sdc().au()),
                format!("{:.2e}", e.fit_sdc().au()),
                format!("{:.1}x", b.fit_sdc().au() / e.fit_sdc().au()),
                format!(
                    "{:+.0}%",
                    (e.fit_due().au() / b.fit_due().au() - 1.0) * 100.0
                ),
            ]);
        }
    }

    println!("{table}");
    println!(
        "ECC pays off in proportion to how much of the exposure is array state:\n\
         the memory-bound MxM collapses, the register-resident microbenchmark\n\
         keeps most of its FIT (arithmetic logic has no parity), and some of\n\
         what ECC removes comes back as detected-uncorrectable DUEs."
    );
}
