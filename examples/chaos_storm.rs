//! Chaos storm: turns the injector on the harness's own persistence
//! layer and proves the crash-consistency story end to end.
//!
//! Three runs of the same six-cell plan:
//!
//! 1. **Clean** — a plain filesystem in directory A; its cache bytes
//!    are the golden artifact set.
//! 2. **Storm** — directory B behind [`ChaosFs`] with a pinned seed
//!    and a 10% per-operation fault rate: torn writes, ENOSPC,
//!    bit-flipped reads, failed renames. Results stay correct in
//!    memory; some cache commits are lost or quarantined on disk.
//! 3. **Resume** — directory B again on the plain filesystem; the
//!    cache decides what re-executes.
//!
//! The exit criterion: after the resume, directory B's cache entries
//! are byte-identical to directory A's. The manifest is compared
//! structurally, not byte-wise — a resumed run legitimately records
//! different attempt counts — and must report nothing unfinished.
//!
//! ```text
//! cargo run --release --example chaos_storm
//! cargo run --release --example chaos_storm -- --chaos-seed 7 --chaos-rate 0.25
//! ```

use mixed_precision_reliability::exp::{
    CellKey, CellKind, ChaosConfig, ChaosFs, DeviceId, Engine, ExperimentPlan, Manifest,
    ResultStore, WorkloadId,
};
use mixed_precision_reliability::kernels::MicroKernelOp;
use mixed_precision_reliability::softfloat::Precision;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

fn plan() -> ExperimentPlan {
    let mut plan = ExperimentPlan::new();
    for workload in [
        WorkloadId::Gemm { dim: 8 },
        WorkloadId::Micro {
            op: MicroKernelOp::Add,
            threads: 32,
            iters: 256,
        },
    ] {
        for precision in [Precision::Double, Precision::Single, Precision::Half] {
            plan.push(CellKey {
                device: DeviceId::Zynq7000,
                workload,
                precision,
                kind: CellKind::Accumulate {
                    faults: 4,
                    trials: 6,
                },
            });
        }
    }
    plan
}

/// Cache-entry bytes keyed by file name, excluding the manifest (whose
/// attempt counts legitimately differ between a clean and a resumed
/// run) and transient `.tmp` residue.
fn cache_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if name == "manifest.json" || !name.ends_with(".json") {
            continue;
        }
        if let Ok(bytes) = std::fs::read(&path) {
            out.insert(name, bytes);
        }
    }
    out
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed: u64 = flag_value(&args, "--chaos-seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2019);
    let rate: f64 = flag_value(&args, "--chaos-rate")
        .and_then(|v| v.parse().ok())
        .filter(|r| (0.0..=1.0).contains(r))
        .unwrap_or(0.10);

    let base = std::env::temp_dir().join(format!("mpr_chaos_storm_{}", std::process::id()));
    let clean_dir = base.join("clean");
    let storm_dir = base.join("storm");

    // 1. Clean run: the golden artifacts.
    let engine = Engine::new(2019).with_store(Arc::new(ResultStore::with_cache_dir(&clean_dir)));
    engine.run(&plan());
    let golden = cache_bytes(&clean_dir);
    println!(
        "clean run: {} cache entries in {}",
        golden.len(),
        clean_dir.display()
    );

    // 2. Storm: same plan, hostile filesystem.
    let chaos = Arc::new(ChaosFs::new(ChaosConfig {
        seed,
        rate,
        crash_at: None,
    }));
    let engine = Engine::new(2019).with_store(Arc::new(ResultStore::with_cache_dir_on(
        &storm_dir,
        chaos.clone(),
    )));
    engine.run(&plan());
    let stats = chaos.stats();
    println!(
        "storm (seed {seed}, rate {rate}): {} ops, {} faults injected, {} survived",
        stats.ops,
        stats.injected_total(),
        stats.survived
    );

    // 3. Resume on the real filesystem; the cache re-fills what the
    //    storm destroyed.
    let engine = Engine::new(2019).with_store(Arc::new(ResultStore::with_cache_dir(&storm_dir)));
    engine.run(&plan());
    println!(
        "resume: {} re-executed, {} disk hits, {} quarantined entries discarded",
        engine.store().executed(),
        engine.store().disk_hits(),
        engine.store().quarantined()
    );

    // Verdict: storm-then-resume must converge to the golden bytes.
    let recovered = cache_bytes(&storm_dir);
    let mut ok = recovered == golden;
    if !ok {
        for name in golden.keys() {
            if !recovered.contains_key(name) {
                eprintln!("missing after resume: {name}");
            }
        }
        for (name, bytes) in &recovered {
            match golden.get(name) {
                None => eprintln!("unexpected artifact: {name}"),
                Some(g) if g != bytes => eprintln!("byte mismatch: {name}"),
                Some(_) => {}
            }
        }
    }
    match Manifest::load(&storm_dir) {
        Some(m) if m.unfinished().is_empty() => {}
        Some(m) => {
            eprintln!(
                "manifest still lists {} unfinished cells",
                m.unfinished().len()
            );
            ok = false;
        }
        None => {
            eprintln!("no manifest after resume");
            ok = false;
        }
    }
    std::fs::remove_dir_all(&base).ok();
    if ok {
        println!("storm survived: resumed artifacts are byte-identical to the clean run");
        std::process::exit(0);
    }
    eprintln!("artifact divergence after resume");
    std::process::exit(1);
}
