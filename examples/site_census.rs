//! Where is a kernel vulnerable? A magnitude census of its fault sites.
//!
//! The KNC LavaMD criticality inversion (paper Section 5.3, Figure 8)
//! hinges on *what kind of values* the transcendental evaluation keeps in
//! flight: the double-precision polynomial carries far more tiny
//! intermediates (high-order Taylor terms ~1e-11 and below), and a flip
//! in a tiny value's exponent field inflates it catastrophically. The
//! [`TracingHook`] makes that census directly observable.
//!
//! ```text
//! cargo run --release --example site_census
//! ```

use mixed_precision_reliability::fault::hook::TracingHook;
use mixed_precision_reliability::fault::Workload;
use mixed_precision_reliability::kernels::{Gemm, LavaMd, Micro, MicroKernelOp};
use mixed_precision_reliability::metrics::Table;
use mixed_precision_reliability::softfloat::Precision;

fn census(workload: &dyn Workload, precision: Precision) -> (u64, f64, f64) {
    let mut hook = TracingHook::new();
    let _ = workload.dispatch(precision, &mut hook);
    (
        hook.sites(),
        hook.tiny_fraction(-20), // below ~1e-6
        hook.tiny_fraction(-3),  // below 1/8
    )
}

fn main() {
    let gemm = Gemm::new(12);
    let lavamd = LavaMd::new(2, 3);
    let micro = Micro::new(MicroKernelOp::Fma, 8, 128);
    let workloads: [(&str, &dyn Workload); 3] =
        [("MxM", &gemm), ("LavaMD", &lavamd), ("Micro-FMA", &micro)];

    let mut table = Table::new(vec![
        "workload",
        "precision",
        "sites",
        "below 1e-6",
        "below 1/8",
    ])
    .with_title("Fault-site magnitude census (TracingHook)");

    for (name, w) in workloads {
        for precision in Precision::ALL {
            let (sites, tiny, small) = census(w, precision);
            table.row(vec![
                name.to_string(),
                precision.to_string(),
                sites.to_string(),
                format!("{:.1}%", tiny * 100.0),
                format!("{:.1}%", small * 100.0),
            ]);
        }
    }

    println!("{table}");
    println!(
        "LavaMD's double-precision run keeps a visibly larger share of tiny\n\
         values in flight than its half-precision run — the deeper Horner\n\
         recurrence of the in-precision exponential. Those are the sites whose\n\
         exponent-bit corruption is catastrophic, the root of the paper's\n\
         transcendental criticality effect (Section 5.3)."
    );
}
