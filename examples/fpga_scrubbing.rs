//! FPGA persistence ablation: what if the device were *not* reprogrammed
//! after each observed error?
//!
//! The paper reprograms the FPGA at every observed output error and
//! argues that letting configuration-memory faults accumulate would only
//! produce a stream of corrupted outputs (Section 4). This example
//! makes that argument quantitative with the [`PeriodicHook`] persistent
//! fault model: one struck processing element keeps corrupting every
//! operation mapped to it, run after run, until a scrub rewrites the
//! configuration memory.
//!
//! ```text
//! cargo run --release --example fpga_scrubbing
//! ```

use mixed_precision_reliability::arch::Fpga;
use mixed_precision_reliability::fault::hook::PeriodicHook;
use mixed_precision_reliability::fault::{ValueFault, Workload};
use mixed_precision_reliability::kernels::Gemm;
use mixed_precision_reliability::metrics::Table;
use mixed_precision_reliability::softfloat::Precision;

fn main() {
    let fpga = Fpga::zynq7000();
    let gemm = Gemm::new(12);
    let precision = Precision::Single;

    let pes = fpga
        .pe_count("MxM", precision)
        .expect("MxM is a studied design");
    let golden = gemm.run_golden(precision);

    // A configuration strike rewires PE 3: flip bit 28 of everything it
    // computes. Without scrubbing the corruption repeats every run.
    let strike_pe = 3 % pes;
    let fault = ValueFault::BitFlip(28);

    let mut table = Table::new(vec!["run", "corrupted outputs", "note"]).with_title(format!(
        "Persistent fault in 1 of {pes} PEs on the FPGA MxM circuit (single precision)"
    ));

    let scrub_period = 4; // scrub every 4th run
    for run in 0..8u32 {
        let scrubbed_this_run = run % scrub_period == 0 && run > 0;
        let outputs = if scrubbed_this_run {
            golden.clone() // scrub restored the bitstream
        } else {
            let mut hook = PeriodicHook::new(strike_pe, pes, fault);
            gemm.dispatch(precision, &mut hook)
        };
        let corrupted = outputs
            .iter()
            .zip(&golden)
            .filter(|(a, b)| a.to_bits() != b.to_bits())
            .count();
        table.row(vec![
            run.to_string(),
            format!("{corrupted}/{}", golden.len()),
            if scrubbed_this_run {
                "configuration scrub".to_string()
            } else if corrupted > 0 {
                "stuck PE corrupts its output stripe".to_string()
            } else {
                "fault latent (not sensitized)".to_string()
            },
        ]);
    }

    println!("{table}");
    println!(
        "Every unscrubbed run re-emits the same corrupted stripe: persistent\n\
         faults produce a stream of errors, so the paper's reprogram-on-error\n\
         policy (or periodic scrubbing) is what keeps the FIT measurement —\n\
         and any deployed FPGA — meaningful."
    );
}
