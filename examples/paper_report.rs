//! Regenerate every table and figure of the paper as text tables.
//!
//! ```text
//! cargo run --release --example paper_report            # quick statistics
//! cargo run --release --example paper_report -- --paper # paper-scale
//! ```

use mixed_precision_reliability::core::Study;

fn main() {
    let paper_scale = std::env::args().any(|a| a == "--paper");
    let study = if paper_scale {
        eprintln!("running at paper scale; this takes a few minutes...");
        Study::paper(2019)
    } else {
        Study::quick(2019)
    };

    println!("{}", study.table1_fpga_times());
    println!("{}", study.fig2_fpga_resources().to_table());
    println!("{}", study.fig3_fpga_fit().to_table());
    println!("{}", study.fig4_fpga_tre().to_table());
    println!("{}", study.fig5_fpga_mebf().to_table());

    println!("{}", study.table2_knc_times());
    println!("{}", study.fig6_knc_fit().to_table());
    println!("{}", study.fig7_knc_pvf().to_table());
    println!("{}", study.fig8_knc_tre().to_table());
    println!("{}", study.fig9_knc_mebf().to_table());

    println!("{}", study.table3_gpu_times());
    println!("{}", study.fig10_gpu_fit().to_table());
    println!("{}", study.fig11_gpu_tre().to_table());
    println!("{}", study.fig12_gpu_avf().to_table());
    println!("{}", study.fig13_gpu_mebf().to_table());

    // Beyond the paper: ablations only the simulator can run.
    println!("{}", study.ablation_gpu_ecc().to_table());
    println!("{}", study.ablation_fault_models().to_table());
}
