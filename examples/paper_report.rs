//! Regenerate every table and figure of the paper as text tables.
//!
//! ```text
//! cargo run --release --example paper_report            # quick statistics
//! cargo run --release --example paper_report -- --paper # paper-scale
//! cargo run --release --example paper_report -- --cache-dir /tmp/mpr-cells
//! cargo run --release --example paper_report -- --threads 4
//! ```
//!
//! Every figure pulls its campaigns from the study's experiment engine:
//! cells shared between figures run once, unique cells run in parallel,
//! and `--cache-dir` persists results so a rerun at the same seed and
//! scale executes nothing at all.

use mixed_precision_reliability::core::Study;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper_scale = args.iter().any(|a| a == "--paper");
    let threads: usize = flag_value(&args, "--threads")
        .or_else(|| std::env::var("MPR_THREADS").ok())
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0);

    let mut study = if paper_scale {
        eprintln!("running at paper scale; this takes a few minutes...");
        Study::paper(2019)
    } else {
        Study::quick(2019)
    }
    .with_threads(threads);
    if let Some(dir) = flag_value(&args, "--cache-dir") {
        study = study.with_cache_dir(dir);
    }

    println!("{}", study.table1_fpga_times());
    println!("{}", study.fig2_fpga_resources().to_table());
    println!("{}", study.fig3_fpga_fit().to_table());
    println!("{}", study.fig4_fpga_tre().to_table());
    println!("{}", study.fig5_fpga_mebf().to_table());

    println!("{}", study.table2_knc_times());
    println!("{}", study.fig6_knc_fit().to_table());
    println!("{}", study.fig7_knc_pvf().to_table());
    println!("{}", study.fig8_knc_tre().to_table());
    println!("{}", study.fig9_knc_mebf().to_table());

    println!("{}", study.table3_gpu_times());
    println!("{}", study.fig10_gpu_fit().to_table());
    println!("{}", study.fig11_gpu_tre().to_table());
    println!("{}", study.fig12_gpu_avf().to_table());
    println!("{}", study.fig13_gpu_mebf().to_table());

    // Beyond the paper: ablations only the simulator can run.
    println!("{}", study.ablation_gpu_ecc().to_table());
    println!("{}", study.ablation_fault_models().to_table());

    let store = study.engine().store();
    eprintln!(
        "experiment cells: {} executed, {} memory hits, {} disk hits",
        store.executed(),
        store.mem_hits(),
        store.disk_hits()
    );
}
