//! Beam-time session parameters.

/// Parameters of one stint under the beam.
///
/// The paper irradiated each of its 30 configurations for at least 100
/// hours at ~8 orders of magnitude above the terrestrial flux. The
/// simulator keeps the *hours* (they set the fluence denominator) and
/// chooses the flux so that an expected `target_candidates` compute
/// strikes occur — the FIT estimate is flux independent, so the target
/// only sets the statistical precision of the campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeamSession {
    /// Beam hours for this configuration.
    pub hours: f64,
    /// Expected number of compute strikes to simulate.
    pub target_candidates: u64,
    /// RNG seed; identical sessions reproduce identical campaigns.
    pub seed: u64,
    /// Worker threads (0 = use available parallelism).
    pub threads: usize,
}

impl BeamSession {
    /// The paper-scale session: 100 beam hours, a few thousand strikes.
    pub fn paper(seed: u64) -> BeamSession {
        BeamSession {
            hours: 100.0,
            target_candidates: 4000,
            seed,
            threads: 0,
        }
    }

    /// A fast session for tests and examples.
    pub fn quick(seed: u64) -> BeamSession {
        BeamSession {
            hours: 10.0,
            target_candidates: 300,
            seed,
            threads: 0,
        }
    }

    /// Overrides the expected strike count.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_target_candidates(mut self, n: u64) -> BeamSession {
        assert!(n > 0, "need at least one candidate strike");
        self.target_candidates = n;
        self
    }

    /// Overrides the beam hours.
    ///
    /// # Panics
    ///
    /// Panics if `hours` is not strictly positive.
    pub fn with_hours(mut self, hours: f64) -> BeamSession {
        assert!(hours > 0.0 && hours.is_finite(), "hours must be positive");
        self.hours = hours;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        let p = BeamSession::paper(1);
        assert_eq!(p.hours, 100.0);
        assert!(p.target_candidates >= 1000);
        let q = BeamSession::quick(1);
        assert!(q.target_candidates < p.target_candidates);
    }

    #[test]
    fn builders_override() {
        let s = BeamSession::quick(0)
            .with_target_candidates(77)
            .with_hours(5.0);
        assert_eq!(s.target_candidates, 77);
        assert_eq!(s.hours, 5.0);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn zero_candidates_rejected() {
        let _ = BeamSession::quick(0).with_target_candidates(0);
    }
}
