//! # mpr-beam
//!
//! The accelerated neutron-beam campaign simulator — the stand-in for
//! the paper's ChipIR irradiation (Section 3.2).
//!
//! A campaign pairs a [`mpr_arch::Device`] with a
//! [`mpr_fault::Workload`] at one precision and simulates `hours` of
//! beam time: strikes arrive as a Poisson process over the device's
//! exposed resources; each *compute* strike is resolved by injecting a
//! fault into a live execution and comparing against the golden output
//! (SDC or masked), each *control* strike is a DUE, and on the FPGA
//! compute strikes are **persistent** — the struck processing element
//! corrupts every operation mapped to it until the device is
//! reprogrammed, which (like the paper) happens at each observed error.
//!
//! The observable is the cross section `events / fluence`, scaled to a
//! FIT rate in arbitrary units. The simulated flux only controls the
//! counting statistics, never the estimate, mirroring how accelerated
//! testing extrapolates to the terrestrial flux.
//!
//! # Example
//!
//! ```rust
//! use mpr_arch::VoltaGpu;
//! use mpr_beam::{BeamCampaign, BeamSession};
//! use mpr_kernels::{profiles, Micro, MicroKernelOp};
//! use mpr_softfloat::Precision;
//!
//! let gpu = VoltaGpu::titan_v();
//! let micro = Micro::new(MicroKernelOp::Mul, 32, 256);
//! let profile = profiles::micro(MicroKernelOp::Mul);
//! let result = BeamCampaign::new(&gpu, &micro, &profile, Precision::Half)
//!     .session(BeamSession::quick(42))
//!     .run();
//! assert!(result.sdc.events() > 0, "strikes must produce some SDCs");
//! assert!(result.fit_sdc().au() > 0.0);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod campaign;
mod session;

pub use campaign::{BeamCampaign, CampaignResult, SdcClassifier, SdcLabel};
pub use session::BeamSession;
