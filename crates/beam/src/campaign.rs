//! The beam campaign driver.

use crate::BeamSession;
use mpr_arch::{Device, WorkloadProfile};
use mpr_fault::{CampaignError, FaultModel, ValueFault, Workload};
use mpr_metrics::sampling::{rel_ci_width, Planner, SamplingConfig, SamplingPlan};
use mpr_metrics::{CrossSection, FitRate, Mebf, TreCurve};
use mpr_obs::{
    mix_seed, panic_message, CancelToken, Counter, Gauge, Recorder, Timer, NULL_RECORDER,
};
use mpr_softfloat::ulp::max_relative_error;
use mpr_softfloat::Precision;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};

/// A classification of one SDC's end-user impact, attached by an
/// optional domain classifier (MNIST: tolerable/critical; YOLOv3:
/// tolerable/detection/classification — paper Figures 3 and 11c).
pub type SdcLabel = &'static str;

/// A domain classifier: maps `(golden, faulty)` outputs to an [`SdcLabel`].
pub type SdcClassifier = dyn Fn(&[f64], &[f64]) -> SdcLabel + Sync;

/// An SDC observation tagged with its strike index.
type Observation = (u64, f64, Option<SdcLabel>);

/// What a resolution pass (fixed or adaptive) hands back to `try_run`.
struct Resolved {
    /// Index-sorted SDC observations.
    observed: Vec<Observation>,
    /// Summed worker-busy seconds.
    busy_total: f64,
    /// Strikes actually executed.
    executed: u64,
    /// Stratified per-strike SDC rate (adaptive only): the unbiased
    /// `sum_h W_h * e_h / n_h` estimate the cross section is scaled by.
    rate: Option<f64>,
}

/// One beam campaign: device x workload x precision x session.
pub struct BeamCampaign<'a> {
    device: &'a dyn Device,
    workload: &'a dyn Workload,
    profile: &'a WorkloadProfile,
    precision: Precision,
    session: BeamSession,
    strike_batch: usize,
    sampling: SamplingPlan,
    classifier: Option<&'a SdcClassifier>,
    golden: Option<&'a [f64]>,
    recorder: &'a dyn Recorder,
    scope: String,
    cancel: CancelToken,
}

impl std::fmt::Debug for BeamCampaign<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BeamCampaign")
            .field("device", &self.device.name())
            .field("workload", &self.workload.name())
            .field("precision", &self.precision)
            .field("session", &self.session)
            .field("strike_batch", &self.strike_batch)
            .field("sampling", &self.sampling)
            .field("has_classifier", &self.classifier.is_some())
            .finish()
    }
}

impl<'a> BeamCampaign<'a> {
    /// Stages a campaign with the paper-scale session.
    ///
    /// # Panics
    ///
    /// Panics if the device or workload does not support the precision.
    pub fn new(
        device: &'a dyn Device,
        workload: &'a dyn Workload,
        profile: &'a WorkloadProfile,
        precision: Precision,
    ) -> BeamCampaign<'a> {
        assert!(
            device.supports(precision),
            "{} has no {precision}-precision hardware",
            device.name()
        );
        assert!(
            workload.supports(precision),
            "{} has no {precision}-precision implementation",
            workload.name()
        );
        BeamCampaign {
            device,
            workload,
            profile,
            precision,
            session: BeamSession::paper(0),
            strike_batch: 64,
            sampling: SamplingPlan::Fixed,
            classifier: None,
            golden: None,
            recorder: &NULL_RECORDER,
            scope: String::new(),
            cancel: CancelToken::unlimited(),
        }
    }

    /// Sets the beam session.
    pub fn session(mut self, session: BeamSession) -> Self {
        self.session = session;
        self
    }

    /// Sets how many candidate strikes a worker hands to
    /// [`Workload::run_strike_batch`] per kernel pass (default 64).
    /// Batch size never changes results: per-strike RNG streams are
    /// derived from `(seed, strike index)` and every observation is
    /// tagged with its index, so any batch size is byte-identical
    /// (DT001).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn strike_batch(mut self, batch: usize) -> Self {
        assert!(batch > 0, "strike batch must be at least 1");
        self.strike_batch = batch;
        self
    }

    /// Selects the sampling plan (default [`SamplingPlan::Fixed`], the
    /// reference oracle). Under [`SamplingPlan::Adaptive`] the campaign
    /// proceeds in fixed-size decision rounds: strikes are allocated
    /// across contiguous site strata by Neyman allocation from the
    /// observed per-stratum SDC variance, and the cell stops as soon as
    /// the relative `poisson_ci95` width of its SDC count crosses the
    /// configured target. Every decision is a pure function of
    /// completed-round statistics keyed by strike index, so adaptive
    /// results stay byte-identical across `--threads` and
    /// `strike_batch` (DT001, DESIGN.md §4k).
    pub fn sampling(mut self, plan: SamplingPlan) -> Self {
        self.sampling = plan;
        self
    }

    /// Attaches a domain classifier labelling each SDC from
    /// `(golden, corrupted)` outputs.
    pub fn classifier(mut self, classifier: &'a SdcClassifier) -> Self {
        self.classifier = Some(classifier);
        self
    }

    /// Supplies a precomputed golden output, skipping the internal
    /// golden run. The caller must pass exactly
    /// `workload.run_golden(precision)` — the engine memoizes this per
    /// (workload × precision) so shared cells pay for it once.
    pub fn golden(mut self, golden: &'a [f64]) -> Self {
        self.golden = Some(golden);
        self
    }

    /// Attaches an observability recorder; every event this campaign
    /// records carries `scope` (typically the canonical cell key).
    /// Telemetry is read-only metadata — it never perturbs the
    /// campaign's RNG streams or results.
    pub fn telemetry(mut self, recorder: &'a dyn Recorder, scope: impl Into<String>) -> Self {
        self.recorder = recorder;
        self.scope = scope.into();
        self
    }

    /// Attaches a watchdog token (defaults to unlimited). Workers poll
    /// it at every batch boundary and again after every reported strike
    /// (so slow workloads on the default strike-at-a-time path keep
    /// per-strike granularity) and bail out cooperatively when it
    /// fires; [`BeamCampaign::try_run`] then reports
    /// [`CampaignError::Cancelled`]. No thread is ever detached.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Runs the campaign.
    ///
    /// # Panics
    ///
    /// Panics if the campaign is cancelled by its watchdog token or a
    /// worker panics; callers that need to survive either use
    /// [`BeamCampaign::try_run`].
    pub fn run(&self) -> CampaignResult {
        match self.try_run() {
            Ok(result) => result,
            // mpr-allow: panic-reachability -- this is the documented contract of the convenience wrapper: it fires at the campaign boundary, after all cells drained, never inside a retried cell
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs the campaign, reporting watchdog cancellation and worker
    /// panics as structured errors instead of unwinding. On `Err` all
    /// partial work is discarded; a retried campaign with the same seed
    /// is byte-identical to an untroubled first run.
    pub fn try_run(&self) -> Result<CampaignResult, CampaignError> {
        let rec = self.recorder;
        let wall = Timer::start(rec, "campaign.wall", self.scope.clone());
        let exec_time = self.device.exec_time(self.profile, self.precision);
        let exposure = self.device.exposure(self.profile, self.precision);
        let seconds = self.session.hours * 3600.0;
        // Flux chosen so the expected compute-strike count hits the
        // session target; the cross section (events / fluence) does not
        // depend on it.
        let flux = self.session.target_candidates as f64 / (exposure.compute * seconds);
        let fluence = flux * seconds;

        let golden_owned;
        let golden: &[f64] = match self.golden {
            Some(g) => g,
            None => {
                golden_owned = self.workload.run_golden(self.precision);
                &golden_owned
            }
        };
        let golden_bits: Vec<u64> = golden.iter().map(|v| v.to_bits()).collect();
        let sites = self.workload.site_count(self.precision);
        let width = self.precision.total_bits();
        let model = FaultModel::pipeline(exposure.pipeline_fraction);
        // Strike-fate model, hoisted out of the strike loop (the device
        // exposure lookup used to run once per strike).
        let persistent = exposure.persistence.is_some();

        // Campaign-level sampling stream: a full splitmix64 avalanche
        // of (seed, salt), not the old collision-prone `seed ^ salt`.
        let mut rng = StdRng::seed_from_u64(mix_seed(self.session.seed, 0xBEA0_0000));
        let candidates = poisson(flux * exposure.compute * seconds, &mut rng);
        let due_events = poisson(flux * exposure.due * seconds, &mut rng);

        // Resolve candidate strikes by injection, in parallel.
        let nthreads = match self.session.threads {
            0 => std::thread::available_parallelism().map_or(4, |n| n.get()),
            n => n,
        }
        .min(candidates.max(1) as usize);
        let resolved = match self.sampling {
            SamplingPlan::Fixed => self.resolve_fixed(
                candidates,
                nthreads,
                sites,
                width,
                model,
                persistent,
                golden,
                &golden_bits,
            ),
            SamplingPlan::Adaptive(config) => self.resolve_adaptive(
                config,
                candidates,
                nthreads,
                sites,
                width,
                model,
                persistent,
                golden,
                &golden_bits,
            ),
        };
        let Resolved {
            observed,
            busy_total,
            executed,
            rate,
        } = match resolved {
            Ok(r) => r,
            Err(e) => {
                wall.cancel();
                return Err(e);
            }
        };
        let sdc_events = observed.len() as u64;
        let severities: Vec<f64> = observed.iter().map(|&(_, s, _)| s).collect();
        let labels: Vec<SdcLabel> = observed.iter().filter_map(|&(_, _, l)| l).collect();

        Counter::new(rec, "beam.candidates", &self.scope).add(candidates);
        Counter::new(rec, "beam.executed", &self.scope).add(executed);
        Counter::new(rec, "beam.sdc", &self.scope).add(sdc_events);
        Counter::new(rec, "beam.due", &self.scope).add(due_events);
        // The masked tally covers the executed strikes only, and DUEs
        // come out of it rather than hiding inside it (they used to be
        // counted as masked). The DUE cross section is drawn from an
        // independent control-logic exposure, so in rare quick-scale
        // sessions the draw exceeds the quiet pool — the tally clamps
        // so the fates always partition the executed strikes.
        let quiet = executed - sdc_events;
        let due_tally = due_events.min(quiet);
        let masked = quiet - due_tally;
        assert_eq!(
            masked + sdc_events + due_tally,
            executed,
            "strike fates must sum to the executed strikes"
        );
        Counter::new(rec, "beam.masked", &self.scope).add(masked);
        Counter::new(rec, "beam.strikes_saved", &self.scope)
            .add(candidates.saturating_sub(executed));
        let width_now = rel_ci_width(sdc_events);
        if width_now.is_finite() {
            Gauge::new(rec, "beam.ci_width", &self.scope).set(width_now);
        }
        let wall_s = wall.stop();
        if wall_s > 0.0 {
            // Executed strikes, not candidates: under early stopping the
            // two diverge and the old formula overstated throughput.
            Gauge::new(rec, "beam.strikes_per_s", &self.scope).set(executed as f64 / wall_s);
            Gauge::new(rec, "beam.utilization", &self.scope)
                .set(busy_total / (nthreads as f64 * wall_s));
        }

        // The SDC cross section always reads `events / fluence`. On the
        // fixed path the full fluence applies. On the adaptive path the
        // raw event count reflects a stratified, early-stopped sample,
        // so the stored fluence is adjusted until `events / fluence`
        // equals the unbiased estimate scaled to the full candidate
        // population: `rate * candidates / session_fluence`. Keeping the
        // raw integer count means `fit_ci95` still sees the true number
        // of observations.
        let sdc_fluence = match rate {
            None => fluence,
            Some(rate) => {
                if sdc_events > 0 && rate > 0.0 && candidates > 0 {
                    sdc_events as f64 * fluence / (rate * candidates as f64)
                } else if executed > 0 && candidates > 0 {
                    // No SDCs observed: scale the exposure to the strikes
                    // actually spent, preserving the zero-event upper bound.
                    fluence * executed as f64 / candidates as f64
                } else {
                    fluence
                }
            }
        };

        Ok(CampaignResult {
            device: self.device.name().to_string(),
            workload: self.workload.name().to_string(),
            precision: self.precision,
            exec_time_s: exec_time,
            runs: seconds / exec_time,
            fluence,
            candidates,
            executed,
            sdc: CrossSection::new(sdc_events, sdc_fluence),
            due: CrossSection::new(due_events, fluence),
            severities,
            labels,
        })
    }

    /// The reference oracle: every candidate strike executes, sites
    /// drawn uniformly over the whole space. Byte-identical to the
    /// pre-adaptive driver.
    #[allow(clippy::too_many_arguments)]
    fn resolve_fixed(
        &self,
        candidates: u64,
        nthreads: usize,
        sites: u64,
        width: u32,
        model: FaultModel,
        persistent: bool,
        golden: &[f64],
        golden_bits: &[u64],
    ) -> Result<Resolved, CampaignError> {
        let rec = self.recorder;
        // Workers take strikes in a thread stride, so each partial holds
        // an interleaved subsequence. Every observation is tagged with
        // its strike index and the merge sorts on it: severities and
        // labels come out in strike order for *any* thread count.
        let mut partials: Vec<(Vec<Observation>, f64)> = Vec::new();
        // Set by a worker only when it actually bailed out early, so a
        // deadline that expires just after the last strike completes
        // does not spuriously cancel a finished campaign.
        let aborted = AtomicBool::new(false);
        let mut worker_panic: Option<String> = None;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..nthreads {
                let golden = &golden;
                let golden_bits = &golden_bits;
                let campaign = &*self;
                let aborted = &aborted;
                handles.push(scope.spawn(move || {
                    let busy = Timer::start(rec, "beam.worker_busy", campaign.scope.clone());
                    let mut observed = Vec::new();
                    // Strike batch, hoisted out of the loop so the
                    // gather/execute phases reuse one allocation each.
                    let mut batch: Vec<(u64, ValueFault)> =
                        Vec::with_capacity(campaign.strike_batch);
                    let mut indices: Vec<u64> = Vec::with_capacity(campaign.strike_batch);
                    let mut i = t as u64;
                    let mut bailed = false;
                    while i < candidates && !bailed {
                        // Watchdog poll at the batch boundary (and again
                        // inside the execute callback after each strike).
                        if campaign.cancel.is_cancelled() {
                            aborted.store(true, Ordering::Relaxed);
                            break;
                        }
                        // Gather phase: draw each strike's (site, fault)
                        // from its own per-strike stream — derived
                        // through the shared splitmix64 avalanche, so
                        // adjacent strikes get unrelated seeds (the old
                        // `seed * C ^ i` gave correlated streams). The
                        // draw order per strike is unchanged from the
                        // strike-at-a-time loop, so every campaign is
                        // byte-identical for any batch size (DT001).
                        batch.clear();
                        indices.clear();
                        while i < candidates && batch.len() < campaign.strike_batch {
                            let mut rng = StdRng::seed_from_u64(mix_seed(campaign.session.seed, i));
                            batch.push(
                                campaign.draw_strike(sites, width, model, persistent, &mut rng),
                            );
                            indices.push(i);
                            i += nthreads as u64;
                        }
                        // Execute phase: one kernel pass over the whole
                        // batch; results arrive in region order and are
                        // keyed back to their strike index.
                        campaign.workload.run_strike_batch(
                            campaign.precision,
                            &batch,
                            golden,
                            &mut |b, out| {
                                let corrupted = out.len() != golden.len()
                                    || out.iter().zip(*golden_bits).any(|(v, &g)| v.to_bits() != g);
                                if corrupted {
                                    let severity = max_relative_error(out, golden);
                                    let label =
                                        campaign.classifier.map(|classify| classify(golden, out));
                                    // mpr-allow: panic-reachability -- the batch contract keys callbacks by batch position (`b < batch.len() == indices.len()`); an out-of-range `b` is a workload-override bug the differential tests pin, not a recoverable strike failure
                                    observed.push((indices[b], severity, label));
                                }
                                if campaign.cancel.is_cancelled() {
                                    bailed = true;
                                    return false;
                                }
                                true
                            },
                        );
                        if bailed {
                            aborted.store(true, Ordering::Relaxed);
                        }
                    }
                    (observed, busy.stop())
                }));
            }
            for h in handles {
                // Every handle is joined even after a panic or abort —
                // the scope never re-raises, and the payload feeds the
                // structured failure path instead of a backtrace.
                match h.join() {
                    Ok(p) => partials.push(p),
                    Err(payload) => worker_panic = Some(panic_message(payload)),
                }
            }
        });

        if let Some(msg) = worker_panic {
            return Err(CampaignError::WorkerPanic(msg));
        }
        if aborted.load(Ordering::Relaxed) {
            return Err(CampaignError::Cancelled);
        }

        let mut busy_total = 0.0;
        let mut observed: Vec<Observation> = Vec::new();
        for (obs, busy) in partials {
            observed.extend(obs);
            busy_total += busy;
        }
        observed.sort_by_key(|&(i, _, _)| i);
        Ok(Resolved {
            observed,
            busy_total,
            executed: candidates,
            rate: None,
        })
    }

    /// The adaptive path: strikes execute in fixed-size decision rounds.
    /// Between rounds the planner recomputes the CI width and the next
    /// round's Neyman allocation from the merged, index-sorted tallies
    /// of completed rounds only — never wall-clock, worker id, or
    /// arrival order — so any thread count and any strike batch produce
    /// byte-identical results (DT001, DESIGN.md §4k).
    #[allow(clippy::too_many_arguments)]
    fn resolve_adaptive(
        &self,
        config: SamplingConfig,
        candidates: u64,
        nthreads: usize,
        sites: u64,
        width: u32,
        model: FaultModel,
        persistent: bool,
        golden: &[f64],
        golden_bits: &[u64],
    ) -> Result<Resolved, CampaignError> {
        let rec = self.recorder;
        let mut planner = Planner::new(sites, candidates, config);
        let bounds: Vec<(u64, u64)> = planner.bounds().to_vec();
        let strata = bounds.len();
        let mut all_observed: Vec<Observation> = Vec::new();
        let mut busy_total = 0.0;
        // Global strike index of the next round's slot 0. Per-strike RNG
        // streams stay keyed by this global index, exactly like the
        // fixed path's streams — only the site draw is stratified.
        let mut round_base = 0u64;
        while let Some(schedule) = planner.next_round() {
            let slots = schedule.len() as u64;
            if slots == 0 {
                break;
            }
            let round_threads = nthreads.min(slots as usize).max(1);
            let mut partials: Vec<(Vec<Observation>, f64)> = Vec::new();
            let aborted = AtomicBool::new(false);
            let mut worker_panic: Option<String> = None;
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for t in 0..round_threads {
                    let golden = &golden;
                    let golden_bits = &golden_bits;
                    let schedule = &schedule;
                    let bounds = &bounds;
                    let campaign = &*self;
                    let aborted = &aborted;
                    handles.push(scope.spawn(move || {
                        let busy = Timer::start(rec, "beam.worker_busy", campaign.scope.clone());
                        let mut observed = Vec::new();
                        let mut batch: Vec<(u64, ValueFault)> =
                            Vec::with_capacity(campaign.strike_batch);
                        let mut indices: Vec<u64> = Vec::with_capacity(campaign.strike_batch);
                        let mut s = t as u64;
                        let mut bailed = false;
                        while s < slots && !bailed {
                            if campaign.cancel.is_cancelled() {
                                aborted.store(true, Ordering::Relaxed);
                                break;
                            }
                            batch.clear();
                            indices.clear();
                            while s < slots && batch.len() < campaign.strike_batch {
                                let i = round_base + s;
                                let mut rng =
                                    StdRng::seed_from_u64(mix_seed(campaign.session.seed, i));
                                // mpr-allow: panic-reachability -- the planner emits schedule entries that index its own bounds table (`schedule[..] < bounds.len()`, `s < slots == schedule.len()`); a violation is a planner bug the sampling unit tests pin, not a recoverable strike failure
                                let (lo, len) = bounds[schedule[s as usize]];
                                batch.push(campaign.draw_stratified_strike(
                                    lo, len, width, model, persistent, &mut rng,
                                ));
                                indices.push(i);
                                s += round_threads as u64;
                            }
                            campaign.workload.run_strike_batch(
                                campaign.precision,
                                &batch,
                                golden,
                                &mut |b, out| {
                                    let corrupted = out.len() != golden.len()
                                        || out
                                            .iter()
                                            .zip(*golden_bits)
                                            .any(|(v, &g)| v.to_bits() != g);
                                    if corrupted {
                                        let severity = max_relative_error(out, golden);
                                        let label = campaign
                                            .classifier
                                            .map(|classify| classify(golden, out));
                                        // mpr-allow: panic-reachability -- same batch contract as the fixed path: `b` is always in range
                                        observed.push((indices[b], severity, label));
                                    }
                                    if campaign.cancel.is_cancelled() {
                                        bailed = true;
                                        return false;
                                    }
                                    true
                                },
                            );
                            if bailed {
                                aborted.store(true, Ordering::Relaxed);
                            }
                        }
                        (observed, busy.stop())
                    }));
                }
                for h in handles {
                    match h.join() {
                        Ok(p) => partials.push(p),
                        Err(payload) => worker_panic = Some(panic_message(payload)),
                    }
                }
            });
            if let Some(msg) = worker_panic {
                return Err(CampaignError::WorkerPanic(msg));
            }
            if aborted.load(Ordering::Relaxed) {
                return Err(CampaignError::Cancelled);
            }

            let mut round_obs: Vec<Observation> = Vec::new();
            for (obs, busy) in partials {
                round_obs.extend(obs);
                busy_total += busy;
            }
            round_obs.sort_by_key(|&(i, _, _)| i);
            // Commit the round: per-stratum strike and event tallies,
            // recovered from the schedule by strike index.
            let mut executed_by = vec![0u64; strata];
            for &h in &schedule {
                // mpr-allow: panic-reachability -- schedule entries index the planner's own bounds table; a violation is a planner bug the sampling unit tests pin
                executed_by[h] += 1;
            }
            let mut events_by = vec![0u64; strata];
            for &(i, _, _) in &round_obs {
                // mpr-allow: panic-reachability -- every observation index lies in this round's slot range (`round_base..round_base + slots`) by construction
                events_by[schedule[(i - round_base) as usize]] += 1;
            }
            planner.complete_round(&executed_by, &events_by);
            all_observed.extend(round_obs);
            round_base += slots;
        }
        Ok(Resolved {
            observed: all_observed,
            busy_total,
            executed: planner.executed(),
            rate: Some(planner.weighted_rate()),
        })
    }

    /// Draws one compute strike's `(site, fault)` pair from its
    /// per-strike stream; execution happens in the batched kernel pass.
    fn draw_strike(
        &self,
        sites: u64,
        width: u32,
        model: FaultModel,
        persistent: bool,
        rng: &mut StdRng,
    ) -> (u64, ValueFault) {
        let site = rng.gen_range(0..sites);
        let fault = Self::draw_fault(width, model, persistent, rng);
        (site, fault)
    }

    /// Draws one stratified strike: the site is confined to the
    /// stratum's `(lo, len)` range, the fault shape draw is unchanged.
    /// An empty stratum (more strata than sites) degrades to the
    /// past-the-end site `lo`, where the fault never fires — the
    /// planner never schedules zero-weight strata, so this is purely
    /// defensive.
    fn draw_stratified_strike(
        &self,
        lo: u64,
        len: u64,
        width: u32,
        model: FaultModel,
        persistent: bool,
        rng: &mut StdRng,
    ) -> (u64, ValueFault) {
        let site = if len == 0 {
            lo
        } else {
            lo + rng.gen_range(0..len)
        };
        let fault = Self::draw_fault(width, model, persistent, rng);
        (site, fault)
    }

    /// Draws the fault shape for one strike from its per-strike stream.
    fn draw_fault(width: u32, model: FaultModel, persistent: bool, rng: &mut StdRng) -> ValueFault {
        if persistent {
            // FPGA configuration strike: a LUT or routing pip of one
            // processing element is rewired into a stuck-at function.
            // The fault is persistent but only *sensitized* by the
            // operand patterns that exercise the corrupted cone —
            // modeled as a stuck bit on one operation slot; values
            // already agreeing with the stuck level are untouched
            // (the dominant configuration-upset masking mechanism).
            // The paper reprograms the device at each observed
            // error, and runs are deterministic, so one run decides
            // the strike's fate.
            FaultModel::StuckBit.sample(width, rng)
        } else {
            // Transient strike in a register / datapath value of a
            // live execution.
            model.sample(width, rng)
        }
    }
}

/// Poisson sample via inversion for small means and normal approximation
/// for large ones (means here range from tens to tens of thousands).
fn poisson(mean: f64, rng: &mut StdRng) -> u64 {
    assert!(mean.is_finite() && mean >= 0.0, "mean must be >= 0");
    if mean == 0.0 {
        return 0;
    }
    if mean < 50.0 {
        let limit = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= limit {
                return k;
            }
            k += 1;
        }
    }
    // Normal approximation with continuity correction.
    let (u1, u2) = (rng.gen::<f64>(), rng.gen::<f64>());
    let z = (-2.0 * u1.max(1e-12).ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (mean + z * mean.sqrt()).round().max(0.0) as u64
}

/// The outcome of one beam campaign.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Device name.
    pub device: String,
    /// Workload name.
    pub workload: String,
    /// Precision tested.
    pub precision: Precision,
    /// Per-execution wall time (seconds).
    pub exec_time_s: f64,
    /// Executions completed during the session.
    pub runs: f64,
    /// Accumulated fluence (a.u.).
    pub fluence: f64,
    /// Compute strike candidates the session produced (the fixed budget).
    pub candidates: u64,
    /// Strikes actually executed: equals `candidates` on the fixed
    /// path, fewer once adaptive early stopping converges.
    pub executed: u64,
    /// SDC cross section.
    pub sdc: CrossSection,
    /// DUE cross section.
    pub due: CrossSection,
    /// Worst relative error of each SDC.
    pub severities: Vec<f64>,
    /// Domain labels of each SDC (when a classifier was attached).
    pub labels: Vec<SdcLabel>,
}

impl CampaignResult {
    /// SDC FIT rate in arbitrary units.
    pub fn fit_sdc(&self) -> FitRate {
        self.sdc.fit_au()
    }

    /// DUE FIT rate in arbitrary units.
    pub fn fit_due(&self) -> FitRate {
        self.due.fit_au()
    }

    /// Combined failure rate (SDC + DUE).
    pub fn fit_total(&self) -> FitRate {
        FitRate::from_au(self.fit_sdc().au() + self.fit_due().au())
    }

    /// Mean Executions Between Failures for this configuration.
    pub fn mebf(&self) -> Mebf {
        Mebf::from_fit(self.fit_total(), self.exec_time_s)
    }

    /// TRE curve over the campaign's SDC severities.
    pub fn tre_curve(&self) -> TreCurve {
        TreCurve::from_errors(self.severities.clone())
    }

    /// Strikes the sampling plan saved against the fixed budget.
    pub fn strikes_saved(&self) -> u64 {
        self.candidates.saturating_sub(self.executed)
    }

    /// Relative 95% CI width over the observed SDC count (infinite for
    /// a zero-event campaign).
    pub fn ci_width(&self) -> f64 {
        rel_ci_width(self.sdc.events())
    }

    /// Fraction of SDCs carrying each domain label, in first-seen order.
    pub fn label_fractions(&self) -> Vec<(SdcLabel, f64)> {
        let mut order: Vec<SdcLabel> = Vec::new();
        let mut counts: Vec<u64> = Vec::new();
        for &l in &self.labels {
            match order.iter().position(|&o| o == l) {
                Some(i) => counts[i] += 1,
                None => {
                    order.push(l);
                    counts.push(1);
                }
            }
        }
        let total = self.labels.len().max(1) as f64;
        order
            .into_iter()
            .zip(counts)
            .map(|(l, c)| (l, c as f64 / total))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_arch::{Fpga, VoltaGpu, XeonPhiKnc};
    use mpr_kernels::{profiles, Gemm, Lud, Micro, MicroKernelOp};

    #[test]
    fn poisson_small_and_large_means() {
        let mut rng = StdRng::seed_from_u64(1);
        let small: f64 = (0..2000)
            .map(|_| poisson(3.0, &mut rng) as f64)
            .sum::<f64>()
            / 2000.0;
        assert!((small - 3.0).abs() < 0.2, "mean {small}");
        let large: f64 = (0..500)
            .map(|_| poisson(400.0, &mut rng) as f64)
            .sum::<f64>()
            / 500.0;
        assert!((large - 400.0).abs() < 5.0, "mean {large}");
        assert_eq!(poisson(0.0, &mut rng), 0);
    }

    #[test]
    fn campaign_is_deterministic_in_the_seed() {
        let gpu = VoltaGpu::titan_v();
        let micro = Micro::new(MicroKernelOp::Add, 16, 64);
        let profile = profiles::micro(MicroKernelOp::Add);
        let run = |seed| {
            BeamCampaign::new(&gpu, &micro, &profile, Precision::Single)
                .session(BeamSession::quick(seed).with_target_candidates(120))
                .run()
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a.sdc.events(), b.sdc.events());
        assert_eq!(a.due.events(), b.due.events());
        let c = run(6);
        assert!(
            c.sdc.events() != a.sdc.events() || c.severities != a.severities,
            "different seeds should differ"
        );
    }

    #[test]
    fn fit_estimate_is_flux_independent() {
        // Doubling the target candidates (i.e. the flux) must not move
        // the cross section materially, only tighten it.
        let gpu = VoltaGpu::titan_v();
        let micro = Micro::new(MicroKernelOp::Mul, 16, 64);
        let profile = profiles::micro(MicroKernelOp::Mul);
        let lo = BeamCampaign::new(&gpu, &micro, &profile, Precision::Half)
            .session(BeamSession::quick(3).with_target_candidates(400))
            .run();
        let hi = BeamCampaign::new(&gpu, &micro, &profile, Precision::Half)
            .session(BeamSession::quick(3).with_target_candidates(1600))
            .run();
        let ratio = lo.fit_sdc().au() / hi.fit_sdc().au();
        assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn knc_campaign_counts_both_event_classes() {
        let knc = XeonPhiKnc::coprocessor_3120a();
        let lud = Lud::new(16);
        let profile = profiles::lud_knc();
        let r = BeamCampaign::new(&knc, &lud, &profile, Precision::Double)
            .session(BeamSession::quick(7).with_target_candidates(200))
            .run();
        assert!(r.sdc.events() > 0);
        assert!(r.due.events() > 0, "KNC control strikes cause DUEs");
        assert_eq!(r.severities.len() as u64, r.sdc.events());
    }

    #[test]
    fn fpga_campaign_uses_persistent_faults_and_never_dues() {
        let fpga = Fpga::zynq7000();
        let gemm = Gemm::new(12);
        let profile = profiles::mxm_fpga();
        let r = BeamCampaign::new(&fpga, &gemm, &profile, Precision::Half)
            .session(BeamSession::quick(11).with_target_candidates(150))
            .run();
        assert_eq!(r.due.events(), 0, "no DUEs observed on the FPGA");
        // Stuck-at faults are sensitized by roughly half the operand
        // patterns; MxM has no structural masking beyond that.
        let rate = r.sdc.events() as f64 / r.candidates as f64;
        assert!((0.2..0.95).contains(&rate), "SDC rate {rate}");
    }

    #[test]
    #[should_panic(expected = "no half-precision hardware")]
    fn knc_half_campaign_rejected() {
        let knc = XeonPhiKnc::coprocessor_3120a();
        let lud = Lud::new(8);
        let profile = profiles::lud_knc();
        let _ = BeamCampaign::new(&knc, &lud, &profile, Precision::Half);
    }

    #[test]
    fn classifier_labels_every_sdc() {
        let gpu = VoltaGpu::titan_v();
        let gemm = Gemm::new(10);
        let profile = profiles::mxm_gpu();
        let classify = |golden: &[f64], out: &[f64]| -> SdcLabel {
            if max_relative_error(out, golden) > 0.01 {
                "large"
            } else {
                "small"
            }
        };
        let r = BeamCampaign::new(&gpu, &gemm, &profile, Precision::Single)
            .session(BeamSession::quick(13).with_target_candidates(200))
            .classifier(&classify)
            .run();
        assert_eq!(r.labels.len() as u64, r.sdc.events());
        let fractions = r.label_fractions();
        let total: f64 = fractions.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pre_fired_token_cancels_without_panicking() {
        let gpu = VoltaGpu::titan_v();
        let micro = Micro::new(MicroKernelOp::Add, 16, 64);
        let profile = profiles::micro(MicroKernelOp::Add);
        let token = CancelToken::unlimited();
        token.cancel();
        let err = BeamCampaign::new(&gpu, &micro, &profile, Precision::Single)
            .session(BeamSession::quick(5).with_target_candidates(120))
            .cancel_token(token)
            .try_run()
            .expect_err("campaign must report cancellation");
        assert_eq!(err, CampaignError::Cancelled);
    }

    #[test]
    fn mebf_combines_fit_and_time() {
        let gpu = VoltaGpu::titan_v();
        let micro = Micro::new(MicroKernelOp::Fma, 16, 64);
        let profile = profiles::micro(MicroKernelOp::Fma);
        let r = BeamCampaign::new(&gpu, &micro, &profile, Precision::Double)
            .session(BeamSession::quick(17).with_target_candidates(150))
            .run();
        let expect = Mebf::from_fit(r.fit_total(), r.exec_time_s);
        assert_eq!(r.mebf(), expect);
        assert!(r.runs > 0.0);
    }
}
