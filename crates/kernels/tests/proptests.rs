//! Property tests over the benchmark kernels.

use mpr_fault::{ValueFault, Workload};
use mpr_kernels::{Gemm, LavaMd, Lud, Micro, MicroKernelOp};
use mpr_softfloat::Precision;
use proptest::prelude::*;

fn precision() -> impl Strategy<Value = Precision> {
    prop_oneof![
        Just(Precision::Double),
        Just(Precision::Single),
        Just(Precision::Half),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gemm_golden_is_seed_deterministic(n in 2usize..10, seed in any::<u64>(), p in precision()) {
        let a = Gemm::new(n).with_seed(seed);
        let b = Gemm::new(n).with_seed(seed);
        prop_assert_eq!(a.run_golden(p), b.run_golden(p));
        prop_assert_eq!(a.site_count(p), 2 * (n * n) as u64 + (n * n * n) as u64);
    }

    #[test]
    fn gemm_outputs_bounded_by_inputs(n in 2usize..12, seed in any::<u64>()) {
        // Inputs in [0.25, 1.75): every dot product lies in (n/16, 4n).
        let g = Gemm::new(n).with_seed(seed);
        for v in g.run_golden(Precision::Double) {
            prop_assert!(v > n as f64 * 0.0625 && v < n as f64 * 3.0625);
        }
    }

    #[test]
    fn any_single_fault_changes_at_most_everything_and_is_reproducible(
        n in 2usize..8,
        site_frac in 0.0f64..1.0,
        bit in 0u32..16,
        p in precision(),
    ) {
        let g = Gemm::new(n);
        let sites = g.site_count(p);
        let site = ((sites as f64 - 1.0) * site_frac) as u64;
        let fault = ValueFault::BitFlip(bit);
        let a: Vec<u64> = g
            .run_with_fault(p, site, fault)
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let b: Vec<u64> = g
            .run_with_fault(p, site, fault)
            .iter()
            .map(|v| v.to_bits())
            .collect();
        // Bit-level comparison: corrupted runs may legitimately hold NaN.
        prop_assert_eq!(a, b, "fault runs replay exactly");
    }

    #[test]
    fn lud_supports_only_knc_precisions(n in 2usize..12) {
        let l = Lud::new(n);
        prop_assert!(l.supports(Precision::Double));
        prop_assert!(l.supports(Precision::Single));
        prop_assert!(!l.supports(Precision::Half));
    }

    #[test]
    fn lud_diagonal_dominance_keeps_factors_finite(n in 2usize..16, seed in any::<u64>()) {
        let l = Lud::new(n).with_seed(seed);
        for p in [Precision::Double, Precision::Single] {
            let lu = l.run_golden(p);
            prop_assert!(lu.iter().all(|v| v.is_finite()), "{p}");
            // L factors below the diagonal are bounded by 1 for a
            // diagonally dominant matrix.
            for i in 0..n {
                for j in 0..i {
                    prop_assert!(lu[i * n + j].abs() < 1.0, "L[{i}][{j}]={}", lu[i * n + j]);
                }
            }
        }
    }

    #[test]
    fn lavamd_potentials_scale_with_particle_count(par in 1usize..5, p in precision()) {
        let lava = LavaMd::new(2, par);
        let out = lava.run_golden(p);
        prop_assert_eq!(out.len(), 8 * par);
        // Each interaction contributes at most q*exp(0) = 1.
        let partners = (8 * par - 1) as f64;
        prop_assert!(out.iter().all(|&v| v >= 0.0 && v <= partners));
    }

    #[test]
    fn lavamd_knc_variant_sites_exceed_gpu_variant_for_double(par in 1usize..4) {
        // The transcendental unit occupies 24 cycles per exp at double
        // vs 15 hooked polynomial steps.
        let gpu = LavaMd::new(2, par);
        let knc = LavaMd::new(2, par).for_knc();
        prop_assert!(knc.site_count(Precision::Double) > gpu.site_count(Precision::Double));
    }

    #[test]
    fn micro_chains_never_explode(
        threads in 1usize..8,
        iters in 1usize..512,
        p in precision(),
    ) {
        for op in MicroKernelOp::ALL {
            let m = Micro::new(op, threads, iters);
            let out = m.run_golden(p);
            prop_assert_eq!(out.len(), threads);
            prop_assert!(out.iter().all(|v| v.is_finite() && v.abs() < 1e3), "{op:?} {p}");
        }
    }

    #[test]
    fn faults_beyond_site_space_are_identity(n in 2usize..6, p in precision()) {
        let g = Gemm::new(n);
        let golden = g.run_golden(p);
        let past_end = g.site_count(p) + 17;
        let out = g.run_with_fault(p, past_end, ValueFault::BitFlip(3));
        prop_assert_eq!(out, golden);
    }
}
