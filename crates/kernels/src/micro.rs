//! The Micro-ADD / Micro-MUL / Micro-FMA synthetic kernels.

use crate::monomorphic_workload;
use crate::util::{gen_value, to_u64};
use mpr_fault::hook::{FaultHook, HookExt, InjectHook};
use mpr_fault::{ValueFault, Workload};
use mpr_softfloat::{FloatExt, Precision};

/// Which arithmetic operation a microbenchmark stresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MicroKernelOp {
    /// Dependent additions.
    Add,
    /// Dependent multiplications.
    Mul,
    /// Dependent fused multiply-adds.
    Fma,
}

impl MicroKernelOp {
    /// All three microbenchmark operations.
    pub const ALL: [MicroKernelOp; 3] =
        [MicroKernelOp::Add, MicroKernelOp::Mul, MicroKernelOp::Fma];

    /// Paper-style name ("Micro-ADD", ...).
    pub const fn name(self) -> &'static str {
        match self {
            MicroKernelOp::Add => "Micro-ADD",
            MicroKernelOp::Mul => "Micro-MUL",
            MicroKernelOp::Fma => "Micro-FMA",
        }
    }
}

/// A register-resident dependent chain of one arithmetic operation per
/// thread — the paper's microbenchmarks, "designed to minimize the
/// stress on GPU's components other than the thread's ALU" (Section 3.1).
///
/// The chain constants alternate so the accumulator stays bounded at
/// every precision (no overflow in binary16, no exponent drift that
/// would asymmetrically absorb faults): ADD alternates `±0.25`, MUL
/// alternates `x1.25 / x0.8`, FMA composes both.
///
/// # Example
///
/// ```rust
/// use mpr_fault::Workload;
/// use mpr_kernels::{Micro, MicroKernelOp};
/// use mpr_softfloat::Precision;
///
/// let micro = Micro::new(MicroKernelOp::Fma, 16, 64);
/// let out = micro.run_golden(Precision::Half);
/// assert_eq!(out.len(), 16); // one accumulator per thread
/// assert!(out.iter().all(|v| v.is_finite()));
/// ```
#[derive(Debug, Clone)]
pub struct Micro {
    op: MicroKernelOp,
    threads: usize,
    iters: usize,
}

impl Micro {
    /// Creates a microbenchmark with `threads` independent chains of
    /// `iters` operations.
    ///
    /// # Panics
    ///
    /// Panics if `threads` or `iters` is zero.
    pub fn new(op: MicroKernelOp, threads: usize, iters: usize) -> Micro {
        assert!(threads > 0 && iters > 0, "need threads > 0 and iters > 0");
        Micro { op, threads, iters }
    }

    /// The stressed operation.
    pub fn op(&self) -> MicroKernelOp {
        self.op
    }

    /// One thread's dependent chain — shared by the full run and the
    /// replay so both touch identical values in identical order.
    ///
    /// Alternating constants with a slight asymmetry: the chain stays
    /// bounded (the pair products/sums are near identity) but never
    /// cancels exactly, so every step's value is distinct. All
    /// constants are exactly representable in binary16.
    fn chain<F: FloatExt, H: FaultHook + ?Sized>(&self, t: u64, hook: &mut H) -> F {
        let mul_up = F::from_f64(1.25);
        let mul_down = F::from_f64(0.796875);
        let add_up = F::from_f64(0.25);
        let add_down = F::from_f64(0.125);
        let mut x = F::from_f64(gen_value(0x3C0, t, 0.5, 1.5));
        for i in 0..self.iters {
            let even = i % 2 == 0;
            x = hook.touch(match self.op {
                MicroKernelOp::Add => {
                    if even {
                        x + add_up
                    } else {
                        x - add_down
                    }
                }
                MicroKernelOp::Mul => {
                    if even {
                        x * mul_up
                    } else {
                        x * mul_down
                    }
                }
                MicroKernelOp::Fma => {
                    if even {
                        x.mul_add(mul_up, add_up)
                    } else {
                        x.mul_add(mul_down, -add_down)
                    }
                }
            });
        }
        x
    }

    fn run<F: FloatExt, H: FaultHook + ?Sized>(&self, hook: &mut H) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.threads);
        for t in crate::util::index_range(self.threads) {
            out.push(self.chain::<F, H>(t, hook).to_f64());
        }
        out
    }

    /// Golden-prefix replay: the chains are independent, so a strike in
    /// thread `t`'s chain replays only that chain.
    fn replay<F: FloatExt>(
        &self,
        site: u64,
        fault: ValueFault,
        golden: &[f64],
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.extend_from_slice(golden);
        let iters = to_u64(self.iters);
        if site >= to_u64(self.threads) * iters {
            return; // past the last dynamic site: the fault never fires
        }
        let t = site / iters;
        let mut hook = InjectHook::new(site - t * iters, fault);
        out[t as usize] = self.chain::<F, _>(t, &mut hook).to_f64();
    }
}

impl Workload for Micro {
    fn name(&self) -> &str {
        self.op.name()
    }

    monomorphic_workload!();

    fn run_from_site_into(
        &self,
        precision: Precision,
        site: u64,
        fault: ValueFault,
        golden: &[f64],
        out: &mut Vec<f64>,
    ) {
        match precision {
            Precision::Double => self.replay::<f64>(site, fault, golden, out),
            Precision::Single => self.replay::<f32>(site, fault, golden, out),
            Precision::Half => self.replay::<mpr_softfloat::Half>(site, fault, golden, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_fault::ValueFault;

    #[test]
    fn site_count_is_threads_times_iters() {
        for op in MicroKernelOp::ALL {
            let m = Micro::new(op, 8, 32);
            for p in Precision::ALL {
                assert_eq!(m.site_count(p), 8 * 32, "{op:?} {p}");
            }
        }
    }

    #[test]
    fn accumulators_stay_bounded_everywhere() {
        for op in MicroKernelOp::ALL {
            let m = Micro::new(op, 16, 1024);
            for p in Precision::ALL {
                let out = m.run_golden(p);
                assert!(
                    out.iter().all(|v| v.is_finite() && v.abs() < 3.0e2),
                    "{op:?} {p}: {out:?}"
                );
            }
        }
    }

    #[test]
    fn mid_chain_fault_propagates_to_thread_output() {
        for op in MicroKernelOp::ALL {
            let m = Micro::new(op, 4, 64);
            let golden = m.run_golden(Precision::Single);
            // Strike thread 1's accumulator mid-chain with a high bit.
            let site = 64 + 30;
            let faulty = m.run_with_fault(Precision::Single, site, ValueFault::BitFlip(30));
            assert_ne!(golden[1], faulty[1], "{op:?}");
            assert_eq!(golden[0], faulty[0], "{op:?}: other threads untouched");
            assert_eq!(golden[2], faulty[2], "{op:?}");
        }
    }

    #[test]
    fn fma_chain_differs_from_mul_and_add() {
        let add = Micro::new(MicroKernelOp::Add, 4, 32).run_golden(Precision::Double);
        let mul = Micro::new(MicroKernelOp::Mul, 4, 32).run_golden(Precision::Double);
        let fma = Micro::new(MicroKernelOp::Fma, 4, 32).run_golden(Precision::Double);
        assert_ne!(add, mul);
        assert_ne!(mul, fma);
    }

    #[test]
    fn op_names_match_the_paper() {
        assert_eq!(MicroKernelOp::Add.name(), "Micro-ADD");
        assert_eq!(MicroKernelOp::Mul.name(), "Micro-MUL");
        assert_eq!(MicroKernelOp::Fma.name(), "Micro-FMA");
    }
}
