//! The LavaMD particle-potential kernel.

use crate::monomorphic_workload;
use crate::util::{gen_value, index_range, to_u64, PrecisionCache};
use mpr_fault::hook::{FaultHook, HookExt, InjectHook, NullHook};
use mpr_fault::{ValueFault, Workload};
use mpr_softfloat::math::exp_terms;
use mpr_softfloat::{FloatExt, Precision};

/// Per-precision replay state: the exact input bits (interleaved
/// `px, py, pz, q` per particle, matching dynamic-site order) plus each
/// particle's first interaction-region site.
struct LavaCache {
    input_bits: Vec<u64>,
    /// `base[pi]` is the first dynamic site of particle `pi`'s
    /// interaction region; `base[particle_count]` is the total site
    /// count.
    base: Vec<u64>,
}

/// LavaMD: particle potentials in a 3D grid of boxes under a cutoff
/// exponential interaction (Rodinia), "representative of multi-physics
/// particle dynamics codes" (paper Section 3.1).
///
/// For every particle the kernel accumulates, over all particles of the
/// neighboring boxes, `q_j * exp(-a2 * r^2)`. The exponential is
/// evaluated **in precision** with an explicitly hooked Horner polynomial
/// ([`LavaMd::exp_hooked`]): the double-precision evaluation runs a
/// 14-term recurrence whose high-order terms are ~1e-17, so an exponent-
/// bit flip on one of those tiny intermediates inflates it by up to
/// 2^±1024 and wrecks the output — whereas the 5-term half-precision
/// recurrence can amplify a term by at most 2^16. This size-dependent
/// amplification is the paper's "transcendental stress" that makes
/// double-precision LavaMD *worse* than single under TRE on the Xeon Phi
/// (Section 5.3).
#[derive(Debug, Clone)]
pub struct LavaMd {
    boxes_per_dim: usize,
    particles_per_box: usize,
    seed: u64,
    transcendental_unit: bool,
    cache: PrecisionCache<LavaCache>,
}

impl LavaMd {
    /// Creates a grid of `boxes_per_dim`^3 boxes with
    /// `particles_per_box` particles each.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(boxes_per_dim: usize, particles_per_box: usize) -> LavaMd {
        assert!(boxes_per_dim > 0, "need at least one box");
        assert!(particles_per_box > 0, "need at least one particle per box");
        LavaMd {
            boxes_per_dim,
            particles_per_box,
            seed: 0x1ABA,
            transcendental_unit: false,
            cache: PrecisionCache::new(),
        }
    }

    /// Overrides the deterministic input seed.
    pub fn with_seed(mut self, seed: u64) -> LavaMd {
        self.seed = seed;
        self.cache = PrecisionCache::new();
        self
    }

    /// The Xeon Phi variant: the exponential executes in the VPU's
    /// *dedicated transcendental unit* (paper Section 6.3) instead of a
    /// software polynomial. The unit's internal polynomial state is not
    /// addressable as program values; what the beam sees is its narrow
    /// fixed-point **table-select stage**, exercised for more cycles by
    /// the extended-precision double evaluation (Harrison et al. report
    /// roughly 3x the latency of single). A fault there shifts the table
    /// entry — a large output error regardless of which bit flipped —
    /// which is what makes double-precision LavaMD criticality *worse*
    /// than single on the KNC (paper Section 5.3, Figure 8).
    pub fn for_knc(mut self) -> LavaMd {
        self.transcendental_unit = true;
        self.cache = PrecisionCache::new();
        self
    }

    /// Cycles the transcendental unit's table-select stage is occupied
    /// per `exp`, by precision.
    fn unit_cycles(precision: Precision) -> usize {
        match precision {
            Precision::Double => 24,
            Precision::Single => 8,
            Precision::Half => 6,
        }
    }

    /// Evaluates `exp(u2)` through the dedicated-unit model: the result
    /// is computed exactly (the unit's internal polynomial is opaque to
    /// software), but its 4-bit table-select field passes through the
    /// fault hook once per occupied cycle. A corrupted nibble displaces
    /// the value by `2^(b-4)` — always a significant fraction of the
    /// result.
    fn exp_unit<F: FloatExt, H: FaultHook + ?Sized>(u2: F, hook: &mut H) -> F {
        let exact = u2.exp().to_f64();
        // Fixed-point staging of the top bits: exp output is in (0, 1]
        // for LavaMD's non-positive arguments.
        // mpr-allow: precision-leak -- fixed-point staging models the opaque hardware unit's datapath, which software cannot retarget by precision
        let staged0 = (exact * 16.0).round().clamp(0.0, 15.0) as u64;
        // mpr-allow: precision-leak -- fixed-point staging models the opaque hardware unit's datapath, which software cannot retarget by precision
        let residue = exact - staged0 as f64 / 16.0;
        let mut staged = staged0;
        for _ in 0..Self::unit_cycles(F::PRECISION) {
            staged = hook.touch_bits(staged, 4);
        }
        // Recombine the (possibly displaced) table entry with the fine
        // polynomial part; fault free this is exactly `exact`.
        F::from_f64(staged as f64 / 16.0 + residue)
    }

    /// Total number of particles.
    pub fn particle_count(&self) -> usize {
        self.boxes_per_dim.pow(3) * self.particles_per_box
    }

    /// In-precision `exp(x)` with every intermediate exposed to the
    /// fault hook. With a pass-through hook this matches
    /// [`mpr_softfloat::math::exp_poly`] except that argument reduction
    /// is skipped: LavaMD arguments are cutoff to `[-2, 0]`, inside the
    /// polynomial's convergence range, like real MD inner loops that
    /// inline the reduced kernel.
    pub fn exp_hooked<F: FloatExt, H: FaultHook + ?Sized>(x: F, hook: &mut H) -> F {
        let terms = exp_terms(F::PRECISION);
        let mut acc = F::zero();
        for k in (1..=terms).rev() {
            let coeff = F::from_f64(1.0 / factorial(k as u32));
            acc = hook.touch(acc.mul_add(x, coeff));
        }
        hook.touch(acc.mul_add(x, F::one()))
    }

    /// Input bits and per-particle region bases at `F`'s precision,
    /// computed once and reused across a campaign's strike batch.
    fn cache<F: FloatExt>(&self) -> &LavaCache {
        self.cache.get_or_init(F::PRECISION, || {
            let nb = self.boxes_per_dim;
            let par = self.particles_per_box;
            let total = self.particle_count();
            let mut input_bits = Vec::with_capacity(4 * total);
            for i in index_range(total) {
                // mpr-allow: precision-leak -- component ranges are f64 master-domain input synthesis; each value crosses into `F` through from_f64 below
                for (c, (lo, hi)) in [(0.0, 1.0), (0.0, 1.0), (0.0, 1.0), (0.25, 1.0)]
                    .into_iter()
                    .enumerate()
                {
                    let v = gen_value(self.seed, 4 * i + to_u64(c), lo, hi);
                    input_bits.push(F::from_f64(v).to_bits_u64());
                }
            }
            // Touches per interaction: r2 + u2 + the exp evaluation + the
            // accumulating FMA.
            let exp_touches = if self.transcendental_unit {
                Self::unit_cycles(F::PRECISION)
            } else {
                exp_terms(F::PRECISION) + 1
            };
            let per_interaction = to_u64(3 + exp_touches);
            let mut base = Vec::with_capacity(total + 1);
            let mut acc = 4 * to_u64(total);
            for pi in 0..total {
                base.push(acc);
                let hb = pi / par;
                let (hx, hy, hz) = (hb % nb, (hb / nb) % nb, hb / (nb * nb));
                let nbrs = neighbor_range(hx, nb).count()
                    * neighbor_range(hy, nb).count()
                    * neighbor_range(hz, nb).count();
                // mpr-allow: fault-site -- u64 site-count bookkeeping, not in-precision arithmetic
                acc += to_u64(nbrs * par - 1) * per_interaction;
            }
            base.push(acc);
            LavaCache { input_bits, base }
        })
    }

    /// One particle's potential — shared by the full run and the replay
    /// so both touch identical values in identical order.
    fn potential<F: FloatExt, H: FaultHook + ?Sized>(
        &self,
        pi: usize,
        px: &[F],
        py: &[F],
        pz: &[F],
        q: &[F],
        hook: &mut H,
    ) -> F {
        let nb = self.boxes_per_dim;
        let par = self.particles_per_box;
        let hb = pi / par;
        let (hx, hy, hz) = (hb % nb, (hb / nb) % nb, hb / (nb * nb));
        // Cutoff constant chosen so u2 stays in [-0.75, 0], inside the
        // unreduced polynomial's accurate range at every precision.
        let a2 = F::from_f64(0.25);
        let mut v = F::zero();
        // Neighbor boxes, clamped at the grid edge (Rodinia visits the
        // 27-neighborhood; duplicates from clamping are skipped).
        for nbx in neighbor_range(hx, nb) {
            for nby in neighbor_range(hy, nb) {
                for nbz in neighbor_range(hz, nb) {
                    let nbox = nbz * nb * nb + nby * nb + nbx;
                    for j in 0..par {
                        let pj = nbox * par + j;
                        if pj == pi {
                            continue;
                        }
                        let dx = px[pi] - px[pj];
                        let dy = py[pi] - py[pj];
                        let dz = pz[pi] - pz[pj];
                        // r^2 via two FMAs and one MUL: the
                        // MUL-dominated inner loop of the paper.
                        let r2 = hook.touch(dx.mul_add(dx, dy.mul_add(dy, dz * dz)));
                        let u2 = hook.touch(-(a2 * r2));
                        let e = if self.transcendental_unit {
                            Self::exp_unit(u2, hook)
                        } else {
                            Self::exp_hooked(u2, hook)
                        };
                        v = hook.touch(q[pj].mul_add(e, v));
                    }
                }
            }
        }
        v
    }

    /// Materializes the particle state vectors from the cached bits,
    /// without advancing any hook.
    fn load_particles<F: FloatExt>(&self, bits: &[u64]) -> (Vec<F>, Vec<F>, Vec<F>, Vec<F>) {
        let total = self.particle_count();
        let mut px = Vec::with_capacity(total);
        let mut py = Vec::with_capacity(total);
        let mut pz = Vec::with_capacity(total);
        let mut q = Vec::with_capacity(total);
        for i in 0..total {
            px.push(F::from_bits_u64(bits[4 * i]));
            py.push(F::from_bits_u64(bits[4 * i + 1]));
            pz.push(F::from_bits_u64(bits[4 * i + 2]));
            q.push(F::from_bits_u64(bits[4 * i + 3]));
        }
        (px, py, pz, q)
    }

    fn run<F: FloatExt, H: FaultHook + ?Sized>(&self, hook: &mut H) -> Vec<f64> {
        let total = self.particle_count();
        let cache = self.cache::<F>();

        // Particle state: position within the unit box plus charge.
        let mut px = Vec::with_capacity(total);
        let mut py = Vec::with_capacity(total);
        let mut pz = Vec::with_capacity(total);
        let mut q = Vec::with_capacity(total);
        for i in 0..total {
            px.push(hook.touch(F::from_bits_u64(cache.input_bits[4 * i])));
            py.push(hook.touch(F::from_bits_u64(cache.input_bits[4 * i + 1])));
            pz.push(hook.touch(F::from_bits_u64(cache.input_bits[4 * i + 2])));
            q.push(hook.touch(F::from_bits_u64(cache.input_bits[4 * i + 3])));
        }

        let mut out = Vec::with_capacity(total);
        for pi in 0..total {
            out.push(self.potential(pi, &px, &py, &pz, &q, hook).to_f64());
        }
        out
    }

    /// Golden-prefix replay: an input strike on particle `p` dirties
    /// only the potentials of particles whose neighborhood contains
    /// `p`'s box (the clamped ranges are symmetric, so that is exactly
    /// the boxes Chebyshev-adjacent to `p`'s); an interaction-region
    /// strike dirties a single particle's potential, replayed with a
    /// local inject hook.
    fn replay<F: FloatExt>(
        &self,
        site: u64,
        fault: ValueFault,
        golden: &[f64],
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.extend_from_slice(golden);
        let cache = self.cache::<F>();
        let total = self.particle_count();
        // mpr-allow: panic-hygiene -- the cache builder unconditionally pushes the terminal base entry
        if site >= *cache.base.last().expect("base is never empty") {
            return; // past the last dynamic site: the fault never fires
        }
        let (mut px, mut py, mut pz, mut q) = self.load_particles::<F>(&cache.input_bits);
        if site < 4 * to_u64(total) {
            let idx = site as usize;
            let (pp, component) = (idx / 4, idx % 4);
            let width = F::PRECISION.total_bits();
            let faulted = F::from_bits_u64(fault.apply(cache.input_bits[idx], width));
            match component {
                0 => px[pp] = faulted,
                1 => py[pp] = faulted,
                2 => pz[pp] = faulted,
                _ => q[pp] = faulted,
            }
            let nb = self.boxes_per_dim;
            let par = self.particles_per_box;
            let pb = pp / par;
            let (bx, by, bz) = (pb % nb, (pb / nb) % nb, pb / (nb * nb));
            for nbx in neighbor_range(bx, nb) {
                for nby in neighbor_range(by, nb) {
                    for nbz in neighbor_range(bz, nb) {
                        let bbox = nbz * nb * nb + nby * nb + nbx;
                        for j in 0..par {
                            let pi = bbox * par + j;
                            out[pi] = self
                                .potential(pi, &px, &py, &pz, &q, &mut NullHook)
                                .to_f64();
                        }
                    }
                }
            }
        } else {
            let pi = cache.base.partition_point(|&b| b <= site) - 1;
            let mut hook = InjectHook::new(site - cache.base[pi], fault);
            out[pi] = self.potential(pi, &px, &py, &pz, &q, &mut hook).to_f64();
        }
    }
}

fn factorial(k: u32) -> f64 {
    (1..=k).map(f64::from).product()
}

fn neighbor_range(c: usize, nb: usize) -> std::ops::RangeInclusive<usize> {
    c.saturating_sub(1)..=(c + 1).min(nb - 1)
}

impl Workload for LavaMd {
    fn name(&self) -> &str {
        "LavaMD"
    }

    monomorphic_workload!();

    fn run_from_site_into(
        &self,
        precision: Precision,
        site: u64,
        fault: ValueFault,
        golden: &[f64],
        out: &mut Vec<f64>,
    ) {
        match precision {
            Precision::Double => self.replay::<f64>(site, fault, golden, out),
            Precision::Single => self.replay::<f32>(site, fault, golden, out),
            Precision::Half => self.replay::<mpr_softfloat::Half>(site, fault, golden, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_fault::hook::GoldenHook;

    #[test]
    fn exp_hooked_matches_exp_poly_without_faults() {
        for i in 0..=20 {
            let x = -2.0 + i as f64 * 0.1; // LavaMD argument range
            let mut hook = GoldenHook::new();
            let via_hook = LavaMd::exp_hooked(x, &mut hook).to_f64();
            // exp_poly with |x| <= ln2/2 skips reduction too; compare to
            // libm within polynomial truncation error.
            assert!(
                (via_hook - x.exp()).abs() / x.exp() < 1e-4,
                "x={x} got={via_hook}"
            );
            assert!(hook.sites() > 0);
        }
    }

    #[test]
    fn exp_sites_grow_with_precision() {
        // The double polynomial is deeper: more fault sites per call —
        // the mechanism behind the KNC LavaMD criticality inversion.
        let count = |p: Precision| {
            let lava = LavaMd::new(1, 2);
            lava.site_count(p)
        };
        assert!(count(Precision::Double) > count(Precision::Single));
        assert!(count(Precision::Single) > count(Precision::Half));
    }

    #[test]
    fn potentials_are_positive_and_bounded() {
        let lava = LavaMd::new(2, 4);
        let out = lava.run_golden(Precision::Double);
        assert_eq!(out.len(), 32);
        // Each interaction contributes q*exp(-u) in (0, 1]; with 31
        // possible partners the potential is bounded by ~31.
        assert!(out.iter().all(|&v| v > 0.0 && v < 32.0));
    }

    #[test]
    fn half_precision_tracks_double_loosely() {
        let lava = LavaMd::new(2, 3);
        let d = lava.run_golden(Precision::Double);
        let h = lava.run_golden(Precision::Half);
        for (a, b) in d.iter().zip(&h) {
            assert!(((a - b) / a).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn edge_boxes_have_fewer_neighbors() {
        assert_eq!(neighbor_range(0, 4), 0..=1);
        assert_eq!(neighbor_range(1, 4), 0..=2);
        assert_eq!(neighbor_range(3, 4), 2..=3);
        assert_eq!(neighbor_range(0, 1), 0..=0);
    }

    #[test]
    fn deterministic_across_runs() {
        let lava = LavaMd::new(2, 3);
        assert_eq!(
            lava.run_golden(Precision::Single),
            lava.run_golden(Precision::Single)
        );
    }
}
