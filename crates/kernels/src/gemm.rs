//! The MxM / GEMM kernel.

use crate::monomorphic_workload;
use crate::util::{gen_value, index_range, to_u64, PrecisionCache};
use mpr_fault::hook::{FaultHook, HookExt, InjectHook, NullHook};
use mpr_fault::{ValueFault, Workload};
use mpr_softfloat::{FloatExt, Precision};

/// Square matrix multiplication `C = A x B`, the paper's MxM benchmark —
/// a chain of fused multiply-adds per output element.
///
/// Fault sites: every input element (a strike while the value sits in
/// memory) and every FMA result (a strike in the datapath or the
/// accumulator register): `2 n^2 + n^3` sites per run.
///
/// # Example
///
/// ```rust
/// use mpr_fault::Workload;
/// use mpr_kernels::Gemm;
/// use mpr_softfloat::Precision;
///
/// let gemm = Gemm::new(4);
/// let c = gemm.run_golden(Precision::Double);
/// // All entries are sums of 4 products of values in [0.25, 1.75).
/// assert!(c.iter().all(|&v| v > 4.0 * 0.0625 && v < 4.0 * 3.0625));
/// ```
#[derive(Debug, Clone)]
pub struct Gemm {
    n: usize,
    seed: u64,
    inputs: PrecisionCache<Vec<u64>>,
}

impl Gemm {
    /// Creates an `n x n` multiplication with the default input seed.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Gemm {
        assert!(n > 0, "matrix dimension must be positive");
        Gemm {
            n,
            seed: 0xA0,
            inputs: PrecisionCache::new(),
        }
    }

    /// Overrides the deterministic input seed.
    pub fn with_seed(mut self, seed: u64) -> Gemm {
        self.seed = seed;
        self.inputs = PrecisionCache::new();
        self
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Input bits at `F`'s precision — `a` then `b`, row-major —
    /// generated once and reused across a campaign's whole strike batch.
    fn input_bits<F: FloatExt>(&self) -> &[u64] {
        self.inputs.get_or_init(F::PRECISION, || {
            let n2 = self.n * self.n;
            // Inputs in [0.25, 1.75): dot products stay well inside the
            // binary16 range for the proxy sizes used here.
            let mut bits = Vec::with_capacity(2 * n2);
            for i in index_range(n2) {
                bits.push(F::from_f64(gen_value(self.seed, i, 0.25, 1.75)).to_bits_u64());
            }
            for i in index_range(n2) {
                bits.push(F::from_f64(gen_value(self.seed ^ 0xB, i, 0.25, 1.75)).to_bits_u64());
            }
            bits
        })
    }

    /// One output element's FMA chain — shared by the full run and the
    /// golden-prefix replay so both touch identical values in identical
    /// order (`a_at(k)` is `A[i][k]`, `b_at(k)` is `B[k][j]`).
    #[inline]
    fn element<F: FloatExt, H: FaultHook + ?Sized>(
        n: usize,
        a_at: impl Fn(usize) -> F,
        b_at: impl Fn(usize) -> F,
        hook: &mut H,
    ) -> F {
        let mut acc = F::zero();
        for k in 0..n {
            acc = hook.touch(a_at(k).mul_add(b_at(k), acc));
        }
        acc
    }

    fn run<F: FloatExt, H: FaultHook + ?Sized>(&self, hook: &mut H) -> Vec<f64> {
        let n = self.n;
        let n2 = n * n;
        let bits = self.input_bits::<F>();
        let mut a = Vec::with_capacity(n2);
        let mut b = Vec::with_capacity(n2);
        for &w in &bits[..n2] {
            a.push(hook.touch(F::from_bits_u64(w)));
        }
        for &w in &bits[n2..] {
            b.push(hook.touch(F::from_bits_u64(w)));
        }

        let mut c = Vec::with_capacity(n2);
        for i in 0..n {
            for j in 0..n {
                c.push(Self::element(n, |k| a[i * n + k], |k| b[k * n + j], hook).to_f64());
            }
        }
        c
    }

    /// Golden-prefix replay: an input strike at site `s < 2n^2` dirties
    /// one row (`A`) or one column (`B`) of `C`; an FMA strike dirties a
    /// single element. Everything else is copied from `golden`.
    fn replay<F: FloatExt>(
        &self,
        site: u64,
        fault: ValueFault,
        golden: &[f64],
        out: &mut Vec<f64>,
    ) {
        let n = self.n;
        let n2 = n * n;
        let (n2u, nu) = (to_u64(n2), to_u64(n));
        out.clear();
        out.extend_from_slice(golden);
        if site >= 2 * n2u + n2u * nu {
            return; // past the last dynamic site: the fault never fires
        }
        let width = F::PRECISION.total_bits();
        let bits = self.input_bits::<F>();
        let at = |idx: usize| F::from_bits_u64(bits[idx]);
        if site < n2u {
            // A[i][col] strike: row i of C recomputed with the faulted value.
            let idx = site as usize;
            let (i, col) = (idx / n, idx % n);
            let mut arow: Vec<F> = (0..n).map(|k| at(i * n + k)).collect();
            arow[col] = F::from_bits_u64(fault.apply(bits[idx], width));
            for j in 0..n {
                // mpr-allow: fault-site -- `element` routes every FMA through the replay's NullHook; the full run already counted these sites
                out[i * n + j] =
                    Self::element(n, |k| arow[k], |k| at(n2 + k * n + j), &mut NullHook).to_f64();
            }
        } else if site < 2 * n2u {
            // B[row][j] strike: column j of C recomputed.
            let idx = (site - n2u) as usize;
            let (row, j) = (idx / n, idx % n);
            let mut bcol: Vec<F> = (0..n).map(|k| at(n2 + k * n + j)).collect();
            bcol[row] = F::from_bits_u64(fault.apply(bits[n2 + idx], width));
            for i in 0..n {
                // mpr-allow: fault-site -- `element` routes every FMA through the replay's NullHook; the full run already counted these sites
                out[i * n + j] =
                    Self::element(n, |k| at(i * n + k), |k| bcol[k], &mut NullHook).to_f64();
            }
        } else {
            // FMA strike: replay one element's chain with a local inject
            // hook whose cursor starts at the chain's first site.
            let r = site - 2 * n2u;
            let e = (r / nu) as usize;
            let (i, j) = (e / n, e % n);
            let mut hook = InjectHook::new(r % nu, fault);
            out[e] =
                Self::element(n, |k| at(i * n + k), |k| at(n2 + k * n + j), &mut hook).to_f64();
        }
    }

    /// Batched half-precision strikes through the wide binary16 lanes
    /// (DESIGN.md §4i). Strikes are grouped by site region:
    ///
    /// * `A`/`B` input strikes recompute their dirty stripe of `C` with
    ///   [`mpr_softfloat::wide::fma_broadcast`] — the faulted input
    ///   multiplies a contiguous row (`B` rows directly; `A` columns via
    ///   a transpose built once per batch), so the `k` loop runs `n`
    ///   lanes wide instead of `n` scalar bit-twiddles.
    /// * FMA-chain strikes pack [`mpr_softfloat::wide::LANES`] strikes
    ///   per pass in structure-of-arrays form: lane `s` holds strike
    ///   `s`'s accumulator, each `k` step gathers the lane's `A`/`B`
    ///   operands and applies lane `s`'s fault when its chain position
    ///   comes up — one vectorized [`mpr_softfloat::wide::fma`] per
    ///   step serves the whole group.
    ///
    /// Every lane is bit-identical to the scalar `Half` path, so the
    /// outputs match `run_with_fault` byte-for-byte (DT001). The exact
    /// binary16 product commutes, which is why `B`-column strikes may
    /// broadcast the `B` value over transposed `A` rows.
    fn run_half_batch(
        &self,
        strikes: &[(u64, ValueFault)],
        golden: &[f64],
        each: &mut dyn FnMut(usize, &[f64]) -> bool,
    ) {
        use mpr_softfloat::{wide, Half};
        let n = self.n;
        let n2 = n * n;
        let (n2u, nu) = (to_u64(n2), to_u64(n));
        let limit = 2 * n2u + n2u * nu;
        let bits = self.input_bits::<Half>();
        let a16: Vec<u16> = bits[..n2].iter().map(|&w| w as u16).collect();
        let b16: Vec<u16> = bits[n2..].iter().map(|&w| w as u16).collect();
        // Pre-widened operand matrices: one exact `u16 -> f64` pass per
        // batch instead of one per lane-step (`widen64` is exact, so
        // every downstream FMA sees the same values as the u16 forms).
        let aw: Vec<f64> = a16.iter().map(|&h| wide::widen64(h)).collect();
        let bw: Vec<f64> = b16.iter().map(|&h| wide::widen64(h)).collect();
        let mut a_colw: Option<Vec<f64>> = None; // column-major A, built on demand
        let mut acc = vec![0u16; n];
        let mut stripe = vec![0u16; n];
        let mut chain: Vec<usize> = Vec::new();

        // One golden refresh per batch; each strike dirties at most one
        // row, column, or element of `C`, records the touched indices,
        // and the next strike restores exactly those instead of
        // re-copying the whole output.
        let mut out: Vec<f64> = Vec::with_capacity(golden.len());
        out.extend_from_slice(golden);
        let mut dirty: Vec<usize> = Vec::with_capacity(n);

        for (index, &(site, fault)) in strikes.iter().enumerate() {
            if site >= 2 * n2u && site < limit {
                chain.push(index);
                continue;
            }
            for d in dirty.drain(..) {
                out[d] = golden[d];
            }
            if site < n2u {
                // A[i][col] strike: row i of C, B rows broadcast-FMA'd.
                let idx = site as usize;
                let (i, col) = (idx / n, idx % n);
                stripe.copy_from_slice(&a16[i * n..(i + 1) * n]);
                stripe[col] = fault.apply(u64::from(a16[idx]), 16) as u16;
                acc.iter_mut().for_each(|v| *v = 0);
                for k in 0..n {
                    wide::fma_broadcast_widened(
                        wide::widen64(stripe[k]),
                        &bw[k * n..(k + 1) * n],
                        &mut acc,
                    );
                }
                for j in 0..n {
                    out[i * n + j] = Half::from_bits(acc[j]).to_f64();
                    dirty.push(i * n + j);
                }
            } else if site < 2 * n2u {
                // B[row][j] strike: column j of C, transposed-A rows
                // broadcast-FMA'd (the exact product commutes).
                let idx = (site - n2u) as usize;
                let (row, j) = (idx / n, idx % n);
                let at = a_colw.get_or_insert_with(|| {
                    let mut t = vec![0f64; n2];
                    for r in 0..n {
                        for c in 0..n {
                            t[c * n + r] = aw[r * n + c];
                        }
                    }
                    t
                });
                for (k, v) in stripe.iter_mut().enumerate() {
                    *v = b16[k * n + j];
                }
                stripe[row] = fault.apply(u64::from(b16[idx]), 16) as u16;
                acc.iter_mut().for_each(|v| *v = 0);
                for k in 0..n {
                    wide::fma_broadcast_widened(
                        wide::widen64(stripe[k]),
                        &at[k * n..(k + 1) * n],
                        &mut acc,
                    );
                }
                for i in 0..n {
                    out[i * n + j] = Half::from_bits(acc[i]).to_f64();
                    dirty.push(i * n + j);
                }
            }
            // else: past the last dynamic site — masked, pure golden.
            if !each(index, &out) {
                return;
            }
        }

        // FMA-chain strikes: SoA lanes, LANES strikes per kernel pass.
        if chain.is_empty() {
            return;
        }
        for d in dirty.drain(..) {
            out[d] = golden[d];
        }
        let mut dirty: Option<usize> = None;
        let mut av = [0f64; wide::LANES];
        let mut bv = [0f64; wide::LANES];
        let mut lane_acc = [0u16; wide::LANES];
        // Per-lane site decode, hoisted out of the k loop (three
        // divisions per lane per step would dominate the pass). Fixed
        // arrays keep the per-step lane loops at a constant trip count
        // the compiler can unroll; short tail groups pad with lane 0's
        // operands and a chain position of `n` (never struck), and the
        // writeback below ignores the padding lanes.
        let mut a_base = [0usize; wide::LANES];
        let mut b_off = [0usize; wide::LANES];
        let mut elem = [0usize; wide::LANES];
        let mut pos = [0usize; wide::LANES];
        for group in chain.chunks(wide::LANES) {
            let m = group.len();
            lane_acc.iter_mut().for_each(|v| *v = 0);
            a_base[m..].iter_mut().for_each(|v| *v = 0);
            b_off[m..].iter_mut().for_each(|v| *v = 0);
            pos[m..].iter_mut().for_each(|v| *v = n);
            for (s, &index) in group.iter().enumerate() {
                let r = strikes[index].0 - 2 * n2u;
                let e = (r / nu) as usize;
                a_base[s] = (e / n) * n;
                b_off[s] = e % n;
                elem[s] = e;
                pos[s] = (r % nu) as usize;
            }
            for k in 0..n {
                let brow = k * n;
                for s in 0..wide::LANES {
                    av[s] = aw[a_base[s] + k];
                    bv[s] = bw[brow + b_off[s]];
                }
                wide::fma_widened(&av, &bv, &mut lane_acc);
                for s in 0..m {
                    if pos[s] == k {
                        lane_acc[s] = strikes[group[s]].1.apply(u64::from(lane_acc[s]), 16) as u16;
                    }
                }
            }
            for (s, &index) in group.iter().enumerate() {
                if let Some(d) = dirty.take() {
                    out[d] = golden[d];
                }
                out[elem[s]] = Half::from_bits(lane_acc[s]).to_f64();
                dirty = Some(elem[s]);
                if !each(index, &out) {
                    return;
                }
            }
        }
    }
}

impl Workload for Gemm {
    fn name(&self) -> &str {
        "MxM"
    }

    monomorphic_workload!();

    fn run_from_site_into(
        &self,
        precision: Precision,
        site: u64,
        fault: ValueFault,
        golden: &[f64],
        out: &mut Vec<f64>,
    ) {
        match precision {
            Precision::Double => self.replay::<f64>(site, fault, golden, out),
            Precision::Single => self.replay::<f32>(site, fault, golden, out),
            Precision::Half => self.replay::<mpr_softfloat::Half>(site, fault, golden, out),
        }
    }

    /// Half precision packs strikes into wide binary16 lanes; the
    /// native-float replays already compile to vectorizable loops, so
    /// they keep the per-strike path (which also preserves per-strike
    /// cancel granularity where batching buys nothing).
    fn run_strike_batch(
        &self,
        precision: Precision,
        strikes: &[(u64, ValueFault)],
        golden: &[f64],
        each: &mut dyn FnMut(usize, &[f64]) -> bool,
    ) {
        if precision == Precision::Half {
            self.run_half_batch(strikes, golden, each);
            return;
        }
        let mut out = Vec::with_capacity(golden.len());
        for (index, &(site, fault)) in strikes.iter().enumerate() {
            self.run_from_site_into(precision, site, fault, golden, &mut out);
            if !each(index, &out) {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_fault::ValueFault;

    #[test]
    fn site_count_is_inputs_plus_fmas() {
        let g = Gemm::new(6);
        for p in Precision::ALL {
            assert_eq!(g.site_count(p), 2 * 36 + 216, "{p}");
        }
    }

    #[test]
    fn golden_matches_reference_double() {
        let g = Gemm::new(5);
        let n = 5;
        // Independent reference computation without hooks or FMA.
        let a: Vec<f64> = (0..25).map(|i| gen_value(0xA0, i, 0.25, 1.75)).collect();
        let b: Vec<f64> = (0..25)
            .map(|i| gen_value(0xA0 ^ 0xB, i, 0.25, 1.75))
            .collect();
        let c = g.run_golden(Precision::Double);
        for i in 0..n {
            for j in 0..n {
                let want: f64 = (0..n).map(|k| a[i * n + k] * b[k * n + j]).sum();
                let got = c[i * n + j];
                assert!((got - want).abs() < 1e-12, "c[{i}][{j}] {got} vs {want}");
            }
        }
    }

    #[test]
    fn precision_ladder_of_accuracy() {
        let g = Gemm::new(12);
        let d = g.run_golden(Precision::Double);
        let s = g.run_golden(Precision::Single);
        let h = g.run_golden(Precision::Half);
        let err = |xs: &[f64]| -> f64 {
            xs.iter()
                .zip(&d)
                .map(|(x, y)| ((x - y) / y).abs())
                .fold(0.0, f64::max)
        };
        assert!(err(&s) < 1e-5);
        assert!(err(&h) < 2e-2, "half error {}", err(&h));
        assert!(err(&h) > err(&s));
    }

    #[test]
    fn input_fault_corrupts_a_row_or_column_stripe() {
        let g = Gemm::new(6);
        let golden = g.run_golden(Precision::Single);
        // Site 0 is a[0][0]: a large flip corrupts row 0 of C only.
        let faulty = g.run_with_fault(Precision::Single, 0, ValueFault::BitFlip(30));
        let changed: Vec<usize> = (0..36).filter(|&i| faulty[i] != golden[i]).collect();
        assert!(!changed.is_empty());
        assert!(
            changed.iter().all(|&i| i < 6),
            "only row 0 affected: {changed:?}"
        );
        assert_eq!(changed.len(), 6, "a[0][0] feeds all 6 row-0 outputs");
    }

    #[test]
    fn accumulator_fault_corrupts_one_element() {
        let g = Gemm::new(6);
        let golden = g.run_golden(Precision::Double);
        // The last FMA site belongs to c[5][5] only.
        let last = g.site_count(Precision::Double) - 1;
        let faulty = g.run_with_fault(Precision::Double, last, ValueFault::BitFlip(62));
        let changed: Vec<usize> = (0..36).filter(|&i| faulty[i] != golden[i]).collect();
        assert_eq!(changed, vec![35]);
    }

    #[test]
    fn half_batch_matches_naive_bit_for_bit_at_every_site() {
        // Every site region — A inputs, B inputs, FMA chains, masked —
        // through the wide-lane batch, against the naive injected run.
        let g = Gemm::new(7);
        let p = Precision::Half;
        let golden = g.run_golden(p);
        let sites = g.site_count(p);
        let strikes: Vec<(u64, ValueFault)> = (0..sites + 2)
            .map(|site| {
                let fault = match site % 4 {
                    0 => ValueFault::BitFlip((site % 16) as u32),
                    1 => ValueFault::StuckHigh((site % 16) as u32),
                    2 => ValueFault::XorMask(0x7C00), // exponent mangling: infs/NaNs
                    _ => ValueFault::ByteCorrupt {
                        byte: (site % 2) as u32,
                        xor: 0x81,
                    },
                };
                (site, fault)
            })
            .collect();
        let mut got: Vec<Option<Vec<f64>>> = vec![None; strikes.len()];
        g.run_strike_batch(p, &strikes, &golden, &mut |idx, out| {
            got[idx] = Some(out.to_vec());
            true
        });
        for (idx, &(site, fault)) in strikes.iter().enumerate() {
            let want = g.run_with_fault(p, site, fault);
            let got = got[idx].as_ref().expect("every strike reported");
            let same = got
                .iter()
                .zip(&want)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "site {site} fault {fault:?}");
        }
    }

    #[test]
    fn batch_cancellation_stops_midway() {
        let g = Gemm::new(5);
        let p = Precision::Half;
        let golden = g.run_golden(p);
        let strikes: Vec<(u64, ValueFault)> =
            (0..20).map(|s| (s * 9, ValueFault::BitFlip(10))).collect();
        let mut calls = 0;
        g.run_strike_batch(p, &strikes, &golden, &mut |_, _| {
            calls += 1;
            calls < 4
        });
        assert!(calls >= 4 && calls < strikes.len(), "stopped after {calls}");
    }

    #[test]
    fn different_seeds_give_different_outputs() {
        let a = Gemm::new(4).run_golden(Precision::Double);
        let b = Gemm::new(4).with_seed(99).run_golden(Precision::Double);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dimension_rejected() {
        let _ = Gemm::new(0);
    }
}
