//! The MxM / GEMM kernel.

use crate::dispatch_precision;
use crate::util::gen_value;
use mpr_fault::hook::FaultHook;
use mpr_fault::Workload;
use mpr_softfloat::{FloatExt, Precision};

/// Square matrix multiplication `C = A x B`, the paper's MxM benchmark —
/// a chain of fused multiply-adds per output element.
///
/// Fault sites: every input element (a strike while the value sits in
/// memory) and every FMA result (a strike in the datapath or the
/// accumulator register): `2 n^2 + n^3` sites per run.
///
/// # Example
///
/// ```rust
/// use mpr_fault::Workload;
/// use mpr_kernels::Gemm;
/// use mpr_softfloat::Precision;
///
/// let gemm = Gemm::new(4);
/// let c = gemm.run_golden(Precision::Double);
/// // All entries are sums of 4 products of values in [0.25, 1.75).
/// assert!(c.iter().all(|&v| v > 4.0 * 0.0625 && v < 4.0 * 3.0625));
/// ```
#[derive(Debug, Clone)]
pub struct Gemm {
    n: usize,
    seed: u64,
}

impl Gemm {
    /// Creates an `n x n` multiplication with the default input seed.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Gemm {
        assert!(n > 0, "matrix dimension must be positive");
        Gemm { n, seed: 0xA0 }
    }

    /// Overrides the deterministic input seed.
    pub fn with_seed(mut self, seed: u64) -> Gemm {
        self.seed = seed;
        self
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    fn run<F: FloatExt>(&self, hook: &mut dyn FaultHook) -> Vec<f64> {
        let n = self.n;
        // Inputs in [0.25, 1.75): dot products stay well inside the
        // binary16 range for the proxy sizes used here.
        let mut a = Vec::with_capacity(n * n);
        let mut b = Vec::with_capacity(n * n);
        for i in 0..(n * n) as u64 {
            a.push(hook.touch(F::from_f64(gen_value(self.seed, i, 0.25, 1.75))));
        }
        for i in 0..(n * n) as u64 {
            b.push(hook.touch(F::from_f64(gen_value(self.seed ^ 0xB, i, 0.25, 1.75))));
        }

        let mut c = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                let mut acc = F::zero();
                for k in 0..n {
                    acc = hook.touch(a[i * n + k].mul_add(b[k * n + j], acc));
                }
                c.push(acc.to_f64());
            }
        }
        c
    }
}

impl Workload for Gemm {
    fn name(&self) -> &str {
        "MxM"
    }

    fn dispatch(&self, precision: Precision, hook: &mut dyn FaultHook) -> Vec<f64> {
        dispatch_precision!(self, precision, hook)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_fault::ValueFault;

    #[test]
    fn site_count_is_inputs_plus_fmas() {
        let g = Gemm::new(6);
        for p in Precision::ALL {
            assert_eq!(g.site_count(p), 2 * 36 + 216, "{p}");
        }
    }

    #[test]
    fn golden_matches_reference_double() {
        let g = Gemm::new(5);
        let n = 5;
        // Independent reference computation without hooks or FMA.
        let a: Vec<f64> = (0..25).map(|i| gen_value(0xA0, i, 0.25, 1.75)).collect();
        let b: Vec<f64> = (0..25)
            .map(|i| gen_value(0xA0 ^ 0xB, i, 0.25, 1.75))
            .collect();
        let c = g.run_golden(Precision::Double);
        for i in 0..n {
            for j in 0..n {
                let want: f64 = (0..n).map(|k| a[i * n + k] * b[k * n + j]).sum();
                let got = c[i * n + j];
                assert!((got - want).abs() < 1e-12, "c[{i}][{j}] {got} vs {want}");
            }
        }
    }

    #[test]
    fn precision_ladder_of_accuracy() {
        let g = Gemm::new(12);
        let d = g.run_golden(Precision::Double);
        let s = g.run_golden(Precision::Single);
        let h = g.run_golden(Precision::Half);
        let err = |xs: &[f64]| -> f64 {
            xs.iter()
                .zip(&d)
                .map(|(x, y)| ((x - y) / y).abs())
                .fold(0.0, f64::max)
        };
        assert!(err(&s) < 1e-5);
        assert!(err(&h) < 2e-2, "half error {}", err(&h));
        assert!(err(&h) > err(&s));
    }

    #[test]
    fn input_fault_corrupts_a_row_or_column_stripe() {
        let g = Gemm::new(6);
        let golden = g.run_golden(Precision::Single);
        // Site 0 is a[0][0]: a large flip corrupts row 0 of C only.
        let faulty = g.run_with_fault(Precision::Single, 0, ValueFault::BitFlip(30));
        let changed: Vec<usize> = (0..36).filter(|&i| faulty[i] != golden[i]).collect();
        assert!(!changed.is_empty());
        assert!(
            changed.iter().all(|&i| i < 6),
            "only row 0 affected: {changed:?}"
        );
        assert_eq!(changed.len(), 6, "a[0][0] feeds all 6 row-0 outputs");
    }

    #[test]
    fn accumulator_fault_corrupts_one_element() {
        let g = Gemm::new(6);
        let golden = g.run_golden(Precision::Double);
        // The last FMA site belongs to c[5][5] only.
        let last = g.site_count(Precision::Double) - 1;
        let faulty = g.run_with_fault(Precision::Double, last, ValueFault::BitFlip(62));
        let changed: Vec<usize> = (0..36).filter(|&i| faulty[i] != golden[i]).collect();
        assert_eq!(changed, vec![35]);
    }

    #[test]
    fn different_seeds_give_different_outputs() {
        let a = Gemm::new(4).run_golden(Precision::Double);
        let b = Gemm::new(4).with_seed(99).run_golden(Precision::Double);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dimension_rejected() {
        let _ = Gemm::new(0);
    }
}
