//! The MxM / GEMM kernel.

use crate::monomorphic_workload;
use crate::util::{gen_value, index_range, to_u64, PrecisionCache};
use mpr_fault::hook::{FaultHook, HookExt, InjectHook, NullHook};
use mpr_fault::{ValueFault, Workload};
use mpr_softfloat::{FloatExt, Precision};

/// Square matrix multiplication `C = A x B`, the paper's MxM benchmark —
/// a chain of fused multiply-adds per output element.
///
/// Fault sites: every input element (a strike while the value sits in
/// memory) and every FMA result (a strike in the datapath or the
/// accumulator register): `2 n^2 + n^3` sites per run.
///
/// # Example
///
/// ```rust
/// use mpr_fault::Workload;
/// use mpr_kernels::Gemm;
/// use mpr_softfloat::Precision;
///
/// let gemm = Gemm::new(4);
/// let c = gemm.run_golden(Precision::Double);
/// // All entries are sums of 4 products of values in [0.25, 1.75).
/// assert!(c.iter().all(|&v| v > 4.0 * 0.0625 && v < 4.0 * 3.0625));
/// ```
#[derive(Debug, Clone)]
pub struct Gemm {
    n: usize,
    seed: u64,
    inputs: PrecisionCache<Vec<u64>>,
}

impl Gemm {
    /// Creates an `n x n` multiplication with the default input seed.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Gemm {
        assert!(n > 0, "matrix dimension must be positive");
        Gemm {
            n,
            seed: 0xA0,
            inputs: PrecisionCache::new(),
        }
    }

    /// Overrides the deterministic input seed.
    pub fn with_seed(mut self, seed: u64) -> Gemm {
        self.seed = seed;
        self.inputs = PrecisionCache::new();
        self
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Input bits at `F`'s precision — `a` then `b`, row-major —
    /// generated once and reused across a campaign's whole strike batch.
    fn input_bits<F: FloatExt>(&self) -> &[u64] {
        self.inputs.get_or_init(F::PRECISION, || {
            let n2 = self.n * self.n;
            // Inputs in [0.25, 1.75): dot products stay well inside the
            // binary16 range for the proxy sizes used here.
            let mut bits = Vec::with_capacity(2 * n2);
            for i in index_range(n2) {
                bits.push(F::from_f64(gen_value(self.seed, i, 0.25, 1.75)).to_bits_u64());
            }
            for i in index_range(n2) {
                bits.push(F::from_f64(gen_value(self.seed ^ 0xB, i, 0.25, 1.75)).to_bits_u64());
            }
            bits
        })
    }

    /// One output element's FMA chain — shared by the full run and the
    /// golden-prefix replay so both touch identical values in identical
    /// order (`a_at(k)` is `A[i][k]`, `b_at(k)` is `B[k][j]`).
    #[inline]
    fn element<F: FloatExt, H: FaultHook + ?Sized>(
        n: usize,
        a_at: impl Fn(usize) -> F,
        b_at: impl Fn(usize) -> F,
        hook: &mut H,
    ) -> F {
        let mut acc = F::zero();
        for k in 0..n {
            acc = hook.touch(a_at(k).mul_add(b_at(k), acc));
        }
        acc
    }

    fn run<F: FloatExt, H: FaultHook + ?Sized>(&self, hook: &mut H) -> Vec<f64> {
        let n = self.n;
        let n2 = n * n;
        let bits = self.input_bits::<F>();
        let mut a = Vec::with_capacity(n2);
        let mut b = Vec::with_capacity(n2);
        for &w in &bits[..n2] {
            a.push(hook.touch(F::from_bits_u64(w)));
        }
        for &w in &bits[n2..] {
            b.push(hook.touch(F::from_bits_u64(w)));
        }

        let mut c = Vec::with_capacity(n2);
        for i in 0..n {
            for j in 0..n {
                c.push(Self::element(n, |k| a[i * n + k], |k| b[k * n + j], hook).to_f64());
            }
        }
        c
    }

    /// Golden-prefix replay: an input strike at site `s < 2n^2` dirties
    /// one row (`A`) or one column (`B`) of `C`; an FMA strike dirties a
    /// single element. Everything else is copied from `golden`.
    fn replay<F: FloatExt>(
        &self,
        site: u64,
        fault: ValueFault,
        golden: &[f64],
        out: &mut Vec<f64>,
    ) {
        let n = self.n;
        let n2 = n * n;
        let (n2u, nu) = (to_u64(n2), to_u64(n));
        out.clear();
        out.extend_from_slice(golden);
        if site >= 2 * n2u + n2u * nu {
            return; // past the last dynamic site: the fault never fires
        }
        let width = F::PRECISION.total_bits();
        let bits = self.input_bits::<F>();
        let at = |idx: usize| F::from_bits_u64(bits[idx]);
        if site < n2u {
            // A[i][col] strike: row i of C recomputed with the faulted value.
            let idx = site as usize;
            let (i, col) = (idx / n, idx % n);
            let mut arow: Vec<F> = (0..n).map(|k| at(i * n + k)).collect();
            arow[col] = F::from_bits_u64(fault.apply(bits[idx], width));
            for j in 0..n {
                // mpr-allow: fault-site -- `element` routes every FMA through the replay's NullHook; the full run already counted these sites
                out[i * n + j] =
                    Self::element(n, |k| arow[k], |k| at(n2 + k * n + j), &mut NullHook).to_f64();
            }
        } else if site < 2 * n2u {
            // B[row][j] strike: column j of C recomputed.
            let idx = (site - n2u) as usize;
            let (row, j) = (idx / n, idx % n);
            let mut bcol: Vec<F> = (0..n).map(|k| at(n2 + k * n + j)).collect();
            bcol[row] = F::from_bits_u64(fault.apply(bits[n2 + idx], width));
            for i in 0..n {
                // mpr-allow: fault-site -- `element` routes every FMA through the replay's NullHook; the full run already counted these sites
                out[i * n + j] =
                    Self::element(n, |k| at(i * n + k), |k| bcol[k], &mut NullHook).to_f64();
            }
        } else {
            // FMA strike: replay one element's chain with a local inject
            // hook whose cursor starts at the chain's first site.
            let r = site - 2 * n2u;
            let e = (r / nu) as usize;
            let (i, j) = (e / n, e % n);
            let mut hook = InjectHook::new(r % nu, fault);
            out[e] =
                Self::element(n, |k| at(i * n + k), |k| at(n2 + k * n + j), &mut hook).to_f64();
        }
    }
}

impl Workload for Gemm {
    fn name(&self) -> &str {
        "MxM"
    }

    monomorphic_workload!();

    fn run_from_site_into(
        &self,
        precision: Precision,
        site: u64,
        fault: ValueFault,
        golden: &[f64],
        out: &mut Vec<f64>,
    ) {
        match precision {
            Precision::Double => self.replay::<f64>(site, fault, golden, out),
            Precision::Single => self.replay::<f32>(site, fault, golden, out),
            Precision::Half => self.replay::<mpr_softfloat::Half>(site, fault, golden, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_fault::ValueFault;

    #[test]
    fn site_count_is_inputs_plus_fmas() {
        let g = Gemm::new(6);
        for p in Precision::ALL {
            assert_eq!(g.site_count(p), 2 * 36 + 216, "{p}");
        }
    }

    #[test]
    fn golden_matches_reference_double() {
        let g = Gemm::new(5);
        let n = 5;
        // Independent reference computation without hooks or FMA.
        let a: Vec<f64> = (0..25).map(|i| gen_value(0xA0, i, 0.25, 1.75)).collect();
        let b: Vec<f64> = (0..25)
            .map(|i| gen_value(0xA0 ^ 0xB, i, 0.25, 1.75))
            .collect();
        let c = g.run_golden(Precision::Double);
        for i in 0..n {
            for j in 0..n {
                let want: f64 = (0..n).map(|k| a[i * n + k] * b[k * n + j]).sum();
                let got = c[i * n + j];
                assert!((got - want).abs() < 1e-12, "c[{i}][{j}] {got} vs {want}");
            }
        }
    }

    #[test]
    fn precision_ladder_of_accuracy() {
        let g = Gemm::new(12);
        let d = g.run_golden(Precision::Double);
        let s = g.run_golden(Precision::Single);
        let h = g.run_golden(Precision::Half);
        let err = |xs: &[f64]| -> f64 {
            xs.iter()
                .zip(&d)
                .map(|(x, y)| ((x - y) / y).abs())
                .fold(0.0, f64::max)
        };
        assert!(err(&s) < 1e-5);
        assert!(err(&h) < 2e-2, "half error {}", err(&h));
        assert!(err(&h) > err(&s));
    }

    #[test]
    fn input_fault_corrupts_a_row_or_column_stripe() {
        let g = Gemm::new(6);
        let golden = g.run_golden(Precision::Single);
        // Site 0 is a[0][0]: a large flip corrupts row 0 of C only.
        let faulty = g.run_with_fault(Precision::Single, 0, ValueFault::BitFlip(30));
        let changed: Vec<usize> = (0..36).filter(|&i| faulty[i] != golden[i]).collect();
        assert!(!changed.is_empty());
        assert!(
            changed.iter().all(|&i| i < 6),
            "only row 0 affected: {changed:?}"
        );
        assert_eq!(changed.len(), 6, "a[0][0] feeds all 6 row-0 outputs");
    }

    #[test]
    fn accumulator_fault_corrupts_one_element() {
        let g = Gemm::new(6);
        let golden = g.run_golden(Precision::Double);
        // The last FMA site belongs to c[5][5] only.
        let last = g.site_count(Precision::Double) - 1;
        let faulty = g.run_with_fault(Precision::Double, last, ValueFault::BitFlip(62));
        let changed: Vec<usize> = (0..36).filter(|&i| faulty[i] != golden[i]).collect();
        assert_eq!(changed, vec![35]);
    }

    #[test]
    fn different_seeds_give_different_outputs() {
        let a = Gemm::new(4).run_golden(Precision::Double);
        let b = Gemm::new(4).with_seed(99).run_golden(Precision::Double);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dimension_rejected() {
        let _ = Gemm::new(0);
    }
}
