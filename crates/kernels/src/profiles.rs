//! Full-scale workload profiles for each (benchmark, device) pairing.
//!
//! The kernels in this crate execute scaled-down proxies for fault
//! propagation; these profiles carry the full-scale characterization the
//! device models consume for timing and exposure. Profile names must
//! match the paper's benchmark names — the architecture models key their
//! measured-time and compiler-report calibration off them.

use crate::MicroKernelOp;
use mpr_arch::{OpMix, WorkloadKind, WorkloadProfile};

/// LavaMD instruction mix: "More than 50% of LavaMD code is composed of
/// MUL instructions" (paper Section 6.1), plus the per-interaction
/// exponential.
pub fn lavamd_mix() -> OpMix {
    OpMix::new(0.17, 0.55, 0.25, 0.0, 0.03)
}

/// The microbenchmark profile for `op` (paper-scale: one billion
/// operations per thread, 256 threads per SM).
pub fn micro(op: MicroKernelOp) -> WorkloadProfile {
    match op {
        MicroKernelOp::Add => WorkloadProfile::micro_add(),
        MicroKernelOp::Mul => WorkloadProfile::micro_mul(),
        MicroKernelOp::Fma => WorkloadProfile::micro_fma(),
    }
}

/// MxM at GPU scale (a 2048-class GEMM without shared-memory blocking:
/// strongly memory bound, FMA dominated).
pub fn mxm_gpu() -> WorkloadProfile {
    WorkloadProfile {
        name: "MxM".to_string(),
        flops: 1.7e10,
        mix: OpMix::pure_fma(),
        value_traffic: 1.7e10, // non-coalesced: one memory read per FMA
        threads: 2.0e5,
        regs_per_thread: 64.0,
        ilp: 4.0,
        // Resident tile of the 3 x 2048^2 working set: at double and
        // single it overflows the on-chip caches (the exposure clamps at
        // capacity), at half it fits — giving the half version its
        // visibly lower FIT in Figure 10b.
        working_set_values: 2.2e6,
        memory_boundedness: 0.7,
        control_density: 1.0,
        kind: WorkloadKind::Numeric,
    }
}

/// LavaMD at GPU scale (compute bound, register resident).
pub fn lavamd_gpu() -> WorkloadProfile {
    WorkloadProfile {
        name: "LavaMD".to_string(),
        flops: 3.9e12,
        mix: lavamd_mix(),
        value_traffic: 4.0e6,
        threads: 2.0e5,
        regs_per_thread: 64.0,
        ilp: 6.0,
        working_set_values: 7.0e5,
        memory_boundedness: 0.05,
        control_density: 1.0,
        kind: WorkloadKind::Numeric,
    }
}

/// MxM at Xeon Phi scale (the 10.6 s configuration of Table 2).
pub fn mxm_knc() -> WorkloadProfile {
    WorkloadProfile {
        name: "MxM".to_string(),
        flops: 5.0e12,
        mix: OpMix::pure_fma(),
        value_traffic: 5.0e12,
        threads: 228.0, // 57 cores x 4 hardware threads
        regs_per_thread: 32.0,
        ilp: 4.0,
        working_set_values: 4.0e7,
        memory_boundedness: 0.85,
        control_density: 1.0,
        kind: WorkloadKind::Numeric,
    }
}

/// LavaMD at Xeon Phi scale.
pub fn lavamd_knc() -> WorkloadProfile {
    WorkloadProfile {
        name: "LavaMD".to_string(),
        flops: 5.1e11,
        mix: lavamd_mix(),
        value_traffic: 2.0e8,
        threads: 228.0,
        regs_per_thread: 32.0,
        ilp: 4.0,
        working_set_values: 2.0e6,
        memory_boundedness: 0.1,
        control_density: 1.0,
        kind: WorkloadKind::Numeric,
    }
}

/// LUD at Xeon Phi scale (CPU bound, branchy elimination loops).
pub fn lud_knc() -> WorkloadProfile {
    WorkloadProfile {
        name: "LUD".to_string(),
        flops: 4.5e11,
        mix: OpMix::new(0.05, 0.15, 0.75, 0.05, 0.0),
        value_traffic: 4.0e8,
        threads: 228.0,
        regs_per_thread: 32.0,
        ilp: 3.0,
        working_set_values: 4.0e6,
        memory_boundedness: 0.2,
        control_density: 1.4,
        kind: WorkloadKind::Numeric,
    }
}

/// The 128x128 MxM synthesized on the FPGA (paper Section 4).
pub fn mxm_fpga() -> WorkloadProfile {
    WorkloadProfile {
        name: "MxM".to_string(),
        flops: 2.0 * 128f64.powi(3),
        mix: OpMix::pure_fma(),
        value_traffic: 3.0 * 128f64 * 128.0,
        threads: 1.0,
        regs_per_thread: 16.0,
        ilp: 12.0,
        working_set_values: 3.0 * 128f64 * 128.0,
        memory_boundedness: 0.3,
        control_density: 0.2, // bare-metal circuit, no scheduler
        kind: WorkloadKind::Numeric,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_arch::{Device, Fpga, VoltaGpu, XeonPhiKnc};
    use mpr_softfloat::Precision;

    #[test]
    fn profile_names_bind_to_device_calibration() {
        // The KNC timing calibration must recognize the profile names.
        let knc = XeonPhiKnc::coprocessor_3120a();
        assert!((knc.exec_time(&mxm_knc(), Precision::Double) - 10.612).abs() < 0.02);
        assert!((knc.exec_time(&lavamd_knc(), Precision::Single) - 0.801).abs() < 0.02);
        assert!((knc.exec_time(&lud_knc(), Precision::Double) - 1.264).abs() < 0.02);

        let fpga = Fpga::zynq7000();
        assert_eq!(fpga.exec_time(&mxm_fpga(), Precision::Double), 2.730);

        let gpu = VoltaGpu::titan_v();
        assert_eq!(gpu.exec_time(&mxm_gpu(), Precision::Half), 1.180);
        assert_eq!(gpu.exec_time(&lavamd_gpu(), Precision::Single), 0.554);
    }

    #[test]
    fn gpu_mxm_dwarfs_lavamd_in_exposure() {
        let gpu = VoltaGpu::titan_v();
        for p in Precision::ALL {
            let mxm = gpu.exposure(&mxm_gpu(), p).compute;
            let lava = gpu.exposure(&lavamd_gpu(), p).compute;
            assert!(mxm > 2.0 * lava, "{p}: MxM {mxm:.3e} vs LavaMD {lava:.3e}");
        }
    }

    #[test]
    fn gpu_lavamd_follows_the_mul_trend() {
        // Figure 10b: LavaMD FIT trend mirrors Micro-MUL (d > s > h).
        let gpu = VoltaGpu::titan_v();
        let d = gpu.exposure(&lavamd_gpu(), Precision::Double).compute;
        let s = gpu.exposure(&lavamd_gpu(), Precision::Single).compute;
        let h = gpu.exposure(&lavamd_gpu(), Precision::Half).compute;
        assert!(d > s && s > h, "d={d:.3e} s={s:.3e} h={h:.3e}");
    }

    #[test]
    fn gpu_mxm_follows_the_fma_trend() {
        // Figure 10b: MxM mirrors Micro-FMA — single at least on par with
        // double, half clearly lowest.
        let gpu = VoltaGpu::titan_v();
        let d = gpu.exposure(&mxm_gpu(), Precision::Double).compute;
        let s = gpu.exposure(&mxm_gpu(), Precision::Single).compute;
        let h = gpu.exposure(&mxm_gpu(), Precision::Half).compute;
        assert!(s >= 0.99 * d, "d={d:.3e} s={s:.3e}");
        assert!(h < d && h < s, "half lowest: d={d:.3e} s={s:.3e} h={h:.3e}");
    }

    #[test]
    fn lavamd_mix_is_mul_dominated() {
        let m = lavamd_mix();
        assert!(m.mul > 0.5, "paper: >50% MUL instructions");
        assert!(m.transcendental > 0.0, "the exp cutoff is present");
    }

    #[test]
    fn knc_due_exposure_orderings() {
        // Figure 6: DUE FIT increases with single precision for all codes.
        let knc = XeonPhiKnc::coprocessor_3120a();
        for prof in [lavamd_knc(), mxm_knc(), lud_knc()] {
            let d = knc.exposure(&prof, Precision::Double).due;
            let s = knc.exposure(&prof, Precision::Single).due;
            assert!(s > d, "{}", prof.name);
        }
    }
}
