//! Deterministic input generation and per-precision caching shared by
//! the kernels.

use mpr_softfloat::Precision;
use std::sync::OnceLock;

/// Checked `usize -> u64` conversion for site and input indices:
/// replaces the silent `as u64` cast pattern the kernels used to carry.
///
/// # Panics
///
/// Panics if `count` does not fit in `u64` — impossible on the 64-bit
/// (and smaller) targets the workspace supports, but checked rather
/// than silently truncated.
#[inline]
pub(crate) fn to_u64(count: usize) -> u64 {
    // mpr-allow: panic-reachability -- usize -> u64 cannot fail on the 64-bit (and smaller) targets the workspace supports; checked rather than silently truncated
    u64::try_from(count).expect("index space exceeds u64")
}

/// Checked iterator over the `u64` indices `0..count`.
#[inline]
pub(crate) fn index_range(count: usize) -> std::ops::Range<u64> {
    0..to_u64(count)
}

/// One lazily-initialized slot per [`Precision`]: the kernels cache
/// their generated inputs (and replay snapshots) here so a campaign's
/// strike batch stops re-running `gen_value` on every strike.
///
/// The cached value is a pure function of the owning kernel's
/// configuration, so `Clone` intentionally produces a fresh *empty*
/// cache (re-derivable, and it keeps the kernels `Clone` without a
/// `T: Clone` bound).
pub(crate) struct PrecisionCache<T> {
    slots: [OnceLock<T>; 3],
}

impl<T> PrecisionCache<T> {
    /// An empty cache.
    pub(crate) const fn new() -> PrecisionCache<T> {
        PrecisionCache {
            slots: [OnceLock::new(), OnceLock::new(), OnceLock::new()],
        }
    }

    /// The cached value for `precision`, computing it on first use.
    pub(crate) fn get_or_init(&self, precision: Precision, init: impl FnOnce() -> T) -> &T {
        let slot = match precision {
            Precision::Double => &self.slots[0],
            Precision::Single => &self.slots[1],
            Precision::Half => &self.slots[2],
        };
        slot.get_or_init(init)
    }
}

impl<T> Clone for PrecisionCache<T> {
    fn clone(&self) -> PrecisionCache<T> {
        PrecisionCache::new()
    }
}

impl<T> std::fmt::Debug for PrecisionCache<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let filled = self.slots.iter().filter(|s| s.get().is_some()).count();
        write!(f, "PrecisionCache({filled}/3 filled)")
    }
}

/// SplitMix64: a tiny, high-quality deterministic generator used to
/// synthesize benchmark inputs reproducibly without a `rand` dependency.
#[inline]
pub(crate) fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic value in `[lo, hi)` derived from `(seed, index)`.
/// All outputs land on a 2^-20 grid, so they are exactly representable in
/// single and double precision and round once into half.
pub(crate) fn gen_value(seed: u64, index: u64, lo: f64, hi: f64) -> f64 {
    let bits = splitmix64(seed.wrapping_mul(0x5851_F42D_4C95_7F2D) ^ index);
    let unit = (bits >> 44) as f64 / (1u64 << 20) as f64; // [0,1) on 2^-20 grid
    lo + unit * (hi - lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_eq!(gen_value(1, 2, 0.0, 1.0), gen_value(1, 2, 0.0, 1.0));
        assert_ne!(gen_value(1, 2, 0.0, 1.0), gen_value(1, 3, 0.0, 1.0));
        assert_ne!(gen_value(1, 2, 0.0, 1.0), gen_value(2, 2, 0.0, 1.0));
    }

    #[test]
    fn values_stay_in_range() {
        for i in 0..1000 {
            let v = gen_value(7, i, 0.25, 1.75);
            assert!((0.25..1.75).contains(&v), "i={i} v={v}");
        }
    }

    #[test]
    fn values_spread_over_the_range() {
        let n = 1000;
        let mean: f64 = (0..n).map(|i| gen_value(3, i, 0.0, 1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean={mean}");
    }
}
