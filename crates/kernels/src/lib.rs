//! # mpr-kernels
//!
//! The benchmark kernels of the study (paper Section 3.1), written once
//! and executed at double, single, and half precision:
//!
//! * [`Gemm`] — the MxM matrix multiply, "representative of highly
//!   arithmetic compute bound codes and the core of feature extraction in
//!   CNNs"; FMA dominated.
//! * [`LavaMd`] — particle-potential computation over a 3D box grid
//!   (Rodinia's lavaMD), >50% multiplications plus a transcendental
//!   exponential per interaction, evaluated **in precision** so the
//!   deeper double-precision polynomial exposes more (and tinier)
//!   intermediate values to faults — the mechanism behind the paper's
//!   inverted LavaMD criticality on the Xeon Phi (Section 5.3).
//! * [`Lud`] — LU decomposition (Doolittle), the CPU-bound Rodinia code.
//! * [`Micro`] — the Micro-ADD/MUL/FMA register-resident dependent
//!   chains designed to stress only the arithmetic cores.
//!
//! Each kernel implements [`mpr_fault::Workload`]: every intermediate
//! value passes through the fault hook, so a campaign can flip any bit of
//! any dynamic value. The executed kernels are *scaled-down proxies* (a
//! 32x32 GEMM propagates faults the same way a 2048x2048 one does); the
//! full-scale execution-time/exposure numbers live in each kernel's
//! [`mpr_arch::WorkloadProfile`].
//!
//! # Example
//!
//! ```rust
//! use mpr_fault::Workload;
//! use mpr_kernels::Gemm;
//! use mpr_softfloat::Precision;
//!
//! let gemm = Gemm::new(8);
//! let golden = gemm.run_golden(Precision::Half);
//! assert_eq!(golden.len(), 64);
//! assert_eq!(gemm.site_count(Precision::Half), 2 * 64 + 8 * 8 * 8);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod gemm;
mod lavamd;
mod lud;
mod micro;
pub mod profiles;
pub(crate) mod util;

pub use gemm::Gemm;
pub use lavamd::LavaMd;
pub use lud::Lud;
pub use micro::{Micro, MicroKernelOp};

/// Dispatches a generic `run<F, H>` method on a runtime
/// [`mpr_softfloat::Precision`]. The hook type is inferred at the call
/// site, so the same macro serves the `dyn` campaign boundary and the
/// monomorphized fast path.
macro_rules! dispatch_precision {
    ($self:ident, $precision:ident, $hook:expr) => {
        match $precision {
            mpr_softfloat::Precision::Double => $self.run::<f64, _>($hook),
            mpr_softfloat::Precision::Single => $self.run::<f32, _>($hook),
            mpr_softfloat::Precision::Half => $self.run::<mpr_softfloat::Half, _>($hook),
        }
    };
}
pub(crate) use dispatch_precision;

/// Generates the [`mpr_fault::Workload`] dispatch family for a kernel
/// whose `run` is generic over both the float format and the hook type:
/// the `dyn` entry point campaigns hold, the monomorphized
/// `dispatch_mono`, and static-dispatch overrides of the derived methods
/// (`site_count`, `run_golden`, `run_with_fault`) so golden runs and
/// single strikes never pay a virtual call per touch. Expand inside an
/// `impl Workload for ...` block.
macro_rules! monomorphic_workload {
    () => {
        fn dispatch(
            &self,
            precision: mpr_softfloat::Precision,
            // mpr-allow: fault-site -- the one virtual dispatch boundary the hook protocol keeps: campaigns hold workloads as trait objects
            hook: &mut dyn mpr_fault::hook::FaultHook,
        ) -> Vec<f64> {
            crate::dispatch_precision!(self, precision, hook)
        }

        fn dispatch_mono<H: mpr_fault::hook::FaultHook>(
            &self,
            precision: mpr_softfloat::Precision,
            hook: &mut H,
        ) -> Vec<f64> {
            crate::dispatch_precision!(self, precision, hook)
        }

        fn site_count(&self, precision: mpr_softfloat::Precision) -> u64 {
            let mut hook = mpr_fault::hook::GoldenHook::new();
            let _ = self.dispatch_mono(precision, &mut hook);
            hook.sites()
        }

        fn run_golden(&self, precision: mpr_softfloat::Precision) -> Vec<f64> {
            self.dispatch_mono(precision, &mut mpr_fault::hook::NullHook)
        }

        fn run_with_fault(
            &self,
            precision: mpr_softfloat::Precision,
            site: u64,
            fault: mpr_fault::ValueFault,
        ) -> Vec<f64> {
            let mut hook = mpr_fault::hook::InjectHook::new(site, fault);
            self.dispatch_mono(precision, &mut hook)
        }
    };
}
pub(crate) use monomorphic_workload;
