//! # mpr-kernels
//!
//! The benchmark kernels of the study (paper Section 3.1), written once
//! and executed at double, single, and half precision:
//!
//! * [`Gemm`] — the MxM matrix multiply, "representative of highly
//!   arithmetic compute bound codes and the core of feature extraction in
//!   CNNs"; FMA dominated.
//! * [`LavaMd`] — particle-potential computation over a 3D box grid
//!   (Rodinia's lavaMD), >50% multiplications plus a transcendental
//!   exponential per interaction, evaluated **in precision** so the
//!   deeper double-precision polynomial exposes more (and tinier)
//!   intermediate values to faults — the mechanism behind the paper's
//!   inverted LavaMD criticality on the Xeon Phi (Section 5.3).
//! * [`Lud`] — LU decomposition (Doolittle), the CPU-bound Rodinia code.
//! * [`Micro`] — the Micro-ADD/MUL/FMA register-resident dependent
//!   chains designed to stress only the arithmetic cores.
//!
//! Each kernel implements [`mpr_fault::Workload`]: every intermediate
//! value passes through the fault hook, so a campaign can flip any bit of
//! any dynamic value. The executed kernels are *scaled-down proxies* (a
//! 32x32 GEMM propagates faults the same way a 2048x2048 one does); the
//! full-scale execution-time/exposure numbers live in each kernel's
//! [`mpr_arch::WorkloadProfile`].
//!
//! # Example
//!
//! ```rust
//! use mpr_fault::Workload;
//! use mpr_kernels::Gemm;
//! use mpr_softfloat::Precision;
//!
//! let gemm = Gemm::new(8);
//! let golden = gemm.run_golden(Precision::Half);
//! assert_eq!(golden.len(), 64);
//! assert_eq!(gemm.site_count(Precision::Half), 2 * 64 + 8 * 8 * 8);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod gemm;
mod lavamd;
mod lud;
mod micro;
pub mod profiles;
pub(crate) mod util;

pub use gemm::Gemm;
pub use lavamd::LavaMd;
pub use lud::Lud;
pub use micro::{Micro, MicroKernelOp};

/// Dispatches a generic `run<F>` method on a runtime [`mpr_softfloat::Precision`].
macro_rules! dispatch_precision {
    ($self:ident, $precision:ident, $hook:ident) => {
        match $precision {
            mpr_softfloat::Precision::Double => $self.run::<f64>($hook),
            mpr_softfloat::Precision::Single => $self.run::<f32>($hook),
            mpr_softfloat::Precision::Half => $self.run::<mpr_softfloat::Half>($hook),
        }
    };
}
pub(crate) use dispatch_precision;
