//! The LUD (LU decomposition) kernel.

use crate::dispatch_precision;
use crate::util::gen_value;
use mpr_fault::hook::FaultHook;
use mpr_fault::Workload;
use mpr_softfloat::{FloatExt, Precision};

/// LU decomposition of a diagonally dominant matrix (Doolittle, no
/// pivoting) — the paper's "highly CPU-bound" Rodinia code, tested on
/// the Xeon Phi only (Section 3.1).
///
/// The matrix is generated diagonally dominant so the factorization is
/// numerically stable at every precision; the output is the packed `L\U`
/// matrix. Fault sites: each input element, each elimination factor
/// (a division), and each Schur-complement update (an FMA).
///
/// # Example
///
/// ```rust
/// use mpr_fault::Workload;
/// use mpr_kernels::Lud;
/// use mpr_softfloat::Precision;
///
/// let lud = Lud::new(8);
/// assert_eq!(lud.run_golden(Precision::Double).len(), 64);
/// // The KNC kernels have no half-precision variant (paper Section 3.1).
/// assert!(!lud.supports(Precision::Half));
/// ```
#[derive(Debug, Clone)]
pub struct Lud {
    n: usize,
    seed: u64,
}

impl Lud {
    /// Creates an `n x n` decomposition.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Lud {
        assert!(n >= 2, "decomposition needs at least a 2x2 matrix");
        Lud { n, seed: 0x10D }
    }

    /// Overrides the deterministic input seed.
    pub fn with_seed(mut self, seed: u64) -> Lud {
        self.seed = seed;
        self
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    fn run<F: FloatExt>(&self, hook: &mut dyn FaultHook) -> Vec<f64> {
        let n = self.n;
        let mut a = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                let idx = (i * n + j) as u64;
                // mpr-allow: precision-leak -- diagonal-dominance offset is f64 master-domain input synthesis, cast once below
                let diag = if i == j { n as f64 } else { 0.0 };
                a.push(hook.touch(F::from_f64(gen_value(self.seed, idx, 0.0, 1.0) + diag)));
            }
        }

        for k in 0..n - 1 {
            let pivot = a[k * n + k];
            for i in k + 1..n {
                let factor = hook.touch(a[i * n + k] / pivot);
                a[i * n + k] = factor;
                for j in k + 1..n {
                    a[i * n + j] = hook.touch((-factor).mul_add(a[k * n + j], a[i * n + j]));
                }
            }
        }
        a.iter().map(|v| v.to_f64()).collect()
    }
}

impl Workload for Lud {
    fn name(&self) -> &str {
        "LUD"
    }

    fn dispatch(&self, precision: Precision, hook: &mut dyn FaultHook) -> Vec<f64> {
        dispatch_precision!(self, precision, hook)
    }

    /// The paper implements LUD "using single and double precision" on
    /// the KNC only.
    fn supports(&self, precision: Precision) -> bool {
        precision != Precision::Half
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_fault::ValueFault;

    /// Multiplies the packed LU back together.
    fn reconstruct(lu: &[f64], n: usize) -> Vec<f64> {
        let l = |i: usize, j: usize| -> f64 {
            use std::cmp::Ordering;
            match i.cmp(&j) {
                Ordering::Greater => lu[i * n + j],
                Ordering::Equal => 1.0,
                Ordering::Less => 0.0,
            }
        };
        let u = |i: usize, j: usize| -> f64 {
            if i <= j {
                lu[i * n + j]
            } else {
                0.0
            }
        };
        let mut out = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                out[i * n + j] = (0..n).map(|k| l(i, k) * u(k, j)).sum();
            }
        }
        out
    }

    #[test]
    fn lu_reconstructs_the_input() {
        let n = 8;
        let lud = Lud::new(n);
        let lu = lud.run_golden(Precision::Double);
        let prod = reconstruct(&lu, n);
        for i in 0..n {
            for j in 0..n {
                let idx = (i * n + j) as u64;
                let mut want = gen_value(0x10D, idx, 0.0, 1.0);
                if i == j {
                    want += n as f64;
                }
                assert!(
                    (prod[i * n + j] - want).abs() < 1e-10,
                    "A[{i}][{j}]: {} vs {want}",
                    prod[i * n + j]
                );
            }
        }
    }

    #[test]
    fn site_counts_match_doolittle_arithmetic() {
        let n = 7u64;
        let lud = Lud::new(n as usize);
        // n^2 inputs + sum_k (n-k-1) factors + (n-k-1)^2 updates.
        let elim: u64 = (0..n - 1).map(|k| (n - 1 - k) + (n - 1 - k).pow(2)).sum();
        assert_eq!(lud.site_count(Precision::Double), n * n + elim);
    }

    #[test]
    fn single_close_to_double() {
        let lud = Lud::new(10);
        let d = lud.run_golden(Precision::Double);
        let s = lud.run_golden(Precision::Single);
        for (a, b) in d.iter().zip(&s) {
            assert!((a - b).abs() < 1e-4 * a.abs().max(1.0));
        }
    }

    #[test]
    fn pivot_fault_spreads_downstream() {
        let n = 8;
        let lud = Lud::new(n);
        let golden = lud.run_golden(Precision::Double);
        // Corrupt the very first input element (the first pivot).
        let faulty = lud.run_with_fault(Precision::Double, 0, ValueFault::BitFlip(61));
        let changed = (0..n * n).filter(|&i| faulty[i] != golden[i]).count();
        // The first pivot feeds every elimination step: most of the
        // matrix is corrupted.
        assert!(changed > n * n / 2, "only {changed} entries changed");
    }

    #[test]
    #[should_panic(expected = "at least a 2x2")]
    fn tiny_matrix_rejected() {
        let _ = Lud::new(1);
    }
}
