//! The LUD (LU decomposition) kernel.

use crate::monomorphic_workload;
use crate::util::{gen_value, to_u64, PrecisionCache};
use mpr_fault::hook::{FaultHook, HookExt, InjectHook, NullHook};
use mpr_fault::{ValueFault, Workload};
use mpr_softfloat::{FloatExt, Precision};

/// Per-precision replay state: the exact input bits plus the packed
/// matrix state (as bits) checkpointed before each elimination step.
struct LudCache {
    input_bits: Vec<u64>,
    /// `snapshots[k]` is the matrix immediately before elimination step
    /// `k` — the golden prefix a strike inside step `k` replays from.
    snapshots: Vec<Vec<u64>>,
}

/// LU decomposition of a diagonally dominant matrix (Doolittle, no
/// pivoting) — the paper's "highly CPU-bound" Rodinia code, tested on
/// the Xeon Phi only (Section 3.1).
///
/// The matrix is generated diagonally dominant so the factorization is
/// numerically stable at every precision; the output is the packed `L\U`
/// matrix. Fault sites: each input element, each elimination factor
/// (a division), and each Schur-complement update (an FMA).
///
/// # Example
///
/// ```rust
/// use mpr_fault::Workload;
/// use mpr_kernels::Lud;
/// use mpr_softfloat::Precision;
///
/// let lud = Lud::new(8);
/// assert_eq!(lud.run_golden(Precision::Double).len(), 64);
/// // The KNC kernels have no half-precision variant (paper Section 3.1).
/// assert!(!lud.supports(Precision::Half));
/// ```
#[derive(Debug, Clone)]
pub struct Lud {
    n: usize,
    seed: u64,
    cache: PrecisionCache<LudCache>,
}

impl Lud {
    /// Creates an `n x n` decomposition.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Lud {
        assert!(n >= 2, "decomposition needs at least a 2x2 matrix");
        Lud {
            n,
            seed: 0x10D,
            cache: PrecisionCache::new(),
        }
    }

    /// Overrides the deterministic input seed.
    pub fn with_seed(mut self, seed: u64) -> Lud {
        self.seed = seed;
        self.cache = PrecisionCache::new();
        self
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Input bits and pre-step checkpoints at `F`'s precision, computed
    /// once and reused across a campaign's strike batch.
    fn cache<F: FloatExt>(&self) -> &LudCache {
        self.cache.get_or_init(F::PRECISION, || {
            let n = self.n;
            let mut input_bits = Vec::with_capacity(n * n);
            for i in 0..n {
                for j in 0..n {
                    let idx = to_u64(i * n + j);
                    // mpr-allow: precision-leak -- diagonal-dominance offset is f64 master-domain input synthesis, cast once below
                    let diag = if i == j { n as f64 } else { 0.0 };
                    // mpr-allow: fault-site -- f64 master-domain input synthesis; the run touches every input when loading the cached bits
                    input_bits.push(
                        F::from_f64(gen_value(self.seed, idx, 0.0, 1.0) + diag).to_bits_u64(),
                    );
                }
            }
            let mut a: Vec<F> = input_bits.iter().map(|&w| F::from_bits_u64(w)).collect();
            let mut snapshots = Vec::with_capacity(n - 1);
            for k in 0..n - 1 {
                snapshots.push(a.iter().map(|v| v.to_bits_u64()).collect());
                Self::eliminate_step(&mut a, n, k, &mut NullHook);
            }
            LudCache {
                input_bits,
                snapshots,
            }
        })
    }

    /// First dynamic site of elimination step `k`: `n^2` input sites,
    /// then step `m` contributes `(n-1-m)` factors each followed by
    /// `(n-1-m)` updates.
    fn step_base(n: u64, k: u64) -> u64 {
        n * n + (0..k).map(|m| (n - 1 - m) * (n - m)).sum::<u64>()
    }

    /// One Doolittle elimination step — shared by the full run, the
    /// checkpoint builder, and the replay, so all three touch identical
    /// values in identical order.
    #[inline]
    fn eliminate_step<F: FloatExt, H: FaultHook + ?Sized>(
        a: &mut [F],
        n: usize,
        k: usize,
        hook: &mut H,
    ) {
        let pivot = a[k * n + k];
        for i in k + 1..n {
            let factor = hook.touch(a[i * n + k] / pivot);
            a[i * n + k] = factor;
            for j in k + 1..n {
                a[i * n + j] = hook.touch((-factor).mul_add(a[k * n + j], a[i * n + j]));
            }
        }
    }

    fn eliminate_from<F: FloatExt, H: FaultHook + ?Sized>(
        a: &mut [F],
        n: usize,
        k0: usize,
        hook: &mut H,
    ) {
        for k in k0..n - 1 {
            Self::eliminate_step(a, n, k, hook);
        }
    }

    fn run<F: FloatExt, H: FaultHook + ?Sized>(&self, hook: &mut H) -> Vec<f64> {
        let n = self.n;
        let cache = self.cache::<F>();
        let mut a: Vec<F> = cache
            .input_bits
            .iter()
            .map(|&w| hook.touch(F::from_bits_u64(w)))
            .collect();
        Self::eliminate_from(&mut a, n, 0, hook);
        a.iter().map(|v| v.to_f64()).collect()
    }

    /// Golden-prefix replay: a strike inside elimination step `k`
    /// resumes from the checkpoint taken before step `k`; an input
    /// strike re-eliminates from the (faulted) inputs without paying
    /// hook dispatch or input regeneration.
    fn replay<F: FloatExt>(
        &self,
        site: u64,
        fault: ValueFault,
        golden: &[f64],
        out: &mut Vec<f64>,
    ) {
        let n = self.n;
        let nu = to_u64(n);
        out.clear();
        out.extend_from_slice(golden);
        if site >= Self::step_base(nu, nu - 1) {
            return; // past the last dynamic site: the fault never fires
        }
        let cache = self.cache::<F>();
        let mut a: Vec<F>;
        if site < nu * nu {
            let idx = site as usize;
            a = cache
                .input_bits
                .iter()
                .map(|&w| F::from_bits_u64(w))
                .collect();
            let width = F::PRECISION.total_bits();
            a[idx] = F::from_bits_u64(fault.apply(cache.input_bits[idx], width));
            Self::eliminate_from(&mut a, n, 0, &mut NullHook);
        } else {
            // Largest step whose first site is <= the strike site.
            let k = (0..nu - 1)
                .take_while(|&k| Self::step_base(nu, k) <= site)
                .last()
                .expect("site is inside the elimination range"); // mpr-allow: panic-hygiene -- guarded by the step_base range check above
            let mut hook = InjectHook::new(site - Self::step_base(nu, k), fault);
            a = cache.snapshots[k as usize]
                .iter()
                .map(|&w| F::from_bits_u64(w))
                .collect();
            Self::eliminate_from(&mut a, n, k as usize, &mut hook);
        }
        for (slot, v) in out.iter_mut().zip(&a) {
            *slot = v.to_f64();
        }
    }
}

impl Workload for Lud {
    fn name(&self) -> &str {
        "LUD"
    }

    monomorphic_workload!();

    /// The paper implements LUD "using single and double precision" on
    /// the KNC only.
    fn supports(&self, precision: Precision) -> bool {
        precision != Precision::Half
    }

    fn run_from_site_into(
        &self,
        precision: Precision,
        site: u64,
        fault: ValueFault,
        golden: &[f64],
        out: &mut Vec<f64>,
    ) {
        match precision {
            Precision::Double => self.replay::<f64>(site, fault, golden, out),
            Precision::Single => self.replay::<f32>(site, fault, golden, out),
            Precision::Half => self.replay::<mpr_softfloat::Half>(site, fault, golden, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_fault::ValueFault;

    /// Multiplies the packed LU back together.
    fn reconstruct(lu: &[f64], n: usize) -> Vec<f64> {
        let l = |i: usize, j: usize| -> f64 {
            use std::cmp::Ordering;
            match i.cmp(&j) {
                Ordering::Greater => lu[i * n + j],
                Ordering::Equal => 1.0,
                Ordering::Less => 0.0,
            }
        };
        let u = |i: usize, j: usize| -> f64 {
            if i <= j {
                lu[i * n + j]
            } else {
                0.0
            }
        };
        let mut out = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                out[i * n + j] = (0..n).map(|k| l(i, k) * u(k, j)).sum();
            }
        }
        out
    }

    #[test]
    fn lu_reconstructs_the_input() {
        let n = 8;
        let lud = Lud::new(n);
        let lu = lud.run_golden(Precision::Double);
        let prod = reconstruct(&lu, n);
        for i in 0..n {
            for j in 0..n {
                let idx = (i * n + j) as u64;
                let mut want = gen_value(0x10D, idx, 0.0, 1.0);
                if i == j {
                    want += n as f64;
                }
                assert!(
                    (prod[i * n + j] - want).abs() < 1e-10,
                    "A[{i}][{j}]: {} vs {want}",
                    prod[i * n + j]
                );
            }
        }
    }

    #[test]
    fn site_counts_match_doolittle_arithmetic() {
        let n = 7u64;
        let lud = Lud::new(n as usize);
        // n^2 inputs + sum_k (n-k-1) factors + (n-k-1)^2 updates.
        let elim: u64 = (0..n - 1).map(|k| (n - 1 - k) + (n - 1 - k).pow(2)).sum();
        assert_eq!(lud.site_count(Precision::Double), n * n + elim);
    }

    #[test]
    fn single_close_to_double() {
        let lud = Lud::new(10);
        let d = lud.run_golden(Precision::Double);
        let s = lud.run_golden(Precision::Single);
        for (a, b) in d.iter().zip(&s) {
            assert!((a - b).abs() < 1e-4 * a.abs().max(1.0));
        }
    }

    #[test]
    fn pivot_fault_spreads_downstream() {
        let n = 8;
        let lud = Lud::new(n);
        let golden = lud.run_golden(Precision::Double);
        // Corrupt the very first input element (the first pivot).
        let faulty = lud.run_with_fault(Precision::Double, 0, ValueFault::BitFlip(61));
        let changed = (0..n * n).filter(|&i| faulty[i] != golden[i]).count();
        // The first pivot feeds every elimination step: most of the
        // matrix is corrupted.
        assert!(changed > n * n / 2, "only {changed} entries changed");
    }

    #[test]
    #[should_panic(expected = "at least a 2x2")]
    fn tiny_matrix_rejected() {
        let _ = Lud::new(1);
    }
}
