//! The LUD (LU decomposition) kernel.

use crate::monomorphic_workload;
use crate::util::{gen_value, to_u64, PrecisionCache};
use mpr_fault::hook::{FaultHook, HookExt, NullHook};
use mpr_fault::{ValueFault, Workload};
use mpr_softfloat::{FloatExt, Precision};

/// Per-precision replay state: exact input and golden-output bits plus
/// strided tail checkpoints.
///
/// The fast path never stores a full pre-step matrix per elimination
/// step (that grows as O(n³) bits). Instead it leans on the Doolittle
/// dependence structure: row `m` is final after step `m - 1` and only
/// then serves as a pivot row, so the golden *output* doubles as every
/// pivot row any replay will ever read. The only intermediate state a
/// strike needs is "rows below the fault row just before it pivots",
/// and a handful of strided checkpoints bound that reconstruction to a
/// short replay (DESIGN.md §4i).
struct LudCache {
    input_bits: Vec<u64>,
    golden_bits: Vec<u64>,
    /// Checkpoint stride in elimination steps: `max(1, n / 8)`.
    stride: usize,
    /// `(step, rows)` pairs: `rows` holds the bits of rows
    /// `step + 1 .. n` immediately **before** elimination step `step`,
    /// for `step = 0, stride, 2·stride, ...` — O(n²) words total.
    checkpoints: Vec<(usize, Vec<u64>)>,
}

/// Where a flat dynamic-site index lands in the Doolittle schedule.
enum StrikePlan {
    /// Past the last dynamic touch: the fault never fires.
    Masked,
    /// Input element `(row, col)`: the corrupt bits enter at load time.
    Input { row: usize, col: usize },
    /// A touch inside elimination `step`, in `row`'s block: `pos` 0 is
    /// the division factor, `pos` q ≥ 1 the update of column `step + q`.
    Elim { step: usize, row: usize, pos: usize },
}

/// LU decomposition of a diagonally dominant matrix (Doolittle, no
/// pivoting) — the paper's "highly CPU-bound" Rodinia code, tested on
/// the Xeon Phi only (Section 3.1).
///
/// The matrix is generated diagonally dominant so the factorization is
/// numerically stable at every precision; the output is the packed `L\U`
/// matrix. Fault sites: each input element, each elimination factor
/// (a division), and each Schur-complement update (an FMA).
///
/// # Example
///
/// ```rust
/// use mpr_fault::Workload;
/// use mpr_kernels::Lud;
/// use mpr_softfloat::Precision;
///
/// let lud = Lud::new(8);
/// assert_eq!(lud.run_golden(Precision::Double).len(), 64);
/// // The KNC kernels have no half-precision variant (paper Section 3.1).
/// assert!(!lud.supports(Precision::Half));
/// ```
#[derive(Debug, Clone)]
pub struct Lud {
    n: usize,
    seed: u64,
    cache: PrecisionCache<LudCache>,
}

impl Lud {
    /// Creates an `n x n` decomposition.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Lud {
        assert!(n >= 2, "decomposition needs at least a 2x2 matrix");
        Lud {
            n,
            seed: 0x10D,
            cache: PrecisionCache::new(),
        }
    }

    /// Overrides the deterministic input seed.
    pub fn with_seed(mut self, seed: u64) -> Lud {
        self.seed = seed;
        self.cache = PrecisionCache::new();
        self
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Input bits, golden bits, and strided checkpoints at `F`'s
    /// precision, computed once and reused across a campaign's strikes.
    fn cache<F: FloatExt>(&self) -> &LudCache {
        self.cache.get_or_init(F::PRECISION, || {
            let n = self.n;
            let mut input_bits = Vec::with_capacity(n * n);
            for i in 0..n {
                for j in 0..n {
                    let idx = to_u64(i * n + j);
                    // mpr-allow: precision-leak -- diagonal-dominance offset is f64 master-domain input synthesis, cast once below
                    let diag = if i == j { n as f64 } else { 0.0 };
                    // mpr-allow: fault-site -- f64 master-domain input synthesis; the run touches every input when loading the cached bits
                    input_bits.push(
                        F::from_f64(gen_value(self.seed, idx, 0.0, 1.0) + diag).to_bits_u64(),
                    );
                }
            }
            let mut a: Vec<F> = input_bits.iter().map(|&w| F::from_bits_u64(w)).collect();
            let stride = (n / 8).max(1);
            let mut checkpoints = Vec::new();
            for k in 0..n - 1 {
                if k % stride == 0 {
                    let rows: Vec<u64> = a[(k + 1) * n..].iter().map(|v| v.to_bits_u64()).collect();
                    checkpoints.push((k, rows));
                }
                Self::eliminate_step(&mut a, n, k, &mut NullHook);
            }
            let golden_bits = a.iter().map(|v| v.to_bits_u64()).collect();
            LudCache {
                input_bits,
                golden_bits,
                stride,
                checkpoints,
            }
        })
    }

    /// First dynamic site of elimination step `k`: `n^2` input sites,
    /// then step `m` contributes `(n-1-m)` factors each followed by
    /// `(n-1-m)` updates. Closed form — with `j = n - m` the per-step
    /// count is `j(j-1)`, so the prefix sum telescopes to
    /// `S(n) - S(n-k)` where `S(x) = x(x^2-1)/3` — because the replay
    /// planner runs this once per strike (an O(k) rescan here used to
    /// dominate short replays).
    fn step_base(n: u64, k: u64) -> u64 {
        let s = |x: u64| x * (x * x - 1) / 3;
        n * n + s(n) - s(n - k)
    }

    /// Resolves a flat site index to its place in the schedule.
    fn plan(n: u64, site: u64) -> StrikePlan {
        if site < n * n {
            StrikePlan::Input {
                row: (site / n) as usize,
                col: (site % n) as usize,
            }
        } else if site >= Self::step_base(n, n - 1) {
            StrikePlan::Masked
        } else {
            // Largest step whose first site is <= the strike site:
            // `step_base` is strictly increasing in `k`, so binary
            // search between step 0 (base `n^2 <= site`) and step
            // `n - 1` (base `> site`, checked above).
            let (mut lo, mut hi) = (0, n - 1);
            while lo + 1 < hi {
                let mid = lo + (hi - lo) / 2;
                if Self::step_base(n, mid) <= site {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            let k = lo;
            let within = site - Self::step_base(n, k);
            let block = n - k; // one factor + (n-1-k) updates per row
            StrikePlan::Elim {
                step: k as usize,
                row: (k + 1 + within / block) as usize,
                pos: (within % block) as usize,
            }
        }
    }

    /// One Doolittle elimination step — shared by the full run, the
    /// checkpoint builder, and the replay, so all three touch identical
    /// values in identical order.
    #[inline]
    fn eliminate_step<F: FloatExt, H: FaultHook + ?Sized>(
        a: &mut [F],
        n: usize,
        k: usize,
        hook: &mut H,
    ) {
        let pivot = a[k * n + k];
        for i in k + 1..n {
            let factor = hook.touch(a[i * n + k] / pivot);
            a[i * n + k] = factor;
            for j in k + 1..n {
                a[i * n + j] = hook.touch((-factor).mul_add(a[k * n + j], a[i * n + j]));
            }
        }
    }

    fn eliminate_from<F: FloatExt, H: FaultHook + ?Sized>(
        a: &mut [F],
        n: usize,
        k0: usize,
        hook: &mut H,
    ) {
        for k in k0..n - 1 {
            Self::eliminate_step(a, n, k, hook);
        }
    }

    fn run<F: FloatExt, H: FaultHook + ?Sized>(&self, hook: &mut H) -> Vec<f64> {
        let n = self.n;
        let cache = self.cache::<F>();
        let mut a: Vec<F> = cache
            .input_bits
            .iter()
            .map(|&w| hook.touch(F::from_bits_u64(w)))
            .collect();
        Self::eliminate_from(&mut a, n, 0, hook);
        a.iter().map(|v| v.to_f64()).collect()
    }
}

/// Scratch state for row-confined strike replay, reusable across every
/// strike in a batch (the golden decode and the tail reconstruction are
/// the amortizable parts; see DESIGN.md §4i).
///
/// The replay rests on the row-confinement property of Doolittle
/// elimination: a fault landing in row `i` stays confined to row `i`
/// until step `i`, because each step's updates read only the row itself
/// and the pivot row — and every pivot row `m < i` is untouched by the
/// fault and already equal to the golden *output* row `m` (row `m` is
/// final after step `m - 1`). So a strike replays as: track row `i`
/// alone against golden pivot rows (O(n) per step), rebuild rows below
/// `i` from the nearest strided checkpoint (a short replay of at most
/// `stride` steps), and only then fall back to full trailing
/// elimination from step `i`.
struct LudReplayer<'a, F: FloatExt> {
    n: usize,
    cache: &'a LudCache,
    /// Golden output decoded to `F` — every pivot row any replay reads.
    golden: Vec<F>,
    /// The tracked (faulted) row.
    row: Vec<F>,
    /// Workspace for the trailing elimination, persistent across
    /// strikes. Only rows `i ..` are (re)written per strike: the
    /// elimination from step `i` reads pivot rows `k >= i` and writes
    /// rows below them, so whatever a previous strike left in rows
    /// `0 .. i` is never read.
    mat: Vec<F>,
    /// Fault row the cached tail was reconstructed for (`usize::MAX`
    /// when empty): rows `tail_row + 1 .. n` just before step
    /// `tail_row`. Strikes sharing a fault row share the tail.
    tail_row: usize,
    tail: Vec<F>,
    /// First row of the caller's `out` buffer that may hold computed
    /// (non-golden) values from an earlier strike, `usize::MAX` before
    /// the first strike. Rows `0 .. out_dirty_from` are exactly golden,
    /// so a strike at fault row `i` only restores rows
    /// `out_dirty_from .. i` instead of re-copying the whole output —
    /// and the batch path's sort by fault row keeps that span short.
    out_dirty_from: usize,
}

impl<'a, F: FloatExt> LudReplayer<'a, F> {
    fn new(n: usize, cache: &'a LudCache) -> LudReplayer<'a, F> {
        LudReplayer {
            n,
            cache,
            golden: cache
                .golden_bits
                .iter()
                .map(|&w| F::from_bits_u64(w))
                .collect(),
            row: vec![F::zero(); n],
            mat: vec![F::zero(); n * n],
            tail_row: usize::MAX,
            tail: Vec::new(),
            out_dirty_from: usize::MAX,
        }
    }

    /// The checkpoint with the largest step `<= k`.
    fn checkpoint_at_or_before(&self, k: usize) -> &'a (usize, Vec<u64>) {
        let idx = (k / self.cache.stride).min(self.cache.checkpoints.len() - 1);
        &self.cache.checkpoints[idx]
    }

    /// Forwards the tracked row (as row `i`) through elimination steps
    /// `from .. to`, reading pivot rows from the golden output.
    fn forward_row(&mut self, from: usize, to: usize) {
        let n = self.n;
        for m in from..to {
            let factor = self.row[m] / self.golden[m * n + m];
            self.row[m] = factor;
            for j in m + 1..n {
                self.row[j] = (-factor).mul_add(self.golden[m * n + j], self.row[j]);
            }
        }
    }

    /// The faulted elimination step `k` on the tracked row: `pos` 0
    /// corrupts the factor, `pos` q ≥ 1 the update of column `k + q` —
    /// matching the touch order of [`Lud::eliminate_step`] under an
    /// [`InjectHook`].
    fn faulted_step(&mut self, k: usize, pos: usize, fault: ValueFault) {
        let n = self.n;
        let width = F::PRECISION.total_bits();
        let mut factor = self.row[k] / self.golden[k * n + k];
        if pos == 0 {
            factor = F::from_bits_u64(fault.apply(factor.to_bits_u64(), width));
        }
        self.row[k] = factor;
        for j in k + 1..n {
            let mut v = (-factor).mul_add(self.golden[k * n + j], self.row[j]);
            if pos == j - k {
                v = F::from_bits_u64(fault.apply(v.to_bits_u64(), width));
            }
            self.row[j] = v;
        }
    }

    /// Reconstructs rows `i + 1 .. n` as they stand just before step
    /// `i`: nearest strided checkpoint plus a short clean replay against
    /// golden pivot rows. Cached — consecutive strikes with the same
    /// fault row reuse it.
    fn build_tail(&mut self, i: usize) {
        if self.tail_row == i {
            return;
        }
        let n = self.n;
        let (t0, rows) = self.checkpoint_at_or_before(i);
        let skip = (i - t0) * n; // checkpoint starts at row t0 + 1
        self.tail.clear();
        self.tail
            .extend(rows[skip..].iter().map(|&w| F::from_bits_u64(w)));
        for m in *t0..i {
            for r in 0..n - 1 - i {
                let row = &mut self.tail[r * n..(r + 1) * n];
                let factor = row[m] / self.golden[m * n + m];
                row[m] = factor;
                let pivot = &self.golden[m * n..(m + 1) * n];
                for (v, &p) in row[m + 1..].iter_mut().zip(&pivot[m + 1..]) {
                    *v = (-factor).mul_add(p, *v);
                }
            }
        }
        self.tail_row = i;
    }

    /// Finishes a strike whose tracked row `i` is faulted and forwarded
    /// to step `from`: confines it up to its pivot step, assembles the
    /// matrix, runs the trailing elimination, and writes `out`.
    fn finish(&mut self, i: usize, from: usize, out: &mut [f64]) {
        let n = self.n;
        self.forward_row(from, i);
        if i == n - 1 {
            // The last row never pivots: the damage is the row itself.
            for (j, v) in self.row.iter().enumerate() {
                out[i * n + j] = v.to_f64();
            }
            return;
        }
        self.build_tail(i);
        self.mat[i * n..(i + 1) * n].copy_from_slice(&self.row);
        self.mat[(i + 1) * n..].copy_from_slice(&self.tail);
        Self::eliminate_tail(&mut self.mat, n, i);
        for (idx, v) in self.mat[i * n..].iter().enumerate() {
            out[i * n + idx] = v.to_f64();
        }
    }

    /// Trailing elimination from step `i` with no hook in the loop, so
    /// the compiler is free to vectorize the Schur updates.
    fn eliminate_tail(a: &mut [F], n: usize, i: usize) {
        Lud::eliminate_from(a, n, i, &mut NullHook);
    }

    /// Runs one strike, byte-identical to the naive injected run.
    ///
    /// Successive calls must reuse the same `out` buffer: the replayer
    /// tracks which of its rows still hold golden values and restores
    /// only the span a strike actually dirtied.
    fn strike(&mut self, site: u64, fault: ValueFault, golden_f64: &[f64], out: &mut Vec<f64>) {
        let n = self.n;
        if self.out_dirty_from == usize::MAX || out.len() != golden_f64.len() {
            out.clear();
            out.extend_from_slice(golden_f64);
            self.out_dirty_from = n;
        }
        let plan = Lud::plan(to_u64(n), site);
        // Rows the strike will not overwrite must read golden: restore
        // the still-dirty prefix span left by the previous strike.
        let fault_row = match plan {
            StrikePlan::Masked => n,
            StrikePlan::Input { row, .. } | StrikePlan::Elim { row, .. } => row,
        };
        if self.out_dirty_from < fault_row {
            let lo = self.out_dirty_from * n;
            let hi = fault_row * n;
            out[lo..hi].copy_from_slice(&golden_f64[lo..hi]);
        }
        self.out_dirty_from = fault_row;
        match plan {
            StrikePlan::Masked => {}
            StrikePlan::Input { row: i, col: c } => {
                let width = F::PRECISION.total_bits();
                self.row.clear();
                self.row.extend(
                    self.cache.input_bits[i * n..(i + 1) * n]
                        .iter()
                        .map(|&w| F::from_bits_u64(w)),
                );
                self.row[c] =
                    F::from_bits_u64(fault.apply(self.cache.input_bits[i * n + c], width));
                self.finish(i, 0, out);
            }
            StrikePlan::Elim {
                step: k,
                row: i,
                pos,
            } => {
                let (t0, rows) = self.checkpoint_at_or_before(k);
                let off = (i - t0 - 1) * n;
                self.row.clear();
                self.row
                    .extend(rows[off..off + n].iter().map(|&w| F::from_bits_u64(w)));
                let t0 = *t0;
                self.forward_row(t0, k);
                self.faulted_step(k, pos, fault);
                self.finish(i, k + 1, out);
            }
        }
    }
}

impl Workload for Lud {
    fn name(&self) -> &str {
        "LUD"
    }

    monomorphic_workload!();

    /// The paper implements LUD "using single and double precision" on
    /// the KNC only.
    fn supports(&self, precision: Precision) -> bool {
        precision != Precision::Half
    }

    fn run_from_site_into(
        &self,
        precision: Precision,
        site: u64,
        fault: ValueFault,
        golden: &[f64],
        out: &mut Vec<f64>,
    ) {
        fn go<F: FloatExt>(
            lud: &Lud,
            site: u64,
            fault: ValueFault,
            golden: &[f64],
            out: &mut Vec<f64>,
        ) {
            LudReplayer::<F>::new(lud.n, lud.cache::<F>()).strike(site, fault, golden, out);
        }
        match precision {
            Precision::Double => go::<f64>(self, site, fault, golden, out),
            Precision::Single => go::<f32>(self, site, fault, golden, out),
            Precision::Half => go::<mpr_softfloat::Half>(self, site, fault, golden, out),
        }
    }

    /// Batched strikes: one golden decode per batch, strikes sorted by
    /// (fault row, site) so the tail reconstruction — the only per-strike
    /// state heavier than one row — is shared between strikes that hit
    /// the same row, and checkpoint reads stay cache-local.
    fn run_strike_batch(
        &self,
        precision: Precision,
        strikes: &[(u64, ValueFault)],
        golden: &[f64],
        each: &mut dyn FnMut(usize, &[f64]) -> bool,
    ) {
        fn go<F: FloatExt>(
            lud: &Lud,
            strikes: &[(u64, ValueFault)],
            golden: &[f64],
            each: &mut dyn FnMut(usize, &[f64]) -> bool,
        ) {
            let n = to_u64(lud.n);
            let mut order: Vec<usize> = (0..strikes.len()).collect();
            order.sort_by_cached_key(|&idx| {
                let site = strikes[idx].0;
                let row = match Lud::plan(n, site) {
                    StrikePlan::Masked => usize::MAX,
                    StrikePlan::Input { row, .. } | StrikePlan::Elim { row, .. } => row,
                };
                (row, site, idx)
            });
            let mut replayer = LudReplayer::<F>::new(lud.n, lud.cache::<F>());
            let mut out = Vec::with_capacity(golden.len());
            for idx in order {
                let (site, fault) = strikes[idx];
                replayer.strike(site, fault, golden, &mut out);
                if !each(idx, &out) {
                    return;
                }
            }
        }
        match precision {
            Precision::Double => go::<f64>(self, strikes, golden, each),
            Precision::Single => go::<f32>(self, strikes, golden, each),
            Precision::Half => go::<mpr_softfloat::Half>(self, strikes, golden, each),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_fault::ValueFault;

    /// Multiplies the packed LU back together.
    fn reconstruct(lu: &[f64], n: usize) -> Vec<f64> {
        let l = |i: usize, j: usize| -> f64 {
            use std::cmp::Ordering;
            match i.cmp(&j) {
                Ordering::Greater => lu[i * n + j],
                Ordering::Equal => 1.0,
                Ordering::Less => 0.0,
            }
        };
        let u = |i: usize, j: usize| -> f64 {
            if i <= j {
                lu[i * n + j]
            } else {
                0.0
            }
        };
        let mut out = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                out[i * n + j] = (0..n).map(|k| l(i, k) * u(k, j)).sum();
            }
        }
        out
    }

    #[test]
    fn lu_reconstructs_the_input() {
        let n = 8;
        let lud = Lud::new(n);
        let lu = lud.run_golden(Precision::Double);
        let prod = reconstruct(&lu, n);
        for i in 0..n {
            for j in 0..n {
                let idx = (i * n + j) as u64;
                let mut want = gen_value(0x10D, idx, 0.0, 1.0);
                if i == j {
                    want += n as f64;
                }
                assert!(
                    (prod[i * n + j] - want).abs() < 1e-10,
                    "A[{i}][{j}]: {} vs {want}",
                    prod[i * n + j]
                );
            }
        }
    }

    #[test]
    fn site_counts_match_doolittle_arithmetic() {
        let n = 7u64;
        let lud = Lud::new(n as usize);
        // n^2 inputs + sum_k (n-k-1) factors + (n-k-1)^2 updates.
        let elim: u64 = (0..n - 1).map(|k| (n - 1 - k) + (n - 1 - k).pow(2)).sum();
        assert_eq!(lud.site_count(Precision::Double), n * n + elim);
    }

    #[test]
    fn single_close_to_double() {
        let lud = Lud::new(10);
        let d = lud.run_golden(Precision::Double);
        let s = lud.run_golden(Precision::Single);
        for (a, b) in d.iter().zip(&s) {
            assert!((a - b).abs() < 1e-4 * a.abs().max(1.0));
        }
    }

    #[test]
    fn pivot_fault_spreads_downstream() {
        let n = 8;
        let lud = Lud::new(n);
        let golden = lud.run_golden(Precision::Double);
        // Corrupt the very first input element (the first pivot).
        let faulty = lud.run_with_fault(Precision::Double, 0, ValueFault::BitFlip(61));
        let changed = (0..n * n).filter(|&i| faulty[i] != golden[i]).count();
        // The first pivot feeds every elimination step: most of the
        // matrix is corrupted.
        assert!(changed > n * n / 2, "only {changed} entries changed");
    }

    #[test]
    fn replay_matches_naive_bit_for_bit_at_every_site() {
        // Every dynamic site — inputs, factors, updates, and the
        // masked region past the end — must replay to the exact bits
        // the naive injected run produces (DT001).
        let n = 9u64;
        let lud = Lud::new(n as usize);
        for p in [Precision::Double, Precision::Single] {
            let golden = lud.run_golden(p);
            let sites = lud.site_count(p);
            for site in 0..sites + 3 {
                let fault = match site % 3 {
                    0 => ValueFault::BitFlip((site % 31) as u32),
                    1 if site % 2 == 0 => ValueFault::StuckHigh((site % 23) as u32),
                    1 => ValueFault::StuckLow((site % 23) as u32),
                    _ => ValueFault::XorMask(0x8000_0401 ^ site),
                };
                let naive = lud.run_with_fault(p, site, fault);
                let fast = lud.run_from_site(p, site, fault, &golden);
                let same = naive
                    .iter()
                    .zip(&fast)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "site {site} fault {fault:?} precision {p:?}");
            }
        }
    }

    #[test]
    fn batched_strikes_match_per_strike_replay() {
        let n = 12u64;
        let lud = Lud::new(n as usize);
        let p = Precision::Single;
        let golden = lud.run_golden(p);
        let sites = lud.site_count(p);
        // A scattered batch: inputs, early/late steps, repeats, masked.
        let strikes: Vec<(u64, ValueFault)> = (0..40)
            .map(|s| {
                (
                    (s * 31 + 7) % (sites + 2),
                    ValueFault::BitFlip(((s * 13) % 52) as u32),
                )
            })
            .collect();
        let mut got: Vec<Option<Vec<f64>>> = vec![None; strikes.len()];
        lud.run_strike_batch(p, &strikes, &golden, &mut |idx, out| {
            got[idx] = Some(out.to_vec());
            true
        });
        for (idx, &(site, fault)) in strikes.iter().enumerate() {
            let want = lud.run_from_site(p, site, fault, &golden);
            let got = got[idx].as_ref().expect("callback ran for every strike");
            assert_eq!(got.len(), want.len());
            let same = got
                .iter()
                .zip(&want)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "strike {idx} site {site}");
        }
    }

    #[test]
    fn checkpoint_memory_is_quadratic_not_cubic() {
        let n = 32;
        let lud = Lud::new(n);
        let _ = lud.run_golden(Precision::Double);
        let cache = lud.cache::<f64>();
        let words: usize = cache.checkpoints.iter().map(|(_, rows)| rows.len()).sum();
        // Strided tails: well under the n^3-ish footprint of a full
        // per-step snapshot scheme ((n-1) * n^2 = 31744 words here).
        assert!(words <= 8 * n * n, "checkpoints hold {words} words");
        assert!(!cache.checkpoints.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least a 2x2")]
    fn tiny_matrix_rejected() {
        let _ = Lud::new(1);
    }
}
