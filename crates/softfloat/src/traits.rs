//! The [`FloatExt`] abstraction over the three studied precisions.

use crate::{math, Half, Precision};
use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A floating-point type at one of the studied precisions.
///
/// Every benchmark kernel (`mpr-kernels`) and neural-network layer
/// (`mpr-nn`) in the reproduction is written once against this trait and
/// then executed at double, single, and half precision — exactly how the
/// paper keeps "the same algorithm" across precisions (Section 3.1) so
/// that reliability differences are attributable to the data type alone.
///
/// The trait deliberately exposes the *bit representation*
/// ([`FloatExt::to_bits_u64`], [`FloatExt::flip_bit`]): the fault injector
/// flips representation bits, which is the fault model of both the beam
/// experiments and CAROL-FI.
///
/// # Example
///
/// ```rust
/// use mpr_softfloat::{FloatExt, Half};
///
/// fn horner<F: FloatExt>(coeffs: &[F], x: F) -> F {
///     coeffs.iter().rev().fold(F::zero(), |acc, &c| acc.mul_add(x, c))
/// }
///
/// let c64 = [1.0f64, 2.0, 3.0];
/// let c16: Vec<Half> = c64.iter().map(|&v| Half::from_f64(v)).collect();
/// assert_eq!(horner(&c64, 2.0), 17.0);
/// assert_eq!(horner(&c16, Half::from_f64(2.0)).to_f64(), 17.0);
/// ```
pub trait FloatExt:
    Copy
    + PartialEq
    + PartialOrd
    + fmt::Debug
    + fmt::Display
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
{
    /// Which of the three studied formats this type is.
    const PRECISION: Precision;

    /// Additive identity.
    fn zero() -> Self;

    /// Multiplicative identity.
    fn one() -> Self;

    /// Conversion from `f64` (rounds once to the target precision).
    fn from_f64(v: f64) -> Self;

    /// Widening conversion to `f64` (exact for all three formats).
    fn to_f64(self) -> f64;

    /// The raw representation, zero-extended to 64 bits.
    fn to_bits_u64(self) -> u64;

    /// Builds a value from the low `total_bits` of `bits`.
    fn from_bits_u64(bits: u64) -> Self;

    /// Flips representation bit `bit` (0 = LSB). The elementary transient
    /// fault.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= Self::PRECISION.total_bits()`.
    fn flip_bit(self, bit: u32) -> Self {
        let width = Self::PRECISION.total_bits();
        assert!(bit < width, "bit {bit} out of range for {width}-bit float");
        Self::from_bits_u64(self.to_bits_u64() ^ (1 << bit))
    }

    /// Fused multiply-add `self * a + b` with a single rounding.
    fn mul_add(self, a: Self, b: Self) -> Self;

    /// Correctly rounded square root.
    fn sqrt(self) -> Self;

    /// Absolute value.
    fn abs(self) -> Self;

    /// `true` if NaN.
    fn is_nan(self) -> bool;

    /// `true` if positive or negative infinity.
    fn is_infinite(self) -> bool;

    /// `true` if neither infinite nor NaN.
    fn is_finite(self) -> bool;

    /// IEEE `maximumNumber` (NaN loses).
    fn max(self, other: Self) -> Self;

    /// IEEE `minimumNumber` (NaN loses).
    fn min(self, other: Self) -> Self;

    /// Exponential, evaluated as an **in-precision polynomial** (argument
    /// reduction plus Horner evaluation whose every intermediate is rounded
    /// to this precision).
    ///
    /// GPUs evaluate `exp` in software and the Xeon Phi in its dedicated
    /// transcendental unit with a precision-dependent polynomial depth
    /// (paper Sections 5.3, 6.3); running the polynomial in-precision makes
    /// every intermediate term a fault site and reproduces the paper's
    /// criticality asymmetry between double and single LavaMD.
    fn exp(self) -> Self {
        math::exp_poly(self)
    }

    /// Multiplies by `2^n` exactly (saturating to infinity / zero at the
    /// format's range limits).
    fn ldexp(self, n: i32) -> Self;
}

impl FloatExt for f64 {
    const PRECISION: Precision = Precision::Double;

    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn from_f64(v: f64) -> Self {
        v
    }
    fn to_f64(self) -> f64 {
        self
    }
    fn to_bits_u64(self) -> u64 {
        self.to_bits()
    }
    fn from_bits_u64(bits: u64) -> Self {
        f64::from_bits(bits)
    }
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    fn abs(self) -> Self {
        f64::abs(self)
    }
    fn is_nan(self) -> bool {
        f64::is_nan(self)
    }
    fn is_infinite(self) -> bool {
        f64::is_infinite(self)
    }
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }
    fn min(self, other: Self) -> Self {
        f64::min(self, other)
    }
    fn ldexp(self, n: i32) -> Self {
        self * 2f64.powi(n)
    }
}

impl FloatExt for f32 {
    const PRECISION: Precision = Precision::Single;

    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn to_bits_u64(self) -> u64 {
        self.to_bits() as u64
    }
    fn from_bits_u64(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }
    fn mul_add(self, a: Self, b: Self) -> Self {
        f32::mul_add(self, a, b)
    }
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    fn abs(self) -> Self {
        f32::abs(self)
    }
    fn is_nan(self) -> bool {
        f32::is_nan(self)
    }
    fn is_infinite(self) -> bool {
        f32::is_infinite(self)
    }
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }
    fn min(self, other: Self) -> Self {
        f32::min(self, other)
    }
    fn ldexp(self, n: i32) -> Self {
        self * 2f32.powi(n)
    }
}

impl FloatExt for Half {
    const PRECISION: Precision = Precision::Half;

    fn zero() -> Self {
        Half::ZERO
    }
    fn one() -> Self {
        Half::ONE
    }
    fn from_f64(v: f64) -> Self {
        Half::from_f64(v)
    }
    fn to_f64(self) -> f64 {
        Half::to_f64(self)
    }
    fn to_bits_u64(self) -> u64 {
        self.to_bits() as u64
    }
    fn from_bits_u64(bits: u64) -> Self {
        Half::from_bits(bits as u16)
    }
    fn mul_add(self, a: Self, b: Self) -> Self {
        Half::mul_add(self, a, b)
    }
    fn sqrt(self) -> Self {
        Half::sqrt(self)
    }
    fn abs(self) -> Self {
        Half::abs(self)
    }
    fn is_nan(self) -> bool {
        Half::is_nan(self)
    }
    fn is_infinite(self) -> bool {
        Half::is_infinite(self)
    }
    fn is_finite(self) -> bool {
        Half::is_finite(self)
    }
    fn max(self, other: Self) -> Self {
        Half::max(self, other)
    }
    fn min(self, other: Self) -> Self {
        Half::min(self, other)
    }
    fn ldexp(self, n: i32) -> Self {
        // Split the scale so that intermediate powers of two stay finite
        // within the tiny binary16 exponent range.
        let mut v = self;
        let mut n = n;
        while n > 14 {
            v *= Half::from_f64(2f64.powi(14));
            n -= 14;
        }
        while n < -14 {
            v *= Half::from_f64(2f64.powi(-14));
            n += 14;
        }
        v * Half::from_f64(2f64.powi(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn half_is_send_sync() {
        assert_send_sync::<Half>();
    }

    #[test]
    fn generic_arithmetic_agrees_with_native() {
        fn poly<F: FloatExt>(x: F) -> F {
            x.mul_add(x, F::one()) - x
        }
        assert_eq!(poly(3.0f64), 7.0);
        assert_eq!(poly(3.0f32), 7.0);
        assert_eq!(poly(Half::from_f64(3.0)).to_f64(), 7.0);
    }

    #[test]
    fn bit_round_trips() {
        for v in [-1.5f64, 0.0, 2.75, 1e10] {
            assert_eq!(f64::from_bits_u64(v.to_bits_u64()), v);
            let s = v as f32;
            assert_eq!(f32::from_bits_u64(s.to_bits_u64()), s);
            let h = Half::from_f64(v);
            assert_eq!(Half::from_bits_u64(h.to_bits_u64()).to_bits(), h.to_bits());
        }
    }

    #[test]
    fn flip_bit_is_involutive() {
        for bit in 0..16 {
            let h = Half::from_f64(1.25);
            assert_eq!(h.flip_bit(bit).flip_bit(bit).to_bits(), h.to_bits());
        }
        for bit in [0u32, 22, 31] {
            let s = 1.25f32;
            assert_eq!(s.flip_bit(bit).flip_bit(bit).to_bits(), s.to_bits());
        }
        for bit in [0u32, 51, 63] {
            let d = 1.25f64;
            assert_eq!(d.flip_bit(bit).flip_bit(bit).to_bits(), d.to_bits());
        }
    }

    #[test]
    fn flip_sign_bit() {
        assert_eq!(1.0f64.flip_bit(63), -1.0);
        assert_eq!(1.0f32.flip_bit(31), -1.0);
        assert_eq!(Half::ONE.flip_bit(15).to_f64(), -1.0);
    }

    #[test]
    #[should_panic(expected = "bit index 16")]
    fn flip_bit_out_of_range_panics() {
        let _ = Half::ONE.flip_bit(16);
    }

    #[test]
    fn ldexp_scales_exactly() {
        assert_eq!(1.5f64.ldexp(3), 12.0);
        assert_eq!(1.5f32.ldexp(-2), 0.375);
        assert_eq!(Half::from_f64(1.5).ldexp(3).to_f64(), 12.0);
        // Large half scale crosses several chunks without overflowing early.
        assert_eq!(Half::from_f64(1.0).ldexp(15).to_f64(), 32768.0);
        assert_eq!(Half::from_f64(1.0).ldexp(-24).to_f64(), 2f64.powi(-24));
        assert!(Half::from_f64(1.0).ldexp(17).is_infinite());
    }

    #[test]
    fn precision_constants_match() {
        assert_eq!(<f64 as FloatExt>::PRECISION, Precision::Double);
        assert_eq!(<f32 as FloatExt>::PRECISION, Precision::Single);
        assert_eq!(<Half as FloatExt>::PRECISION, Precision::Half);
    }
}
