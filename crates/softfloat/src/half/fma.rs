//! Exact fused multiply-add for binary16.
//!
//! `a * b + c` is evaluated in integer arithmetic: the 11x11-bit product is
//! exact in 22 bits, the addend is aligned into a shared fixed-point frame
//! (the binary16 exponent range spans < 80 bits, so `i128` holds every
//! intermediate exactly), and the sum is rounded **once** to binary16.
//! This is the semantics of a hardware FMA unit and cannot be obtained by
//! rounding through a wider float without a double-rounding hazard.

use super::{round_pack_f16, Half};

/// Decomposes a finite `Half` into `(negative, significand, lsb_exp)` with
/// `value == ±significand * 2^lsb_exp` exactly. Zero yields `(sign, 0, _)`.
#[inline]
fn decompose(h: Half) -> (bool, u32, i32) {
    let neg = h.is_sign_negative();
    let e = h.exp_field() as i32;
    let f = h.frac_field() as u32;
    if e == 0 {
        (neg, f, -24)
    } else {
        (neg, f | 0x400, e - 25)
    }
}

impl Half {
    /// Fused multiply-add: `self * a + b` with a single rounding.
    ///
    /// ```rust
    /// use mpr_softfloat::Half;
    /// // 255 * 257 = 65535 overflows the format before adding, but the
    /// // fused form subtracts first conceptually: round(255*257 - 65504).
    /// let x = Half::from_f32(255.0);
    /// let y = Half::from_f32(257.0);
    /// let fused = x.mul_add(y, -Half::MAX);
    /// assert_eq!(fused.to_f32(), 31.0); // exact: 65535 - 65504
    /// // whereas the unfused form overflows to +inf then NaNs:
    /// assert!(((x * y) + -Half::MAX).is_nan() || ((x * y) + -Half::MAX).is_infinite());
    /// ```
    pub fn mul_add(self, a: Half, b: Half) -> Half {
        // IEEE-754 special-case ladder.
        if self.is_nan() || a.is_nan() || b.is_nan() {
            return Half::NAN;
        }
        let prod_neg = self.is_sign_negative() ^ a.is_sign_negative();
        if self.is_infinite() || a.is_infinite() {
            if self.is_zero() || a.is_zero() {
                return Half::NAN; // 0 * inf
            }
            if b.is_infinite() && (b.is_sign_negative() != prod_neg) {
                return Half::NAN; // inf - inf
            }
            return if prod_neg {
                Half::NEG_INFINITY
            } else {
                Half::INFINITY
            };
        }
        if b.is_infinite() {
            return b;
        }

        let (_, ms, es) = decompose(self);
        let (_, ma, ea) = decompose(a);
        let (cn, mc, ec) = decompose(b);

        // Exact product: <= 22 bits of significand.
        let mp = (ms as i128) * (ma as i128);
        let ep = es + ea;

        if mp == 0 && mc == 0 {
            // Zero result from zero inputs: IEEE sign rules. (-0)+(+0)=+0
            // under RNE unless both terms are negative.
            return if prod_neg && cn {
                Half::NEG_ZERO
            } else {
                Half::ZERO
            };
        }

        // Align both terms to the smaller LSB exponent. Exponent span:
        // ep in [-48, 10], ec in [-24, 5] -> shift <= 58; operands <= 22
        // bits, so everything fits comfortably in i128.
        let e0 = ep.min(ec);
        let tp = (if prod_neg { -mp } else { mp }) << (ep - e0) as u32;
        let tc = (if cn { -(mc as i128) } else { mc as i128 }) << (ec - e0) as u32;
        let sum = tp + tc;

        if sum == 0 {
            // Exact cancellation of nonzero terms: RNE gives +0.
            return Half::ZERO;
        }
        let neg = sum < 0;
        let bits = round_pack_f16(sum.unsigned_abs(), e0);
        Half::from_bits(if neg { bits | 0x8000 } else { bits })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference FMA through f64: the product of two binary16 values is
    /// exact in f64 (22 <= 53 bits) and the f64 sum is correctly rounded
    /// to 53 bits, which is wide enough (53 >= 2*11 + 2) for the second
    /// rounding to binary16 to be innocuous. So f64 fma == exact fma for
    /// binary16 operands.
    fn reference(a: Half, b: Half, c: Half) -> Half {
        Half::from_f64(a.to_f64().mul_add(b.to_f64(), c.to_f64()))
    }

    #[test]
    fn fma_matches_f64_reference_on_grid() {
        let vals: Vec<Half> = (0..=u16::MAX)
            .step_by(419)
            .map(Half::from_bits)
            .filter(|h| h.is_finite())
            .collect();
        for &a in &vals {
            for &b in &vals {
                for &c in &vals {
                    let got = a.mul_add(b, c);
                    let want = reference(a, b, c);
                    if got.is_zero() && want.is_zero() {
                        continue; // sign-of-zero differences checked separately
                    }
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "a={a:?} b={b:?} c={c:?} got={got:?} want={want:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn fused_recovers_the_exact_rounding_residual() {
        // The canonical FMA idiom: r = fma(x, x, -round(x*x)) is the exact
        // rounding error of the product. Unfused arithmetic always yields
        // zero; the fused form recovers the lost 2^-20 term.
        let x = Half::from_bits(0x3C01); // 1 + 2^-10
        let rounded = x * x; // 1 + 2^-9 (the 2^-20 term is rounded away)
        let residual = x.mul_add(x, -rounded);
        assert_eq!(residual.to_f64(), 2f64.powi(-20), "exact residual");
        let unfused = x * x - rounded;
        assert!(unfused.is_zero(), "mul+add cannot see the residual");
    }

    #[test]
    fn special_cases() {
        let inf = Half::INFINITY;
        assert!(Half::ZERO.mul_add(inf, Half::ONE).is_nan());
        assert!(inf.mul_add(Half::ONE, Half::NEG_INFINITY).is_nan());
        assert_eq!(inf.mul_add(Half::ONE, Half::ONE), inf);
        assert_eq!(Half::ONE.mul_add(Half::ONE, inf), inf);
        assert!(Half::NAN.mul_add(Half::ONE, Half::ONE).is_nan());
        assert_eq!(Half::TWO.mul_add(Half::TWO, Half::NEG_ONE).to_f32(), 3.0);
    }

    #[test]
    fn zero_sign_rules() {
        // (+0 * +1) + +0 = +0 ; (-0 * +1) + +0 = +0 ; (-0 * +1) + -0 = -0
        assert_eq!(Half::ZERO.mul_add(Half::ONE, Half::ZERO).to_bits(), 0x0000);
        assert_eq!(
            Half::NEG_ZERO.mul_add(Half::ONE, Half::ZERO).to_bits(),
            0x0000
        );
        assert_eq!(
            Half::NEG_ZERO.mul_add(Half::ONE, Half::NEG_ZERO).to_bits(),
            0x8000
        );
        // Exact cancellation gives +0 under round-to-nearest.
        assert_eq!(
            Half::ONE.mul_add(Half::ONE, Half::NEG_ONE).to_bits(),
            0x0000
        );
    }

    #[test]
    fn overflow_to_infinity() {
        assert_eq!(Half::MAX.mul_add(Half::TWO, Half::ZERO), Half::INFINITY);
        assert_eq!(Half::MIN.mul_add(Half::TWO, Half::ZERO), Half::NEG_INFINITY);
    }

    #[test]
    fn subnormal_products_survive() {
        // min_subnormal * 0.5 underflows to a tie with zero -> rounds to 0,
        // but adding min_subnormal first keeps the information: the fused
        // result of tiny*0.5 + tiny is 1.5*tiny, rounding to 2*tiny (even).
        let tiny = Half::MIN_POSITIVE_SUBNORMAL;
        let half = Half::from_f32(0.5);
        let fused = tiny.mul_add(half, tiny);
        assert_eq!(fused.to_bits(), 0x0002);
        let unfused = tiny * half + tiny;
        assert_eq!(unfused.to_bits(), 0x0001, "unfused loses the product");
    }
}
