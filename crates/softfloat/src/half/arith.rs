//! Binary16 arithmetic.
//!
//! `+ - * /` and `sqrt` are computed in `f32` and rounded back. Because
//! `f32` carries 24 significand bits and binary16 carries 11, the
//! `p' >= 2p + 2` condition of Figueroa's double-rounding theorem holds
//! with equality, so the two roundings collapse to one: every result below
//! is the correctly rounded binary16 result. The property tests in this
//! module cross-check `*` and `+` against the exact integer FMA path.

use super::Half;

impl Half {
    /// Correctly rounded addition (used by the `+` operator).
    #[inline]
    pub(crate) fn add_impl(self, rhs: Half) -> Half {
        Half::from_f32(self.to_f32() + rhs.to_f32())
    }

    /// Correctly rounded subtraction.
    #[inline]
    pub(crate) fn sub_impl(self, rhs: Half) -> Half {
        Half::from_f32(self.to_f32() - rhs.to_f32())
    }

    /// Correctly rounded multiplication.
    #[inline]
    pub(crate) fn mul_impl(self, rhs: Half) -> Half {
        Half::from_f32(self.to_f32() * rhs.to_f32())
    }

    /// Correctly rounded division.
    #[inline]
    pub(crate) fn div_impl(self, rhs: Half) -> Half {
        Half::from_f32(self.to_f32() / rhs.to_f32())
    }

    /// Remainder with the sign semantics of Rust's `%` on primitives.
    ///
    /// The exact remainder of two binary16 values is always representable
    /// in binary16, and `f32 % f32` is exact, so no rounding occurs at all.
    #[inline]
    pub(crate) fn rem_impl(self, rhs: Half) -> Half {
        Half::from_f32(self.to_f32() % rhs.to_f32())
    }

    /// Correctly rounded square root.
    ///
    /// ```rust
    /// use mpr_softfloat::Half;
    /// assert_eq!(Half::from_f32(9.0).sqrt().to_f32(), 3.0);
    /// assert!(Half::from_f32(-1.0).sqrt().is_nan());
    /// ```
    pub fn sqrt(self) -> Half {
        Half::from_f32(self.to_f32().sqrt())
    }

    /// Reciprocal, correctly rounded.
    pub fn recip(self) -> Half {
        Half::ONE.div_impl(self)
    }

    /// Largest integer less than or equal to `self`.
    ///
    /// Exact: every binary16 value's floor is binary16-representable
    /// (values with |x| >= 1024 are already integers).
    pub fn floor(self) -> Half {
        Half::from_f32(self.to_f32().floor())
    }

    /// Smallest integer greater than or equal to `self`.
    pub fn ceil(self) -> Half {
        Half::from_f32(self.to_f32().ceil())
    }

    /// Integer part (rounds toward zero).
    pub fn trunc(self) -> Half {
        Half::from_f32(self.to_f32().trunc())
    }

    /// Fractional part: `self - self.trunc()`.
    pub fn fract(self) -> Half {
        self.sub_impl(self.trunc())
    }

    /// Rounds half-way cases away from zero (like `f32::round`).
    pub fn round(self) -> Half {
        Half::from_f32(self.to_f32().round())
    }

    /// Raises to an integer power by binary exponentiation in binary16
    /// (each intermediate product is rounded, as in-precision hardware
    /// would).
    pub fn powi(self, mut n: i32) -> Half {
        let mut base = if n < 0 { self.recip() } else { self };
        if n < 0 {
            n = -n;
        }
        let mut acc = Half::ONE;
        while n > 0 {
            if n & 1 == 1 {
                acc = acc.mul_impl(base);
            }
            base = base.mul_impl(base);
            n >>= 1;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All finite binary16 values, coarsely strided for exhaustive-ish
    /// pair testing at reasonable cost.
    fn sample_values(stride: u16) -> Vec<Half> {
        (0..=u16::MAX)
            .step_by(stride as usize)
            .map(Half::from_bits)
            .filter(|h| h.is_finite())
            .collect()
    }

    #[test]
    fn addition_matches_exact_reference() {
        // a + b == fma(a, 1, b) which is rounded once from exact integers.
        for &a in &sample_values(97) {
            for &b in &sample_values(131) {
                let fast = a + b;
                let exact = a.mul_add(Half::ONE, b);
                assert_eq!(
                    fast.to_bits(),
                    exact.to_bits(),
                    "a={a:?} b={b:?} fast={fast:?} exact={exact:?}"
                );
            }
        }
    }

    #[test]
    fn multiplication_matches_exact_reference() {
        // a * b == fma(a, b, 0) (the +0 cannot change a nonzero product,
        // and the zero-product sign rule matches IEEE multiplication).
        for &a in &sample_values(101) {
            for &b in &sample_values(127) {
                let fast = a * b;
                let exact = a.mul_add(b, Half::ZERO);
                // fma(a,b,+0) differs from a*b only for a*b == -0: IEEE says
                // (-0) + (+0) = +0. Compare through copysign-aware path.
                if fast.is_zero() && exact.is_zero() {
                    continue;
                }
                assert_eq!(fast.to_bits(), exact.to_bits(), "a={a:?} b={b:?}");
            }
        }
    }

    #[test]
    fn division_agrees_with_f64_single_rounding() {
        // f64 has 53 >= 2*11+2 significand bits, so rounding the f64
        // quotient once is also the correctly rounded result; both paths
        // must agree bit-for-bit.
        for &a in &sample_values(89) {
            for &b in &sample_values(113) {
                let via_f32 = a / b;
                let via_f64 = Half::from_f64(a.to_f64() / b.to_f64());
                if via_f32.is_nan() {
                    assert!(via_f64.is_nan());
                } else {
                    assert_eq!(via_f32.to_bits(), via_f64.to_bits(), "a={a:?} b={b:?}");
                }
            }
        }
    }

    #[test]
    fn sqrt_exhaustive_against_f64() {
        for bits in 0..=u16::MAX {
            let h = Half::from_bits(bits);
            let via_f32 = h.sqrt();
            let via_f64 = Half::from_f64(h.to_f64().sqrt());
            if via_f32.is_nan() {
                assert!(via_f64.is_nan(), "bits={bits:#06x}");
            } else {
                assert_eq!(via_f32.to_bits(), via_f64.to_bits(), "bits={bits:#06x}");
            }
        }
    }

    #[test]
    fn special_value_arithmetic() {
        let inf = Half::INFINITY;
        assert!((inf - inf).is_nan());
        assert!((Half::ZERO * inf).is_nan());
        assert!((Half::ZERO / Half::ZERO).is_nan());
        assert_eq!(Half::ONE / Half::ZERO, inf);
        assert_eq!(Half::NEG_ONE / Half::ZERO, Half::NEG_INFINITY);
        assert_eq!(inf + inf, inf);
        assert!((Half::NAN + Half::ONE).is_nan());
        assert!((Half::MAX + Half::MAX).is_infinite());
    }

    #[test]
    fn subnormal_arithmetic() {
        let tiny = Half::MIN_POSITIVE_SUBNORMAL;
        assert_eq!(tiny + tiny, Half::from_bits(0x0002));
        assert_eq!(tiny * Half::TWO, Half::from_bits(0x0002));
        // Gradual underflow: MIN_POSITIVE / 2 is subnormal, not zero.
        let halved = Half::MIN_POSITIVE / Half::TWO;
        assert!(halved.is_subnormal());
        assert_eq!(halved.to_f64(), 2f64.powi(-15));
    }

    #[test]
    fn remainder_is_exact() {
        let a = Half::from_f32(7.5);
        let b = Half::from_f32(2.0);
        assert_eq!((a % b).to_f32(), 1.5);
        assert_eq!((-a % b).to_f32(), -1.5);
    }

    #[test]
    fn powi_basics() {
        assert_eq!(Half::TWO.powi(10).to_f32(), 1024.0);
        assert_eq!(Half::TWO.powi(0), Half::ONE);
        assert_eq!(Half::TWO.powi(-1).to_f32(), 0.5);
        assert!(Half::TWO.powi(16).is_infinite());
    }

    #[test]
    fn rounding_family_is_exact_for_all_values() {
        for bits in (0..=u16::MAX).step_by(7) {
            let h = Half::from_bits(bits);
            if !h.is_finite() {
                continue;
            }
            let v = h.to_f64();
            assert_eq!(h.floor().to_f64(), v.floor(), "floor {v}");
            assert_eq!(h.ceil().to_f64(), v.ceil(), "ceil {v}");
            assert_eq!(h.trunc().to_f64(), v.trunc(), "trunc {v}");
            assert_eq!(h.round().to_f64(), v.round(), "round {v}");
        }
    }

    #[test]
    fn fract_plus_trunc_reassembles() {
        for v in [2.75f64, -2.75, 0.5, -0.5, 1023.5] {
            let h = Half::from_f64(v);
            assert_eq!((h.trunc() + h.fract()).to_f64(), v, "{v}");
        }
        assert_eq!(Half::from_f64(2.75).fract().to_f64(), 0.75);
        assert_eq!(Half::from_f64(-2.75).fract().to_f64(), -0.75);
    }

    #[test]
    fn recip_of_extremes() {
        assert_eq!(Half::INFINITY.recip(), Half::ZERO);
        assert_eq!(Half::ZERO.recip(), Half::INFINITY);
        // 1/MAX is subnormal but nonzero.
        assert!(Half::MAX.recip().to_f64() > 0.0);
    }
}
