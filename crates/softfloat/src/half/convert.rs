//! Conversions between binary16 and the native formats.
//!
//! Widening conversions (`to_f32`, `to_f64`) are exact. Narrowing
//! conversions round to nearest-even in a single rounding: `from_f64` does
//! **not** go through `f32` because `f64 -> f32 -> f16` can double-round
//! (e.g. a value just above a binary16 tie that rounds *onto* the tie in
//! binary32 and then rounds the wrong way). Instead both narrowing paths
//! decompose the source into an exact integer magnitude and round once with
//! [`round_pack_f16`].

use super::Half;

/// Right-shifts `mag` by `shift`, rounding to nearest-even with a sticky
/// bit (all shifted-out information participates in the rounding decision).
#[inline]
pub(crate) fn rshift_rne(mag: u128, shift: u32) -> u128 {
    if shift == 0 {
        return mag;
    }
    if shift >= 128 {
        // The value is strictly below half an ULP of the target position
        // (magnitudes are < 2^127 in practice), so it rounds to zero.
        return 0;
    }
    let half = 1u128 << (shift - 1);
    let rem = mag & ((1u128 << shift) - 1);
    let q = mag >> shift;
    if rem > half || (rem == half && (q & 1) == 1) {
        q + 1
    } else {
        q
    }
}

/// Rounds the positive magnitude `mag * 2^lsb_exp` to binary16 (RNE) and
/// returns the bit pattern without a sign. Returns `0x7C00` (infinity) on
/// overflow; underflow goes gradually through subnormals to zero.
pub(crate) fn round_pack_f16(mag: u128, lsb_exp: i32) -> u16 {
    if mag == 0 {
        return 0;
    }
    let top = 127 - mag.leading_zeros() as i32; // position of the leading 1
    let e = lsb_exp + top; // unbiased exponent of the value

    if e >= -14 {
        // Normal candidate: produce an 11-bit significand (implicit bit kept).
        let sig = if top >= 10 {
            rshift_rne(mag, (top - 10) as u32)
        } else {
            mag << (10 - top)
        };
        // Rounding may carry the significand from 0x7FF to 0x800; the
        // combined encode below absorbs the carry into the exponent field.
        let mut e = e;
        let mut sig = sig;
        if sig == 0x800 {
            sig = 0x400;
            e += 1;
        }
        if e > 15 {
            return 0x7C00;
        }
        debug_assert!((0x400..0x800).contains(&sig));
        (((e + 14) as u16) << 10) + sig as u16
    } else {
        // Subnormal candidate: the target LSB sits at 2^-24 regardless of
        // the value's own exponent.
        let shift = -24 - lsb_exp;
        let sig = if shift >= 0 {
            rshift_rne(mag, shift as u32)
        } else {
            mag << (-shift)
        };
        // `sig == 0x400` after rounding means the value rounded up to the
        // smallest normal; the plain encode is already correct for that.
        debug_assert!(sig <= 0x400);
        sig as u16
    }
}

/// Decomposes a finite nonzero `f64` into `(negative, magnitude, lsb_exp)`
/// such that the value equals `±magnitude * 2^lsb_exp` exactly.
#[inline]
fn decompose_f64(v: f64) -> (bool, u128, i32) {
    let bits = v.to_bits();
    let neg = bits >> 63 != 0;
    let e = ((bits >> 52) & 0x7FF) as i32;
    let frac = bits & ((1u64 << 52) - 1);
    if e == 0 {
        (neg, frac as u128, -1074)
    } else {
        (neg, (frac | (1 << 52)) as u128, e - 1075)
    }
}

/// Same decomposition for `f32`.
#[inline]
fn decompose_f32(v: f32) -> (bool, u128, i32) {
    let bits = v.to_bits();
    let neg = bits >> 31 != 0;
    let e = ((bits >> 23) & 0xFF) as i32;
    let frac = bits & ((1u32 << 23) - 1);
    if e == 0 {
        (neg, frac as u128, -149)
    } else {
        (neg, (frac | (1 << 23)) as u128, e - 150)
    }
}

impl Half {
    /// Converts an `f64` to binary16 with a single round-to-nearest-even.
    ///
    /// ```rust
    /// use mpr_softfloat::Half;
    /// assert_eq!(Half::from_f64(1.0), Half::ONE);
    /// assert!(Half::from_f64(1e9).is_infinite());
    /// assert_eq!(Half::from_f64(-0.0).to_bits(), 0x8000);
    /// ```
    pub fn from_f64(v: f64) -> Half {
        if v.is_nan() {
            let sign = if v.is_sign_negative() { 0x8000 } else { 0 };
            return Half(sign | Half::NAN.0);
        }
        if v.is_infinite() {
            return if v > 0.0 {
                Half::INFINITY
            } else {
                Half::NEG_INFINITY
            };
        }
        let (neg, mag, lsb_exp) = decompose_f64(v);
        let bits = round_pack_f16(mag, lsb_exp);
        Half(if neg { bits | 0x8000 } else { bits })
    }

    /// Converts an `f32` to binary16 with a single round-to-nearest-even.
    pub fn from_f32(v: f32) -> Half {
        if v.is_nan() {
            let sign = if v.is_sign_negative() { 0x8000 } else { 0 };
            return Half(sign | Half::NAN.0);
        }
        if v.is_infinite() {
            return if v > 0.0 {
                Half::INFINITY
            } else {
                Half::NEG_INFINITY
            };
        }
        let (neg, mag, lsb_exp) = decompose_f32(v);
        let bits = round_pack_f16(mag, lsb_exp);
        Half(if neg { bits | 0x8000 } else { bits })
    }

    /// Exact widening conversion to `f32`.
    pub fn to_f32(self) -> f32 {
        let sign = if self.is_sign_negative() {
            -1.0f32
        } else {
            1.0
        };
        match (self.exp_field(), self.frac_field()) {
            (0, 0) => sign * 0.0,
            // Subnormal: frac * 2^-24, exact in f32.
            (0, f) => sign * f as f32 * f32::from_bits(0x3380_0000), // 2^-24
            (0x1F, 0) => sign * f32::INFINITY,
            (0x1F, _) => f32::NAN,
            (e, f) => {
                // (1024 + f) * 2^(e - 25); both factors exact in f32.
                let sig = (1024 + f) as f32;
                sign * sig * exp2_f32(e as i32 - 25)
            }
        }
    }

    /// Exact widening conversion to `f64`.
    pub fn to_f64(self) -> f64 {
        let sign = if self.is_sign_negative() {
            -1.0f64
        } else {
            1.0
        };
        match (self.exp_field(), self.frac_field()) {
            (0, 0) => sign * 0.0,
            (0, f) => sign * f as f64 * 2f64.powi(-24),
            (0x1F, 0) => sign * f64::INFINITY,
            (0x1F, _) => f64::NAN,
            (e, f) => sign * (1024 + f) as f64 * 2f64.powi(e as i32 - 25),
        }
    }
}

/// Exact `2^n` as `f32` for the exponent range reachable from binary16.
#[inline]
fn exp2_f32(n: i32) -> f32 {
    debug_assert!((-126..=127).contains(&n));
    f32::from_bits(((n + 127) as u32) << 23)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widening_is_exact_for_all_bit_patterns() {
        for bits in 0u16..=u16::MAX {
            let h = Half::from_bits(bits);
            if h.is_nan() {
                assert!(h.to_f32().is_nan());
                assert!(h.to_f64().is_nan());
                continue;
            }
            let f32v = h.to_f32();
            let f64v = h.to_f64();
            assert_eq!(f32v as f64, f64v, "bits {bits:#06x}");
            // Round-tripping a widened value must be the identity.
            assert_eq!(Half::from_f32(f32v).to_bits(), bits, "f32 trip {bits:#06x}");
            assert_eq!(Half::from_f64(f64v).to_bits(), bits, "f64 trip {bits:#06x}");
        }
    }

    #[test]
    fn known_constants() {
        assert_eq!(Half::from_f64(1.0).to_bits(), 0x3C00);
        assert_eq!(Half::from_f64(-2.0).to_bits(), 0xC000);
        assert_eq!(Half::from_f64(65504.0).to_bits(), 0x7BFF);
        assert_eq!(Half::from_f64(2f64.powi(-14)).to_bits(), 0x0400);
        assert_eq!(Half::from_f64(2f64.powi(-24)).to_bits(), 0x0001);
        assert_eq!(Half::from_f64(0.5).to_bits(), 0x3800);
        assert_eq!(Half::from_f64(0.333251953125).to_bits(), 0x3555);
    }

    #[test]
    fn rounding_to_nearest_even() {
        // 2049 is exactly between 2048 and 2050 (ULP = 2 at this scale);
        // RNE picks the even significand 2048.
        assert_eq!(Half::from_f64(2049.0).to_f64(), 2048.0);
        // 2051 is between 2050 and 2052; picks 2052 (even).
        assert_eq!(Half::from_f64(2051.0).to_f64(), 2052.0);
        // Just above the tie must round up.
        assert_eq!(Half::from_f64(2049.0001).to_f64(), 2050.0);
    }

    #[test]
    fn overflow_and_underflow() {
        // Largest value that still rounds to MAX: halfway to 65536 is 65520.
        assert_eq!(Half::from_f64(65519.999).to_bits(), 0x7BFF);
        assert!(Half::from_f64(65520.0).is_infinite()); // tie rounds to even=Inf
        assert!(Half::from_f64(1e30).is_infinite());
        // Half the smallest subnormal is a tie with zero: rounds to 0 (even).
        assert_eq!(Half::from_f64(2f64.powi(-25)).to_bits(), 0x0000);
        assert_eq!(Half::from_f64(2f64.powi(-25) * 1.0001).to_bits(), 0x0001);
        assert_eq!(Half::from_f64(-2f64.powi(-26)).to_bits(), 0x8000);
    }

    #[test]
    fn double_rounding_trap_is_avoided() {
        // This value rounds to a binary16 tie when first rounded to f32,
        // which would then round-to-even the wrong way. 1 + 2^-11 + 2^-26
        // must round UP to 1 + 2^-10 in one step.
        let v = 1.0 + 2f64.powi(-11) + 2f64.powi(-26);
        assert_eq!(Half::from_f64(v).to_bits(), 0x3C01);
        // Whereas the exact tie rounds down to even.
        assert_eq!(Half::from_f64(1.0 + 2f64.powi(-11)).to_bits(), 0x3C00);
    }

    #[test]
    fn nan_and_inf_conversions() {
        assert!(Half::from_f64(f64::NAN).is_nan());
        assert_eq!(Half::from_f64(f64::INFINITY), Half::INFINITY);
        assert_eq!(Half::from_f64(f64::NEG_INFINITY), Half::NEG_INFINITY);
        assert!(Half::from_f32(f32::NAN).is_nan());
    }

    #[test]
    fn signed_zero_is_preserved() {
        assert_eq!(Half::from_f64(0.0).to_bits(), 0x0000);
        assert_eq!(Half::from_f64(-0.0).to_bits(), 0x8000);
        assert_eq!(
            Half::from_bits(0x8000).to_f64().to_bits(),
            (-0.0f64).to_bits()
        );
    }

    #[test]
    fn from_f32_matches_from_f64_for_f32_inputs() {
        // f32 -> f16 and (f32 as f64) -> f16 must agree everywhere.
        let mut x = 1.0f32;
        for i in 0..20_000u32 {
            x = x * 1.001 + i as f32 * 1e-6;
            if !x.is_finite() {
                break;
            }
            assert_eq!(Half::from_f32(x), Half::from_f64(x as f64), "x={x}");
            assert_eq!(Half::from_f32(-x), Half::from_f64(-(x as f64)));
        }
    }
}
