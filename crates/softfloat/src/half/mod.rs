//! The [`Half`] binary16 type.

mod arith;
mod convert;
mod fma;
mod ops;

pub(crate) use convert::round_pack_f16;
pub use ops::ParseHalfError;

use core::num::FpCategory;

/// An IEEE-754 binary16 ("half precision") floating-point number.
///
/// Layout: 1 sign bit, 5 exponent bits (bias 15), 10 fraction bits.
/// All arithmetic is correctly rounded to nearest-even, including gradual
/// underflow to subnormals. Addition, subtraction, multiplication, division
/// and square root are computed through `f32` — with 24 significand bits
/// `f32` satisfies the `p' >= 2p + 2` double-rounding-innocuity bound for
/// 11-bit operands (Figueroa, 1995), so the results are identical to a
/// direct single rounding. The fused multiply-add is computed with exact
/// 128-bit integer arithmetic and rounded once (see [`Half::mul_add`]).
///
/// # Example
///
/// ```rust
/// use mpr_softfloat::Half;
///
/// let a = Half::from_f32(1.5);
/// let b = Half::from_f32(2.25);
/// assert_eq!((a + b).to_f32(), 3.75);
/// assert_eq!(Half::MAX.to_f32(), 65504.0);
/// assert!((Half::MAX + Half::ONE).to_f32().is_infinite() == false); // 65504+1 rounds back to MAX
/// assert!((Half::MAX + Half::MAX).is_infinite());
/// ```
#[derive(Clone, Copy, Default)]
pub struct Half(u16);

impl PartialEq for Half {
    /// IEEE value equality: `NaN != NaN` and `+0 == -0`.
    #[inline]
    fn eq(&self, other: &Half) -> bool {
        self.to_f32() == other.to_f32()
    }
}

impl PartialOrd for Half {
    #[inline]
    fn partial_cmp(&self, other: &Half) -> Option<core::cmp::Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl Half {
    /// Positive zero.
    pub const ZERO: Half = Half(0x0000);
    /// Negative zero.
    pub const NEG_ZERO: Half = Half(0x8000);
    /// One.
    pub const ONE: Half = Half(0x3C00);
    /// Negative one.
    pub const NEG_ONE: Half = Half(0xBC00);
    /// Two.
    pub const TWO: Half = Half(0x4000);
    /// Positive infinity.
    pub const INFINITY: Half = Half(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: Half = Half(0xFC00);
    /// Canonical quiet NaN.
    pub const NAN: Half = Half(0x7E00);
    /// Largest finite value: `65504.0`.
    pub const MAX: Half = Half(0x7BFF);
    /// Most negative finite value: `-65504.0`.
    pub const MIN: Half = Half(0xFBFF);
    /// Smallest positive normal value: `2^-14`.
    pub const MIN_POSITIVE: Half = Half(0x0400);
    /// Smallest positive subnormal value: `2^-24`.
    pub const MIN_POSITIVE_SUBNORMAL: Half = Half(0x0001);
    /// Machine epsilon: `2^-10`, the gap between 1.0 and the next value.
    pub const EPSILON: Half = Half(0x1400);

    /// Number of significand bits, including the implicit leading bit.
    pub const MANTISSA_DIGITS: u32 = 11;
    /// Exponent bias.
    pub const EXP_BIAS: i32 = 15;

    /// Creates a half from its raw bit pattern.
    ///
    /// ```rust
    /// use mpr_softfloat::Half;
    /// assert_eq!(Half::from_bits(0x3C00), Half::ONE);
    /// ```
    #[inline]
    pub const fn from_bits(bits: u16) -> Half {
        Half(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// The sign bit (`true` for negative, including `-0.0` and negative NaN).
    #[inline]
    pub const fn is_sign_negative(self) -> bool {
        self.0 & 0x8000 != 0
    }

    /// The sign bit complement.
    #[inline]
    pub const fn is_sign_positive(self) -> bool {
        !self.is_sign_negative()
    }

    /// Raw biased exponent field (0..=31).
    #[inline]
    pub(crate) const fn exp_field(self) -> u16 {
        (self.0 >> 10) & 0x1F
    }

    /// Raw fraction field (10 bits).
    #[inline]
    pub(crate) const fn frac_field(self) -> u16 {
        self.0 & 0x3FF
    }

    /// `true` if the value is NaN.
    #[inline]
    pub const fn is_nan(self) -> bool {
        self.exp_field() == 0x1F && self.frac_field() != 0
    }

    /// `true` if the value is positive or negative infinity.
    #[inline]
    pub const fn is_infinite(self) -> bool {
        self.exp_field() == 0x1F && self.frac_field() == 0
    }

    /// `true` if the value is neither infinite nor NaN.
    #[inline]
    pub const fn is_finite(self) -> bool {
        self.exp_field() != 0x1F
    }

    /// `true` if the value is subnormal (nonzero with a zero exponent field).
    #[inline]
    pub const fn is_subnormal(self) -> bool {
        self.exp_field() == 0 && self.frac_field() != 0
    }

    /// `true` if the value is `+0.0` or `-0.0`.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 & 0x7FFF == 0
    }

    /// Floating-point category of the value.
    pub const fn classify(self) -> FpCategory {
        match (self.exp_field(), self.frac_field()) {
            (0, 0) => FpCategory::Zero,
            (0, _) => FpCategory::Subnormal,
            (0x1F, 0) => FpCategory::Infinite,
            (0x1F, _) => FpCategory::Nan,
            _ => FpCategory::Normal,
        }
    }

    /// Absolute value (clears the sign bit; works on NaN payloads too).
    #[inline]
    pub const fn abs(self) -> Half {
        Half(self.0 & 0x7FFF)
    }

    /// Sign of the value: `1.0`, `-1.0`, or NaN for NaN input.
    pub fn signum(self) -> Half {
        if self.is_nan() {
            Half::NAN
        } else if self.is_sign_negative() {
            Half::NEG_ONE
        } else {
            Half::ONE
        }
    }

    /// Returns a value with the magnitude of `self` and the sign of `sign`.
    #[inline]
    pub const fn copysign(self, sign: Half) -> Half {
        Half((self.0 & 0x7FFF) | (sign.0 & 0x8000))
    }

    /// IEEE-754 `maximumNumber`: NaN loses against a number.
    pub fn max(self, other: Half) -> Half {
        if self.is_nan() {
            other
        } else if other.is_nan() || self.to_f32() >= other.to_f32() {
            self
        } else {
            other
        }
    }

    /// IEEE-754 `minimumNumber`: NaN loses against a number.
    pub fn min(self, other: Half) -> Half {
        if self.is_nan() {
            other
        } else if other.is_nan() || self.to_f32() <= other.to_f32() {
            self
        } else {
            other
        }
    }

    /// Total ordering over bit patterns per IEEE-754 `totalOrder`.
    ///
    /// Useful for sorting slices that may contain NaN.
    pub fn total_cmp(&self, other: &Half) -> core::cmp::Ordering {
        // Flip negative values so the bit patterns order like the values.
        fn key(h: Half) -> i32 {
            let b = h.0 as i32;
            if b & 0x8000 != 0 {
                // Map -0 to -1, -max to more negative: IEEE totalOrder
                // places -0 strictly below +0.
                0x7FFF - b
            } else {
                b
            }
        }
        key(*self).cmp(&key(*other))
    }

    /// Flips bit `bit` (0 = LSB of the fraction, 15 = sign) of the
    /// representation — the elementary fault model of the study.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 16`.
    #[inline]
    pub fn flip_bit(self, bit: u32) -> Half {
        assert!(bit < 16, "binary16 has 16 bits, got bit index {bit}");
        Half(self.0 ^ (1 << bit))
    }
}
