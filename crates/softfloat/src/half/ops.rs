//! Operator, formatting, and parsing implementations for [`Half`].

use super::Half;
use core::fmt;
use core::iter::{Product, Sum};
use core::ops::{
    Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Rem, RemAssign, Sub, SubAssign,
};
use core::str::FromStr;

impl Add for Half {
    type Output = Half;
    #[inline]
    fn add(self, rhs: Half) -> Half {
        self.add_impl(rhs)
    }
}

impl Sub for Half {
    type Output = Half;
    #[inline]
    fn sub(self, rhs: Half) -> Half {
        self.sub_impl(rhs)
    }
}

impl Mul for Half {
    type Output = Half;
    #[inline]
    fn mul(self, rhs: Half) -> Half {
        self.mul_impl(rhs)
    }
}

impl Div for Half {
    type Output = Half;
    #[inline]
    fn div(self, rhs: Half) -> Half {
        self.div_impl(rhs)
    }
}

impl Rem for Half {
    type Output = Half;
    #[inline]
    fn rem(self, rhs: Half) -> Half {
        self.rem_impl(rhs)
    }
}

impl Neg for Half {
    type Output = Half;
    #[inline]
    fn neg(self) -> Half {
        Half::from_bits(self.to_bits() ^ 0x8000)
    }
}

impl AddAssign for Half {
    #[inline]
    fn add_assign(&mut self, rhs: Half) {
        *self = *self + rhs;
    }
}

impl SubAssign for Half {
    #[inline]
    fn sub_assign(&mut self, rhs: Half) {
        *self = *self - rhs;
    }
}

impl MulAssign for Half {
    #[inline]
    fn mul_assign(&mut self, rhs: Half) {
        *self = *self * rhs;
    }
}

impl DivAssign for Half {
    #[inline]
    fn div_assign(&mut self, rhs: Half) {
        *self = *self / rhs;
    }
}

impl RemAssign for Half {
    #[inline]
    fn rem_assign(&mut self, rhs: Half) {
        *self = *self % rhs;
    }
}

impl Sum for Half {
    fn sum<I: Iterator<Item = Half>>(iter: I) -> Half {
        iter.fold(Half::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a Half> for Half {
    fn sum<I: Iterator<Item = &'a Half>>(iter: I) -> Half {
        iter.copied().sum()
    }
}

impl Product for Half {
    fn product<I: Iterator<Item = Half>>(iter: I) -> Half {
        iter.fold(Half::ONE, Mul::mul)
    }
}

impl fmt::Display for Half {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl fmt::Debug for Half {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}f16", self.to_f32())
    }
}

impl fmt::LowerHex for Half {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.to_bits(), f)
    }
}

impl fmt::UpperHex for Half {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.to_bits(), f)
    }
}

impl fmt::Binary for Half {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.to_bits(), f)
    }
}

impl From<Half> for f32 {
    fn from(h: Half) -> f32 {
        h.to_f32()
    }
}

impl From<Half> for f64 {
    fn from(h: Half) -> f64 {
        h.to_f64()
    }
}

impl From<f32> for Half {
    fn from(v: f32) -> Half {
        Half::from_f32(v)
    }
}

impl From<f64> for Half {
    fn from(v: f64) -> Half {
        Half::from_f64(v)
    }
}

impl From<i8> for Half {
    fn from(v: i8) -> Half {
        Half::from_f32(v as f32)
    }
}

impl From<u8> for Half {
    fn from(v: u8) -> Half {
        Half::from_f32(v as f32)
    }
}

/// Error returned when parsing a [`Half`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseHalfError(());

impl fmt::Display for ParseHalfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid binary16 literal")
    }
}

impl std::error::Error for ParseHalfError {}

impl FromStr for Half {
    type Err = ParseHalfError;

    /// Parses through `f64` then narrows. The parse itself is correctly
    /// rounded to 53 bits; the subsequent narrowing is a second rounding,
    /// which is innocuous here because 53 >= 2*11 + 2.
    fn from_str(s: &str) -> Result<Half, ParseHalfError> {
        s.parse::<f64>()
            .map(Half::from_f64)
            .map_err(|_| ParseHalfError(()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_smoke() {
        let a = Half::from_f32(5.0);
        let b = Half::from_f32(2.0);
        assert_eq!((a + b).to_f32(), 7.0);
        assert_eq!((a - b).to_f32(), 3.0);
        assert_eq!((a * b).to_f32(), 10.0);
        assert_eq!((a / b).to_f32(), 2.5);
        assert_eq!((a % b).to_f32(), 1.0);
        assert_eq!((-a).to_f32(), -5.0);
        let mut c = a;
        c += b;
        c -= Half::ONE;
        c *= b;
        c /= b;
        assert_eq!(c.to_f32(), 6.0);
    }

    #[test]
    fn neg_flips_only_the_sign_bit() {
        assert_eq!((-Half::ZERO).to_bits(), 0x8000);
        assert_eq!((-Half::NAN).to_bits(), Half::NAN.to_bits() | 0x8000);
        assert_eq!(-(-Half::ONE), Half::ONE);
    }

    #[test]
    fn sum_and_product() {
        let xs = [1.0f32, 2.0, 3.0, 4.0].map(Half::from_f32);
        assert_eq!(xs.iter().copied().sum::<Half>().to_f32(), 10.0);
        assert_eq!(xs.iter().copied().product::<Half>().to_f32(), 24.0);
        assert_eq!(xs.iter().sum::<Half>().to_f32(), 10.0);
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(Half::from_f32(1.5).to_string(), "1.5");
        assert_eq!(format!("{:?}", Half::from_f32(1.5)), "1.5f16");
        assert_eq!(format!("{:x}", Half::ONE), "3c00");
        assert_eq!(format!("{:b}", Half::ONE), "11110000000000");
    }

    #[test]
    fn parse_round_trips() {
        assert_eq!("1.5".parse::<Half>().unwrap(), Half::from_f32(1.5));
        assert_eq!("-0.25".parse::<Half>().unwrap(), Half::from_f32(-0.25));
        assert!("bogus".parse::<Half>().is_err());
        assert!("inf".parse::<Half>().unwrap().is_infinite());
    }

    #[test]
    fn conversion_traits() {
        let h: Half = 0.75f32.into();
        let back: f32 = h.into();
        assert_eq!(back, 0.75);
        let h64: Half = 0.75f64.into();
        let back64: f64 = h64.into();
        assert_eq!(back64, 0.75);
        assert_eq!(Half::from(3u8).to_f32(), 3.0);
        assert_eq!(Half::from(-3i8).to_f32(), -3.0);
    }

    #[test]
    fn nan_comparison_semantics() {
        assert!(Half::NAN != Half::NAN);
        assert_eq!(Half::NAN.partial_cmp(&Half::ONE), None);
        assert_eq!(Half::ONE.partial_cmp(&Half::NAN), None);
        assert_eq!(Half::ZERO, Half::NEG_ZERO); // IEEE: +0 == -0
    }

    #[test]
    fn total_cmp_orders_everything() {
        use core::cmp::Ordering;
        let mut v = [
            Half::INFINITY,
            Half::NEG_INFINITY,
            Half::ONE,
            Half::NEG_ONE,
            Half::ZERO,
            Half::NEG_ZERO,
        ];
        v.sort_by(Half::total_cmp);
        let expect = [
            Half::NEG_INFINITY,
            Half::NEG_ONE,
            Half::NEG_ZERO,
            Half::ZERO,
            Half::ONE,
            Half::INFINITY,
        ];
        for (a, b) in v.iter().zip(expect.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(Half::ONE.total_cmp(&Half::ONE), Ordering::Equal);
    }
}
