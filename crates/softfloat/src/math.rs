//! In-precision transcendental functions.
//!
//! The paper attributes the inverted criticality of LavaMD on the Xeon Phi
//! (single tolerates faults *better* than double, Section 5.3) to the
//! transcendental exponential: the double-precision evaluation runs a
//! deeper polynomial, so more in-flight intermediate values exist and a
//! corrupted term is amplified through more multiply-accumulate steps. To
//! reproduce that mechanism instead of hard-coding it, `exp` here is an
//! argument-reduction + Horner evaluation whose every operation is rounded
//! in the target precision and whose polynomial degree grows with the
//! precision, like real libm kernels (cf. Harrison et al., "The
//! computation of transcendental functions on the IA-64 architecture").

use crate::{FloatExt, Precision};

/// Number of polynomial terms the in-precision `exp` evaluates.
///
/// Chosen as the minimal Taylor depth whose truncation error on the
/// reduced interval `|r| <= ln(2)/2` is below the format's epsilon.
pub const fn exp_terms(precision: Precision) -> usize {
    match precision {
        Precision::Half => 5,    // error ~4e-5 < 2^-10
        Precision::Single => 8,  // error ~5e-9 < 2^-23
        Precision::Double => 14, // error ~4e-18 < 2^-52
    }
}

/// `exp(x)` by argument reduction and an in-precision Horner polynomial.
///
/// Accuracy: a few ULP of the target precision over the format's finite
/// range (verified by the tests below); overflow saturates to `+inf`,
/// deep underflow to `+0`.
///
/// # Example
///
/// ```rust
/// use mpr_softfloat::{math::exp_poly, Half};
/// let e = exp_poly(Half::from_f64(1.0)).to_f64();
/// assert!((e - std::f64::consts::E).abs() < 3e-3);
/// ```
pub fn exp_poly<F: FloatExt>(x: F) -> F {
    if x.is_nan() {
        return x;
    }
    if x.is_infinite() {
        return if x.to_f64() > 0.0 { x } else { F::zero() };
    }

    // Saturate outside the format's representable range *before* the
    // reduction: for inputs like -f16::MAX the reduction itself would
    // overflow in-precision and poison the polynomial.
    let (ovf, udf) = match F::PRECISION {
        Precision::Half => (12.0, -18.0),
        Precision::Single => (90.0, -106.0),
        Precision::Double => (710.0, -746.0),
    };
    let xf = x.to_f64();
    if xf > ovf {
        return F::from_f64(f64::INFINITY);
    }
    if xf < udf {
        return F::zero();
    }

    // Reduction: x = n*ln2 + r, |r| <= ln2/2.
    let log2e = F::from_f64(std::f64::consts::LOG2_E);
    let n = (x * log2e).to_f64().round() as i32;

    // Two-part ln2 keeps the reduction accurate in-precision: the hi part
    // is exact in every format (top bits only), so x - n*hi is computed
    // without cancellation noise, then the lo correction is applied.
    let (ln2_hi, ln2_lo) = match F::PRECISION {
        Precision::Half => (0.693359375, -2.1219444005469057e-4),
        Precision::Single => (0.693145751953125, 1.4286067653301193e-6),
        Precision::Double => (0.6931471803691238, 1.9082149292705877e-10),
    };
    let nf = F::from_f64(n as f64);
    let r = (x - nf * F::from_f64(ln2_hi)) - nf * F::from_f64(ln2_lo);

    // Horner evaluation of the truncated Taylor series, entirely in F.
    let terms = exp_terms(F::PRECISION);
    let mut acc = F::zero();
    for k in (1..=terms).rev() {
        // 1/k! is rounded once into F, like a libm coefficient table.
        let coeff = F::from_f64(1.0 / factorial(k as u32));
        acc = acc.mul_add(r, coeff);
    }
    let p = acc.mul_add(r, F::one());

    p.ldexp(n)
}

/// `k!` as an `f64`, exact for every `k` whose factorial fits the
/// integer path. `1..=20` accumulates in checked `u64` arithmetic
/// (`20!` is the last factorial below `2^64`); from the first multiply
/// that would overflow (`k >= 21`) the product continues in `f64`. The
/// integer prefix keeps every in-range coefficient exactly rounded
/// instead of compounding `f64` rounding through the running product.
fn factorial(k: u32) -> f64 {
    let mut exact: u64 = 1;
    for m in 1..=u64::from(k) {
        match exact.checked_mul(m) {
            Some(next) => exact = next,
            None => {
                // Overflow at factor `m`: continue the remaining
                // product in f64 from the exact prefix.
                let mut approx = exact as f64;
                for f in m..=u64::from(k) {
                    approx *= f as f64;
                }
                return approx;
            }
        }
    }
    exact as f64
}

/// Number of atanh-series terms the in-precision `ln` evaluates.
pub const fn ln_terms(precision: Precision) -> usize {
    match precision {
        Precision::Half => 3,    // |t| <= 0.172: t^7/7 ~ 2e-6 < 2^-10 comfortably
        Precision::Single => 6,  // t^13/13 ~ 8e-12 < 2^-23
        Precision::Double => 10, // t^21/21 ~ 4e-17 < 2^-52
    }
}

/// `ln(x)` by exponent extraction and an in-precision atanh series.
///
/// Reduction: `x = m * 2^k` with `m` in `[sqrt(2)/2, sqrt(2))`, then
/// `ln x = k*ln2 + 2*atanh((m-1)/(m+1))` with the series evaluated in
/// `F`. Domain edges follow IEEE `log`: `ln(0) = -inf`, negative inputs
/// are NaN.
///
/// # Example
///
/// ```rust
/// use mpr_softfloat::{math::ln_poly, Half};
/// let l = ln_poly(Half::from_f64(2.0)).to_f64();
/// assert!((l - std::f64::consts::LN_2).abs() < 2e-3);
/// assert!(ln_poly(0.0f64).is_infinite());
/// assert!(ln_poly(-1.0f64).is_nan());
/// ```
pub fn ln_poly<F: FloatExt>(x: F) -> F {
    let xf = x.to_f64();
    if x.is_nan() || xf < 0.0 {
        return F::from_f64(f64::NAN);
    }
    if xf == 0.0 {
        return F::from_f64(f64::NEG_INFINITY);
    }
    if x.is_infinite() {
        return x;
    }
    // Exponent extraction (exact: only powers of two move between m and k).
    let mut k = xf.log2().floor() as i32;
    let mut m = x.ldexp(-k);
    if m.to_f64() >= std::f64::consts::SQRT_2 {
        m = m.ldexp(-1);
        k += 1;
    }
    // atanh series in precision.
    let t = (m - F::one()) / (m + F::one());
    let t2 = t * t;
    let mut acc = F::zero();
    for j in (0..ln_terms(F::PRECISION)).rev() {
        let coeff = F::from_f64(1.0 / (2 * j + 3) as f64);
        acc = acc.mul_add(t2, coeff);
    }
    let series = (acc * t2).mul_add(t, t); // t + t^3/3 + t^5/5 + ...
    let two = F::from_f64(2.0);
    let ln2 = F::from_f64(std::f64::consts::LN_2);
    F::from_f64(k as f64).mul_add(ln2, two * series)
}

/// `tanh(x)` via the in-precision exponential:
/// `(exp(2x) - 1) / (exp(2x) + 1)`, saturating to ±1.
///
/// ```rust
/// use mpr_softfloat::math::tanh_poly;
/// assert!((tanh_poly(1.0f64) - 1.0f64.tanh()).abs() < 1e-12);
/// assert_eq!(tanh_poly(100.0f32), 1.0);
/// ```
pub fn tanh_poly<F: FloatExt>(x: F) -> F {
    if x.is_nan() {
        return x;
    }
    let xf = x.to_f64();
    if xf > 20.0 {
        return F::one();
    }
    if xf < -20.0 {
        return -F::one();
    }
    let e2 = exp_poly(x + x);
    (e2 - F::one()) / (e2 + F::one())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Half;

    #[test]
    fn exp_double_accuracy() {
        for i in -600..=600 {
            let x = i as f64 * 0.5;
            let got = exp_poly(x);
            let want = x.exp();
            if want.is_infinite() || want == 0.0 {
                assert_eq!(got, want, "x={x}");
            } else {
                let rel = ((got - want) / want).abs();
                assert!(rel < 1e-14, "x={x} got={got} want={want} rel={rel}");
            }
        }
    }

    #[test]
    fn exp_single_accuracy() {
        for i in -160..=160 {
            let x = i as f32 * 0.5;
            let got = exp_poly(x);
            let want = (x as f64).exp() as f32;
            if want.is_infinite() || want == 0.0 {
                continue;
            }
            let rel = ((got - want) / want).abs();
            assert!(rel < 1e-5, "x={x} got={got} want={want}");
        }
    }

    #[test]
    fn exp_half_accuracy() {
        for i in -20..=20 {
            let x = Half::from_f64(i as f64 * 0.5);
            let got = exp_poly(x).to_f64();
            let want = x.to_f64().exp();
            if want > Half::MAX.to_f64() {
                continue;
            }
            let rel = if want == 0.0 {
                got.abs()
            } else {
                ((got - want) / want).abs()
            };
            assert!(rel < 6e-3, "x={x} got={got} want={want}");
        }
    }

    #[test]
    fn exp_specials() {
        assert!(exp_poly(f64::NAN).is_nan());
        assert_eq!(exp_poly(f64::INFINITY), f64::INFINITY);
        assert_eq!(exp_poly(f64::NEG_INFINITY), 0.0);
        assert_eq!(exp_poly(0.0f64), 1.0);
        assert_eq!(exp_poly(Half::ZERO).to_f64(), 1.0);
        // Overflow saturation.
        assert!(exp_poly(Half::from_f64(50.0)).is_infinite());
        assert!(exp_poly(800.0f64).is_infinite());
        assert_eq!(exp_poly(-800.0f64), 0.0);
        // f16::MAX as input must terminate promptly and saturate.
        assert!(exp_poly(Half::MAX).is_infinite());
        assert_eq!(exp_poly(-Half::MAX).to_f64(), 0.0);
    }

    #[test]
    fn factorial_is_exact_through_u64_and_finite_beyond() {
        // Exact integer region: every value a coefficient table can ask
        // for (exp uses k <= 14) and the last u64-representable one.
        assert_eq!(factorial(0), 1.0);
        assert_eq!(factorial(1), 1.0);
        assert_eq!(factorial(12), 479_001_600.0);
        assert_eq!(factorial(14), 87_178_291_200.0);
        assert_eq!(factorial(20), 2_432_902_008_176_640_000u64 as f64);
        // Checked-overflow region (k >= 21 overflows u64): the product
        // continues in f64 without wrapping. 21! = 51090942171709440000.
        assert_eq!(factorial(21), 2_432_902_008_176_640_000u64 as f64 * 21.0);
        assert!(factorial(25) > factorial(24));
        assert!(factorial(170).is_finite());
        assert_eq!(factorial(171), f64::INFINITY); // beyond f64 range, no panic
    }

    #[test]
    fn exp_series_terms_are_pinned() {
        // The deepest coefficient any precision evaluates (k = 14 for
        // double) must stay bit-identical: a factorial change that moved
        // it would silently move every golden output downstream.
        assert_eq!(
            (1.0 / factorial(14)).to_bits(),
            (1.0f64 / 87_178_291_200.0).to_bits()
        );
        assert_eq!((1.0 / factorial(8)).to_bits(), (1.0f64 / 40320.0).to_bits());
        assert_eq!((1.0 / factorial(5)).to_bits(), (1.0f64 / 120.0).to_bits());
    }

    #[test]
    fn term_counts_grow_with_precision() {
        assert!(exp_terms(Precision::Half) < exp_terms(Precision::Single));
        assert!(exp_terms(Precision::Single) < exp_terms(Precision::Double));
        assert!(ln_terms(Precision::Half) < ln_terms(Precision::Double));
    }

    #[test]
    fn ln_double_accuracy() {
        for i in 1..=400 {
            let x = i as f64 * 0.11;
            let got = ln_poly(x);
            let want = x.ln();
            assert!(
                (got - want).abs() < 1e-14 * want.abs().max(1.0),
                "x={x} got={got} want={want}"
            );
        }
        // Wide dynamic range.
        for e in [-300, -30, 30, 300] {
            let x = 2f64.powi(e) * 1.37;
            assert!((ln_poly(x) - x.ln()).abs() < 1e-12 * x.ln().abs());
        }
    }

    #[test]
    fn ln_half_accuracy() {
        for i in 1..=40 {
            let x = Half::from_f64(i as f64 * 0.4);
            let got = ln_poly(x).to_f64();
            let want = x.to_f64().ln();
            assert!(
                (got - want).abs() < 4e-3 * want.abs().max(1.0),
                "x={x} got={got} want={want}"
            );
        }
    }

    #[test]
    fn ln_edge_cases() {
        assert!(ln_poly(f64::NAN).is_nan());
        assert!(ln_poly(-2.0f64).is_nan());
        assert_eq!(ln_poly(0.0f64), f64::NEG_INFINITY);
        assert_eq!(ln_poly(f64::INFINITY), f64::INFINITY);
        assert_eq!(ln_poly(1.0f64), 0.0);
        assert!(ln_poly(Half::ZERO).is_infinite());
    }

    #[test]
    fn tanh_accuracy_and_saturation() {
        for i in -30..=30 {
            let x = i as f64 * 0.2;
            assert!((tanh_poly(x) - x.tanh()).abs() < 1e-12, "x={x}");
        }
        assert_eq!(tanh_poly(25.0f64), 1.0);
        assert_eq!(tanh_poly(-25.0f64), -1.0);
        assert!(tanh_poly(f32::NAN).is_nan());
        let h = tanh_poly(Half::from_f64(0.5)).to_f64();
        assert!((h - 0.5f64.tanh()).abs() < 2e-3);
    }

    #[test]
    fn tanh_is_odd_to_within_rounding() {
        // The exp-based formula is not bit-exactly odd (the two
        // reductions round differently), but must agree to a few ULP.
        for i in 1..=20 {
            let x = i as f32 * 0.3;
            let a = tanh_poly(x);
            let b = -tanh_poly(-x);
            assert!(crate::ulp::ulp_distance(a, b) <= 8, "x={x}: {a} vs {b}");
        }
    }
}
