//! ULP distances and the relative-error measure behind the TRE analysis.
//!
//! The paper scores every Silent Data Corruption by how far the corrupted
//! output strays from the expected value, then asks which fraction of SDCs
//! a user tolerating a given relative error would still accept (Tolerated
//! Relative Error, Section 3.2). [`relative_error`] is that measure.

use crate::FloatExt;

/// Relative error `|observed - expected| / |expected|`.
///
/// Edge conventions chosen to make TRE classification conservative:
/// a NaN or infinite observation is *infinitely* wrong; a corrupted value
/// against an expected zero is infinitely wrong unless it is also zero.
///
/// ```rust
/// use mpr_softfloat::ulp::relative_error;
/// assert_eq!(relative_error(101.0, 100.0), 0.01);
/// assert_eq!(relative_error(0.0, 0.0), 0.0);
/// assert_eq!(relative_error(f64::NAN, 1.0), f64::INFINITY);
/// assert_eq!(relative_error(1.0, 0.0), f64::INFINITY);
/// ```
pub fn relative_error(observed: f64, expected: f64) -> f64 {
    if observed.to_bits() == expected.to_bits() {
        return 0.0;
    }
    if !observed.is_finite() || !expected.is_finite() {
        return f64::INFINITY;
    }
    if expected == 0.0 {
        return if observed == 0.0 { 0.0 } else { f64::INFINITY };
    }
    ((observed - expected) / expected).abs()
}

/// Largest relative error across paired elements — the per-run severity of
/// an SDC event. Lengths must match.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_relative_error(observed: &[f64], expected: &[f64]) -> f64 {
    assert_eq!(
        observed.len(),
        expected.len(),
        "output vectors must be the same length"
    );
    observed
        .iter()
        .zip(expected)
        .map(|(&o, &e)| relative_error(o, e))
        .fold(0.0, f64::max)
}

/// Number of representable values between `a` and `b` in the format of
/// `F`, treating the pair symmetrically. NaN against anything is `u64::MAX`.
///
/// ```rust
/// use mpr_softfloat::{ulp::ulp_distance, Half};
/// assert_eq!(ulp_distance(1.0f64, 1.0f64), 0);
/// assert_eq!(ulp_distance(1.0f32, f32::from_bits(1.0f32.to_bits() + 3)), 3);
/// assert_eq!(ulp_distance(Half::ONE, -Half::ONE), 2 * 0x3C00);
/// ```
pub fn ulp_distance<F: FloatExt>(a: F, b: F) -> u64 {
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    let width = F::PRECISION.total_bits();
    let to_ordered = |v: F| -> i64 {
        let bits = v.to_bits_u64() as i64;
        let sign_bit = 1i64 << (width - 1);
        if bits & sign_bit != 0 {
            sign_bit - bits
        } else {
            bits
        }
    };
    // The difference of two ordered keys can exceed i64 (e.g. +inf vs -inf
    // in binary64), so widen before subtracting.
    (to_ordered(a) as i128 - to_ordered(b) as i128).unsigned_abs() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Half;

    #[test]
    fn relative_error_basics() {
        assert_eq!(relative_error(110.0, 100.0), 0.1);
        assert_eq!(relative_error(90.0, 100.0), 0.1);
        assert_eq!(relative_error(-90.0, -100.0), 0.1);
        assert_eq!(relative_error(5.0, 5.0), 0.0);
    }

    #[test]
    fn relative_error_edge_cases() {
        assert_eq!(relative_error(f64::INFINITY, 1.0), f64::INFINITY);
        assert_eq!(relative_error(1.0, f64::NAN), f64::INFINITY);
        assert_eq!(relative_error(0.0, 1.0), 1.0);
        assert_eq!(relative_error(-0.0, 0.0), 0.0); // same value, different bits
                                                    // Identical NaN bit patterns count as "no corruption": the output
                                                    // byte-compares equal to the golden output.
        assert_eq!(relative_error(f64::NAN, f64::NAN), 0.0);
    }

    #[test]
    fn max_relative_error_picks_worst_element() {
        let golden = [1.0, 2.0, 4.0];
        let observed = [1.0, 2.2, 4.0];
        assert!((max_relative_error(&observed, &golden) - 0.1).abs() < 1e-12);
        assert_eq!(max_relative_error(&golden, &golden), 0.0);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn max_relative_error_length_mismatch_panics() {
        let _ = max_relative_error(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn ulp_distance_adjacent_values() {
        let one = 1.0f64;
        let next = f64::from_bits(one.to_bits() + 1);
        assert_eq!(ulp_distance(one, next), 1);
        assert_eq!(ulp_distance(next, one), 1);
        let h1 = Half::ONE;
        let h2 = Half::from_bits(h1.to_bits() + 1);
        assert_eq!(ulp_distance(h1, h2), 1);
    }

    #[test]
    fn ulp_distance_across_zero() {
        // +0 and -0 are adjacent in the ordered mapping (distance 0 would
        // also be defensible; we count the signed-zero gap as 0).
        assert_eq!(ulp_distance(0.0f64, -0.0f64), 0);
        let tiny = f64::from_bits(1);
        assert_eq!(ulp_distance(tiny, -tiny), 2);
    }

    #[test]
    fn ulp_distance_nan() {
        assert_eq!(ulp_distance(f64::NAN, 1.0), u64::MAX);
        assert_eq!(ulp_distance(Half::NAN, Half::ONE), u64::MAX);
    }
}
