//! Autovectorizer-friendly wide binary16 lanes.
//!
//! The scalar [`Half`](crate::Half) operations are exactly rounded but
//! built from branchy decompose/round-pack integer paths (and, for the
//! FMA, `i128` fixed-point arithmetic) that a compiler cannot
//! vectorize. Campaign strike batches spend nearly all of their
//! half-precision time in tight add/mul/FMA loops over independent
//! lanes, so this module provides the same operations over `&[u16]`
//! bit-pattern slices in a branch-free form the autovectorizer maps
//! onto SIMD float units.
//!
//! # Contract
//!
//! Every lane result is **bit-identical to the scalar path**:
//!
//! * [`add`] and [`mul`] equal `Half + Half` / `Half * Half` — both
//!   compute in `f32`, which satisfies Figueroa's `p' >= 2p + 2`
//!   double-rounding-innocuity bound for 11-bit operands, and both
//!   narrow with the same round-to-nearest-even.
//! * [`fma`], [`fma_into`], and [`fma_broadcast`] equal
//!   [`Half::mul_add`](crate::Half::mul_add) — the exact `i128` path.
//!   `f32` is *not* wide enough to fuse (the 22-bit product plus an
//!   aligned addend needs `p' >= 46`; e.g. a product landing exactly
//!   on a binary16 tie with a tiny addend loses the tiebreak in 24
//!   bits), so the lanes run the FMA in `f64` — the widened product is
//!   exact (22 <= 53 bits), a plain `f64` add rounds the exact
//!   product-sum once (53 >= 46) — and narrow `f64 -> f16` directly
//!   with a single rounding.
//! * NaN results are canonicalized exactly as the scalar path does:
//!   widening maps any NaN to the positive quiet `f32::NAN` (like
//!   `Half::to_f32`), add/mul narrow a NaN to `sign | 0x7E00` (like
//!   `Half::from_f32`), and the FMA forms return `0x7E00` for every
//!   NaN case (like `Half::mul_add`).
//!
//! The differential tests below and `tests/wide_lanes.rs` prove the
//! contract exhaustively over the widen/narrow kernels and by
//! property-based sampling over the composed operations.
//!
//! # Shape
//!
//! The slice forms take equal-length inputs and process every element;
//! the fixed-width [`add8`]/[`add16`] (and mul/fma) forms give the
//! compiler a known trip count for full unrolling. Lanes are `u16` bit
//! patterns, not [`Half`](crate::Half) values, because batched kernels
//! keep their fault state as structure-of-arrays bit planes;
//! `Half::to_bits`/`from_bits` are free.

/// Natural lane count for batched kernels: 16 lanes of binary16 fill a
/// 256-bit vector after widening to `f32` pairs on common targets.
pub const LANES: usize = 16;

/// Branch-free exact widening of a binary16 bit pattern to `f32`,
/// bit-identical to `Half::to_f32` (NaNs canonicalize to `f32::NAN`).
#[inline(always)]
fn widen(h: u16) -> f32 {
    let hu = u32::from(h);
    let sign = (hu & 0x8000) << 16;
    let mag = (hu & 0x7FFF) << 13;
    // Bits 23..28 of `mag` hold the binary16 exponent field, so the
    // shifted value reads as 2^-112 times the binary16 value; one exact
    // multiply restores the scale (subnormal halves become normal f32s,
    // the product is always exact).
    let scaled = (f32::from_bits(mag) * f32::from_bits(0x7780_0000)).to_bits();
    let bits = if hu & 0x7C00 != 0x7C00 {
        sign | scaled
    } else if hu & 0x03FF == 0 {
        sign | 0x7F80_0000
    } else {
        f32::NAN.to_bits()
    };
    f32::from_bits(bits)
}

/// Branch-free narrowing of an `f32` to a binary16 bit pattern with a
/// single round-to-nearest-even, bit-identical to `Half::from_f32`.
#[inline(always)]
fn narrow(f: f32) -> u16 {
    let bits = f.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let u = bits & 0x7FFF_FFFF;
    // Normal path: rebase the exponent by -112 and round by nudging
    // with half-ULP-minus-one plus the mantissa-odd bit before the
    // shift; the carry ripples into the exponent field, taking values
    // that round past 65504 to the infinity encoding for free.
    let mant_odd = (u >> 13) & 1;
    let norm = (u
        .wrapping_sub(0x3800_0000)
        .wrapping_add(0xFFF)
        .wrapping_add(mant_odd)
        >> 13) as u16;
    // Subnormal path: adding 0.5 (whose ULP, 2^-24, is the binary16
    // subnormal LSB) makes the f32 adder perform the RNE alignment; the
    // rounded significand then sits in the low mantissa bits.
    let sub = (f32::from_bits(u) + f32::from_bits(0x3F00_0000))
        .to_bits()
        .wrapping_sub(0x3F00_0000) as u16;
    let mag = if u >= 0x4780_0000 {
        // >= 2^16: overflow, infinity, or NaN.
        if u > 0x7F80_0000 {
            0x7E00
        } else {
            0x7C00
        }
    } else if u < 0x3880_0000 {
        // < 2^-14: subnormal or zero.
        sub
    } else {
        norm
    };
    sign | mag
}

/// Branch-free narrowing of an `f64` to a binary16 bit pattern with a
/// single round-to-nearest-even, bit-identical to `Half::from_f64`.
/// Same structure as [`narrow`], rebased: the exponent offset is
/// `1023 - 15 = 1008`, the mantissa drop is `52 - 10 = 42` bits, and
/// the subnormal magic constant is `2^28` (whose ULP is the binary16
/// subnormal LSB `2^-24`).
#[inline(always)]
fn narrow64(f: f64) -> u16 {
    let bits = f.to_bits();
    let sign = ((bits >> 48) & 0x8000) as u16;
    let u = bits & 0x7FFF_FFFF_FFFF_FFFF;
    let mant_odd = (u >> 42) & 1;
    let norm = (u
        .wrapping_sub(1008u64 << 52)
        .wrapping_add((1u64 << 41) - 1)
        .wrapping_add(mant_odd)
        >> 42) as u16;
    let sub = (f64::from_bits(u) + f64::from_bits(1051u64 << 52))
        .to_bits()
        .wrapping_sub(1051u64 << 52) as u16;
    let mag = if u >= 1039u64 << 52 {
        // >= 2^16: overflow, infinity, or NaN.
        if u > 0x7FF0_0000_0000_0000 {
            0x7E00
        } else {
            0x7C00
        }
    } else if u < 1009u64 << 52 {
        // < 2^-14: subnormal or zero.
        sub
    } else {
        norm
    };
    sign | mag
}

/// One FMA lane: exactly `Half::mul_add` on bit patterns. A binary16
/// product has at most 22 significand bits, so the widened `f64`
/// multiply is **exact** (no rounding), and the following `f64` add
/// performs the fused operation's single rounding of the exact
/// product-sum (`p' >= 46 <= 53`) — no `f64::mul_add`, which lowers to
/// a libm call on targets without a hardware FMA unit. [`narrow64`]
/// then applies the one remaining rounding straight to binary16 —
/// never through `f32`, which would double-round.
#[inline(always)]
fn fma_lane(a: u16, b: u16, c: u16) -> u16 {
    let r = f64::from(widen(a)) * f64::from(widen(b)) + f64::from(widen(c));
    if r.is_nan() {
        // The scalar FMA returns the positive canonical NaN for every
        // NaN-producing case; hardware default NaNs may carry a sign.
        0x7E00
    } else {
        narrow64(r)
    }
}

#[inline(always)]
fn check_len(a: usize, b: usize, out: usize) {
    assert!(
        a == b && b == out,
        "wide lanes need equal lengths, got {a}/{b}/{out}"
    );
}

/// Elementwise binary16 addition over bit patterns:
/// `out[i] = a[i] + b[i]`, each lane bit-identical to `Half + Half`.
///
/// # Panics
///
/// Panics if the slice lengths differ.
///
/// ```rust
/// use mpr_softfloat::{wide, Half};
/// let a = [Half::ONE.to_bits(); 4];
/// let b = [Half::TWO.to_bits(); 4];
/// let mut out = [0u16; 4];
/// wide::add(&a, &b, &mut out);
/// assert!(out.iter().all(|&o| Half::from_bits(o).to_f32() == 3.0));
/// ```
#[inline]
pub fn add(a: &[u16], b: &[u16], out: &mut [u16]) {
    check_len(a.len(), b.len(), out.len());
    for ((&x, &y), o) in a.iter().zip(b).zip(out.iter_mut()) {
        *o = narrow(widen(x) + widen(y));
    }
}

/// Elementwise binary16 multiplication over bit patterns:
/// `out[i] = a[i] * b[i]`, each lane bit-identical to `Half * Half`.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[inline]
pub fn mul(a: &[u16], b: &[u16], out: &mut [u16]) {
    check_len(a.len(), b.len(), out.len());
    for ((&x, &y), o) in a.iter().zip(b).zip(out.iter_mut()) {
        *o = narrow(widen(x) * widen(y));
    }
}

/// Elementwise fused multiply-accumulate over bit patterns:
/// `acc[i] = fma(a[i], b[i], acc[i])`, each lane bit-identical to
/// `Half::mul_add`. This is the batched kernels' dot-product step.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[inline]
pub fn fma(a: &[u16], b: &[u16], acc: &mut [u16]) {
    check_len(a.len(), b.len(), acc.len());
    for ((&x, &y), c) in a.iter().zip(b).zip(acc.iter_mut()) {
        *c = fma_lane(x, y, *c);
    }
}

/// Elementwise fused multiply-add into a separate output:
/// `out[i] = fma(a[i], b[i], c[i])`.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[inline]
pub fn fma_into(a: &[u16], b: &[u16], c: &[u16], out: &mut [u16]) {
    check_len(a.len(), b.len(), c.len());
    assert_eq!(c.len(), out.len(), "wide lanes need equal lengths");
    for (((&x, &y), &z), o) in a.iter().zip(b).zip(c).zip(out.iter_mut()) {
        *o = fma_lane(x, y, z);
    }
}

/// Broadcast fused multiply-accumulate:
/// `acc[i] = fma(a, b[i], acc[i])` — the GEMM row-recompute step, where
/// one faulted `A` element multiplies a contiguous `B` row.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[inline]
pub fn fma_broadcast(a: u16, b: &[u16], acc: &mut [u16]) {
    assert_eq!(b.len(), acc.len(), "wide lanes need equal lengths");
    let wa = f64::from(widen(a));
    for (&y, c) in b.iter().zip(acc.iter_mut()) {
        // The widened product is exact (22 <= 53 bits), so mul + add is
        // the fused operation's single rounding — see `fma_lane`.
        let r = wa * f64::from(widen(y)) + f64::from(widen(*c));
        *c = if r.is_nan() { 0x7E00 } else { narrow64(r) };
    }
}

/// Exact widening of a binary16 bit pattern to the `f64` that
/// represents the same value (every binary16 value, including
/// subnormals, is exactly representable; NaNs canonicalize to the
/// positive quiet NaN, matching `Half::to_f32 as f64`).
///
/// This is the pre-widening step for [`fma_widened`] and
/// [`fma_broadcast_widened`]: batched kernels convert an operand matrix
/// once per batch instead of once per lane-step.
#[inline]
pub fn widen64(h: u16) -> f64 {
    f64::from(widen(h))
}

/// [`fma`] with pre-widened multiplicands:
/// `acc[i] = fma(a[i], b[i], acc[i])` where `a` and `b` hold
/// [`widen64`] images of binary16 operands.
///
/// Bit-identical to `Half::mul_add` **only** when every `a[i]`/`b[i]`
/// is a [`widen64`] output — then the `f64` product is exact and the
/// add performs the fused operation's single rounding, exactly as in
/// [`fma`]. Arbitrary `f64` multiplicands round twice and break the
/// contract.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[inline]
pub fn fma_widened(a: &[f64], b: &[f64], acc: &mut [u16]) {
    check_len(a.len(), b.len(), acc.len());
    for ((&x, &y), c) in a.iter().zip(b).zip(acc.iter_mut()) {
        let r = x * y + f64::from(widen(*c));
        *c = if r.is_nan() { 0x7E00 } else { narrow64(r) };
    }
}

/// [`fma_broadcast`] with pre-widened operands:
/// `acc[i] = fma(a, b[i], acc[i])` where `a` and every `b[i]` are
/// [`widen64`] images of binary16 operands. Same exactness contract as
/// [`fma_widened`].
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[inline]
pub fn fma_broadcast_widened(a: f64, b: &[f64], acc: &mut [u16]) {
    assert_eq!(b.len(), acc.len(), "wide lanes need equal lengths");
    for (&y, c) in b.iter().zip(acc.iter_mut()) {
        let r = a * y + f64::from(widen(*c));
        *c = if r.is_nan() { 0x7E00 } else { narrow64(r) };
    }
}

macro_rules! fixed_width {
    ($($(#[$meta:meta])* $name:ident, $slice:ident, $n:literal;)*) => {
        $(
            $(#[$meta])*
            pub fn $name(a: &[u16; $n], b: &[u16; $n]) -> [u16; $n] {
                let mut out = [0u16; $n];
                $slice(a, b, &mut out);
                out
            }
        )*
    };
}

fixed_width! {
    /// Fixed 8-wide [`add`]: a known trip count the compiler unrolls.
    add8, add, 8;
    /// Fixed 16-wide [`add`].
    add16, add, 16;
    /// Fixed 8-wide [`mul`].
    mul8, mul, 8;
    /// Fixed 16-wide [`mul`].
    mul16, mul, 16;
}

/// Fixed 8-wide fused multiply-add: `out[i] = fma(a[i], b[i], c[i])`.
pub fn fma8(a: &[u16; 8], b: &[u16; 8], c: &[u16; 8]) -> [u16; 8] {
    let mut out = [0u16; 8];
    fma_into(a, b, c, &mut out);
    out
}

/// Fixed 16-wide fused multiply-add: `out[i] = fma(a[i], b[i], c[i])`.
pub fn fma16(a: &[u16; 16], b: &[u16; 16], c: &[u16; 16]) -> [u16; 16] {
    let mut out = [0u16; 16];
    fma_into(a, b, c, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Half;

    #[test]
    fn widen_matches_to_f32_for_all_bit_patterns() {
        for bits in 0u16..=u16::MAX {
            let got = widen(bits).to_bits();
            let want = Half::from_bits(bits).to_f32().to_bits();
            assert_eq!(got, want, "bits {bits:#06x}");
        }
    }

    #[test]
    fn narrow_matches_from_f32_around_every_half() {
        // Every binary16 value, nudged by a few f32 ULPs in each
        // direction, crosses every rounding boundary (ties, carries,
        // subnormal threshold, overflow threshold).
        for bits in 0u16..=u16::MAX {
            let h = Half::from_bits(bits);
            if h.is_nan() {
                continue;
            }
            let base = h.to_f32().to_bits();
            for delta in [-2i64, -1, 0, 1, 2] {
                let probe = base as i64 + delta;
                if !(0..=u32::MAX as i64).contains(&probe) {
                    continue;
                }
                let f = f32::from_bits(probe as u32);
                assert_eq!(
                    narrow(f),
                    Half::from_f32(f).to_bits(),
                    "f={f:?} ({probe:#010x})"
                );
            }
        }
    }

    #[test]
    fn narrow_matches_from_f32_on_specials_and_random_patterns() {
        for f in [
            0.0f32,
            -0.0,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            -f32::NAN,
            f32::MIN_POSITIVE,
            f32::MAX,
            65519.999,
            65520.0,
            65521.0,
            -65520.0,
            2f32.powi(-24),
            2f32.powi(-25),
            1.5 * 2f32.powi(-25),
        ] {
            assert_eq!(narrow(f), Half::from_f32(f).to_bits(), "f={f:?}");
        }
        // A cheap xorshift sweep over arbitrary f32 bit patterns.
        let mut x = 0x2545F491_4F6CDD1Du64;
        for _ in 0..200_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let f = f32::from_bits(x as u32);
            assert_eq!(
                narrow(f),
                Half::from_f32(f).to_bits(),
                "f={f:?} ({:#010x})",
                x as u32
            );
        }
    }

    #[test]
    fn narrow64_matches_from_f64_around_every_half() {
        // Same boundary sweep as the f32 narrow test: every binary16
        // value, nudged by a few f64 ULPs, crosses every tie, carry,
        // subnormal threshold, and overflow threshold.
        for bits in 0u16..=u16::MAX {
            let h = Half::from_bits(bits);
            if h.is_nan() {
                continue;
            }
            let base = h.to_f64().to_bits();
            for delta in [-2i128, -1, 0, 1, 2] {
                let probe = base as i128 + delta;
                if !(0..=u64::MAX as i128).contains(&probe) {
                    continue;
                }
                let f = f64::from_bits(probe as u64);
                assert_eq!(
                    narrow64(f),
                    Half::from_f64(f).to_bits(),
                    "f={f:?} ({probe:#018x})"
                );
            }
        }
    }

    #[test]
    fn narrow64_matches_from_f64_on_specials_and_random_patterns() {
        for f in [
            0.0f64,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            -f64::NAN,
            f64::MIN_POSITIVE,
            f64::MAX,
            65519.999,
            // The overflow tie: rounds to infinity under RNE.
            65520.0,
            65521.0,
            -65520.0,
            2f64.powi(-24),
            2f64.powi(-25),
            1.5 * 2f64.powi(-25),
            // Below half the smallest subnormal: rounds to zero.
            2f64.powi(-26),
            2f64.powi(-1000),
        ] {
            assert_eq!(narrow64(f), Half::from_f64(f).to_bits(), "f={f:?}");
        }
        let mut x = 0x9E3779B9_7F4A7C15u64;
        for _ in 0..200_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let f = f64::from_bits(x);
            assert_eq!(
                narrow64(f),
                Half::from_f64(f).to_bits(),
                "f={f:?} ({x:#018x})"
            );
        }
    }

    #[test]
    fn fma_lane_matches_scalar_mul_add_on_grid() {
        let vals: Vec<u16> = (0..=u16::MAX).step_by(251).collect();
        for &a in &vals {
            for &b in &vals {
                for &c in [vals[0], vals[7], vals[31], vals[101], vals[200]].iter() {
                    let got = fma_lane(a, b, c);
                    let want = Half::from_bits(a)
                        .mul_add(Half::from_bits(b), Half::from_bits(c))
                        .to_bits();
                    assert_eq!(got, want, "a={a:#06x} b={b:#06x} c={c:#06x}");
                }
            }
        }
    }

    #[test]
    fn fma_lane_nan_and_zero_sign_cases() {
        let nan = Half::NAN.to_bits();
        let inf = Half::INFINITY.to_bits();
        let zero = Half::ZERO.to_bits();
        let neg_zero = Half::NEG_ZERO.to_bits();
        let one = Half::ONE.to_bits();
        let neg_one = Half::NEG_ONE.to_bits();
        // NaN cases all canonicalize to the positive quiet NaN.
        assert_eq!(fma_lane(nan, one, one), 0x7E00);
        assert_eq!(fma_lane(zero, inf, one), 0x7E00);
        assert_eq!(fma_lane(inf, one, inf | 0x8000), 0x7E00);
        // Zero-sign rules match the scalar FMA.
        for (a, b, c) in [
            (zero, one, zero),
            (neg_zero, one, zero),
            (neg_zero, one, neg_zero),
            (one, one, neg_one),
            (zero, neg_zero, zero),
            (zero, neg_zero, neg_zero),
        ] {
            assert_eq!(
                fma_lane(a, b, c),
                Half::from_bits(a)
                    .mul_add(Half::from_bits(b), Half::from_bits(c))
                    .to_bits(),
                "a={a:#06x} b={b:#06x} c={c:#06x}"
            );
        }
    }

    #[test]
    fn slice_forms_agree_with_scalar_ops() {
        let vals: Vec<u16> = (0..=u16::MAX).step_by(97).collect();
        let n = vals.len();
        let a = &vals[..];
        let b: Vec<u16> = (0..n).map(|i| vals[(i * 31 + 7) % n]).collect();
        let mut sum = vec![0u16; n];
        let mut prod = vec![0u16; n];
        let mut acc: Vec<u16> = (0..n).map(|i| vals[(i * 17 + 3) % n]).collect();
        let acc0 = acc.clone();
        add(a, &b, &mut sum);
        mul(a, &b, &mut prod);
        fma(a, &b, &mut acc);
        for i in 0..n {
            let (x, y) = (Half::from_bits(a[i]), Half::from_bits(b[i]));
            assert_eq!(sum[i], (x + y).to_bits(), "add lane {i}");
            assert_eq!(prod[i], (x * y).to_bits(), "mul lane {i}");
            assert_eq!(
                acc[i],
                x.mul_add(y, Half::from_bits(acc0[i])).to_bits(),
                "fma lane {i}"
            );
        }
    }

    #[test]
    fn broadcast_form_agrees_with_elementwise() {
        let b: Vec<u16> = (0..=u16::MAX).step_by(419).collect();
        let coef = Half::from_f32(1.25).to_bits();
        let mut acc: Vec<u16> = b.iter().rev().copied().collect();
        let acc0 = acc.clone();
        fma_broadcast(coef, &b, &mut acc);
        for i in 0..b.len() {
            assert_eq!(
                acc[i],
                Half::from_bits(coef)
                    .mul_add(Half::from_bits(b[i]), Half::from_bits(acc0[i]))
                    .to_bits(),
                "lane {i}"
            );
        }
    }

    #[test]
    fn widened_forms_agree_with_u16_forms() {
        for bits in 0u16..=u16::MAX {
            let h = Half::from_bits(bits);
            let want = if h.is_nan() {
                f64::from(f32::NAN)
            } else {
                h.to_f64()
            };
            assert_eq!(
                widen64(bits).to_bits(),
                want.to_bits(),
                "widen64 {bits:#06x}"
            );
        }
        let a: Vec<u16> = (0..=u16::MAX).step_by(89).collect();
        let n = a.len();
        let b: Vec<u16> = (0..n).map(|i| a[(i * 43 + 11) % n]).collect();
        let aw: Vec<f64> = a.iter().map(|&h| widen64(h)).collect();
        let bw: Vec<f64> = b.iter().map(|&h| widen64(h)).collect();
        let mut acc: Vec<u16> = (0..n).map(|i| a[(i * 29 + 5) % n]).collect();
        let mut acc_w = acc.clone();
        fma(&a, &b, &mut acc);
        fma_widened(&aw, &bw, &mut acc_w);
        assert_eq!(acc, acc_w, "fma_widened diverged from fma");
        let coef = a[n / 3];
        let mut acc_b: Vec<u16> = b.iter().rev().copied().collect();
        let mut acc_bw = acc_b.clone();
        fma_broadcast(coef, &b, &mut acc_b);
        fma_broadcast_widened(widen64(coef), &bw, &mut acc_bw);
        assert_eq!(acc_b, acc_bw, "fma_broadcast_widened diverged");
    }

    #[test]
    fn fixed_width_forms_match_slice_forms() {
        let a8 = [
            0x3C00u16, 0x8001, 0x7BFF, 0x0400, 0xC000, 0x0001, 0x7C00, 0x3555,
        ];
        let b8 = [
            0x4000u16, 0x3C00, 0x3C00, 0x3800, 0x4200, 0x0002, 0x0000, 0xB555,
        ];
        let mut want = [0u16; 8];
        add(&a8, &b8, &mut want);
        assert_eq!(add8(&a8, &b8), want);
        mul(&a8, &b8, &mut want);
        assert_eq!(mul8(&a8, &b8), want);
        let c8 = [
            0x0000u16, 0x3C00, 0xFBFF, 0x0001, 0x8000, 0x8002, 0x7C00, 0x3555,
        ];
        fma_into(&a8, &b8, &c8, &mut want);
        assert_eq!(fma8(&a8, &b8, &c8), want);

        let a16: [u16; 16] = core::array::from_fn(|i| a8[i % 8] ^ (i as u16) << 8);
        let b16: [u16; 16] = core::array::from_fn(|i| b8[(i + 3) % 8]);
        let c16: [u16; 16] = core::array::from_fn(|i| c8[(i + 5) % 8]);
        let mut want16 = [0u16; 16];
        add(&a16, &b16, &mut want16);
        assert_eq!(add16(&a16, &b16), want16);
        mul(&a16, &b16, &mut want16);
        assert_eq!(mul16(&a16, &b16), want16);
        fma_into(&a16, &b16, &c16, &mut want16);
        assert_eq!(fma16(&a16, &b16, &c16), want16);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn mismatched_lengths_rejected() {
        let mut out = [0u16; 2];
        add(&[0; 3], &[0; 3], &mut out);
    }
}
