//! Runtime precision selection and IEEE-754 format metadata.

use std::fmt;

/// The three IEEE-754 binary formats studied by the paper.
///
/// Every experiment in the study is a sweep over these precisions (the
/// Xeon Phi lacks half-precision hardware, which the architecture model
/// enforces; see `mpr-arch`).
///
/// # Example
///
/// ```rust
/// use mpr_softfloat::Precision;
///
/// assert_eq!(Precision::Half.mantissa_bits(), 10);
/// assert_eq!(Precision::Double.total_bits(), 64);
/// // Probability that a uniformly placed bit flip lands in the mantissa:
/// assert!((Precision::Double.mantissa_fraction() - 52.0 / 64.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Precision {
    /// IEEE-754 binary16: 1 + 5 + 10 bits.
    Half,
    /// IEEE-754 binary32: 1 + 8 + 23 bits.
    Single,
    /// IEEE-754 binary64: 1 + 11 + 52 bits.
    Double,
}

impl Precision {
    /// All precisions, widest first (the order used in the paper's plots).
    pub const ALL: [Precision; 3] = [Precision::Double, Precision::Single, Precision::Half];

    /// Total storage bits of the format.
    pub const fn total_bits(self) -> u32 {
        match self {
            Precision::Half => 16,
            Precision::Single => 32,
            Precision::Double => 64,
        }
    }

    /// Explicit mantissa (fraction) bits, excluding the implicit leading 1.
    pub const fn mantissa_bits(self) -> u32 {
        match self {
            Precision::Half => 10,
            Precision::Single => 23,
            Precision::Double => 52,
        }
    }

    /// Exponent field width in bits.
    pub const fn exponent_bits(self) -> u32 {
        match self {
            Precision::Half => 5,
            Precision::Single => 8,
            Precision::Double => 11,
        }
    }

    /// Exponent bias.
    pub const fn exponent_bias(self) -> i32 {
        match self {
            Precision::Half => 15,
            Precision::Single => 127,
            Precision::Double => 1023,
        }
    }

    /// Machine epsilon of the format (`2^-mantissa_bits`).
    pub fn epsilon(self) -> f64 {
        2f64.powi(-(self.mantissa_bits() as i32))
    }

    /// Fraction of the representation occupied by the mantissa — the
    /// probability that a uniformly random single-bit flip perturbs only
    /// the significand (the driver of the paper's criticality trends).
    pub fn mantissa_fraction(self) -> f64 {
        self.mantissa_bits() as f64 / self.total_bits() as f64
    }

    /// Short lowercase name used in reports: `"double"`, `"single"`, `"half"`.
    pub const fn name(self) -> &'static str {
        match self {
            Precision::Half => "half",
            Precision::Single => "single",
            Precision::Double => "double",
        }
    }

    /// One-letter tag used in compact tables: `d`, `s`, `h`.
    pub const fn tag(self) -> char {
        match self {
            Precision::Half => 'h',
            Precision::Single => 's',
            Precision::Double => 'd',
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Precision {
    type Err = ParsePrecisionError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "half" | "h" | "fp16" | "16" => Ok(Precision::Half),
            "single" | "s" | "float" | "fp32" | "32" => Ok(Precision::Single),
            "double" | "d" | "fp64" | "64" => Ok(Precision::Double),
            _ => Err(ParsePrecisionError(())),
        }
    }
}

/// Error returned when parsing a [`Precision`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePrecisionError(());

impl fmt::Display for ParsePrecisionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("expected one of: double, single, half")
    }
}

impl std::error::Error for ParsePrecisionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_is_consistent() {
        for p in Precision::ALL {
            assert_eq!(
                1 + p.exponent_bits() + p.mantissa_bits(),
                p.total_bits(),
                "{p}: sign + exp + mant must equal width"
            );
            assert_eq!(p.exponent_bias(), (1 << (p.exponent_bits() - 1)) - 1);
            assert!(p.mantissa_fraction() > 0.5);
        }
    }

    #[test]
    fn ordering_is_by_width() {
        assert!(Precision::Half < Precision::Single);
        assert!(Precision::Single < Precision::Double);
        assert_eq!(Precision::ALL[0], Precision::Double);
    }

    #[test]
    fn parse_and_display() {
        assert_eq!("double".parse::<Precision>().unwrap(), Precision::Double);
        assert_eq!("FP16".parse::<Precision>().unwrap(), Precision::Half);
        assert_eq!("32".parse::<Precision>().unwrap(), Precision::Single);
        assert!("quad".parse::<Precision>().is_err());
        assert_eq!(Precision::Single.to_string(), "single");
        assert_eq!(Precision::Double.tag(), 'd');
    }

    #[test]
    fn epsilon_matches_native_types() {
        assert_eq!(Precision::Double.epsilon(), f64::EPSILON);
        assert_eq!(Precision::Single.epsilon(), f32::EPSILON as f64);
        assert_eq!(Precision::Half.epsilon(), 2f64.powi(-10));
    }
}
