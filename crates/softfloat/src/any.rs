//! Dynamically typed float values for the fault injector.

use crate::{FloatExt, Half, Precision};
use std::fmt;

/// A float value whose precision is chosen at runtime.
///
/// The beam simulator and the fault injector handle values of all three
/// precisions uniformly: a strike resolves to "flip bit *k* of this value",
/// whatever its format. `AnyFloat` carries the value together with its
/// format so the flip lands in the correct bit layout.
///
/// # Example
///
/// ```rust
/// use mpr_softfloat::{AnyFloat, Precision};
///
/// let v = AnyFloat::encode(Precision::Half, 1.0);
/// // Flipping the top mantissa bit of binary16 1.0 yields 1.5.
/// assert_eq!(v.flip_bit(9).to_f64(), 1.5);
/// // The same flip on binary64 barely moves the value.
/// let d = AnyFloat::encode(Precision::Double, 1.0);
/// assert_eq!(d.flip_bit(9).to_f64(), 1.0 + 2f64.powi(-43));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnyFloat {
    /// A binary16 value.
    F16(Half),
    /// A binary32 value.
    F32(f32),
    /// A binary64 value.
    F64(f64),
}

impl AnyFloat {
    /// Rounds `v` once into the requested precision.
    pub fn encode(precision: Precision, v: f64) -> AnyFloat {
        match precision {
            Precision::Half => AnyFloat::F16(Half::from_f64(v)),
            Precision::Single => AnyFloat::F32(v as f32),
            Precision::Double => AnyFloat::F64(v),
        }
    }

    /// Builds a value from raw representation bits.
    pub fn from_bits(precision: Precision, bits: u64) -> AnyFloat {
        match precision {
            Precision::Half => AnyFloat::F16(Half::from_bits(bits as u16)),
            Precision::Single => AnyFloat::F32(f32::from_bits(bits as u32)),
            Precision::Double => AnyFloat::F64(f64::from_bits(bits)),
        }
    }

    /// The format of this value.
    pub fn precision(self) -> Precision {
        match self {
            AnyFloat::F16(_) => Precision::Half,
            AnyFloat::F32(_) => Precision::Single,
            AnyFloat::F64(_) => Precision::Double,
        }
    }

    /// Exact widening read-out.
    pub fn to_f64(self) -> f64 {
        match self {
            AnyFloat::F16(h) => h.to_f64(),
            AnyFloat::F32(s) => s as f64,
            AnyFloat::F64(d) => d,
        }
    }

    /// Raw representation bits, zero-extended.
    pub fn to_bits(self) -> u64 {
        match self {
            AnyFloat::F16(h) => h.to_bits() as u64,
            AnyFloat::F32(s) => s.to_bits() as u64,
            AnyFloat::F64(d) => d.to_bits(),
        }
    }

    /// Flips representation bit `bit` — the elementary fault.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is outside the format width.
    pub fn flip_bit(self, bit: u32) -> AnyFloat {
        match self {
            AnyFloat::F16(h) => AnyFloat::F16(h.flip_bit(bit)),
            AnyFloat::F32(s) => AnyFloat::F32(FloatExt::flip_bit(s, bit)),
            AnyFloat::F64(d) => AnyFloat::F64(FloatExt::flip_bit(d, bit)),
        }
    }

    /// `true` if the value is NaN.
    pub fn is_nan(self) -> bool {
        match self {
            AnyFloat::F16(h) => h.is_nan(),
            AnyFloat::F32(s) => s.is_nan(),
            AnyFloat::F64(d) => d.is_nan(),
        }
    }
}

impl fmt::Display for AnyFloat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnyFloat::F16(h) => write!(f, "{h}"),
            AnyFloat::F32(s) => write!(f, "{s}"),
            AnyFloat::F64(d) => write!(f, "{d}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_rounds_once_per_format() {
        let v = 1.0 + 2f64.powi(-11); // binary16 tie
        assert_eq!(AnyFloat::encode(Precision::Half, v).to_f64(), 1.0);
        assert_eq!(AnyFloat::encode(Precision::Single, v).to_f64(), v);
        assert_eq!(AnyFloat::encode(Precision::Double, v).to_f64(), v);
    }

    #[test]
    fn precision_round_trip() {
        for p in Precision::ALL {
            let v = AnyFloat::encode(p, -2.5);
            assert_eq!(v.precision(), p);
            assert_eq!(v.to_f64(), -2.5);
            assert_eq!(AnyFloat::from_bits(p, v.to_bits()), v);
        }
    }

    #[test]
    fn flip_bit_magnitude_depends_on_format() {
        // A flip in the lowest mantissa bit is tiny in double, large in half.
        let d = AnyFloat::encode(Precision::Double, 1.0)
            .flip_bit(0)
            .to_f64();
        let h = AnyFloat::encode(Precision::Half, 1.0).flip_bit(0).to_f64();
        assert!((d - 1.0).abs() < 1e-15);
        assert!((h - 1.0).abs() > 9e-4);
    }

    #[test]
    fn sign_bit_positions() {
        assert_eq!(
            AnyFloat::encode(Precision::Half, 3.0).flip_bit(15).to_f64(),
            -3.0
        );
        assert_eq!(
            AnyFloat::encode(Precision::Single, 3.0)
                .flip_bit(31)
                .to_f64(),
            -3.0
        );
        assert_eq!(
            AnyFloat::encode(Precision::Double, 3.0)
                .flip_bit(63)
                .to_f64(),
            -3.0
        );
    }

    #[test]
    fn exponent_flip_can_create_nan_or_inf() {
        // Flipping the top exponent bit of 1.0 in binary16: e=15 -> e=31,
        // frac=0 -> infinity.
        let v = AnyFloat::encode(Precision::Half, 1.0).flip_bit(14);
        assert!(v.to_f64().is_infinite());
        assert!(!v.is_nan());
    }
}
