//! # mpr-softfloat
//!
//! Bit-exact IEEE-754 floating-point substrate for the mixed-precision
//! reliability study.
//!
//! The paper "Reliability Evaluation of Mixed-Precision Architectures"
//! (HPCA 2019) executes the same kernels in double (binary64), single
//! (binary32), and half (binary16) precision and studies how transient
//! faults propagate in each. Rust has no native `f16` arithmetic, so this
//! crate implements **binary16 from scratch** ([`Half`]): conversions,
//! add/sub/mul/div/rem, square root, and a fused multiply-add computed with
//! exact integer arithmetic. All operations are correctly rounded
//! (round-to-nearest-even), including subnormals, signed zeros, infinities,
//! and NaN propagation.
//!
//! On top of the concrete types the crate provides:
//!
//! * [`FloatExt`] — one trait unifying `f64`, `f32`, and [`Half`] so every
//!   benchmark kernel in the study is written once, generic over precision.
//! * [`Precision`] — runtime precision selector with format metadata.
//! * [`AnyFloat`] — a dynamically typed float value used by the fault
//!   injector to flip bits of a value regardless of its precision.
//! * [`ulp`] — ULP distances and relative-error helpers used by the
//!   Tolerated-Relative-Error (TRE) analysis.
//! * [`math`] — in-precision transcendental functions (polynomial `exp`)
//!   whose intermediate values live in the target precision, mirroring how
//!   GPUs evaluate transcendentals in software (paper, Section 6.3).
//! * [`wide`] — branch-free binary16 add/mul/FMA lanes over `&[u16]` bit
//!   slices, bit-identical to the scalar path but shaped for the
//!   autovectorizer; batched strike execution runs its half-precision
//!   inner loops through them.
//!
//! # Example
//!
//! ```rust
//! use mpr_softfloat::{Half, FloatExt, Precision};
//!
//! // The same dot product at three precisions.
//! fn dot<F: FloatExt>(a: &[F], b: &[F]) -> F {
//!     a.iter().zip(b).fold(F::zero(), |acc, (&x, &y)| acc.mul_add(F::one(), x * y))
//! }
//!
//! let xs64: Vec<f64> = vec![0.1, 0.2, 0.3];
//! let xs16: Vec<Half> = xs64.iter().map(|&v| Half::from_f64(v)).collect();
//! let d64 = dot(&xs64, &xs64);
//! let d16 = dot(&xs16, &xs16);
//! // Half precision carries ~3 decimal digits.
//! assert!((d16.to_f64() - d64).abs() < 1e-3);
//! assert_eq!(Precision::Half.total_bits(), 16);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod any;
mod half;
pub mod math;
mod precision;
mod traits;
pub mod ulp;
pub mod wide;

pub use any::AnyFloat;
pub use half::{Half, ParseHalfError};
pub use precision::Precision;
pub use traits::FloatExt;
