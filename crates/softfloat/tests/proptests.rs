//! Property-based tests for the binary16 soft-float.
//!
//! The key oracle: for binary16 operands, computing in `f64` and rounding
//! once is the correctly rounded result (53 significand bits satisfy the
//! `p' >= 2p + 2` double-rounding bound for p = 11), so every operation
//! implemented in the crate must agree with the f64 path bit-for-bit.

use mpr_softfloat::ulp::{relative_error, ulp_distance};
use mpr_softfloat::{AnyFloat, Half, Precision};
use proptest::prelude::*;

/// Any bit pattern, including NaNs, infinities, and subnormals.
fn any_half() -> impl Strategy<Value = Half> {
    any::<u16>().prop_map(Half::from_bits)
}

/// Finite values only.
fn finite_half() -> impl Strategy<Value = Half> {
    any_half().prop_filter("finite", |h| h.is_finite())
}

fn agree(a: Half, b: Half) -> bool {
    (a.is_nan() && b.is_nan()) || a.to_bits() == b.to_bits()
}

proptest! {
    #[test]
    fn widening_then_narrowing_is_identity(h in any_half()) {
        prop_assert!(agree(Half::from_f64(h.to_f64()), h));
        prop_assert!(agree(Half::from_f32(h.to_f32()), h));
    }

    #[test]
    fn narrowing_is_monotone(a in any::<f64>(), b in any::<f64>()) {
        prop_assume!(a.is_finite() && b.is_finite() && a <= b);
        let ha = Half::from_f64(a);
        let hb = Half::from_f64(b);
        prop_assert!(ha.to_f64() <= hb.to_f64(), "rounding must preserve order");
    }

    #[test]
    fn narrowing_is_correctly_rounded(v in any::<f64>()) {
        prop_assume!(v.is_finite());
        let h = Half::from_f64(v);
        if h.is_finite() {
            // No other binary16 value may be strictly closer to v.
            let err = (h.to_f64() - v).abs();
            for delta in [-1i32, 1] {
                let bits = h.to_bits() as i32 + delta;
                if (0..=0xFFFF).contains(&bits) {
                    let n = Half::from_bits(bits as u16);
                    if n.is_finite() {
                        prop_assert!((n.to_f64() - v).abs() >= err,
                            "neighbor {n:?} closer to {v} than {h:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn add_matches_f64_reference(a in any_half(), b in any_half()) {
        let want = Half::from_f64(a.to_f64() + b.to_f64());
        prop_assert!(agree(a + b, want), "a={a:?} b={b:?}");
    }

    #[test]
    fn sub_matches_f64_reference(a in any_half(), b in any_half()) {
        let want = Half::from_f64(a.to_f64() - b.to_f64());
        prop_assert!(agree(a - b, want), "a={a:?} b={b:?}");
    }

    #[test]
    fn mul_matches_f64_reference(a in any_half(), b in any_half()) {
        let want = Half::from_f64(a.to_f64() * b.to_f64());
        prop_assert!(agree(a * b, want), "a={a:?} b={b:?}");
    }

    #[test]
    fn div_matches_f64_reference(a in any_half(), b in any_half()) {
        let want = Half::from_f64(a.to_f64() / b.to_f64());
        prop_assert!(agree(a / b, want), "a={a:?} b={b:?}");
    }

    #[test]
    fn fma_matches_f64_reference(a in any_half(), b in any_half(), c in any_half()) {
        let want = Half::from_f64(a.to_f64().mul_add(b.to_f64(), c.to_f64()));
        let got = a.mul_add(b, c);
        // Zero results may differ in sign between fma paths only when the
        // f64 reference also produced a signed zero; require same magnitude
        // class and same value otherwise.
        if got.is_zero() && want.is_zero() {
            return Ok(());
        }
        prop_assert!(agree(got, want), "a={a:?} b={b:?} c={c:?} got={got:?} want={want:?}");
    }

    #[test]
    fn addition_is_commutative(a in any_half(), b in any_half()) {
        prop_assert!(agree(a + b, b + a));
    }

    #[test]
    fn multiplication_is_commutative(a in any_half(), b in any_half()) {
        prop_assert!(agree(a * b, b * a));
    }

    #[test]
    fn add_identity(a in finite_half()) {
        // x + 0 == x except that -0 + +0 == +0.
        if !a.is_zero() {
            prop_assert!(agree(a + Half::ZERO, a));
        }
        prop_assert!(agree(a * Half::ONE, a));
    }

    #[test]
    fn negation_is_exact(a in any_half()) {
        prop_assert!(agree(-(-a), a));
        if a.is_finite() && !a.is_zero() {
            prop_assert!(agree(a + (-a), Half::ZERO));
        }
    }

    #[test]
    fn sqrt_squares_back(a in finite_half()) {
        prop_assume!(!a.is_sign_negative());
        let r = a.sqrt();
        if r.is_finite() && !r.is_zero() {
            // sqrt is correctly rounded, so squaring back lands within a
            // couple of ULP of the original.
            prop_assert!(ulp_distance(r * r, a) <= 2, "a={a:?} r={r:?}");
        }
    }

    #[test]
    fn flip_bit_changes_exactly_one_bit(h in any_half(), bit in 0u32..16) {
        let flipped = h.flip_bit(bit);
        prop_assert_eq!((flipped.to_bits() ^ h.to_bits()).count_ones(), 1);
        prop_assert_eq!(flipped.flip_bit(bit).to_bits(), h.to_bits());
    }

    #[test]
    fn mantissa_flip_relative_error_bounded(bit in 0u32..10) {
        // A mantissa flip on a normal value cannot exceed 2^-(10-bit-...)
        // relative error ~ 2^(bit-10); verifies the mechanism behind the
        // TRE trends.
        let h = Half::from_f64(1.5);
        let rel = relative_error(h.flip_bit(bit).to_f64(), h.to_f64());
        prop_assert!(rel <= 2f64.powi(bit as i32 - 10), "bit={bit} rel={rel}");
        prop_assert!(rel > 0.0);
    }

    #[test]
    fn any_float_flip_round_trips(p_idx in 0usize..3, v in -1e4f64..1e4, bit in 0u32..16) {
        let p = Precision::ALL[p_idx];
        let a = AnyFloat::encode(p, v);
        let b = a.flip_bit(bit).flip_bit(bit);
        prop_assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn exp_poly_double_near_libm(x in -300f64..300f64) {
        let got = mpr_softfloat::math::exp_poly(x);
        let want = x.exp();
        let rel = relative_error(got, want);
        prop_assert!(rel < 1e-13, "x={x} got={got} want={want}");
    }

    #[test]
    fn total_cmp_is_total_order(a in any_half(), b in any_half(), c in any_half()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        // Transitivity (spot form).
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            prop_assert!(a.total_cmp(&c) != Ordering::Greater);
        }
    }
}
