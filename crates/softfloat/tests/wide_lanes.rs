//! Differential property tests: wide binary16 lanes vs the scalar path.
//!
//! The contract (DESIGN.md §4i): every lane of [`mpr_softfloat::wide`]
//! is bit-identical to the corresponding scalar `Half` operation —
//! including subnormals, signed zeros, infinities, NaN canonicalization,
//! and round-to-nearest-even ties. These proptests drive the composed
//! public operations with strategies biased toward exactly those edge
//! regions; the unit tests inside the module cover the widen/narrow
//! kernels exhaustively.

use mpr_softfloat::{wide, Half};
use proptest::prelude::*;

/// Any bit pattern: normals, subnormals, zeros, infinities, NaNs.
fn any_bits() -> impl Strategy<Value = u16> {
    any::<u16>()
}

/// Biased toward the edge regions where rounding bugs live: subnormals
/// (exp field 0), values near the overflow boundary, infinities, NaNs
/// with varied payloads, and plain normals.
fn edgy_bits() -> impl Strategy<Value = u16> {
    prop_oneof![
        // Subnormals and zeros of both signs.
        (any::<u16>(), any::<bool>()).prop_map(|(m, s)| (m & 0x03FF) | if s { 0x8000 } else { 0 }),
        // Smallest normals: exponent field 1.
        (any::<u16>(), any::<bool>())
            .prop_map(|(m, s)| 0x0400 | (m & 0x03FF) | if s { 0x8000 } else { 0 }),
        // Largest finite magnitudes: exponent field 30.
        (any::<u16>(), any::<bool>())
            .prop_map(|(m, s)| 0x7800 | (m & 0x03FF) | if s { 0x8000 } else { 0 }),
        // Infinities and NaNs with arbitrary payloads.
        (any::<u16>(), any::<bool>())
            .prop_map(|(m, s)| 0x7C00 | (m & 0x03FF) | if s { 0x8000 } else { 0 }),
        // Anything at all.
        any::<u16>(),
    ]
}

/// Mantissa patterns that make RNE ties likely under add/mul: low bits
/// cleared so exact halves fall on rounding boundaries.
fn tie_prone_bits() -> impl Strategy<Value = u16> {
    (0u16..0x20, 0u16..0x40, any::<bool>()).prop_map(|(e, m, s)| {
        let exp = (e % 31) << 10;
        // Sparse mantissas (a few high bits) produce products whose
        // discarded tail is exactly half an ULP.
        let mant = (m & 0x7) << 7 | (m >> 3) & 1;
        exp | mant | if s { 0x8000 } else { 0 }
    })
}

fn scalar_add(a: u16, b: u16) -> u16 {
    (Half::from_bits(a) + Half::from_bits(b)).to_bits()
}

fn scalar_mul(a: u16, b: u16) -> u16 {
    (Half::from_bits(a) * Half::from_bits(b)).to_bits()
}

fn scalar_fma(a: u16, b: u16, c: u16) -> u16 {
    Half::from_bits(a)
        .mul_add(Half::from_bits(b), Half::from_bits(c))
        .to_bits()
}

/// Runs one (a, b) pair through the slice forms and checks each lane.
fn check_binary_ops(a: Vec<u16>, b: Vec<u16>) {
    let n = a.len();
    let mut sum = vec![0u16; n];
    let mut prod = vec![0u16; n];
    wide::add(&a, &b, &mut sum);
    wide::mul(&a, &b, &mut prod);
    for i in 0..n {
        assert_eq!(
            sum[i],
            scalar_add(a[i], b[i]),
            "add lane {i}: a={:#06x} b={:#06x}",
            a[i],
            b[i]
        );
        assert_eq!(
            prod[i],
            scalar_mul(a[i], b[i]),
            "mul lane {i}: a={:#06x} b={:#06x}",
            a[i],
            b[i]
        );
    }
}

/// Runs one (a, b, c) triple through every FMA form and checks lanes.
fn check_fma_ops(a: Vec<u16>, b: Vec<u16>, c: Vec<u16>) {
    let n = a.len();
    let mut acc = c.clone();
    wide::fma(&a, &b, &mut acc);
    let mut out = vec![0u16; n];
    wide::fma_into(&a, &b, &c, &mut out);
    for i in 0..n {
        let want = scalar_fma(a[i], b[i], c[i]);
        assert_eq!(
            acc[i], want,
            "fma lane {i}: a={:#06x} b={:#06x} c={:#06x}",
            a[i], b[i], c[i]
        );
        assert_eq!(out[i], want, "fma_into lane {i}");
    }
    // Broadcast form: a[0] against every (b, c) lane.
    let mut bacc = c.clone();
    wide::fma_broadcast(a[0], &b, &mut bacc);
    for i in 0..n {
        assert_eq!(
            bacc[i],
            scalar_fma(a[0], b[i], c[i]),
            "fma_broadcast lane {i}: a={:#06x} b={:#06x} c={:#06x}",
            a[0],
            b[i],
            c[i]
        );
    }
}

proptest! {
    #[test]
    fn add_mul_match_scalar_on_arbitrary_lanes(
        a in proptest::collection::vec(any_bits(), 1..48),
        seed in any::<u64>(),
    ) {
        // Derive b from a and a seed so lengths always match.
        let b: Vec<u16> = a
            .iter()
            .enumerate()
            .map(|(i, &x)| x ^ (seed.rotate_left(i as u32) as u16))
            .collect();
        check_binary_ops(a, b);
    }

    #[test]
    fn add_mul_match_scalar_on_edge_lanes(
        a in proptest::collection::vec(edgy_bits(), 1..48),
        b0 in proptest::collection::vec(edgy_bits(), 48..49),
    ) {
        let b = b0[..a.len()].to_vec();
        check_binary_ops(a, b);
    }

    #[test]
    fn add_mul_match_scalar_on_tie_prone_lanes(
        a in proptest::collection::vec(tie_prone_bits(), 1..48),
        b0 in proptest::collection::vec(tie_prone_bits(), 48..49),
    ) {
        let b = b0[..a.len()].to_vec();
        check_binary_ops(a, b);
    }

    #[test]
    fn fma_matches_scalar_on_arbitrary_lanes(
        a in proptest::collection::vec(any_bits(), 1..48),
        seed in any::<u64>(),
    ) {
        let b: Vec<u16> = a
            .iter()
            .enumerate()
            .map(|(i, &x)| x ^ (seed.rotate_left(i as u32) as u16))
            .collect();
        let c: Vec<u16> = a
            .iter()
            .enumerate()
            .map(|(i, &x)| x.wrapping_add((seed.rotate_right(i as u32 + 7)) as u16))
            .collect();
        check_fma_ops(a, b, c);
    }

    #[test]
    fn fma_matches_scalar_on_edge_lanes(
        a in proptest::collection::vec(edgy_bits(), 1..48),
        b0 in proptest::collection::vec(edgy_bits(), 48..49),
        c0 in proptest::collection::vec(edgy_bits(), 48..49),
    ) {
        let (b, c) = (b0[..a.len()].to_vec(), c0[..a.len()].to_vec());
        check_fma_ops(a, b, c);
    }

    #[test]
    fn fma_matches_scalar_on_tie_prone_lanes(
        a in proptest::collection::vec(tie_prone_bits(), 1..48),
        b0 in proptest::collection::vec(tie_prone_bits(), 48..49),
        c0 in proptest::collection::vec(tie_prone_bits(), 48..49),
    ) {
        let (b, c) = (b0[..a.len()].to_vec(), c0[..a.len()].to_vec());
        check_fma_ops(a, b, c);
    }

    #[test]
    fn nan_lanes_propagate_and_canonicalize(
        payload in 1u16..0x0400,
        sign in any::<bool>(),
        x in any_bits(),
    ) {
        let nan = 0x7C00 | payload | if sign { 0x8000 } else { 0 };
        let mut sum = [0u16; 2];
        let mut prod = [0u16; 2];
        wide::add(&[nan, x], &[x, nan], &mut sum);
        wide::mul(&[nan, x], &[x, nan], &mut prod);
        for r in sum.into_iter().chain(prod) {
            prop_assert!(Half::from_bits(r).is_nan(), "NaN must propagate");
        }
        prop_assert_eq!(sum[0], scalar_add(nan, x));
        prop_assert_eq!(prod[1], scalar_mul(x, nan));
        // FMA canonicalizes every NaN case to the positive quiet NaN,
        // exactly like the scalar `Half::mul_add`.
        let mut acc = [x, nan, x];
        wide::fma(&[nan, x, x], &[x, x, nan], &mut acc);
        for (i, r) in acc.into_iter().enumerate() {
            prop_assert_eq!(r, Half::NAN.to_bits(), "fma NaN lane {}", i);
        }
    }

    #[test]
    fn infinity_lanes_match_scalar(x in any_bits(), sign in any::<bool>()) {
        let inf = if sign { 0xFC00u16 } else { 0x7C00 };
        let a = [inf, x, inf, x];
        let b = [x, inf, inf, x];
        let mut sum = [0u16; 4];
        let mut prod = [0u16; 4];
        wide::add(&a, &b, &mut sum);
        wide::mul(&a, &b, &mut prod);
        let mut acc = [x; 4];
        wide::fma(&a, &b, &mut acc);
        for i in 0..4 {
            prop_assert_eq!(sum[i], scalar_add(a[i], b[i]), "add lane {}", i);
            prop_assert_eq!(prod[i], scalar_mul(a[i], b[i]), "mul lane {}", i);
            prop_assert_eq!(acc[i], scalar_fma(a[i], b[i], x), "fma lane {}", i);
        }
    }

    #[test]
    fn fixed_width_forms_match_scalar(
        a in proptest::collection::vec(edgy_bits(), 16..17),
        b in proptest::collection::vec(edgy_bits(), 16..17),
        c in proptest::collection::vec(edgy_bits(), 16..17),
    ) {
        let (a16, b16, c16): (&[u16; 16], &[u16; 16], &[u16; 16]) = (
            a[..].try_into().unwrap(),
            b[..].try_into().unwrap(),
            c[..].try_into().unwrap(),
        );
        let sum = wide::add16(a16, b16);
        let prod = wide::mul16(a16, b16);
        let fused = wide::fma16(a16, b16, c16);
        for i in 0..16 {
            prop_assert_eq!(sum[i], scalar_add(a[i], b[i]));
            prop_assert_eq!(prod[i], scalar_mul(a[i], b[i]));
            prop_assert_eq!(fused[i], scalar_fma(a[i], b[i], c[i]));
        }
        let a8: &[u16; 8] = a[..8].try_into().unwrap();
        let b8: &[u16; 8] = b[..8].try_into().unwrap();
        let c8: &[u16; 8] = c[..8].try_into().unwrap();
        let sum8 = wide::add8(a8, b8);
        let prod8 = wide::mul8(a8, b8);
        let fused8 = wide::fma8(a8, b8, c8);
        for i in 0..8 {
            prop_assert_eq!(sum8[i], scalar_add(a[i], b[i]));
            prop_assert_eq!(prod8[i], scalar_mul(a[i], b[i]));
            prop_assert_eq!(fused8[i], scalar_fma(a[i], b[i], c[i]));
        }
    }
}

/// Deterministic spot-check of the RNE tie everyone gets wrong: a
/// product landing exactly on a binary16 tie, perturbed by a tiny
/// addend the intermediate must not lose. (`0x2b24 * 0xfb00` is
/// exactly `-3199.0`, the tie between `-3198` and `-3200`; adding the
/// small positive `0x06dd` must break the tie toward `-3198`.)
#[test]
fn fma_keeps_tiny_addend_next_to_a_product_tie() {
    let (a, b, c) = (0x2b24u16, 0xfb00u16, 0x06ddu16);
    let mut acc = [c];
    wide::fma(&[a], &[b], &mut acc);
    assert_eq!(acc[0], scalar_fma(a, b, c));
    assert_eq!(acc[0], 0xEA3F); // -3198, not the naive tie-to-even -3200
}
