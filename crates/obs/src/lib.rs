//! Structured observability for the measurement stack.
//!
//! Every campaign in this workspace is an accounting exercise —
//! fluence, strike counts, SDC/DUE tallies over simulated beam-hours —
//! yet until this crate the simulator ran those campaigns as a black
//! box. `mpr-obs` threads a [`Recorder`] through the experiment engine
//! and the beam/fault campaigns so a study run can explain where it
//! spent its time and what its caches saved.
//!
//! The crate is deliberately at the bottom of the dependency graph
//! (std only): `mpr-beam`, `mpr-fault`, `mpr-exp`, and `mpr-core` all
//! record into it, and it also hosts the [`seed`] module — the single
//! audited seed-derivation scheme those same crates share — plus the
//! fault-tolerance primitives ([`CancelToken`], [`panic_message`])
//! that the campaign drivers and the experiment engine use to survive
//! panicking or hung cells.
//!
//! Two recorders ship built in:
//!
//! * [`NullRecorder`] — the default. [`Recorder::enabled`] returns
//!   `false`, so instrumentation sites skip clock reads entirely and
//!   an unprofiled run pays only a branch per event site.
//! * [`JsonlRecorder`] — buffers events and flushes them as one
//!   append-only JSONL file (one event per line, monotonic-relative
//!   timestamps, atomic tmp+rename write — the same hand-rolled
//!   serializer discipline as `mpr-exp`'s disk cache).
//!
//! ```rust
//! use mpr_obs::{summarize, Counter, JsonlRecorder, Metric, Recorder, Timer};
//!
//! let rec = JsonlRecorder::new();
//! let hits = Counter::new(&rec, "cache.mem_hit", "");
//! hits.add(3);
//! let t = Timer::start(&rec, "cell.exec", "v2;dev=titan-v");
//! t.stop();
//! let events = rec.events();
//! let summary = summarize(&events);
//! assert_eq!(summary.counter_total("cache.mem_hit"), 3);
//! ```

#![deny(missing_docs)]

mod harness;
mod jsonl;
mod record;
pub mod seed;
mod summary;

pub use harness::{panic_message, CancelToken};
pub use jsonl::{parse_line, read_log, JsonlRecorder};
pub use record::{Counter, Event, Gauge, Metric, NullRecorder, Recorder, Timer, NULL_RECORDER};
pub use seed::{fnv1a64, mix_seed, splitmix64, SplitMix};
pub use summary::{summarize, Aggregate, ProfileSummary};
