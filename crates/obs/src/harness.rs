//! Fault-tolerance primitives for the measurement harness: the
//! cooperative watchdog token campaigns poll between strike batches,
//! and the panic-payload formatter the engine uses to turn a worker
//! panic into a structured failure record.
//!
//! The paper's beam setup pairs every device with a hardware watchdog
//! that power-cycles a hung board; [`CancelToken`] is the simulator's
//! equivalent. A token either never fires ([`CancelToken::unlimited`])
//! or fires once its deadline passes ([`CancelToken::with_timeout`]).
//! Campaign workers poll [`CancelToken::is_cancelled`] at strike-batch
//! boundaries and exit their loop when it fires, so every thread is
//! always joined — nothing is ever detached or killed.
// mpr-allow-file: determinism -- the watchdog deadline decides only
// whether a cell is abandoned; an abandoned cell yields no result
// bytes (the engine discards partial work and reports `Hung`), so
// clock reads here can never reach a campaign output.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative cancellation flag with an optional deadline.
///
/// Cloning is cheap and shares the underlying flag: cancelling any
/// clone cancels them all. Without a deadline the token never reads
/// the clock, so the default (unlimited) path stays deterministic and
/// free.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

#[derive(Debug)]
struct TokenInner {
    cancelled: AtomicBool,
    /// Deadline after which [`CancelToken::is_cancelled`] trips the
    /// flag itself (lazily, on the next poll).
    deadline: Option<Instant>,
    /// The configured timeout, kept for failure reports.
    timeout: Option<Duration>,
    /// A parent token this one inherits cancellation from: a fired
    /// parent fires every descendant on its next poll. This is how a
    /// plan-level shutdown reaches per-cell watchdog tokens without
    /// the campaign drivers knowing about either.
    parent: Option<Arc<TokenInner>>,
}

impl TokenInner {
    /// Whether this token (or any ancestor) has fired. A hit anywhere
    /// up the chain is cached into this token's own flag so later
    /// polls stay a single atomic load.
    fn fired(&self) -> bool {
        if self.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        let tripped = self
            .deadline
            .is_some_and(|deadline| Instant::now() >= deadline)
            || self.parent.as_deref().is_some_and(TokenInner::fired);
        if tripped {
            self.cancelled.store(true, Ordering::Relaxed);
        }
        tripped
    }
}

impl CancelToken {
    /// A token that only fires when [`CancelToken::cancel`] is called
    /// explicitly; it never reads the clock.
    pub fn unlimited() -> CancelToken {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                timeout: None,
                parent: None,
            }),
        }
    }

    /// A token whose deadline is `timeout` from now. The deadline is
    /// enforced cooperatively: it trips on the first
    /// [`CancelToken::is_cancelled`] poll at or after expiry.
    pub fn with_timeout(timeout: Duration) -> CancelToken {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline: Instant::now().checked_add(timeout),
                timeout: Some(timeout),
                parent: None,
            }),
        }
    }

    /// A child token that fires when either its own (optional) timeout
    /// expires or this parent fires — whichever is observed first.
    /// Cancelling the child never touches the parent, so a per-cell
    /// watchdog can abandon one cell while the plan keeps running,
    /// while a plan-level [`CancelToken::cancel`] reaches every cell's
    /// child token on its next poll.
    pub fn child(&self, timeout: Option<Duration>) -> CancelToken {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline: timeout.and_then(|t| Instant::now().checked_add(t)),
                timeout,
                parent: Some(Arc::clone(&self.inner)),
            }),
        }
    }

    /// Fires the token explicitly.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the token has fired (explicitly, because its deadline
    /// passed, or because an ancestor fired). Pollers call this at
    /// batch granularity; the clock is read only when a deadline is
    /// configured somewhere in the chain and the flag has not already
    /// tripped.
    pub fn is_cancelled(&self) -> bool {
        self.inner.fired()
    }

    /// The configured timeout in seconds, if any.
    pub fn timeout_s(&self) -> Option<f64> {
        self.inner.timeout.map(|t| t.as_secs_f64())
    }
}

/// Renders a panic payload (as returned by `std::thread::JoinHandle::join`
/// or `std::panic::catch_unwind`) into the human-readable message the
/// failure reports carry. Panic macros produce `&str` or `String`
/// payloads; anything else is summarized by its type opacity.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_token_never_fires_on_its_own() {
        let t = CancelToken::unlimited();
        assert!(!t.is_cancelled());
        assert_eq!(t.timeout_s(), None);
        t.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::unlimited();
        let b = a.clone();
        b.cancel();
        assert!(a.is_cancelled());
    }

    #[test]
    fn deadline_trips_the_flag_lazily() {
        let t = CancelToken::with_timeout(Duration::from_millis(0));
        // The deadline has already passed; the first poll trips it.
        assert!(t.is_cancelled());
        assert!(t.is_cancelled(), "stays cancelled");
        assert_eq!(t.timeout_s(), Some(0.0));

        let far = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
    }

    #[test]
    fn child_inherits_parent_cancellation() {
        let plan = CancelToken::unlimited();
        let cell = plan.child(None);
        assert!(!cell.is_cancelled());
        plan.cancel();
        assert!(cell.is_cancelled(), "parent fire reaches the child");
        // The cached flag keeps answering without re-walking the chain.
        assert!(cell.is_cancelled());
    }

    #[test]
    fn child_cancel_leaves_parent_alive() {
        let plan = CancelToken::unlimited();
        let cell = plan.child(Some(Duration::from_secs(3600)));
        assert_eq!(cell.timeout_s(), Some(3600.0));
        cell.cancel();
        assert!(cell.is_cancelled());
        assert!(!plan.is_cancelled(), "cell watchdog never stops the plan");
    }

    #[test]
    fn child_deadline_fires_independently() {
        let plan = CancelToken::unlimited();
        let cell = plan.child(Some(Duration::from_millis(0)));
        assert!(cell.is_cancelled(), "expired child deadline trips");
        assert!(!plan.is_cancelled());
    }

    #[test]
    fn panic_payloads_render() {
        let caught = std::panic::catch_unwind(|| panic!("boom {}", 7)).expect_err("must panic");
        assert_eq!(panic_message(caught), "boom 7");
        let caught =
            std::panic::catch_unwind(|| std::panic::panic_any(42u8)).expect_err("must panic");
        assert_eq!(panic_message(caught), "opaque panic payload");
    }
}
