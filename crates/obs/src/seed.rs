//! Seed derivation: splitmix64 mixing and FNV-1a canonical hashing.
//!
//! This is the workspace's single audited seed-derivation scheme. The
//! study's previous `seed ^ salt` derivation collides trivially
//! (`seed == salt` yields 0 for every figure), and the campaigns'
//! previous per-strike `seed * C ^ i` derivation gave adjacent strikes
//! near-identical seed bits (correlated streams). Every seed handed to
//! a campaign — per cell, per strike, per injection — now goes through
//! a full splitmix64 avalanche, so related base seeds and salts produce
//! unrelated streams. `mpr-exp`, `mpr-beam`, and `mpr-fault` all
//! derive through these functions.

/// One splitmix64 step: a full-avalanche 64-bit mix of the input.
///
/// Every output bit depends on every input bit, so `mix(s) ^ mix(s+1)`
/// behaves like an unrelated random pair — unlike the previous
/// `seed ^ salt` scheme.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a campaign seed from a base seed and a salt.
///
/// Both inputs are avalanched before combining, so neither
/// `mix_seed(s, s)` nor nearby salts collapse the stream. This is also
/// the per-strike derivation: `mix_seed(session_seed, strike_index)`
/// gives every strike an unrelated RNG stream even for adjacent
/// indices.
pub fn mix_seed(seed: u64, salt: u64) -> u64 {
    splitmix64(seed ^ splitmix64(salt))
}

/// A tiny deterministic generator for cheap sweeps that need far fewer
/// random bits than a full campaign (the accumulation ablation).
#[derive(Debug)]
pub struct SplitMix(u64);

impl SplitMix {
    /// A generator whose stream is a pure function of `seed`.
    pub fn new(seed: u64) -> SplitMix {
        SplitMix(seed)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// FNV-1a hash of a byte string; the canonical experiment-cell hash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_seed_does_not_collapse_on_equal_inputs() {
        // The old `seed ^ salt` scheme mapped every (s, s) pair to 0.
        assert_ne!(mix_seed(7, 7), 0);
        assert_ne!(mix_seed(7, 7), mix_seed(8, 8));
        assert_ne!(mix_seed(1, 2), mix_seed(2, 1));
    }

    #[test]
    fn adjacent_salts_produce_unrelated_streams() {
        // The per-strike derivation must not hand adjacent strikes
        // correlated seed bits (the old `seed * C ^ i` scheme differed
        // in only the low bits for adjacent `i`).
        for i in 0..64u64 {
            let a = mix_seed(42, i);
            let b = mix_seed(42, i + 1);
            let differing = (a ^ b).count_ones();
            assert!(differing > 16, "i={i}: {a:016x} vs {b:016x}");
        }
    }

    #[test]
    fn splitmix_reference_values_are_pinned() {
        // Pin the stream so cache keys and campaign seeds stay stable
        // across refactors (reference: Vigna's splitmix64.c, seed 0).
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
        let mut g = SplitMix::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(g.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_ne!(fnv1a64(b"cell-a"), fnv1a64(b"cell-b"));
    }
}
