//! Aggregation of a profile log into per-metric, per-scope totals.
//!
//! [`summarize`] folds an event stream into a [`ProfileSummary`]:
//! counters sum, timers accumulate `(count, sum, min, max)`, gauges
//! keep their last-and-extreme levels. `BTreeMap`s keep every listing
//! deterministic, so rendered reports are stable across runs of the
//! same log.

use crate::record::{Event, Metric};
use std::collections::BTreeMap;

/// Accumulated statistics for one `(metric, scope)` series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate {
    /// Number of recorded events.
    pub count: u64,
    /// Sum of all values.
    pub sum: f64,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
}

impl Aggregate {
    fn absorb(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn seed(v: f64) -> Aggregate {
        Aggregate {
            count: 1,
            sum: v,
            min: v,
            max: v,
        }
    }

    /// Arithmetic mean of the recorded values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

type Series = BTreeMap<String, BTreeMap<String, Aggregate>>;

/// A folded profile log: totals per metric name and scope.
#[derive(Debug, Clone, Default)]
pub struct ProfileSummary {
    counters: Series,
    times: Series,
    gauges: Series,
    /// Number of events folded in.
    pub events: usize,
    /// Span of the log in seconds (first to last timestamp).
    pub span_s: f64,
}

impl ProfileSummary {
    fn series(&mut self, metric: Metric) -> &mut Series {
        match metric {
            Metric::Count(_) => &mut self.counters,
            Metric::Time(_) => &mut self.times,
            Metric::Gauge(_) => &mut self.gauges,
        }
    }

    fn absorb(&mut self, ev: &Event) {
        let v = match ev.metric {
            Metric::Count(n) => n as f64,
            Metric::Gauge(v) | Metric::Time(v) => v,
        };
        self.series(ev.metric)
            .entry(ev.name.clone())
            .or_default()
            .entry(ev.scope.clone())
            .and_modify(|a| a.absorb(v))
            .or_insert_with(|| Aggregate::seed(v));
        self.events += 1;
    }

    /// Total of a counter across all scopes.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .get(name)
            .map_or(0.0, |scopes| scopes.values().map(|a| a.sum).sum())
            .round() as u64
    }

    /// Per-scope totals of a counter, in scope order.
    pub fn counter_scopes(&self, name: &str) -> Vec<(&str, u64)> {
        self.counters.get(name).map_or_else(Vec::new, |scopes| {
            scopes
                .iter()
                .map(|(s, a)| (s.as_str(), a.sum.round() as u64))
                .collect()
        })
    }

    /// Total seconds recorded under a timer name, across all scopes.
    pub fn time_total(&self, name: &str) -> f64 {
        self.times
            .get(name)
            .map_or(0.0, |scopes| scopes.values().map(|a| a.sum).sum())
    }

    /// Aggregate of timer `name` under one specific `scope`, if present.
    pub fn time_scope(&self, name: &str, scope: &str) -> Option<Aggregate> {
        self.times.get(name).and_then(|s| s.get(scope)).copied()
    }

    /// Per-scope aggregates of a timer, sorted by total time descending
    /// (ties broken by scope name, so the order is deterministic).
    pub fn scopes_by_time(&self, name: &str) -> Vec<(&str, Aggregate)> {
        let mut rows: Vec<(&str, Aggregate)> =
            self.times.get(name).map_or_else(Vec::new, |scopes| {
                scopes.iter().map(|(s, a)| (s.as_str(), *a)).collect()
            });
        rows.sort_by(|(sa, a), (sb, b)| {
            b.sum
                .partial_cmp(&a.sum)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| sa.cmp(sb))
        });
        rows
    }

    /// Per-scope aggregates of a gauge, in scope order.
    pub fn gauge_scopes(&self, name: &str) -> Vec<(&str, Aggregate)> {
        self.gauges.get(name).map_or_else(Vec::new, |scopes| {
            scopes.iter().map(|(s, a)| (s.as_str(), *a)).collect()
        })
    }

    /// All counter names present, in order.
    pub fn counter_names(&self) -> Vec<&str> {
        self.counters.keys().map(String::as_str).collect()
    }

    /// All timer names present, in order.
    pub fn time_names(&self) -> Vec<&str> {
        self.times.keys().map(String::as_str).collect()
    }

    /// All gauge names present, in order.
    pub fn gauge_names(&self) -> Vec<&str> {
        self.gauges.keys().map(String::as_str).collect()
    }
}

/// Folds an event stream into per-metric, per-scope aggregates.
pub fn summarize(events: &[Event]) -> ProfileSummary {
    let mut summary = ProfileSummary::default();
    for ev in events {
        summary.absorb(ev);
    }
    if let (Some(first), Some(last)) = (events.first(), events.last()) {
        let (lo, hi) = events.iter().fold((first.t_us, last.t_us), |(lo, hi), e| {
            (lo.min(e.t_us), hi.max(e.t_us))
        });
        summary.span_s = (hi - lo) as f64 / 1e6;
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_us: u64, name: &str, scope: &str, metric: Metric) -> Event {
        Event {
            t_us,
            name: name.to_string(),
            scope: scope.to_string(),
            metric,
        }
    }

    #[test]
    fn counters_sum_per_scope_and_overall() {
        let events = vec![
            ev(0, "cache.mem_hit", "a", Metric::Count(2)),
            ev(1, "cache.mem_hit", "a", Metric::Count(1)),
            ev(2, "cache.mem_hit", "b", Metric::Count(4)),
            ev(3, "cache.miss", "a", Metric::Count(1)),
        ];
        let s = summarize(&events);
        assert_eq!(s.counter_total("cache.mem_hit"), 7);
        assert_eq!(s.counter_total("cache.miss"), 1);
        assert_eq!(s.counter_total("absent"), 0);
        assert_eq!(s.counter_scopes("cache.mem_hit"), vec![("a", 3), ("b", 4)]);
        assert_eq!(s.counter_names(), vec!["cache.mem_hit", "cache.miss"]);
        assert_eq!(s.events, 4);
    }

    #[test]
    fn timers_rank_scopes_by_total_descending() {
        let events = vec![
            ev(0, "cell.exec", "fast", Metric::Time(0.25)),
            ev(1, "cell.exec", "slow", Metric::Time(2.0)),
            ev(2, "cell.exec", "slow", Metric::Time(1.0)),
            ev(3, "cell.exec", "mid", Metric::Time(1.5)),
        ];
        let s = summarize(&events);
        let ranked = s.scopes_by_time("cell.exec");
        let order: Vec<&str> = ranked.iter().map(|(sc, _)| *sc).collect();
        assert_eq!(order, vec!["slow", "mid", "fast"]);
        assert_eq!(ranked[0].1.count, 2);
        assert_eq!(ranked[0].1.sum, 3.0);
        assert_eq!(ranked[0].1.min, 1.0);
        assert_eq!(ranked[0].1.max, 2.0);
        assert_eq!(ranked[0].1.mean(), 1.5);
        assert_eq!(s.time_total("cell.exec"), 4.75);
        assert!(s.scopes_by_time("absent").is_empty());
    }

    #[test]
    fn gauges_and_span_are_tracked() {
        let events = vec![
            ev(1_000_000, "beam.strikes_per_s", "", Metric::Gauge(10.0)),
            ev(3_500_000, "beam.strikes_per_s", "", Metric::Gauge(30.0)),
        ];
        let s = summarize(&events);
        assert_eq!(s.span_s, 2.5);
        let g = s.gauge_scopes("beam.strikes_per_s");
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].1.mean(), 20.0);
        assert_eq!(s.gauge_names(), vec!["beam.strikes_per_s"]);
    }

    #[test]
    fn adaptive_sampling_ledger_balances() {
        // The adaptive drivers publish a strike ledger: per cell,
        // requested == executed + saved; across the plan, the
        // reallocation pool is fully apportioned into grants. A report
        // built from the profile log must be able to re-check both
        // invariants from counters alone.
        let cell_a = "dev=fpga;k=beam";
        let cell_b = "dev=gpu;k=beam";
        let events = vec![
            ev(0, "inject.injections", cell_a, Metric::Count(400)),
            ev(1, "inject.executed", cell_a, Metric::Count(96)),
            ev(2, "inject.strikes_saved", cell_a, Metric::Count(304)),
            ev(3, "inject.injections", cell_b, Metric::Count(400)),
            ev(4, "inject.executed", cell_b, Metric::Count(400)),
            ev(5, "inject.strikes_saved", cell_b, Metric::Count(0)),
            ev(6, "plan.realloc_pool", "", Metric::Count(304)),
            ev(7, "plan.realloc_granted", cell_b, Metric::Count(304)),
            ev(8, "inject.ci_width", cell_a, Metric::Gauge(0.74)),
        ];
        let s = summarize(&events);
        for cell in [cell_a, cell_b] {
            let of = |name: &str| {
                s.counter_scopes(name)
                    .iter()
                    .find(|(sc, _)| *sc == cell)
                    .map_or(0, |(_, n)| *n)
            };
            assert_eq!(
                of("inject.injections"),
                of("inject.executed") + of("inject.strikes_saved"),
                "strike ledger must balance for {cell}"
            );
        }
        assert_eq!(
            s.counter_total("plan.realloc_pool"),
            s.counter_total("plan.realloc_granted"),
            "spare budget must be fully apportioned"
        );
        let widths = s.gauge_scopes("inject.ci_width");
        assert_eq!(widths.len(), 1);
        assert!(widths[0].1.mean() <= 0.8, "quick preset target met");
    }

    #[test]
    fn empty_log_summarizes_to_zeroes() {
        let s = summarize(&[]);
        assert_eq!(s.events, 0);
        assert_eq!(s.span_s, 0.0);
        assert_eq!(s.counter_total("anything"), 0);
        assert!(s.time_names().is_empty());
    }
}
