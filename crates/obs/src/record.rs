//! The recorder trait and its metric handles.
// mpr-allow-file: determinism -- telemetry timestamps are observability metadata read inside obs only; they never feed campaign RNG streams or results

use std::time::Instant;

/// One recorded observation value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Metric {
    /// A monotonically accumulated count (events, hits, strikes).
    Count(u64),
    /// A sampled level (throughput, utilization).
    Gauge(f64),
    /// An elapsed duration in seconds.
    Time(f64),
}

/// One event of a profile log: what happened, to which instance, when.
///
/// `t_us` is microseconds since the recorder's origin (monotonic,
/// relative — a log carries no wall-clock time). `name` identifies the
/// metric (`cell.exec`, `cache.mem_hit`, …); `scope` identifies the
/// instance it describes (a canonical cell key, a phase name, or `""`
/// for study-global events).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds since the recorder's origin.
    pub t_us: u64,
    /// Metric name, e.g. `cell.exec`.
    pub name: String,
    /// Instance label, e.g. a canonical cell key (`""` = global).
    pub scope: String,
    /// The observation.
    pub metric: Metric,
}

/// A sink for observability events.
///
/// Implementations stamp events with their own monotonic-relative
/// timestamps; instrumentation sites only name what happened.
/// Recorders are shared by reference across campaign worker threads,
/// so implementations must be `Sync`.
pub trait Recorder: Send + Sync {
    /// Whether this recorder consumes events. Instrumentation sites
    /// use this to skip clock reads and string formatting entirely, so
    /// an unprofiled run pays only a branch per event site.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one observation.
    fn record(&self, name: &str, scope: &str, metric: Metric);

    /// Flushes any buffered events to their destination (a no-op for
    /// recorders without one).
    fn flush(&self) {}
}

/// The default recorder: discards everything, reports itself disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _name: &str, _scope: &str, _metric: Metric) {}
}

/// The shared default recorder instance; campaigns without telemetry
/// attached point here.
pub static NULL_RECORDER: NullRecorder = NullRecorder;

/// A counting handle bound to one `(name, scope)` pair.
#[derive(Clone, Copy)]
pub struct Counter<'r> {
    rec: &'r dyn Recorder,
    name: &'r str,
    scope: &'r str,
}

impl<'r> Counter<'r> {
    /// Binds a counter handle.
    pub fn new(rec: &'r dyn Recorder, name: &'r str, scope: &'r str) -> Counter<'r> {
        Counter { rec, name, scope }
    }

    /// Adds `n` to the counter (zero increments are not recorded).
    pub fn add(&self, n: u64) {
        if n > 0 && self.rec.enabled() {
            self.rec.record(self.name, self.scope, Metric::Count(n));
        }
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }
}

/// A level-sampling handle bound to one `(name, scope)` pair.
#[derive(Clone, Copy)]
pub struct Gauge<'r> {
    rec: &'r dyn Recorder,
    name: &'r str,
    scope: &'r str,
}

impl<'r> Gauge<'r> {
    /// Binds a gauge handle.
    pub fn new(rec: &'r dyn Recorder, name: &'r str, scope: &'r str) -> Gauge<'r> {
        Gauge { rec, name, scope }
    }

    /// Records the current level.
    pub fn set(&self, value: f64) {
        if self.rec.enabled() {
            self.rec.record(self.name, self.scope, Metric::Gauge(value));
        }
    }
}

/// A running timer; records an elapsed-seconds [`Metric::Time`] event
/// when stopped or dropped.
///
/// Against a disabled recorder the timer never reads the clock and
/// never records. Clock reads stay inside this crate, so the
/// instrumented simulation crates contain no timing calls of their
/// own.
pub struct Timer<'r> {
    rec: &'r dyn Recorder,
    name: &'r str,
    scope: String,
    start: Option<Instant>,
}

impl<'r> Timer<'r> {
    /// Starts a timer (a no-op handle when the recorder is disabled).
    pub fn start(rec: &'r dyn Recorder, name: &'r str, scope: impl Into<String>) -> Timer<'r> {
        Timer {
            rec,
            name,
            scope: scope.into(),
            start: rec.enabled().then(Instant::now),
        }
    }

    /// Seconds since start (0.0 when the recorder is disabled).
    pub fn elapsed_s(&self) -> f64 {
        self.start.map_or(0.0, |s| s.elapsed().as_secs_f64())
    }

    /// Stops the timer, records the elapsed time, and returns it.
    pub fn stop(mut self) -> f64 {
        self.finish()
    }

    /// Discards the timer without recording an event.
    pub fn cancel(mut self) {
        self.start = None;
    }

    fn finish(&mut self) -> f64 {
        match self.start.take() {
            None => 0.0,
            Some(s) => {
                let elapsed = s.elapsed().as_secs_f64();
                self.rec
                    .record(self.name, &self.scope, Metric::Time(elapsed));
                elapsed
            }
        }
    }
}

impl Drop for Timer<'_> {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Debug, Default)]
    struct Capture(Mutex<Vec<(String, String, Metric)>>);

    impl Recorder for Capture {
        fn record(&self, name: &str, scope: &str, metric: Metric) {
            self.0.lock().expect("capture lock").push((
                name.to_string(),
                scope.to_string(),
                metric,
            ));
        }
    }

    #[test]
    fn null_recorder_is_disabled_and_silent() {
        assert!(!NULL_RECORDER.enabled());
        Counter::new(&NULL_RECORDER, "x", "").add(5);
        Gauge::new(&NULL_RECORDER, "x", "").set(1.0);
        let t = Timer::start(&NULL_RECORDER, "x", "");
        assert_eq!(t.elapsed_s(), 0.0);
        assert_eq!(t.stop(), 0.0);
    }

    #[test]
    fn counter_skips_zero_increments() {
        let cap = Capture::default();
        let c = Counter::new(&cap, "hits", "cell-a");
        c.add(0);
        c.add(2);
        c.incr();
        let events = cap.0.lock().expect("capture lock").clone();
        assert_eq!(
            events,
            vec![
                ("hits".to_string(), "cell-a".to_string(), Metric::Count(2)),
                ("hits".to_string(), "cell-a".to_string(), Metric::Count(1)),
            ]
        );
    }

    #[test]
    fn timer_records_once_on_stop_or_drop() {
        let cap = Capture::default();
        let t = Timer::start(&cap, "work", "s");
        assert!(t.elapsed_s() >= 0.0);
        let elapsed = t.stop();
        {
            let _guard = Timer::start(&cap, "guard", "s");
        }
        let cancelled = Timer::start(&cap, "never", "s");
        cancelled.cancel();
        let events = cap.0.lock().expect("capture lock").clone();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].0, "work");
        assert_eq!(events[0].2, Metric::Time(elapsed));
        assert_eq!(events[1].0, "guard");
    }
}
