//! The JSONL profile log: an append-only event file, one JSON object
//! per line, with monotonic-relative timestamps.
//!
//! The serializer is hand rolled in the same discipline as
//! `mpr-exp`'s disk cache: a fixed flat shape, explicit escaping, and
//! an atomic tmp+rename flush so readers never observe a torn file.
//! Counter values travel as integers; gauge and timer values as
//! decimal numbers (Rust's shortest round-trip formatting).
//!
//! ```text
//! {"t_us":1042,"name":"cell.exec","scope":"v2;dev=titan-v;...","kind":"time","value":0.0123}
//! ```
// mpr-allow-file: determinism -- the log's monotonic-relative origin is observability metadata; it never feeds campaign RNG streams or results

use crate::record::{Event, Metric, Recorder};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

/// A buffering recorder that flushes its events as one JSONL file.
///
/// Events are stamped with microseconds since the recorder's
/// construction. [`Recorder::flush`] (also invoked on drop) writes the
/// whole log write-then-rename, so a crashed run leaves either the
/// previous complete log or none.
#[derive(Debug)]
pub struct JsonlRecorder {
    origin: Instant,
    path: Option<PathBuf>,
    events: Mutex<Vec<Event>>,
}

impl Default for JsonlRecorder {
    fn default() -> Self {
        JsonlRecorder::new()
    }
}

impl JsonlRecorder {
    /// An in-memory recorder (no file; useful for tests and for
    /// rendering a summary without touching disk).
    pub fn new() -> JsonlRecorder {
        JsonlRecorder {
            origin: Instant::now(),
            path: None,
            events: Mutex::new(Vec::new()),
        }
    }

    /// A recorder that flushes to `path`.
    pub fn to_path(path: impl Into<PathBuf>) -> JsonlRecorder {
        JsonlRecorder {
            origin: Instant::now(),
            path: Some(path.into()),
            events: Mutex::new(Vec::new()),
        }
    }

    /// The flush destination, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// A snapshot of the buffered events, in record order.
    pub fn events(&self) -> Vec<Event> {
        // mpr-allow: panic-hygiene -- a poisoned event buffer means a recording thread already panicked; propagating is the only sound option
        self.events.lock().expect("event buffer").clone()
    }

    /// Serializes the buffered events as JSONL text.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        // mpr-allow: panic-hygiene -- a poisoned event buffer means a recording thread already panicked; propagating is the only sound option
        for ev in self.events.lock().expect("event buffer").iter() {
            serialize_line(&mut out, ev);
        }
        out
    }
}

impl Recorder for JsonlRecorder {
    fn record(&self, name: &str, scope: &str, metric: Metric) {
        let t_us = self.origin.elapsed().as_micros() as u64;
        // mpr-allow: panic-hygiene -- a poisoned event buffer means a recording thread already panicked; propagating is the only sound option
        let mut events = self.events.lock().expect("event buffer");
        // mpr-allow: determinism-taint -- the timestamp IS the telemetry payload; events never feed campaign results, seeds, or cache keys
        events.push(Event {
            t_us,
            name: name.to_string(),
            scope: scope.to_string(),
            metric,
        });
    }

    /// Best effort, like the experiment disk cache: an unwritable
    /// profile path degrades to in-memory telemetry, it never fails
    /// the run.
    fn flush(&self) {
        let Some(path) = &self.path else {
            return;
        };
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() && std::fs::create_dir_all(parent).is_err() {
                return;
            }
        }
        let tmp = path.with_extension("jsonl.tmp");
        if std::fs::write(&tmp, self.to_jsonl()).is_ok() {
            let _ = std::fs::rename(&tmp, path);
        }
    }
}

impl Drop for JsonlRecorder {
    fn drop(&mut self) {
        self.flush();
    }
}

// --- serialization ---------------------------------------------------------

fn serialize_line(out: &mut String, ev: &Event) {
    let (kind, value) = match ev.metric {
        Metric::Count(n) => ("count", n.to_string()),
        Metric::Gauge(v) => ("gauge", num_json(v)),
        Metric::Time(v) => ("time", num_json(v)),
    };
    out.push_str(&format!(
        "{{\"t_us\":{},\"name\":{},\"scope\":{},\"kind\":\"{kind}\",\"value\":{value}}}\n",
        ev.t_us,
        str_json(&ev.name),
        str_json(&ev.scope),
    ));
}

/// Telemetry values are finite by construction (durations, rates);
/// a non-finite stray is clamped to zero rather than emitting invalid
/// JSON.
fn num_json(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn str_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// --- parsing ---------------------------------------------------------------

/// Parses one JSONL event line; `None` on any malformed input.
pub fn parse_line(line: &str) -> Option<Event> {
    let bytes = line.trim().as_bytes();
    let mut pos = 0;
    if bytes.get(pos) != Some(&b'{') {
        return None;
    }
    pos += 1;
    let mut t_us: Option<u64> = None;
    let mut name: Option<String> = None;
    let mut scope: Option<String> = None;
    let mut kind: Option<String> = None;
    let mut value_num: Option<String> = None;
    let mut value_str: Option<String> = None;
    loop {
        skip_ws(bytes, &mut pos);
        let key = parse_str(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if bytes.get(pos) != Some(&b':') {
            return None;
        }
        pos += 1;
        skip_ws(bytes, &mut pos);
        match bytes.get(pos)? {
            b'"' => {
                let s = parse_str(bytes, &mut pos)?;
                match key.as_str() {
                    "name" => name = Some(s),
                    "scope" => scope = Some(s),
                    "kind" => kind = Some(s),
                    "value" => value_str = Some(s),
                    _ => return None,
                }
            }
            _ => {
                let n = parse_num(bytes, &mut pos)?;
                match key.as_str() {
                    "t_us" => t_us = n.parse().ok(),
                    "value" => value_num = Some(n),
                    _ => return None,
                }
            }
        }
        skip_ws(bytes, &mut pos);
        match bytes.get(pos)? {
            b',' => pos += 1,
            b'}' => {
                pos += 1;
                break;
            }
            _ => return None,
        }
    }
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return None;
    }
    let _ = value_str; // strings are not valid metric values
    let raw = value_num?;
    let metric = match kind?.as_str() {
        "count" => Metric::Count(raw.parse().ok()?),
        "gauge" => Metric::Gauge(raw.parse().ok()?),
        "time" => Metric::Time(raw.parse().ok()?),
        _ => return None,
    };
    Some(Event {
        t_us: t_us?,
        name: name?,
        scope: scope?,
        metric,
    })
}

/// Reads a JSONL profile log, skipping blank lines.
///
/// # Errors
///
/// Returns the underlying I/O error, or `InvalidData` naming the first
/// malformed line.
pub fn read_log(path: &Path) -> io::Result<Vec<Event>> {
    let text = std::fs::read_to_string(path)?;
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line) {
            Some(ev) => events.push(ev),
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}:{}: malformed profile event", path.display(), i + 1),
                ))
            }
        }
    }
    Ok(events)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t') {
        *pos += 1;
    }
}

fn parse_str(b: &[u8], pos: &mut usize) -> Option<String> {
    if b.get(*pos) != Some(&b'"') {
        return None;
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'u' => {
                        let hex = b.get(*pos + 1..*pos + 5)?;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            &c if c < 0x80 => {
                out.push(c as char);
                *pos += 1;
            }
            _ => {
                // Multi-byte UTF-8: consume the full scalar.
                let s = std::str::from_utf8(&b[*pos..]).ok()?;
                let c = s.chars().next()?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Option<String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    (*pos > start).then(|| String::from_utf8_lossy(&b[start..*pos]).into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::NULL_RECORDER;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mpr_obs_{tag}_{}.jsonl", std::process::id()))
    }

    #[test]
    fn events_round_trip_through_jsonl_text() {
        let rec = JsonlRecorder::new();
        rec.record("cache.mem_hit", "v2;dev=titan-v", Metric::Count(3));
        rec.record("cell.exec", "v2;dev=titan-v", Metric::Time(0.015625));
        rec.record("beam.strikes_per_s", "", Metric::Gauge(1234.5));
        let text = rec.to_jsonl();
        assert_eq!(text.lines().count(), 3);
        let parsed: Vec<Event> = text.lines().map(|l| parse_line(l).expect(l)).collect();
        assert_eq!(parsed, rec.events());
        assert_eq!(parsed[1].metric, Metric::Time(0.015625));
    }

    #[test]
    fn timestamps_are_monotonic_relative() {
        let rec = JsonlRecorder::new();
        rec.record("a", "", Metric::Count(1));
        rec.record("b", "", Metric::Count(1));
        let events = rec.events();
        assert!(events[0].t_us <= events[1].t_us);
    }

    #[test]
    fn flush_writes_atomically_and_read_log_round_trips() {
        let path = temp_path("flush");
        {
            let rec = JsonlRecorder::to_path(&path);
            rec.record("cell.total", "scope \"quoted\"", Metric::Time(1.5));
            rec.record("plan.requests", "", Metric::Count(42));
            rec.flush();
            assert!(!path.with_extension("jsonl.tmp").exists());
        } // drop flushes again; idempotent
        let events = read_log(&path).expect("read log");
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].scope, "scope \"quoted\"");
        assert_eq!(events[1].metric, Metric::Count(42));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse_line("").is_none());
        assert!(parse_line("{").is_none());
        assert!(parse_line("{\"t_us\":1}").is_none());
        assert!(parse_line(
            "{\"t_us\":1,\"name\":\"x\",\"scope\":\"\",\"kind\":\"bogus\",\"value\":1}"
        )
        .is_none());
        assert!(parse_line(
            "{\"t_us\":1,\"name\":\"x\",\"scope\":\"\",\"kind\":\"count\",\"value\":1} extra"
        )
        .is_none());
        let ok = "{\"t_us\":1,\"name\":\"x\",\"scope\":\"\",\"kind\":\"count\",\"value\":1}";
        assert!(parse_line(ok).is_some());

        let path = temp_path("bad");
        std::fs::write(&path, format!("{ok}\nnot json\n")).expect("write");
        let err = read_log(&path).expect_err("malformed line must error");
        assert!(err.to_string().contains(":2:"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_finite_values_are_clamped_not_invalid() {
        let rec = JsonlRecorder::new();
        rec.record("g", "", Metric::Gauge(f64::INFINITY));
        let text = rec.to_jsonl();
        let ev = parse_line(text.trim()).expect("clamped line parses");
        assert_eq!(ev.metric, Metric::Gauge(0.0));
    }

    #[test]
    fn null_recorder_interops() {
        // The static default is usable wherever a &dyn Recorder goes.
        let rec: &dyn Recorder = &NULL_RECORDER;
        rec.record("x", "", Metric::Count(1));
        rec.flush();
        assert!(!rec.enabled());
    }
}
