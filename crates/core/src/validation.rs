//! Executable shape validation: every qualitative claim of the paper,
//! checked against a live run of the corresponding experiment.
//!
//! EXPERIMENTS.md is the human-readable account; this module is the
//! machine-checkable one — `mpr validate` runs it from the command line.

use crate::Study;
use mpr_metrics::Table;

/// Outcome of one shape check.
#[derive(Debug, Clone)]
pub struct ShapeResult {
    /// Paper artifact the check belongs to ("fig3", "fig9", ...).
    pub artifact: &'static str,
    /// The claim, in the paper's terms.
    pub claim: &'static str,
    /// Whether the simulated substrate reproduces it.
    pub passed: bool,
    /// The measured quantities behind the verdict.
    pub detail: String,
}

/// A full shape-validation run.
#[derive(Debug, Clone)]
pub struct ShapeReport {
    /// Individual check results, in paper order.
    pub results: Vec<ShapeResult>,
}

impl ShapeReport {
    /// Number of passing checks.
    pub fn passed(&self) -> usize {
        self.results.iter().filter(|r| r.passed).count()
    }

    /// `true` when every check passed.
    pub fn all_passed(&self) -> bool {
        self.passed() == self.results.len()
    }

    /// Renders the verdict table.
    pub fn to_table(&self) -> Table {
        let mut t =
            Table::new(vec!["artifact", "verdict", "claim", "measured"]).with_title(format!(
                "Shape validation: {}/{} checks passed",
                self.passed(),
                self.results.len()
            ));
        for r in &self.results {
            t.row(vec![
                r.artifact.to_string(),
                if r.passed { "pass" } else { "FAIL" }.to_string(),
                r.claim.to_string(),
                r.detail.clone(),
            ]);
        }
        t
    }
}

impl Study {
    /// Runs every experiment and checks the paper's qualitative claims
    /// against it. Deterministic in the study seed.
    pub fn validate_shapes(&self) -> ShapeReport {
        let mut results = Vec::new();
        let mut check = |artifact, claim, passed, detail: String| {
            results.push(ShapeResult {
                artifact,
                claim,
                passed,
                detail,
            });
        };

        // --- FPGA -----------------------------------------------------
        let fig3 = self.fig3_fpga_fit();
        check(
            "fig3",
            "FPGA FIT decreases with precision (area effect)",
            fig3.mxm_fit[0] > fig3.mxm_fit[1] && fig3.mxm_fit[1] > fig3.mxm_fit[2],
            format!(
                "MxM FIT d:s:h = {:.2}:{:.2}:{:.2}",
                1.0,
                fig3.mxm_fit[1] / fig3.mxm_fit[0],
                fig3.mxm_fit[2] / fig3.mxm_fit[0]
            ),
        );
        check(
            "fig3",
            "MNIST FIT below MxM despite bigger circuit (CNN masking)",
            (0..3).all(|i| fig3.mnist_fit[i] < fig3.mxm_fit[i]),
            format!(
                "MNIST/MxM = {:.2}, {:.2}, {:.2}",
                fig3.mnist_fit[0] / fig3.mxm_fit[0],
                fig3.mnist_fit[1] / fig3.mxm_fit[1],
                fig3.mnist_fit[2] / fig3.mxm_fit[2]
            ),
        );
        check(
            "fig3",
            "MNIST critical share grows as precision shrinks (paper: 5% -> 20%)",
            fig3.mnist_critical_fraction[2] > fig3.mnist_critical_fraction[0],
            format!(
                "critical% = {:.1}, {:.1}, {:.1}",
                fig3.mnist_critical_fraction[0] * 100.0,
                fig3.mnist_critical_fraction[1] * 100.0,
                fig3.mnist_critical_fraction[2] * 100.0
            ),
        );
        let fig4 = self.fig4_fpga_tre();
        let s4 = fig4.surviving_at(1e-3);
        check(
            "fig4",
            "at 0.1% TRE double sheds ~2/3 of its errors, half almost none",
            s4[0] < 0.55 && s4[2] > 0.8 && s4[0] < s4[1] && s4[1] < s4[2],
            format!("survival @1e-3 = {:.2}, {:.2}, {:.2}", s4[0], s4[1], s4[2]),
        );
        let fig5 = self.fig5_fpga_mebf();
        check(
            "fig5",
            "FPGA MEBF rises monotonically as precision drops",
            fig5.mxm_mebf[2] > fig5.mxm_mebf[1]
                && fig5.mxm_mebf[1] > fig5.mxm_mebf[0]
                && fig5.mnist_mebf[2] > fig5.mnist_mebf[0],
            format!(
                "MxM rel = 1.00, {:.2}, {:.2}",
                fig5.mxm_mebf[1] / fig5.mxm_mebf[0],
                fig5.mxm_mebf[2] / fig5.mxm_mebf[0]
            ),
        );

        // --- Xeon Phi ---------------------------------------------------
        let fig6 = self.fig6_knc_fit();
        check(
            "fig6",
            "KNC SDC: single above double for LavaMD/MxM, equal for LUD",
            fig6.sdc_fit[0][1] > fig6.sdc_fit[0][0]
                && fig6.sdc_fit[1][1] > fig6.sdc_fit[1][0]
                && (fig6.sdc_fit[2][1] / fig6.sdc_fit[2][0] - 1.0).abs() < 0.25,
            format!(
                "s/d = {:.2}, {:.2}, {:.2}",
                fig6.sdc_fit[0][1] / fig6.sdc_fit[0][0],
                fig6.sdc_fit[1][1] / fig6.sdc_fit[1][0],
                fig6.sdc_fit[2][1] / fig6.sdc_fit[2][0]
            ),
        );
        check(
            "fig6",
            "KNC DUE: single above double everywhere (16 vs 8 lanes)",
            (0..3).all(|i| fig6.due_fit[i][1] > fig6.due_fit[i][0]),
            format!(
                "DUE s/d = {:.2}, {:.2}, {:.2}",
                fig6.due_fit[0][1] / fig6.due_fit[0][0],
                fig6.due_fit[1][1] / fig6.due_fit[1][0],
                fig6.due_fit[2][1] / fig6.due_fit[2][0]
            ),
        );
        let fig7 = self.fig7_knc_pvf();
        check(
            "fig7",
            "PVF indistinguishable between precisions for every code",
            (0..3).all(|i| fig7.indistinguishable(i)),
            format!(
                "d vs s = {:.2}/{:.2}, {:.2}/{:.2}, {:.2}/{:.2}",
                fig7.pvf[0][0].factor(),
                fig7.pvf[0][1].factor(),
                fig7.pvf[1][0].factor(),
                fig7.pvf[1][1].factor(),
                fig7.pvf[2][0].factor(),
                fig7.pvf[2][1].factor()
            ),
        );
        let fig8 = self.fig8_knc_tre();
        let lava = fig8.surviving_at(0, 1e-3);
        let lud = fig8.surviving_at(2, 1e-3);
        check(
            "fig8",
            "LavaMD inverts the TRE trend (transcendental unit)",
            lava[1] <= lava[0] + 0.03 && (lava[1] - lava[0]) < 0.5 * (lud[1] - lud[0]),
            format!(
                "LavaMD survival d={:.2} s={:.2}; LUD d={:.2} s={:.2}",
                lava[0], lava[1], lud[0], lud[1]
            ),
        );
        let fig9 = self.fig9_knc_mebf();
        check(
            "fig9",
            "KNC MEBF: single wins LavaMD/LUD, double wins MxM (prefetch)",
            fig9.mebf[0][1] > fig9.mebf[0][0]
                && fig9.mebf[2][1] > fig9.mebf[2][0]
                && fig9.mebf[1][0] > fig9.mebf[1][1],
            format!(
                "s/d = {:.2}, {:.2}, {:.2}",
                fig9.mebf[0][1] / fig9.mebf[0][0],
                fig9.mebf[1][1] / fig9.mebf[1][0],
                fig9.mebf[2][1] / fig9.mebf[2][0]
            ),
        );

        // --- GPU ----------------------------------------------------------
        let fig10 = self.fig10_gpu_fit();
        let [add, mul, fma] = fig10.micro_sdc;
        check(
            "fig10a",
            "MUL: d > s > h; ADD flat-to-inverted; FMA: half lowest",
            mul[0] > mul[1]
                && mul[1] > mul[2]
                // ADD does not follow MUL's steep decline: its s/d ratio
                // sits near or above 1 while MUL's drops toward 0.5. The
                // relative comparison is robust to quick-scale noise.
                && add[1] / add[0] > mul[1] / mul[0] + 0.2
                && fma[2] < fma[0]
                && fma[2] < fma[1],
            format!(
                "MUL {:.2}:{:.2}:{:.2} ADD {:.2}:{:.2}:{:.2} FMA {:.2}:{:.2}:{:.2}",
                1.0,
                mul[1] / mul[0],
                mul[2] / mul[0],
                1.0,
                add[1] / add[0],
                add[2] / add[0],
                1.0,
                fma[1] / fma[0],
                fma[2] / fma[0]
            ),
        );
        check(
            "fig10b",
            "MxM well above LavaMD; LavaMD MUL-like; MxM FMA-like",
            (0..3).all(|i| fig10.app_sdc[1][i] > 1.8 * fig10.app_sdc[0][i])
                && fig10.app_sdc[0][0] > fig10.app_sdc[0][1]
                && fig10.app_sdc[0][1] > fig10.app_sdc[0][2]
                && fig10.app_sdc[1][2] < fig10.app_sdc[1][0],
            format!(
                "MxM/LavaMD @d = {:.1}",
                fig10.app_sdc[1][0] / fig10.app_sdc[0][0]
            ),
        );
        check(
            "fig10c",
            "YOLOv3: half significantly lowest FIT; detector DUE high",
            // >=10% below single: "significant" given quick-scale
            // Poisson noise of a few tens of events per cell.
            fig10.yolo_sdc[2] < 0.9 * fig10.yolo_sdc[1] && fig10.yolo_due[0] > fig10.app_due[0][0],
            format!(
                "YOLO d:s:h = 1.00:{:.2}:{:.2}",
                fig10.yolo_sdc[1] / fig10.yolo_sdc[0],
                fig10.yolo_sdc[2] / fig10.yolo_sdc[0]
            ),
        );
        let fig11 = self.fig11_gpu_tre();
        let survival_ordered = (0..3).all(|i| {
            let d = fig11.micro_curves[i][0].surviving_fraction(1e-3);
            let h = fig11.micro_curves[i][2].surviving_fraction(1e-3);
            d < h
        });
        check(
            "fig11",
            "double benefits most from output tolerance on every series",
            survival_ordered,
            "micro survival d < h at 1e-3 for ADD/MUL/FMA".to_string(),
        );
        check(
            "fig11c",
            "YOLO non-tolerable SDC share grows as precision shrinks",
            (1.0 - fig11.yolo_criticality[2][0]) > (1.0 - fig11.yolo_criticality[0][0]),
            format!(
                "critical% = {:.1}, {:.1}, {:.1}",
                (1.0 - fig11.yolo_criticality[0][0]) * 100.0,
                (1.0 - fig11.yolo_criticality[1][0]) * 100.0,
                (1.0 - fig11.yolo_criticality[2][0]) * 100.0
            ),
        );
        let fig12 = self.fig12_gpu_avf();
        check(
            "fig12",
            "AVF: double above single ~= half (FP64 core complexity)",
            (0..3).all(|i| {
                let d = fig12.avf[i][0].factor();
                let s = fig12.avf[i][1].factor();
                let h = fig12.avf[i][2].factor();
                d > s && d > h && (s - h).abs() < 0.1
            }),
            format!(
                "FMA AVF = {:.2}, {:.2}, {:.2}",
                fig12.avf[2][0].factor(),
                fig12.avf[2][1].factor(),
                fig12.avf[2][2].factor()
            ),
        );
        let fig13 = self.fig13_gpu_mebf();
        check(
            "fig13",
            "GPU MEBF rises with reduced precision (except the slow half YOLO)",
            (0..5).all(|b| fig13.mebf[b][2] > fig13.mebf[b][0])
                && fig13.mebf[5][1] > fig13.mebf[5][2],
            format!(
                "LavaMD rel = 1.00, {:.2}, {:.2}; YOLO h rel = {:.2}",
                fig13.mebf[3][1] / fig13.mebf[3][0],
                fig13.mebf[3][2] / fig13.mebf[3][0],
                fig13.mebf[5][2] / fig13.mebf[5][0]
            ),
        );

        ShapeReport { results }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_shape_passes_at_the_default_seed() {
        let report = Study::quick(2019).validate_shapes();
        let failures: Vec<_> = report.results.iter().filter(|r| !r.passed).collect();
        assert!(report.all_passed(), "failed checks: {:#?}", failures);
        assert!(report.results.len() >= 15, "comprehensive coverage");
    }

    #[test]
    fn report_renders_with_verdicts() {
        let report = Study::quick(2019).validate_shapes();
        let text = report.to_table().to_string();
        assert!(text.contains("fig10a"));
        assert!(text.contains("pass"));
    }
}
