//! The study configuration and shared campaign plumbing.

use mpr_arch::{Device, Fpga, VoltaGpu, WorkloadProfile, XeonPhiKnc};
use mpr_beam::{BeamCampaign, BeamSession, CampaignResult};
use mpr_fault::{FaultModel, InjectionCampaign, InjectionReport, Workload};
use mpr_kernels::{profiles as kprofiles, Gemm, LavaMd, Lud, Micro, MicroKernelOp};
use mpr_nn::{profiles as nprofiles, Mnist, TinyYolo};
use mpr_softfloat::Precision;

/// How much statistical weight to put behind each experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StudyScale {
    /// Small proxies and short sessions: seconds per figure. Used by
    /// tests and the quickstart example.
    Quick,
    /// Paper-scale statistics (thousands of strikes/injections per
    /// configuration): tens of seconds per figure. Used by the benches
    /// and EXPERIMENTS.md.
    Paper,
}

/// One reproduction of the paper's evaluation.
///
/// Construct with [`Study::quick`] or [`Study::paper`], then call the
/// per-table/figure runners. All campaigns are deterministic in the
/// seed.
#[derive(Debug, Clone)]
pub struct Study {
    seed: u64,
    scale: StudyScale,
}

impl Study {
    /// A fast study (small workload proxies, hundreds of strikes).
    pub fn quick(seed: u64) -> Study {
        Study {
            seed,
            scale: StudyScale::Quick,
        }
    }

    /// A paper-scale study (larger proxies, thousands of strikes).
    pub fn paper(seed: u64) -> Study {
        Study {
            seed,
            scale: StudyScale::Paper,
        }
    }

    /// The study's RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The study's scale.
    pub fn scale(&self) -> StudyScale {
        self.scale
    }

    pub(crate) fn session(&self, salt: u64) -> BeamSession {
        match self.scale {
            StudyScale::Quick => BeamSession::quick(self.seed ^ salt).with_target_candidates(400),
            StudyScale::Paper => BeamSession::paper(self.seed ^ salt).with_target_candidates(4000),
        }
    }

    pub(crate) fn injections(&self) -> u64 {
        match self.scale {
            StudyScale::Quick => 400,
            // "more than 2,000 faults for each data type" (Section 3.3).
            StudyScale::Paper => 2400,
        }
    }

    // --- workload proxies -------------------------------------------------

    pub(crate) fn gemm(&self) -> Gemm {
        match self.scale {
            StudyScale::Quick => Gemm::new(12),
            StudyScale::Paper => Gemm::new(24),
        }
    }

    pub(crate) fn lavamd(&self) -> LavaMd {
        match self.scale {
            StudyScale::Quick => LavaMd::new(2, 3),
            StudyScale::Paper => LavaMd::new(2, 5),
        }
    }

    /// LavaMD with the KNC's dedicated-transcendental-unit exp model.
    pub(crate) fn lavamd_knc_kernel(&self) -> LavaMd {
        self.lavamd().for_knc()
    }

    pub(crate) fn lud(&self) -> Lud {
        match self.scale {
            StudyScale::Quick => Lud::new(16),
            StudyScale::Paper => Lud::new(28),
        }
    }

    pub(crate) fn micro(&self, op: MicroKernelOp) -> Micro {
        match self.scale {
            StudyScale::Quick => Micro::new(op, 16, 128),
            StudyScale::Paper => Micro::new(op, 48, 512),
        }
    }

    pub(crate) fn mnist(&self) -> Mnist {
        Mnist::new().with_seed(0x313 ^ self.seed.rotate_left(8))
    }

    pub(crate) fn yolo(&self) -> TinyYolo {
        TinyYolo::new()
    }

    // --- devices ----------------------------------------------------------

    pub(crate) fn fpga(&self) -> Fpga {
        Fpga::zynq7000()
    }

    pub(crate) fn knc(&self) -> XeonPhiKnc {
        XeonPhiKnc::coprocessor_3120a()
    }

    pub(crate) fn gpu(&self) -> VoltaGpu {
        VoltaGpu::titan_v()
    }

    // --- shared campaign runners -------------------------------------------

    /// Runs one beam campaign.
    pub(crate) fn beam(
        &self,
        device: &dyn Device,
        workload: &dyn Workload,
        profile: &WorkloadProfile,
        precision: Precision,
        salt: u64,
    ) -> CampaignResult {
        BeamCampaign::new(device, workload, profile, precision)
            .session(self.session(salt ^ precision.total_bits() as u64))
            .run()
    }

    /// Runs one injection campaign with the given fault model and live
    /// fraction (blind injections land in dead state the rest of the
    /// time — see `InjectionCampaign::live_fraction`).
    pub(crate) fn inject(
        &self,
        workload: &dyn Workload,
        precision: Precision,
        model: FaultModel,
        live_fraction: f64,
        salt: u64,
    ) -> InjectionReport {
        InjectionCampaign::new(workload, precision)
            .injections(self.injections())
            .seed(self.seed ^ salt ^ precision.total_bits() as u64)
            .model(model)
            .live_fraction(live_fraction)
            .run()
    }

    /// GPU register-level injection (the paper's CAROL-FI SASS mode,
    /// Section 6.2).
    pub(crate) fn inject_gpu_registers(
        &self,
        workload: &dyn Workload,
        precision: Precision,
        model: FaultModel,
        salt: u64,
    ) -> InjectionReport {
        self.inject(
            workload,
            precision,
            model,
            mpr_arch::calib::VOLTA_REG_LIVE_FRACTION,
            salt,
        )
    }

    // --- profile accessors (full-scale characterizations) ------------------

    pub(crate) fn profile_mxm_gpu(&self) -> WorkloadProfile {
        kprofiles::mxm_gpu()
    }
    pub(crate) fn profile_lavamd_gpu(&self) -> WorkloadProfile {
        kprofiles::lavamd_gpu()
    }
    pub(crate) fn profile_mxm_knc(&self) -> WorkloadProfile {
        kprofiles::mxm_knc()
    }
    pub(crate) fn profile_lavamd_knc(&self) -> WorkloadProfile {
        kprofiles::lavamd_knc()
    }
    pub(crate) fn profile_lud_knc(&self) -> WorkloadProfile {
        kprofiles::lud_knc()
    }
    pub(crate) fn profile_mxm_fpga(&self) -> WorkloadProfile {
        kprofiles::mxm_fpga()
    }
    pub(crate) fn profile_micro(&self, op: MicroKernelOp) -> WorkloadProfile {
        kprofiles::micro(op)
    }
    pub(crate) fn profile_mnist_fpga(&self) -> WorkloadProfile {
        nprofiles::mnist_fpga()
    }
    pub(crate) fn profile_yolo_gpu(&self) -> WorkloadProfile {
        nprofiles::yolo_gpu()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_differ_in_statistical_weight() {
        let q = Study::quick(1);
        let p = Study::paper(1);
        assert!(p.injections() > q.injections());
        assert!(p.session(0).target_candidates > q.session(0).target_candidates);
        assert_eq!(q.scale(), StudyScale::Quick);
        assert_eq!(p.scale(), StudyScale::Paper);
    }

    #[test]
    fn proxies_grow_with_scale() {
        assert!(Study::paper(0).gemm().dim() > Study::quick(0).gemm().dim());
        assert!(Study::paper(0).lud().dim() > Study::quick(0).lud().dim());
    }

    #[test]
    fn seed_is_plumbed() {
        assert_eq!(Study::quick(9).seed(), 9);
    }
}
