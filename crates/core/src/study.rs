//! The study configuration: scale, seed, and the experiment engine.

use mpr_arch::{Fpga, VoltaGpu, WorkloadProfile, XeonPhiKnc};
use mpr_exp::{
    mix_seed, CellKey, CellKind, CellResult, ClassifierId, DeviceId, Engine, ExperimentPlan,
    ResultStore, SamplingPlan, WorkloadId,
};
use mpr_fault::FaultModel;
use mpr_kernels::{profiles as kprofiles, MicroKernelOp};
use mpr_nn::profiles as nprofiles;
use mpr_obs::{Recorder, Timer};
use mpr_softfloat::Precision;
use std::path::Path;
use std::sync::Arc;

/// How much statistical weight to put behind each experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StudyScale {
    /// Small proxies and short sessions: seconds per figure. Used by
    /// tests and the quickstart example.
    Quick,
    /// Paper-scale statistics (thousands of strikes/injections per
    /// configuration): tens of seconds per figure. Used by the benches
    /// and EXPERIMENTS.md.
    Paper,
}

/// One reproduction of the paper's evaluation.
///
/// Construct with [`Study::quick`] or [`Study::paper`], then call the
/// per-table/figure runners. Every figure obtains its campaigns
/// through the study's [`Engine`]: identical experiment cells are
/// executed once and shared across figures, campaigns run in parallel
/// across cells, and an optional disk cache
/// ([`Study::with_cache_dir`]) makes repeated reports incremental.
/// All results are deterministic in the seed, independent of thread
/// count and cache temperature.
#[derive(Debug, Clone)]
pub struct Study {
    seed: u64,
    scale: StudyScale,
    sampling: SamplingPlan,
    engine: Engine,
}

impl Study {
    /// A fast study (small workload proxies, hundreds of strikes).
    pub fn quick(seed: u64) -> Study {
        Study {
            seed,
            scale: StudyScale::Quick,
            sampling: SamplingPlan::Fixed,
            engine: Engine::new(seed),
        }
    }

    /// A paper-scale study (larger proxies, thousands of strikes).
    pub fn paper(seed: u64) -> Study {
        Study {
            seed,
            scale: StudyScale::Paper,
            sampling: SamplingPlan::Fixed,
            engine: Engine::new(seed),
        }
    }

    /// Selects the strike-sampling strategy for every beam and
    /// injection cell this study builds. The default,
    /// [`SamplingPlan::Fixed`], executes the full per-scale budget and
    /// is the reference oracle; [`SamplingPlan::Adaptive`] keeps the
    /// same budget as a ceiling but stops each cell once its SDC
    /// confidence interval is narrow enough, then reinvests the spared
    /// strikes into the noisiest cells of the plan. Adaptive cells key
    /// (and cache) separately from fixed cells.
    pub fn with_sampling(mut self, plan: SamplingPlan) -> Study {
        self.sampling = plan;
        self
    }

    /// Overrides the engine's worker-thread budget (0 = available
    /// parallelism). Results are identical for every thread count.
    pub fn with_threads(mut self, threads: usize) -> Study {
        self.engine = self.engine.with_threads(threads);
        self
    }

    /// Grants every cell a retry budget: a panicking or hung cell is
    /// re-attempted up to `retries` times with its seed unchanged, so
    /// a recovered cell is byte-identical to an untroubled run.
    pub fn with_retries(mut self, retries: u32) -> Study {
        self.engine = self.engine.with_retries(retries);
        self
    }

    /// Arms a per-cell watchdog deadline (`None` disarms it). A cell
    /// attempt exceeding the deadline is cancelled cooperatively and
    /// recorded as hung rather than stalling the whole study.
    pub fn with_cell_timeout(mut self, timeout: Option<std::time::Duration>) -> Study {
        self.engine = self.engine.with_cell_timeout(timeout);
        self
    }

    /// Attaches an on-disk result cache: cells already present in
    /// `dir` (from any earlier run at the same seed and scale) are
    /// loaded instead of executed, and fresh results are written back.
    pub fn with_cache_dir(mut self, dir: impl AsRef<Path>) -> Study {
        self.engine = self
            .engine
            .with_store(Arc::new(ResultStore::with_cache_dir(dir.as_ref())));
        self
    }

    /// Attaches an observability recorder: every figure runner times
    /// its phase, and the engine/campaign layers below record plan,
    /// cache, and throughput events. Telemetry never perturbs results.
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Study {
        self.engine = self.engine.with_recorder(recorder);
        self
    }

    /// A guard timing one report phase (a figure, table, or ablation);
    /// records a `phase` event scoped by `name` when dropped.
    pub(crate) fn phase(&self, name: &str) -> Timer<'_> {
        Timer::start(&**self.engine.recorder(), "phase", name)
    }

    /// The study's RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The study's scale.
    pub fn scale(&self) -> StudyScale {
        self.scale
    }

    /// The experiment engine behind this study.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// How many experiment cells this study has actually executed
    /// (cache hits — memory or disk — are not counted).
    pub fn executed_cells(&self) -> u64 {
        self.engine.store().executed()
    }

    // --- session parameters -------------------------------------------------

    pub(crate) fn hours(&self) -> f64 {
        match self.scale {
            StudyScale::Quick => 10.0,
            StudyScale::Paper => 100.0,
        }
    }

    pub(crate) fn target_candidates(&self) -> u64 {
        match self.scale {
            StudyScale::Quick => 256,
            StudyScale::Paper => 4000,
        }
    }

    pub(crate) fn injections(&self) -> u64 {
        match self.scale {
            StudyScale::Quick => 400,
            // "more than 2,000 faults for each data type" (Section 3.3).
            StudyScale::Paper => 2400,
        }
    }

    // --- workload identities ------------------------------------------------

    pub(crate) fn gemm_id(&self) -> WorkloadId {
        WorkloadId::Gemm {
            dim: match self.scale {
                StudyScale::Quick => 12,
                StudyScale::Paper => 24,
            },
        }
    }

    pub(crate) fn lavamd_id(&self) -> WorkloadId {
        let (boxes, particles) = match self.scale {
            StudyScale::Quick => (2, 3),
            StudyScale::Paper => (2, 5),
        };
        WorkloadId::LavaMd {
            boxes,
            particles,
            knc_unit: false,
        }
    }

    /// LavaMD with the KNC's dedicated-transcendental-unit exp model.
    pub(crate) fn lavamd_knc_id(&self) -> WorkloadId {
        match self.lavamd_id() {
            WorkloadId::LavaMd {
                boxes, particles, ..
            } => WorkloadId::LavaMd {
                boxes,
                particles,
                knc_unit: true,
            },
            // mpr-allow: panic-hygiene -- lavamd_id always returns the LavaMd variant
            other => unreachable!("lavamd_id returned {other:?}"),
        }
    }

    pub(crate) fn lud_id(&self) -> WorkloadId {
        WorkloadId::Lud {
            dim: match self.scale {
                StudyScale::Quick => 16,
                StudyScale::Paper => 28,
            },
        }
    }

    pub(crate) fn micro_id(&self, op: MicroKernelOp) -> WorkloadId {
        let (threads, iters) = match self.scale {
            StudyScale::Quick => (16, 128),
            StudyScale::Paper => (48, 512),
        };
        WorkloadId::Micro { op, threads, iters }
    }

    pub(crate) fn mnist_id(&self) -> WorkloadId {
        // The weight seed rides on the study seed through a full
        // splitmix64 avalanche (the old `0x313 ^ rotate` derivation
        // collided for related seeds).
        WorkloadId::Mnist {
            seed: mix_seed(self.seed, 0x313),
        }
    }

    pub(crate) fn yolo_id(&self) -> WorkloadId {
        WorkloadId::Yolo
    }

    // --- devices ------------------------------------------------------------

    pub(crate) fn fpga(&self) -> Fpga {
        Fpga::zynq7000()
    }

    pub(crate) fn knc(&self) -> XeonPhiKnc {
        XeonPhiKnc::coprocessor_3120a()
    }

    pub(crate) fn gpu(&self) -> VoltaGpu {
        VoltaGpu::titan_v()
    }

    // --- cell constructors --------------------------------------------------

    /// A beam cell at this study's scale. Workloads with a domain
    /// classifier (MNIST, YOLO) always carry it, so label-consuming
    /// and label-free figures share one campaign.
    pub(crate) fn beam_cell(
        &self,
        device: DeviceId,
        workload: WorkloadId,
        precision: Precision,
    ) -> CellKey {
        let classifier = match workload {
            WorkloadId::Mnist { .. } => ClassifierId::MnistLogits,
            WorkloadId::Yolo => ClassifierId::YoloDetections,
            _ => ClassifierId::None,
        };
        CellKey {
            device,
            workload,
            precision,
            kind: CellKind::Beam {
                hours: self.hours(),
                target_candidates: self.target_candidates(),
                classifier,
                sampling: self.sampling,
            },
        }
    }

    /// An injection cell at this study's scale, with the given fault
    /// model and live fraction (blind injections land in dead state
    /// the rest of the time — see `InjectionCampaign::live_fraction`).
    pub(crate) fn inject_cell(
        &self,
        workload: WorkloadId,
        precision: Precision,
        model: FaultModel,
        live_fraction: f64,
    ) -> CellKey {
        // Injection campaigns bypass the device's execution units; the
        // device slot only namespaces the cell. Use the device whose
        // methodology the model mimics to keep keys self-describing.
        let device = match workload {
            WorkloadId::Micro { .. } | WorkloadId::Yolo => DeviceId::TitanV,
            WorkloadId::Mnist { .. } => DeviceId::Zynq7000,
            _ => DeviceId::Knc3120a,
        };
        CellKey {
            device,
            workload,
            precision,
            kind: CellKind::Inject {
                injections: self.injections(),
                model,
                live_fraction,
                sampling: self.sampling,
            },
        }
    }

    /// An FPGA error-accumulation cell (MxM, `faults` stuck-at upsets
    /// per trial).
    pub(crate) fn acc_cell(&self, precision: Precision, faults: u32) -> CellKey {
        CellKey {
            device: DeviceId::Zynq7000,
            workload: self.gemm_id(),
            precision,
            kind: CellKind::Accumulate {
                faults,
                trials: match self.scale {
                    StudyScale::Quick => 60,
                    StudyScale::Paper => 250,
                },
            },
        }
    }

    /// Runs a batch of cells through the engine, one result per
    /// request in request order.
    pub(crate) fn run_cells(&self, keys: Vec<CellKey>) -> Vec<CellResult> {
        let mut plan = ExperimentPlan::new();
        for key in keys {
            plan.push(key);
        }
        self.engine.run(&plan)
    }

    // --- profile accessors (full-scale characterizations) ------------------

    pub(crate) fn profile_mxm_gpu(&self) -> WorkloadProfile {
        kprofiles::mxm_gpu()
    }
    pub(crate) fn profile_lavamd_gpu(&self) -> WorkloadProfile {
        kprofiles::lavamd_gpu()
    }
    pub(crate) fn profile_mxm_knc(&self) -> WorkloadProfile {
        kprofiles::mxm_knc()
    }
    pub(crate) fn profile_lavamd_knc(&self) -> WorkloadProfile {
        kprofiles::lavamd_knc()
    }
    pub(crate) fn profile_lud_knc(&self) -> WorkloadProfile {
        kprofiles::lud_knc()
    }
    pub(crate) fn profile_mxm_fpga(&self) -> WorkloadProfile {
        kprofiles::mxm_fpga()
    }
    pub(crate) fn profile_micro(&self, op: MicroKernelOp) -> WorkloadProfile {
        kprofiles::micro(op)
    }
    pub(crate) fn profile_mnist_fpga(&self) -> WorkloadProfile {
        nprofiles::mnist_fpga()
    }
    pub(crate) fn profile_yolo_gpu(&self) -> WorkloadProfile {
        nprofiles::yolo_gpu()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_differ_in_statistical_weight() {
        let q = Study::quick(1);
        let p = Study::paper(1);
        assert!(p.injections() > q.injections());
        assert!(p.target_candidates() > q.target_candidates());
        assert!(p.hours() > q.hours());
        assert_eq!(q.scale(), StudyScale::Quick);
        assert_eq!(p.scale(), StudyScale::Paper);
    }

    #[test]
    fn proxies_grow_with_scale() {
        assert_eq!(Study::quick(0).gemm_id(), WorkloadId::Gemm { dim: 12 });
        assert_eq!(Study::paper(0).gemm_id(), WorkloadId::Gemm { dim: 24 });
        assert_eq!(Study::paper(0).lud_id(), WorkloadId::Lud { dim: 28 });
    }

    #[test]
    fn seed_is_plumbed() {
        assert_eq!(Study::quick(9).seed(), 9);
        assert_eq!(Study::quick(9).engine().seed(), 9);
    }

    #[test]
    fn mnist_weight_seed_avalanches_the_study_seed() {
        let a = Study::quick(1).mnist_id();
        let b = Study::quick(2).mnist_id();
        assert_ne!(a, b);
        // Nearby seeds must not produce related weight seeds.
        let (WorkloadId::Mnist { seed: sa }, WorkloadId::Mnist { seed: sb }) = (a, b) else {
            // mpr-allow: panic-hygiene -- mnist_id always returns the Mnist variant
            panic!("mnist_id variant");
        };
        assert!((sa ^ sb).count_ones() > 8, "{sa:x} vs {sb:x}");
    }

    #[test]
    fn identical_cells_share_seeds_across_figures() {
        let s = Study::quick(7);
        let a = s.beam_cell(DeviceId::TitanV, s.gemm_id(), Precision::Single);
        let b = s.beam_cell(DeviceId::TitanV, s.gemm_id(), Precision::Single);
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.cell_seed(s.seed()), b.cell_seed(s.seed()));
    }
}
