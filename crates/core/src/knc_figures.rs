//! Xeon Phi experiments: Figures 6-9 of the paper.

use crate::Study;
use mpr_exp::{CellResult, DeviceId};
use mpr_fault::FaultModel;
use mpr_metrics::{Table, TreCurve, Vulnerability};
use mpr_softfloat::Precision;

/// The KNC benchmark list.
const KNC_BENCHMARKS: [&str; 3] = ["LavaMD", "MxM", "LUD"];

fn knc_table(first: &str, title: &str) -> Table {
    Table::new(vec![
        first.to_string(),
        "double".to_string(),
        "single".to_string(),
    ])
    .with_title(title)
}

/// Figure 6: Xeon Phi SDC and DUE FIT per benchmark and precision.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// SDC FIT (a.u.) per benchmark, `[d, s]` order, LavaMD/MxM/LUD.
    pub sdc_fit: [[f64; 2]; 3],
    /// DUE FIT (a.u.) per benchmark.
    pub due_fit: [[f64; 2]; 3],
}

impl Fig6 {
    /// Renders the FIT table, normalized like the paper's plots: the
    /// largest SDC FIT in the figure is 100 a.u.
    pub fn to_table(&self) -> Table {
        let mut t = knc_table(
            "quantity",
            "Figure 6: Xeon Phi SDC and DUE FIT (normalized a.u.)",
        );
        let max = self
            .sdc_fit
            .iter()
            .flatten()
            .cloned()
            .fold(f64::MIN, f64::max);
        let scale = 100.0 / max;
        for (i, name) in KNC_BENCHMARKS.iter().enumerate() {
            t.row(vec![
                format!("{name} SDC"),
                format!("{:.1}", self.sdc_fit[i][0] * scale),
                format!("{:.1}", self.sdc_fit[i][1] * scale),
            ]);
            t.row(vec![
                format!("{name} DUE"),
                format!("{:.1}", self.due_fit[i][0] * scale),
                format!("{:.1}", self.due_fit[i][1] * scale),
            ]);
        }
        t
    }
}

/// Figure 7: Program Vulnerability Factor from CAROL-FI-style variable
/// injection.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// PVF estimates per benchmark, `[d, s]` order.
    pub pvf: [[Vulnerability; 2]; 3],
}

impl Fig7 {
    /// Renders the PVF table with confidence intervals.
    pub fn to_table(&self) -> Table {
        let mut t = knc_table("benchmark", "Figure 7: Xeon Phi SDC PVF");
        for (i, name) in KNC_BENCHMARKS.iter().enumerate() {
            t.row(vec![
                name.to_string(),
                format!("{}", self.pvf[i][0]),
                format!("{}", self.pvf[i][1]),
            ]);
        }
        t
    }

    /// Whether double and single PVF are statistically indistinguishable
    /// for a benchmark — the paper's Section 5.2 conclusion.
    pub fn indistinguishable(&self, benchmark: usize) -> bool {
        self.pvf[benchmark][0].statistically_indistinguishable(&self.pvf[benchmark][1])
    }
}

/// Figure 8: Xeon Phi FIT reduction vs TRE.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// TRE curves per benchmark, `[d, s]` order.
    pub curves: [[TreCurve; 2]; 3],
}

impl Fig8 {
    /// Surviving fraction at a tolerance for one benchmark.
    pub fn surviving_at(&self, benchmark: usize, tre: f64) -> [f64; 2] {
        [
            self.curves[benchmark][0].surviving_fraction(tre),
            self.curves[benchmark][1].surviving_fraction(tre),
        ]
    }

    /// Renders the survival table over the standard grid.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(vec!["benchmark", "TRE", "double", "single"])
            .with_title("Figure 8: Xeon Phi surviving FIT fraction vs TRE");
        for (i, name) in KNC_BENCHMARKS.iter().enumerate() {
            for tre in TreCurve::standard_grid() {
                let s = self.surviving_at(i, tre);
                t.row(vec![
                    name.to_string(),
                    format!("{tre:.0e}"),
                    format!("{:.3}", s[0]),
                    format!("{:.3}", s[1]),
                ]);
            }
        }
        t
    }
}

/// Figure 9: Xeon Phi Mean Executions Between Failures.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// MEBF (a.u.) per benchmark, `[d, s]` order.
    pub mebf: [[f64; 2]; 3],
}

impl Fig9 {
    /// Renders the MEBF table, each row normalized to its double-
    /// precision value so the MxM crossover is immediate.
    pub fn to_table(&self) -> Table {
        let mut t = knc_table(
            "benchmark",
            "Figure 9: Xeon Phi MEBF (relative to double = 1.00)",
        );
        for (i, name) in KNC_BENCHMARKS.iter().enumerate() {
            t.row(vec![
                name.to_string(),
                "1.00".to_string(),
                format!("{:.2}", self.mebf[i][1] / self.mebf[i][0]),
            ]);
        }
        t
    }
}

impl Study {
    /// The KNC beam cells — LavaMD, MxM, and LUD at double and single
    /// precision (the KNC has no half-precision hardware). Figures 6,
    /// 8, and 9 all project this one set of campaigns.
    fn knc_results(&self) -> [[CellResult; 2]; 3] {
        let workloads = [self.lavamd_knc_id(), self.gemm_id(), self.lud_id()];
        let mut cells = Vec::with_capacity(6);
        for w in workloads {
            for p in [Precision::Double, Precision::Single] {
                cells.push(self.beam_cell(DeviceId::Knc3120a, w, p));
            }
        }
        let mut results = self.run_cells(cells).into_iter();
        // mpr-allow: panic-hygiene -- run_cells returns exactly one result per requested cell
        [(); 3].map(|_| [(); 2].map(|_| results.next().expect("six knc cells")))
    }

    /// Figure 6: KNC beam campaigns.
    pub fn fig6_knc_fit(&self) -> Fig6 {
        let _phase = self.phase("fig6_knc_fit");
        let campaigns = self.knc_results();
        let mut sdc = [[0.0; 2]; 3];
        let mut due = [[0.0; 2]; 3];
        for (i, pair) in campaigns.iter().enumerate() {
            for (j, r) in pair.iter().enumerate() {
                sdc[i][j] = r.beam().fit_sdc().au();
                due[i][j] = r.beam().fit_due().au();
            }
        }
        Fig6 {
            sdc_fit: sdc,
            due_fit: due,
        }
    }

    /// Figure 7: variable-level single-bit injection (CAROL-FI on the
    /// KNC injects program variables — Section 5.2).
    pub fn fig7_knc_pvf(&self) -> Fig7 {
        let _phase = self.phase("fig7_knc_pvf");
        let workloads = [self.lavamd_knc_id(), self.gemm_id(), self.lud_id()];
        let mut cells = Vec::with_capacity(6);
        for w in workloads {
            for p in [Precision::Double, Precision::Single] {
                cells.push(self.inject_cell(
                    w,
                    p,
                    FaultModel::single_bit(),
                    mpr_arch::calib::KNC_VARIABLE_LIVE_FRACTION,
                ));
            }
        }
        let results = self.run_cells(cells);
        let pvf = [0, 1, 2].map(|i| [0, 1].map(|j| results[2 * i + j].inject().vulnerability()));
        Fig7 { pvf }
    }

    /// Figure 8: TRE curves from the KNC beam campaigns.
    pub fn fig8_knc_tre(&self) -> Fig8 {
        let _phase = self.phase("fig8_knc_tre");
        let campaigns = self.knc_results();
        Fig8 {
            curves: campaigns.map(|pair| [pair[0].beam().tre_curve(), pair[1].beam().tre_curve()]),
        }
    }

    /// Figure 9: KNC MEBF.
    pub fn fig9_knc_mebf(&self) -> Fig9 {
        let _phase = self.phase("fig9_knc_mebf");
        let campaigns = self.knc_results();
        let mut mebf = [[0.0; 2]; 3];
        for (i, pair) in campaigns.iter().enumerate() {
            for (j, r) in pair.iter().enumerate() {
                mebf[i][j] = r.beam().mebf().executions();
            }
        }
        Fig9 { mebf }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_shapes() {
        let fig = Study::quick(11).fig6_knc_fit();
        // SDC: single > double for LavaMD and MxM (register allocation),
        // similar for LUD.
        assert!(
            fig.sdc_fit[0][1] > fig.sdc_fit[0][0],
            "LavaMD {:?}",
            fig.sdc_fit[0]
        );
        assert!(
            fig.sdc_fit[1][1] > fig.sdc_fit[1][0],
            "MxM {:?}",
            fig.sdc_fit[1]
        );
        let lud_ratio = fig.sdc_fit[2][1] / fig.sdc_fit[2][0];
        assert!((0.7..1.4).contains(&lud_ratio), "LUD ratio {lud_ratio}");
        // DUE: single > double everywhere (twice the control bits).
        for i in 0..3 {
            assert!(fig.due_fit[i][1] > fig.due_fit[i][0], "bench {i}");
        }
    }

    #[test]
    fn fig7_pvf_similar_between_precisions() {
        let fig = Study::quick(12).fig7_knc_pvf();
        for i in 0..3 {
            assert!(
                fig.indistinguishable(i),
                "benchmark {i}: {:?} vs {:?}",
                fig.pvf[i][0],
                fig.pvf[i][1]
            );
            assert!(fig.pvf[i][0].factor() > 0.0);
        }
    }

    #[test]
    fn fig8_lavamd_inverts_the_criticality_trend() {
        let fig = Study::quick(13).fig8_knc_tre();
        // LUD and MxM: double sheds errors faster than single — clearly.
        let mxm = fig.surviving_at(1, 1e-3);
        let lud = fig.surviving_at(2, 1e-3);
        assert!(mxm[0] < mxm[1], "MxM: {mxm:?}");
        assert!(lud[0] < lud[1], "LUD: {lud:?}");
        // LavaMD: the double advantage collapses and slightly inverts —
        // the transcendental-unit effect (Section 5.3). Compare the
        // double-vs-single gap against LUD's.
        let lava = fig.surviving_at(0, 1e-3);
        let lava_gap = lava[1] - lava[0]; // positive = double better
        let lud_gap = lud[1] - lud[0];
        assert!(
            lava_gap < 0.5 * lud_gap,
            "LavaMD gap {lava_gap:.3} must collapse vs LUD gap {lud_gap:.3}"
        );
        assert!(
            lava[1] <= lava[0] + 0.03,
            "single at least as good: {lava:?}"
        );
    }

    #[test]
    fn fig9_mebf_crossover() {
        let fig = Study::quick(14).fig9_knc_mebf();
        // Single wins for LavaMD and LUD (performance outweighs FIT),
        // double wins for MxM (single is slower *and* weaker).
        assert!(fig.mebf[0][1] > fig.mebf[0][0], "LavaMD {:?}", fig.mebf[0]);
        assert!(fig.mebf[2][1] > fig.mebf[2][0], "LUD {:?}", fig.mebf[2]);
        assert!(fig.mebf[1][0] > fig.mebf[1][1], "MxM {:?}", fig.mebf[1]);
    }

    #[test]
    fn tables_render() {
        let study = Study::quick(15);
        assert!(study
            .fig6_knc_fit()
            .to_table()
            .to_string()
            .contains("LavaMD SDC"));
        assert!(study.fig9_knc_mebf().to_table().to_string().contains("LUD"));
    }
}
