//! CSV export of every experiment artifact.

use crate::Study;
use std::io;
use std::path::{Path, PathBuf};

impl Study {
    /// Writes every table and figure as CSV into `dir` (created if
    /// missing) and returns the paths written. The file set is stable:
    /// `table1.csv` … `fig13.csv` plus the ablations.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error encountered while creating the
    /// directory or writing a file.
    pub fn export_csv(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let artifacts: Vec<(&str, String)> = vec![
            ("table1.csv", self.table1_fpga_times().to_csv()),
            ("fig2.csv", self.fig2_fpga_resources().to_table().to_csv()),
            ("fig3.csv", self.fig3_fpga_fit().to_table().to_csv()),
            ("fig4.csv", self.fig4_fpga_tre().to_table().to_csv()),
            ("fig5.csv", self.fig5_fpga_mebf().to_table().to_csv()),
            ("table2.csv", self.table2_knc_times().to_csv()),
            ("fig6.csv", self.fig6_knc_fit().to_table().to_csv()),
            ("fig7.csv", self.fig7_knc_pvf().to_table().to_csv()),
            ("fig8.csv", self.fig8_knc_tre().to_table().to_csv()),
            ("fig9.csv", self.fig9_knc_mebf().to_table().to_csv()),
            ("table3.csv", self.table3_gpu_times().to_csv()),
            ("fig10.csv", self.fig10_gpu_fit().to_table().to_csv()),
            ("fig11.csv", self.fig11_gpu_tre().to_table().to_csv()),
            ("fig12.csv", self.fig12_gpu_avf().to_table().to_csv()),
            ("fig13.csv", self.fig13_gpu_mebf().to_table().to_csv()),
            (
                "ablation_ecc.csv",
                self.ablation_gpu_ecc().to_table().to_csv(),
            ),
            (
                "ablation_fault_models.csv",
                self.ablation_fault_models().to_table().to_csv(),
            ),
            (
                "ablation_accumulation.csv",
                self.ablation_fault_accumulation().to_table().to_csv(),
            ),
        ];
        let mut written = Vec::with_capacity(artifacts.len() + 1);
        let mut manifest = String::from("file,rows\n");
        for (name, csv) in artifacts {
            let path = dir.join(name);
            std::fs::write(&path, &csv)?;
            manifest.push_str(&format!(
                "{name},{}\n",
                csv.lines().count().saturating_sub(1)
            ));
            written.push(path);
        }
        let manifest_path = dir.join("manifest.csv");
        std::fs::write(&manifest_path, manifest)?;
        written.push(manifest_path);
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_writes_the_full_artifact_set() {
        let dir = std::env::temp_dir().join(format!("mpr_export_{}", std::process::id()));
        let study = Study::quick(50);
        let written = study.export_csv(&dir).expect("export succeeds");
        assert_eq!(written.len(), 19, "18 artifacts + manifest");
        for path in &written {
            let content = std::fs::read_to_string(path).expect("readable");
            assert!(content.lines().count() >= 2, "{path:?} has header + data");
            assert!(content.contains(','), "{path:?} is CSV");
        }
        // The manifest indexes every artifact.
        let manifest = std::fs::read_to_string(dir.join("manifest.csv")).unwrap();
        assert!(manifest.contains("fig10.csv"));
        assert!(manifest.contains("ablation_accumulation.csv"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
