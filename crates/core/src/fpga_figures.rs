//! FPGA experiments: Figures 2-5 of the paper.

use crate::Study;
use mpr_exp::DeviceId;
use mpr_metrics::{Table, TreCurve};
use mpr_softfloat::Precision;

/// Precision order used by all per-figure arrays: `[double, single, half]`.
pub(crate) const PRECISIONS: [Precision; 3] = Precision::ALL;

fn precision_headers(first: &str) -> Vec<String> {
    let mut h = vec![first.to_string()];
    h.extend(PRECISIONS.iter().map(|p| p.name().to_string()));
    h
}

/// One Figure-2 row: design name plus LUT, DSP, and BRAM utilization,
/// each in `[d, s, h]` order.
pub type ResourceRow = (String, [f64; 3], [f64; 3], [f64; 3]);

/// Figure 2: FPGA resource utilization per design and precision.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// (design, LUTs, DSPs, BRAMs) per precision in `[d, s, h]` order.
    pub rows: Vec<ResourceRow>,
}

impl Fig2 {
    /// Renders the resource table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(vec!["design", "resource", "double", "single", "half"])
            .with_title("Figure 2: FPGA resource utilization (Zynq-7000)");
        for (design, luts, dsps, brams) in &self.rows {
            for (name, vals) in [("LUT", luts), ("DSP", dsps), ("BRAM", brams)] {
                t.row(vec![
                    design.clone(),
                    name.to_string(),
                    format!("{:.0}", vals[0]),
                    format!("{:.0}", vals[1]),
                    format!("{:.0}", vals[2]),
                ]);
            }
        }
        t
    }
}

/// Figure 3: FPGA FIT of MxM and MNIST, with the MNIST SDCs split into
/// critical (misclassification) and tolerable.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// MxM SDC FIT (a.u.) in `[d, s, h]` order.
    pub mxm_fit: [f64; 3],
    /// MNIST total SDC FIT (a.u.).
    pub mnist_fit: [f64; 3],
    /// Fraction of MNIST SDCs that are critical.
    pub mnist_critical_fraction: [f64; 3],
    /// Per-gate sensitivity (resources / FIT) for MxM.
    pub mxm_per_gate: [f64; 3],
}

impl Fig3 {
    /// Renders the FIT table, normalized like the paper's plots: the
    /// largest FIT in the figure is 100 a.u.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(precision_headers("quantity"))
            .with_title("Figure 3: FPGA FIT (normalized a.u.), MNIST split by criticality");
        let scale = 100.0
            / self
                .mxm_fit
                .iter()
                .chain(self.mnist_fit.iter())
                .cloned()
                .fold(f64::MIN, f64::max);
        let mut row = |label: &str, xs: &[f64; 3]| {
            let mut cells = vec![label.to_string()];
            cells.extend(xs.iter().map(|v| format!("{:.1}", v * scale)));
            t.row(cells);
        };
        row("MxM FIT", &self.mxm_fit);
        row("MNIST FIT", &self.mnist_fit);
        let critical = [
            self.mnist_fit[0] * self.mnist_critical_fraction[0],
            self.mnist_fit[1] * self.mnist_critical_fraction[1],
            self.mnist_fit[2] * self.mnist_critical_fraction[2],
        ];
        row("MNIST critical FIT", &critical);
        let mut raw_row = |label: &str, xs: [f64; 3]| {
            let mut cells = vec![label.to_string()];
            cells.extend(xs.iter().map(|v| format!("{v:.1}")));
            t.row(cells);
        };
        raw_row(
            "MNIST critical %",
            self.mnist_critical_fraction.map(|f| f * 100.0),
        );
        // Per-gate sensitivity: resources per normalized-FIT unit (the
        // paper's Section 4.1 check that area explains the trend).
        raw_row(
            "MxM area/FIT",
            [
                self.mxm_per_gate[0] / scale,
                self.mxm_per_gate[1] / scale,
                self.mxm_per_gate[2] / scale,
            ],
        );
        t
    }
}

/// Figure 4: FPGA FIT reduction vs Tolerated Relative Error for MxM.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// TRE curves in `[d, s, h]` order.
    pub curves: [TreCurve; 3],
    /// Base FIT values in `[d, s, h]` order (a.u.).
    pub base_fit: [f64; 3],
}

impl Fig4 {
    /// Surviving FIT fraction at a tolerance, per precision.
    pub fn surviving_at(&self, tre: f64) -> [f64; 3] {
        [
            self.curves[0].surviving_fraction(tre),
            self.curves[1].surviving_fraction(tre),
            self.curves[2].surviving_fraction(tre),
        ]
    }

    /// Renders the reduction table over the standard tolerance grid.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(precision_headers("TRE"))
            .with_title("Figure 4: FPGA MxM surviving FIT fraction vs TRE");
        for tre in TreCurve::standard_grid() {
            let s = self.surviving_at(tre);
            t.row(vec![
                format!("{tre:.0e}"),
                format!("{:.3}", s[0]),
                format!("{:.3}", s[1]),
                format!("{:.3}", s[2]),
            ]);
        }
        t
    }
}

/// Figure 5: FPGA Mean Executions Between Failures.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// MxM MEBF (a.u.) in `[d, s, h]` order.
    pub mxm_mebf: [f64; 3],
    /// MNIST MEBF (a.u.).
    pub mnist_mebf: [f64; 3],
}

impl Fig5 {
    /// Renders the MEBF table, each row normalized to its double-
    /// precision value (the crossovers are the paper's result).
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(precision_headers("benchmark"))
            .with_title("Figure 5: FPGA MEBF (relative to double = 1.00)");
        for (name, xs) in [("MxM", &self.mxm_mebf), ("MNIST", &self.mnist_mebf)] {
            t.row(vec![
                name.to_string(),
                "1.00".to_string(),
                format!("{:.2}", xs[1] / xs[0]),
                format!("{:.2}", xs[2] / xs[0]),
            ]);
        }
        t
    }
}

impl Study {
    /// Figure 2: synthesis resource utilization.
    pub fn fig2_fpga_resources(&self) -> Fig2 {
        let _phase = self.phase("fig2_fpga_resources");
        let fpga = self.fpga();
        let mut rows = Vec::new();
        for design in ["MxM", "MNIST"] {
            let mut luts = [0.0; 3];
            let mut dsps = [0.0; 3];
            let mut brams = [0.0; 3];
            for (i, p) in PRECISIONS.iter().enumerate() {
                // mpr-allow: panic-hygiene -- both studied designs are registered in Fpga::resources
                let r = fpga.resources(design, *p).expect("studied design");
                luts[i] = r.luts;
                dsps[i] = r.dsps;
                brams[i] = r.brams;
            }
            rows.push((design.to_string(), luts, dsps, brams));
        }
        Fig2 { rows }
    }

    /// The FPGA campaign cells: MxM and MNIST at every precision. Each
    /// figure requests this same set, so the engine executes it once
    /// per study.
    fn fpga_cells(&self) -> Vec<mpr_exp::CellKey> {
        let mut cells = Vec::with_capacity(6);
        for p in PRECISIONS {
            cells.push(self.beam_cell(DeviceId::Zynq7000, self.gemm_id(), p));
        }
        for p in PRECISIONS {
            cells.push(self.beam_cell(DeviceId::Zynq7000, self.mnist_id(), p));
        }
        cells
    }

    /// Figure 3: beam campaigns on the FPGA MxM and MNIST circuits.
    pub fn fig3_fpga_fit(&self) -> Fig3 {
        let _phase = self.phase("fig3_fpga_fit");
        let fpga = self.fpga();
        let results = self.run_cells(self.fpga_cells());

        let mut mxm_fit = [0.0; 3];
        let mut mnist_fit = [0.0; 3];
        let mut critical = [0.0; 3];
        let mut per_gate = [0.0; 3];
        for (i, p) in PRECISIONS.iter().enumerate() {
            let mxm = results[i].beam();
            mxm_fit[i] = mxm.fit_sdc().au();
            per_gate[i] = fpga.per_gate_sensitivity("MxM", *p, mxm_fit[i]);

            let mn = results[3 + i].beam();
            mnist_fit[i] = mn.fit_sdc().au();
            critical[i] = mn
                .label_fractions()
                .iter()
                .find(|(l, _)| *l == "critical")
                .map_or(0.0, |(_, f)| *f);
        }

        Fig3 {
            mxm_fit,
            mnist_fit,
            mnist_critical_fraction: critical,
            mxm_per_gate: per_gate,
        }
    }

    /// Figure 4: TRE analysis of the FPGA MxM campaigns.
    pub fn fig4_fpga_tre(&self) -> Fig4 {
        let _phase = self.phase("fig4_fpga_tre");
        let results = self.run_cells(self.fpga_cells());
        Fig4 {
            base_fit: [0, 1, 2].map(|i| results[i].beam().fit_sdc().au()),
            curves: [0, 1, 2].map(|i| results[i].beam().tre_curve()),
        }
    }

    /// Figure 5: FPGA MEBF for MxM and MNIST.
    pub fn fig5_fpga_mebf(&self) -> Fig5 {
        let _phase = self.phase("fig5_fpga_mebf");
        let results = self.run_cells(self.fpga_cells());
        Fig5 {
            mxm_mebf: [0, 1, 2].map(|i| results[i].beam().mebf().executions()),
            mnist_mebf: [0, 1, 2].map(|i| results[3 + i].beam().mebf().executions()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_reductions_match_the_paper() {
        let fig = Study::quick(1).fig2_fpga_resources();
        let (_, luts, _, _) = &fig.rows[0]; // MxM
        assert!((1.0 - luts[1] / luts[0] - 0.45).abs() < 0.02);
        assert!((1.0 - luts[2] / luts[1] - 0.36).abs() < 0.02);
        assert!(fig.to_table().to_string().contains("DSP"));
    }

    #[test]
    fn fig3_fit_follows_area_and_mnist_masks() {
        let fig = Study::quick(2).fig3_fpga_fit();
        // FIT decreases with precision on the FPGA (area effect).
        assert!(fig.mxm_fit[0] > fig.mxm_fit[1]);
        assert!(fig.mxm_fit[1] > fig.mxm_fit[2]);
        // MNIST FIT below MxM despite the bigger circuit (masking).
        assert!(fig.mnist_fit[0] < fig.mxm_fit[0]);
        // Critical fraction grows as precision shrinks.
        assert!(
            fig.mnist_critical_fraction[2] > fig.mnist_critical_fraction[0],
            "critical %: {:?}",
            fig.mnist_critical_fraction
        );
    }

    #[test]
    fn fig4_double_reduces_fastest() {
        let fig = Study::quick(3).fig4_fpga_tre();
        let at = fig.surviving_at(1e-3);
        // Paper: at 0.1% TRE double sheds ~63% of its errors, half
        // almost nothing.
        assert!(at[0] < 0.55, "double survives {at:?}");
        assert!(at[2] > 0.8, "half survives {at:?}");
        assert!(at[0] < at[1] && at[1] < at[2]);
    }

    #[test]
    fn fig5_mebf_increases_as_precision_drops() {
        let fig = Study::quick(4).fig5_fpga_mebf();
        assert!(fig.mxm_mebf[2] > fig.mxm_mebf[1]);
        assert!(fig.mxm_mebf[1] > fig.mxm_mebf[0]);
        assert!(fig.mnist_mebf[2] > fig.mnist_mebf[0]);
    }
}
