//! GPU experiments: Figures 10-13 of the paper.

use crate::fpga_figures::PRECISIONS;
use crate::Study;
use mpr_arch::Device;
use mpr_exp::{CellResult, DeviceId};
use mpr_fault::FaultModel;
use mpr_kernels::MicroKernelOp;
use mpr_metrics::{Table, TreCurve, Vulnerability};

fn gpu_table(first: &str, title: &str) -> Table {
    Table::new(vec![first, "double", "single", "half"]).with_title(title)
}

/// Figure 10: Titan V SDC and DUE FIT for the microbenchmarks (a), the
/// applications (b), and YOLOv3 (c).
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// SDC FIT (a.u.) per micro (ADD/MUL/FMA), `[d, s, h]` order.
    pub micro_sdc: [[f64; 3]; 3],
    /// DUE FIT per micro.
    pub micro_due: [[f64; 3]; 3],
    /// SDC FIT for LavaMD and MxM.
    pub app_sdc: [[f64; 3]; 2],
    /// DUE FIT for LavaMD and MxM.
    pub app_due: [[f64; 3]; 2],
    /// YOLOv3 SDC FIT.
    pub yolo_sdc: [f64; 3],
    /// YOLOv3 DUE FIT.
    pub yolo_due: [f64; 3],
}

impl Fig10 {
    /// Renders the FIT table (all three subfigures), normalized like the
    /// paper's plots: the largest SDC FIT in the figure is 100 a.u.
    pub fn to_table(&self) -> Table {
        let mut t = gpu_table("quantity", "Figure 10: Titan V FIT (normalized a.u.)");
        let max = self
            .micro_sdc
            .iter()
            .chain(self.app_sdc.iter())
            .flatten()
            .chain(self.yolo_sdc.iter())
            .cloned()
            .fold(f64::MIN, f64::max);
        let scale = 100.0 / max;
        let mut row = |label: String, xs: &[f64; 3]| {
            t.row(vec![
                label,
                format!("{:.2}", xs[0] * scale),
                format!("{:.2}", xs[1] * scale),
                format!("{:.2}", xs[2] * scale),
            ]);
        };
        for (i, op) in MicroKernelOp::ALL.iter().enumerate() {
            row(format!("{} SDC", op.name()), &self.micro_sdc[i]);
            row(format!("{} DUE", op.name()), &self.micro_due[i]);
        }
        for (i, name) in ["LavaMD", "MxM"].iter().enumerate() {
            row(format!("{name} SDC"), &self.app_sdc[i]);
            row(format!("{name} DUE"), &self.app_due[i]);
        }
        row("YOLOv3 SDC".to_string(), &self.yolo_sdc);
        row("YOLOv3 DUE".to_string(), &self.yolo_due);
        t
    }
}

/// Figure 11: GPU FIT reduction vs TRE (a: micros, b: apps) and YOLOv3
/// SDC criticality (c).
#[derive(Debug, Clone)]
pub struct Fig11 {
    /// TRE curves per micro (ADD/MUL/FMA), `[d, s, h]` order.
    pub micro_curves: [[TreCurve; 3]; 3],
    /// TRE curves for LavaMD and MxM.
    pub app_curves: [[TreCurve; 3]; 2],
    /// YOLOv3 SDC fractions `[tolerable, detection, classification]` per
    /// precision `[d, s, h]`.
    pub yolo_criticality: [[f64; 3]; 3],
}

impl Fig11 {
    /// Renders the survival-at-grid table plus the YOLO criticality split.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(vec!["series", "TRE", "double", "single", "half"])
            .with_title("Figure 11: GPU surviving FIT fraction vs TRE + YOLOv3 criticality");
        let names = ["Micro-ADD", "Micro-MUL", "Micro-FMA", "LavaMD", "MxM"];
        let all_curves: Vec<&[TreCurve; 3]> = self
            .micro_curves
            .iter()
            .chain(self.app_curves.iter())
            .collect();
        for (name, curves) in names.iter().zip(all_curves) {
            for tre in TreCurve::standard_grid() {
                t.row(vec![
                    name.to_string(),
                    format!("{tre:.0e}"),
                    format!("{:.3}", curves[0].surviving_fraction(tre)),
                    format!("{:.3}", curves[1].surviving_fraction(tre)),
                    format!("{:.3}", curves[2].surviving_fraction(tre)),
                ]);
            }
        }
        for (i, label) in ["tolerable", "detection", "classification"]
            .iter()
            .enumerate()
        {
            t.row(vec![
                format!("YOLOv3 {label} %"),
                "-".to_string(),
                format!("{:.1}", self.yolo_criticality[0][i] * 100.0),
                format!("{:.1}", self.yolo_criticality[1][i] * 100.0),
                format!("{:.1}", self.yolo_criticality[2][i] * 100.0),
            ]);
        }
        t
    }
}

/// Figure 12: GPU AVF from register/pipeline injection into the
/// microbenchmarks.
#[derive(Debug, Clone)]
pub struct Fig12 {
    /// AVF estimates per micro (ADD/MUL/FMA), `[d, s, h]` order.
    pub avf: [[Vulnerability; 3]; 3],
}

impl Fig12 {
    /// Renders the AVF table.
    pub fn to_table(&self) -> Table {
        let mut t = gpu_table(
            "micro",
            "Figure 12: GPU AVF (register + pipeline injection)",
        );
        for (i, op) in MicroKernelOp::ALL.iter().enumerate() {
            t.row(vec![
                op.name().to_string(),
                format!("{:.3}", self.avf[i][0].factor()),
                format!("{:.3}", self.avf[i][1].factor()),
                format!("{:.3}", self.avf[i][2].factor()),
            ]);
        }
        t
    }
}

/// Figure 13: GPU Mean Executions Between Failures.
#[derive(Debug, Clone)]
pub struct Fig13 {
    /// MEBF (a.u.) per benchmark: ADD, MUL, FMA, LavaMD, MxM, YOLOv3.
    pub mebf: [[f64; 3]; 6],
}

impl Fig13 {
    /// Benchmark names, in row order.
    pub const NAMES: [&'static str; 6] = [
        "Micro-ADD",
        "Micro-MUL",
        "Micro-FMA",
        "LavaMD",
        "MxM",
        "YOLOv3",
    ];

    /// Renders the MEBF table, each row normalized to its double-
    /// precision value.
    pub fn to_table(&self) -> Table {
        let mut t = gpu_table(
            "benchmark",
            "Figure 13: GPU MEBF (relative to double = 1.00)",
        );
        for (name, xs) in Self::NAMES.iter().zip(self.mebf.iter()) {
            t.row(vec![
                name.to_string(),
                "1.00".to_string(),
                format!("{:.2}", xs[1] / xs[0]),
                format!("{:.2}", xs[2] / xs[0]),
            ]);
        }
        t
    }
}

impl Study {
    /// The GPU beam cells — the three micros, LavaMD, MxM, and YOLOv3
    /// at every precision, in that row order. Figures 10, 11, and 13
    /// (and the ECC ablation's bare-GPU arm) all project this one set
    /// of campaigns.
    fn gpu_results(&self) -> [[CellResult; 3]; 6] {
        let workloads = [
            self.micro_id(MicroKernelOp::Add),
            self.micro_id(MicroKernelOp::Mul),
            self.micro_id(MicroKernelOp::Fma),
            self.lavamd_id(),
            self.gemm_id(),
            self.yolo_id(),
        ];
        let mut cells = Vec::with_capacity(18);
        for w in workloads {
            for p in PRECISIONS {
                cells.push(self.beam_cell(DeviceId::TitanV, w, p));
            }
        }
        let mut results = self.run_cells(cells).into_iter();
        // mpr-allow: panic-hygiene -- run_cells returns exactly one result per requested cell
        [(); 6].map(|_| [(); 3].map(|_| results.next().expect("eighteen gpu cells")))
    }

    /// Figure 10: GPU beam campaigns for micros, apps, and YOLOv3.
    pub fn fig10_gpu_fit(&self) -> Fig10 {
        let _phase = self.phase("fig10_gpu_fit");
        let rows = self.gpu_results();
        let micro = &rows[..3];
        let apps = &rows[3..5];
        let yolo = &rows[5];

        let take = |rs: &[CellResult; 3]| -> ([f64; 3], [f64; 3]) {
            (
                [0, 1, 2].map(|i| rs[i].beam().fit_sdc().au()),
                [0, 1, 2].map(|i| rs[i].beam().fit_due().au()),
            )
        };
        let (m0, d0) = take(&micro[0]);
        let (m1, d1) = take(&micro[1]);
        let (m2, d2) = take(&micro[2]);
        let (a0, ad0) = take(&apps[0]);
        let (a1, ad1) = take(&apps[1]);
        let (y, yd) = take(yolo);
        Fig10 {
            micro_sdc: [m0, m1, m2],
            micro_due: [d0, d1, d2],
            app_sdc: [a0, a1],
            app_due: [ad0, ad1],
            yolo_sdc: y,
            yolo_due: yd,
        }
    }

    /// Figure 11: TRE curves and YOLOv3 criticality.
    pub fn fig11_gpu_tre(&self) -> Fig11 {
        let _phase = self.phase("fig11_gpu_tre");
        let rows = self.gpu_results();

        let curves3 = |rs: &[CellResult; 3]| rs.each_ref().map(|r| r.beam().tre_curve());
        let mut crit = [[0.0; 3]; 3];
        for (i, r) in rows[5].iter().enumerate() {
            let fr = r.beam().label_fractions();
            let get = |l: &str| fr.iter().find(|(k, _)| *k == l).map_or(0.0, |(_, f)| *f);
            crit[i] = [get("tolerable"), get("detection"), get("classification")];
        }
        Fig11 {
            micro_curves: [curves3(&rows[0]), curves3(&rows[1]), curves3(&rows[2])],
            app_curves: [curves3(&rows[3]), curves3(&rows[4])],
            yolo_criticality: crit,
        }
    }

    /// Figure 12: AVF by injection into live microbenchmark executions,
    /// with the per-core pipeline-corruption mix of the Volta model
    /// (double cores are more complex; single and half share the FP32
    /// core — Section 6.2).
    pub fn fig12_gpu_avf(&self) -> Fig12 {
        let _phase = self.phase("fig12_gpu_avf");
        let gpu = self.gpu();
        let mut cells = Vec::with_capacity(9);
        for op in MicroKernelOp::ALL {
            let prof = self.profile_micro(op);
            for p in PRECISIONS {
                let pipe = gpu.exposure(&prof, p).pipeline_fraction;
                cells.push(self.inject_cell(
                    self.micro_id(op),
                    p,
                    FaultModel::pipeline(pipe),
                    mpr_arch::calib::VOLTA_REG_LIVE_FRACTION,
                ));
            }
        }
        let results = self.run_cells(cells);
        let avf = [0, 1, 2].map(|i| [0, 1, 2].map(|j| results[3 * i + j].inject().vulnerability()));
        Fig12 { avf }
    }

    /// Figure 13: GPU MEBF for every benchmark.
    pub fn fig13_gpu_mebf(&self) -> Fig13 {
        let _phase = self.phase("fig13_gpu_mebf");
        let rows = self.gpu_results();
        Fig13 {
            mebf: rows.map(|rs| [0, 1, 2].map(|i| rs[i].beam().mebf().executions())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_micro_orderings() {
        let fig = Study::quick(28).fig10_gpu_fit();
        // Order within Fig10 rows: [ADD, MUL, FMA] x [d, s, h].
        let add = fig.micro_sdc[0];
        let mul = fig.micro_sdc[1];
        let fma = fig.micro_sdc[2];
        // MUL: d > s > h.
        assert!(mul[0] > mul[1] && mul[1] > mul[2], "MUL {mul:?}");
        // ADD: opposite trend — double lowest, single ~ half.
        assert!(add[0] < add[1], "ADD {add:?}");
        assert!((add[1] / add[2] - 1.0).abs() < 0.35, "ADD s~h {add:?}");
        // FMA: single highest, half lowest.
        assert!(fma[1] > fma[2], "FMA {fma:?}");
        assert!(fma[0] > fma[2], "FMA {fma:?}");
        // FMA > MUL > ADD at double precision.
        assert!(fma[0] > mul[0] && mul[0] > add[0]);
    }

    #[test]
    fn fig10_app_orderings() {
        let fig = Study::quick(22).fig10_gpu_fit();
        let lava = fig.app_sdc[0];
        let mxm = fig.app_sdc[1];
        // MxM much higher FIT than LavaMD (memory bound).
        for i in 0..3 {
            assert!(mxm[i] > 1.8 * lava[i], "p{i}: {mxm:?} vs {lava:?}");
        }
        // LavaMD follows the MUL trend.
        assert!(lava[0] > lava[1] && lava[1] > lava[2], "{lava:?}");
        // MxM follows the FMA trend: half clearly lowest.
        assert!(mxm[2] < mxm[0] && mxm[2] < mxm[1], "{mxm:?}");
        // YOLO: half significantly lowest.
        assert!(
            fig.yolo_sdc[2] < 0.85 * fig.yolo_sdc[1],
            "{:?}",
            fig.yolo_sdc
        );
        // Micro DUE well below app DUE (control-flow density).
        assert!(fig.micro_due[1][0] < 0.3 * fig.app_due[0][0]);
        // YOLO DUE above arithmetic codes.
        assert!(fig.yolo_due[0] > fig.app_due[0][0]);
    }

    #[test]
    fn fig11_double_tolerates_more() {
        let fig = Study::quick(23).fig11_gpu_tre();
        for (i, name) in ["ADD", "MUL", "FMA"].iter().enumerate() {
            let d = fig.micro_curves[i][0].surviving_fraction(1e-3);
            let h = fig.micro_curves[i][2].surviving_fraction(1e-3);
            assert!(d < h, "{name}: d={d} h={h}");
        }
        // YOLO criticality fractions sum to ~1 where SDCs exist.
        for p in 0..3 {
            let sum: f64 = fig.yolo_criticality[p].iter().sum();
            assert!((sum - 1.0).abs() < 1e-9 || sum == 0.0, "{sum}");
        }
    }

    #[test]
    fn fig12_avf_double_above_fp32_family() {
        let fig = Study::quick(24).fig12_gpu_avf();
        for (i, op) in MicroKernelOp::ALL.iter().enumerate() {
            let d = fig.avf[i][0].factor();
            let s = fig.avf[i][1].factor();
            let h = fig.avf[i][2].factor();
            assert!(d > s && d > h, "{op:?}: d={d} s={s} h={h}");
            assert!(
                fig.avf[i][1].statistically_indistinguishable(&fig.avf[i][2]),
                "{op:?}: single {s} vs half {h} should be similar"
            );
        }
    }

    #[test]
    fn fig13_mebf_rises_as_precision_drops() {
        let fig = Study::quick(25).fig13_gpu_mebf();
        for (name, xs) in Fig13::NAMES.iter().zip(fig.mebf.iter()) {
            if *name == "YOLOv3" {
                continue; // half YOLO is slower; MEBF gain is not monotone
            }
            assert!(xs[2] > xs[0], "{name}: {xs:?}");
        }
    }

    #[test]
    fn tables_render() {
        let study = Study::quick(26);
        let t = study.fig12_gpu_avf().to_table().to_string();
        assert!(t.contains("Micro-FMA"));
    }
}
