//! # mpr-core
//!
//! The experiment layer: a [`Study`] reproduces, one method per table
//! and figure, the full evaluation of *"Reliability Evaluation of
//! Mixed-Precision Architectures"* (HPCA 2019) on the simulated
//! substrate:
//!
//! | Paper artifact | Runner |
//! |---|---|
//! | Table 1 (FPGA times) | [`Study::table1_fpga_times`] |
//! | Figure 2 (FPGA resources) | [`Study::fig2_fpga_resources`] |
//! | Figure 3 (FPGA FIT, critical/tolerable) | [`Study::fig3_fpga_fit`] |
//! | Figure 4 (FPGA TRE) | [`Study::fig4_fpga_tre`] |
//! | Figure 5 (FPGA MEBF) | [`Study::fig5_fpga_mebf`] |
//! | Table 2 (KNC times) | [`Study::table2_knc_times`] |
//! | Figure 6 (KNC SDC/DUE FIT) | [`Study::fig6_knc_fit`] |
//! | Figure 7 (KNC PVF) | [`Study::fig7_knc_pvf`] |
//! | Figure 8 (KNC TRE) | [`Study::fig8_knc_tre`] |
//! | Figure 9 (KNC MEBF) | [`Study::fig9_knc_mebf`] |
//! | Table 3 (GPU times) | [`Study::table3_gpu_times`] |
//! | Figure 10 (GPU FIT) | [`Study::fig10_gpu_fit`] |
//! | Figure 11 (GPU TRE + YOLO criticality) | [`Study::fig11_gpu_tre`] |
//! | Figure 12 (GPU AVF) | [`Study::fig12_gpu_avf`] |
//! | Figure 13 (GPU MEBF) | [`Study::fig13_gpu_mebf`] |
//!
//! Every runner returns a typed result that renders as an aligned text
//! table via `to_table()`, so examples and benches can regenerate the
//! paper's artifacts verbatim.
//!
//! # Example
//!
//! ```rust
//! use mpr_core::Study;
//!
//! let study = Study::quick(42);
//! let fig5 = study.fig5_fpga_mebf();
//! // Reducing precision increases MEBF on the FPGA (paper Section 4.2).
//! assert!(fig5.mxm_mebf[2] > fig5.mxm_mebf[0]); // half beats double
//! println!("{}", fig5.to_table());
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod ablations;
mod export;
mod fpga_figures;
mod gpu_figures;
mod knc_figures;
mod study;
mod tables;
mod validation;

pub use ablations::{AccumulationAblation, EccAblation, FaultModelAblation};
pub use fpga_figures::{Fig2, Fig3, Fig4, Fig5};
pub use gpu_figures::{Fig10, Fig11, Fig12, Fig13};
pub use knc_figures::{Fig6, Fig7, Fig8, Fig9};
pub use study::{Study, StudyScale};
pub use validation::{ShapeReport, ShapeResult};
