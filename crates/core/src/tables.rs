//! Tables 1-3: execution times on each device.

use crate::fpga_figures::PRECISIONS;
use crate::Study;
use mpr_arch::Device;
use mpr_kernels::MicroKernelOp;
use mpr_metrics::Table;
use mpr_softfloat::Precision;

impl Study {
    /// Table 1: benchmark execution times on the Zynq-7000.
    pub fn table1_fpga_times(&self) -> Table {
        let _phase = self.phase("table1_fpga_times");
        let fpga = self.fpga();
        let mut t = Table::new(vec!["benchmark", "double [s]", "single [s]", "half [s]"])
            .with_title("Table 1: execution time on the Zynq-7000");
        for (name, profile) in [
            ("MNIST", self.profile_mnist_fpga()),
            ("MxM", self.profile_mxm_fpga()),
        ] {
            let times = PRECISIONS.map(|p| fpga.exec_time(&profile, p));
            t.row(vec![
                name.to_string(),
                format!("{:.3}", times[0]),
                format!("{:.3}", times[1]),
                format!("{:.3}", times[2]),
            ]);
        }
        t
    }

    /// Table 2: benchmark execution times on the Xeon Phi.
    pub fn table2_knc_times(&self) -> Table {
        let _phase = self.phase("table2_knc_times");
        let knc = self.knc();
        let mut t = Table::new(vec!["benchmark", "double [s]", "single [s]"])
            .with_title("Table 2: execution time on the Xeon Phi 3120A");
        for (name, profile) in [
            ("LavaMD", self.profile_lavamd_knc()),
            ("MxM", self.profile_mxm_knc()),
            ("LUD", self.profile_lud_knc()),
        ] {
            t.row(vec![
                name.to_string(),
                format!("{:.3}", knc.exec_time(&profile, Precision::Double)),
                format!("{:.3}", knc.exec_time(&profile, Precision::Single)),
            ]);
        }
        t
    }

    /// Table 3: benchmark execution times on the Titan V.
    pub fn table3_gpu_times(&self) -> Table {
        let _phase = self.phase("table3_gpu_times");
        let gpu = self.gpu();
        let mut t = Table::new(vec!["benchmark", "double [s]", "single [s]", "half [s]"])
            .with_title("Table 3: execution time on the Titan V");
        let mut push = |name: &str, profile: &mpr_arch::WorkloadProfile| {
            let times = PRECISIONS.map(|p| gpu.exec_time(profile, p));
            t.row(vec![
                name.to_string(),
                format!("{:.3}", times[0]),
                format!("{:.3}", times[1]),
                format!("{:.3}", times[2]),
            ]);
        };
        for op in MicroKernelOp::ALL {
            push(op.name(), &self.profile_micro(op));
        }
        push("LavaMD", &self.profile_lavamd_gpu());
        push("MxM", &self.profile_mxm_gpu());
        push("YOLOv3", &self.profile_yolo_gpu());
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper() {
        let t = Study::quick(0).table1_fpga_times().to_string();
        assert!(t.contains("2.730") && t.contains("2.100") && t.contains("2.310"));
        assert!(t.contains("0.011") && t.contains("0.009"));
    }

    #[test]
    fn table2_matches_the_paper() {
        let t = Study::quick(0).table2_knc_times().to_string();
        for v in ["1.307", "0.801", "10.612", "12.028", "1.264", "0.818"] {
            assert!(t.contains(v), "missing {v} in\n{t}");
        }
    }

    #[test]
    fn table3_matches_the_paper() {
        let t = Study::quick(0).table3_gpu_times().to_string();
        // Applications are calibrated to the measured Table 3.
        for v in [
            "1.071", "0.554", "0.291", "2.327", "1.909", "1.180", "0.133", "0.079", "0.283",
        ] {
            assert!(t.contains(v), "missing {v} in\n{t}");
        }
        // Micros are derived from the 8/4/3-cycle latency model: near
        // 6.0/3.0/2.25 s.
        assert!(t.contains("5.8") || t.contains("6.0"), "{t}");
    }
}
