//! Ablation studies: design questions the paper raises but could not
//! answer on fixed hardware. The simulator can.

use crate::fpga_figures::PRECISIONS;
use crate::Study;
use mpr_exp::DeviceId;
use mpr_fault::FaultModel;
use mpr_kernels::MicroKernelOp;
use mpr_metrics::Table;

/// ECC ablation: the paper's Titan V has no ECC ("there is no ECC
/// available on the Titan-V", Section 3.2); the same GV100 silicon ships
/// in the Tesla V100 *with* SECDED on the register file and caches. This
/// ablation reruns the GPU campaigns on both variants.
#[derive(Debug, Clone)]
pub struct EccAblation {
    /// SDC FIT without ECC (Titan V), `[d, s, h]`, rows: Micro-FMA, MxM.
    pub bare_sdc: [[f64; 3]; 2],
    /// SDC FIT with ECC (Tesla V100).
    pub ecc_sdc: [[f64; 3]; 2],
    /// DUE FIT without ECC.
    pub bare_due: [[f64; 3]; 2],
    /// DUE FIT with ECC (includes detected-uncorrectable events).
    pub ecc_due: [[f64; 3]; 2],
}

impl EccAblation {
    /// Row labels.
    pub const NAMES: [&'static str; 2] = ["Micro-FMA", "MxM"];

    /// SDC-FIT reduction factor ECC buys, per benchmark and precision.
    pub fn sdc_reduction(&self) -> [[f64; 3]; 2] {
        let mut out = [[0.0; 3]; 2];
        for (b, row) in out.iter_mut().enumerate() {
            for (p, v) in row.iter_mut().enumerate() {
                *v = self.bare_sdc[b][p] / self.ecc_sdc[b][p];
            }
        }
        out
    }

    /// Renders the ablation table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(vec!["benchmark", "quantity", "double", "single", "half"])
            .with_title("Ablation: Titan V (no ECC) vs Tesla V100 (ECC)");
        let red = self.sdc_reduction();
        for (b, name) in Self::NAMES.iter().enumerate() {
            t.row(vec![
                name.to_string(),
                "SDC FIT reduction".to_string(),
                format!("{:.1}x", red[b][0]),
                format!("{:.1}x", red[b][1]),
                format!("{:.1}x", red[b][2]),
            ]);
            t.row(vec![
                name.to_string(),
                "DUE FIT change".to_string(),
                format!("{:.2}x", self.ecc_due[b][0] / self.bare_due[b][0]),
                format!("{:.2}x", self.ecc_due[b][1] / self.bare_due[b][1]),
                format!("{:.2}x", self.ecc_due[b][2] / self.bare_due[b][2]),
            ]);
        }
        t
    }
}

/// Fault-model ablation: how sensitive are the study's conclusions to
/// the single-bit-flip assumption? Repeats the MxM injection campaign
/// under multi-bit and byte-level models (cf. Quinn et al. on multi-bit
/// upsets, cited by the paper).
#[derive(Debug, Clone)]
pub struct FaultModelAblation {
    /// Model names.
    pub models: Vec<&'static str>,
    /// SDC probability per model, `[d, s, h]`.
    pub avf: Vec<[f64; 3]>,
    /// Fraction of SDCs tolerable at 1% relative error, `[d, s, h]`.
    pub tolerable_1pct: Vec<[f64; 3]>,
}

impl FaultModelAblation {
    /// Renders the ablation table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(vec!["model", "quantity", "double", "single", "half"])
            .with_title("Ablation: fault-model sensitivity (MxM injection)");
        for (i, m) in self.models.iter().enumerate() {
            t.row(vec![
                m.to_string(),
                "SDC probability".to_string(),
                format!("{:.3}", self.avf[i][0]),
                format!("{:.3}", self.avf[i][1]),
                format!("{:.3}", self.avf[i][2]),
            ]);
            t.row(vec![
                m.to_string(),
                "tolerable @1% TRE".to_string(),
                format!("{:.1}%", self.tolerable_1pct[i][0] * 100.0),
                format!("{:.1}%", self.tolerable_1pct[i][1] * 100.0),
                format!("{:.1}%", self.tolerable_1pct[i][2] * 100.0),
            ]);
        }
        t
    }
}

/// Error-accumulation ablation: the paper reprograms the FPGA at each
/// observed error and argues accumulation would eventually break the
/// circuit outright (Section 4, citing Quinn et al.). This ablation lets
/// stuck-at configuration faults pile up and measures how fast output
/// integrity collapses.
#[derive(Debug, Clone)]
pub struct AccumulationAblation {
    /// Accumulated-fault counts swept.
    pub fault_counts: Vec<usize>,
    /// SDC probability at each count, `[d, s, h]`.
    pub sdc_probability: Vec<[f64; 3]>,
    /// Mean fraction of output elements corrupted among SDCs.
    pub corruption_extent: Vec<[f64; 3]>,
}

impl AccumulationAblation {
    /// Renders the ablation table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(vec!["faults", "quantity", "double", "single", "half"])
            .with_title("Ablation: FPGA error accumulation without reprogramming (MxM)");
        for (i, &k) in self.fault_counts.iter().enumerate() {
            t.row(vec![
                k.to_string(),
                "SDC probability".to_string(),
                format!("{:.2}", self.sdc_probability[i][0]),
                format!("{:.2}", self.sdc_probability[i][1]),
                format!("{:.2}", self.sdc_probability[i][2]),
            ]);
            t.row(vec![
                k.to_string(),
                "corrupted outputs".to_string(),
                format!("{:.1}%", self.corruption_extent[i][0] * 100.0),
                format!("{:.1}%", self.corruption_extent[i][1] * 100.0),
                format!("{:.1}%", self.corruption_extent[i][2] * 100.0),
            ]);
        }
        t
    }
}

impl Study {
    /// Runs the accumulation ablation on the FPGA MxM circuit.
    pub fn ablation_fault_accumulation(&self) -> AccumulationAblation {
        let _phase = self.phase("ablation_fault_accumulation");
        let fault_counts = vec![1usize, 2, 4, 8, 16];
        let mut cells = Vec::with_capacity(fault_counts.len() * 3);
        for &k in &fault_counts {
            for p in PRECISIONS {
                cells.push(self.acc_cell(p, k as u32));
            }
        }
        let results = self.run_cells(cells);
        let mut sdc_probability = Vec::new();
        let mut corruption_extent = Vec::new();
        for i in 0..fault_counts.len() {
            let mut prob = [0.0; 3];
            let mut extent = [0.0; 3];
            for j in 0..3 {
                let o = results[3 * i + j].accumulate();
                prob[j] = o.sdc_probability;
                extent[j] = o.corruption_extent;
            }
            sdc_probability.push(prob);
            corruption_extent.push(extent);
        }
        AccumulationAblation {
            fault_counts,
            sdc_probability,
            corruption_extent,
        }
    }

    /// Runs the ECC ablation (Titan V vs Tesla V100). The bare-GPU arm
    /// reuses the Figure 10/13 cells for Micro-FMA and MxM; only the
    /// ECC arm adds new campaigns.
    pub fn ablation_gpu_ecc(&self) -> EccAblation {
        let _phase = self.phase("ablation_gpu_ecc");
        let workloads = [self.micro_id(MicroKernelOp::Fma), self.gemm_id()];
        let mut cells = Vec::with_capacity(12);
        for device in [DeviceId::TitanV, DeviceId::TeslaV100] {
            for w in workloads {
                for p in PRECISIONS {
                    cells.push(self.beam_cell(device, w, p));
                }
            }
        }
        let results = self.run_cells(cells);

        let mut result = EccAblation {
            bare_sdc: [[0.0; 3]; 2],
            ecc_sdc: [[0.0; 3]; 2],
            bare_due: [[0.0; 3]; 2],
            ecc_due: [[0.0; 3]; 2],
        };
        for b in 0..2 {
            for i in 0..3 {
                let r0 = results[3 * b + i].beam();
                let r1 = results[6 + 3 * b + i].beam();
                result.bare_sdc[b][i] = r0.fit_sdc().au();
                result.ecc_sdc[b][i] = r1.fit_sdc().au();
                result.bare_due[b][i] = r0.fit_due().au();
                result.ecc_due[b][i] = r1.fit_due().au();
            }
        }
        result
    }

    /// Runs the fault-model ablation on the MxM kernel.
    pub fn ablation_fault_models(&self) -> FaultModelAblation {
        let _phase = self.phase("ablation_fault_models");
        let models: [(&'static str, FaultModel); 3] = [
            ("single bit flip", FaultModel::SingleBit),
            ("double bit flip", FaultModel::DoubleBit),
            ("random byte", FaultModel::RandomByte),
        ];
        let mut cells = Vec::with_capacity(9);
        for (_, model) in &models {
            for p in PRECISIONS {
                cells.push(self.inject_cell(self.gemm_id(), p, *model, 1.0));
            }
        }
        let results = self.run_cells(cells);
        let mut avf = Vec::new();
        let mut tol = Vec::new();
        for i in 0..models.len() {
            let mut a = [0.0; 3];
            let mut t = [0.0; 3];
            for j in 0..3 {
                let r = results[3 * i + j].inject();
                a[j] = r.vulnerability().factor();
                t[j] = r.tre_curve().tolerable_fraction(0.01);
            }
            avf.push(a);
            tol.push(t);
        }
        FaultModelAblation {
            models: models.iter().map(|(n, _)| *n).collect(),
            avf,
            tolerable_1pct: tol,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecc_slashes_memory_bound_sdc_fit() {
        let ab = Study::quick(41).ablation_gpu_ecc();
        let red = ab.sdc_reduction();
        // MxM (memory bound) gains far more from ECC than the
        // register-resident microbenchmark.
        for p in 0..3 {
            assert!(red[1][p] > 1.8, "MxM reduction {:?}", red[1]);
            assert!(red[1][p] > red[0][p], "p{p}: {red:?}");
        }
        // ECC converts some corruptions into detected events; the effect
        // is large for the memory-bound MxM (the micro's protected-array
        // share is too small to resolve above Poisson noise at quick
        // scale).
        for p in 0..3 {
            assert!(
                ab.ecc_due[1][p] > ab.bare_due[1][p],
                "p{p}: {} vs {}",
                ab.ecc_due[1][p],
                ab.bare_due[1][p]
            );
        }
    }

    #[test]
    fn multi_bit_faults_are_harsher_but_trends_survive() {
        let ab = Study::quick(42).ablation_fault_models();
        for i in 0..ab.models.len() {
            // Double precision always tolerates more than half.
            assert!(
                ab.tolerable_1pct[i][0] > ab.tolerable_1pct[i][2],
                "{}: {:?}",
                ab.models[i],
                ab.tolerable_1pct[i]
            );
        }
        // Byte corruption is at least as likely to corrupt the output as
        // a single bit flip.
        for p in 0..3 {
            assert!(ab.avf[2][p] >= ab.avf[0][p] * 0.95, "{:?}", ab.avf);
        }
        assert!(ab.to_table().to_string().contains("random byte"));
    }
}

#[cfg(test)]
mod accumulation_tests {
    use super::*;

    #[test]
    fn accumulation_monotonically_degrades_integrity() {
        let ab = Study::quick(44).ablation_fault_accumulation();
        assert_eq!(ab.fault_counts, vec![1, 2, 4, 8, 16]);
        for p in 0..3 {
            // SDC probability never decreases as faults pile up.
            for w in ab.sdc_probability.windows(2) {
                assert!(w[1][p] >= w[0][p] - 0.08, "p{p}: {:?}", ab.sdc_probability);
            }
            // Sixteen accumulated faults corrupt (almost) every run.
            assert!(
                ab.sdc_probability.last().unwrap()[p] > 0.9,
                "p{p}: {:?}",
                ab.sdc_probability
            );
        }
        // The corrupted-output extent grows with accumulation too.
        let first = ab.corruption_extent.first().unwrap();
        let last = ab.corruption_extent.last().unwrap();
        for p in 0..3 {
            assert!(last[p] > first[p] * 0.9, "p{p}");
        }
        assert!(ab.to_table().to_string().contains("accumulation"));
    }
}
