//! Known-bad fixture for PL005 precision-taint: every fn below moves a
//! value across a precision boundary without a blessed conversion.
//! None of the fns are `FloatExt`-generic, so the line-scoped token
//! lints (PL001-PL004) stay quiet — only the flow-sensitive pass that
//! follows values through `let` bindings sees the leaks.

/// Cross-line narrowing: the f64 taint is acquired one statement
/// before the lossy `as` cast.
fn narrow_later(golden: &[f64], i: usize) -> f32 {
    let master = golden[i];
    let out = master as f32;
    out
}

/// Mixed arithmetic between bindings of two different precisions.
fn fused_mix(a: f32, b: f64) -> f64 {
    let single = a;
    let double = b;
    let z = single * double;
    z
}

/// Cross-width bit reinterpretation: binary16 bits read as f32.
fn reinterpret(h: Half) -> f32 {
    let bits = h;
    f32::from_bits(bits)
}

/// Call boundary: an f64-tainted argument into an f32 parameter.
fn consume_single(x: f32) -> f32 {
    x
}

fn feed(golden: &[f64], i: usize) -> f32 {
    let master = golden[i];
    consume_single(master)
}

/// Struct field: a binary16 field initialized from f32-tainted bits.
struct Sample {
    bits: u16,
}

fn store(x: f32, out: &mut Vec<Sample>) {
    let word = x;
    out.push(Sample { bits: word });
}

/// Bit truncation toward binary16 without round-to-nearest-even.
fn truncate_bits(x: f32) -> u16 {
    let val = x;
    val as u16
}
