//! Fixture: the sanctioned reproducibility idioms.

use std::collections::BTreeMap;

fn sample(&mut self, seed: u64) -> u64 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
    counts.insert(rng.next(), 1);
    rng.next()
}
