//! Fixture: sanctioned panic placements — documented contracts, test
//! code, and justified pragmas.

/// Looks up a calibration row.
///
/// # Panics
///
/// Panics if `key` names an unknown benchmark.
fn lookup(&self, key: &str) -> f64 {
    self.table.get(key).unwrap()
}

fn fallible(&self) -> Option<f64> {
    // mpr-allow: panic-hygiene -- the head always emits ten logits
    let v = self.logits.first().expect("ten logits");
    Some(*v)
}

#[cfg(test)]
mod tests {
    #[test]
    fn asserts_freely() {
        let v: Option<u64> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
