//! Known-bad fixture for the file-wide arm of AH003: a
//! `mpr-allow-file` pragma whose lint family produces zero findings in
//! this file. The allow is dead weight and must be called out.
//! mpr-allow-file: determinism -- kept from before the scheduler refactor; nothing here reads clocks anymore

fn quiet(x: u64) -> u64 {
    x.wrapping_add(1)
}
