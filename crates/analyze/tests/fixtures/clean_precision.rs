//! Fixture: the sanctioned patterns — constants enter through
//! `F::from_f64`, values exit through `to_f64` at the interface.

fn run<F: FloatExt, H: FaultHook + ?Sized>(&self, hook: &mut H) -> Vec<f64> {
    let scale = F::from_f64(0.5);
    let half_down = F::from_f32(0.25f32);
    let nf = F::from_f64(self.n as f64);
    let log2e = F::from_f64(std::f64::consts::LOG2_E);
    let v = hook.touch(scale * nf + log2e * half_down);
    vec![v.to_f64()]
}
