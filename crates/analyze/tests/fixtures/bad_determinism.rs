//! Fixture: every determinism hazard in simulation code.

use std::collections::{HashMap, HashSet};
use std::time::SystemTime;

fn sample(&mut self) -> u64 {
    let mut rng = rand::thread_rng();
    let salt = SystemTime::now();
    let started = std::time::Instant::now();
    let mut seen: HashSet<u64> = HashSet::new();
    let mut counts: HashMap<u64, u64> = HashMap::new();
    let backup = rand::rngs::StdRng::from_entropy();
    rng.next()
}
