//! Known-bad fixture for PH004 panic-reachability: a documented panic
//! contract and a variable-index site, both reachable from a strike
//! fast-path root. The documentation keeps PH001-PH003 quiet — PH004
//! is what notices the hot path can still hit them.

fn run_from_site(table: &[usize], k: usize) -> usize {
    lookup(table, k)
}

/// # Panics
///
/// Panics when `k` is out of range.
fn lookup(table: &[usize], k: usize) -> usize {
    if k >= table.len() {
        panic!("bad site index {k}");
    }
    table[k + 1]
}
