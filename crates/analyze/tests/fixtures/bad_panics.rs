//! Fixture: undocumented panic paths in library code.

fn lookup(&self, key: &str) -> f64 {
    let row = self.table.get(key).unwrap();
    let cell = row.first().expect("nonempty row");
    match cell {
        Some(v) => *v,
        None => panic!("missing cell"),
    }
}

fn dispatch(&self) -> f64 {
    unreachable!("no supported precision")
}
