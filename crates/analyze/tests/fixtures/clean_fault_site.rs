//! Fixture: the sanctioned loop shapes — every update is touched; index
//! math, constant construction, and plain pushes of touched values pass.

fn run<F: FloatExt, H: FaultHook + ?Sized>(&self, hook: &mut H) -> Vec<f64> {
    let mut acc = F::zero();
    let mut out = Vec::with_capacity(self.n * self.n);
    for idx in 0..self.n * self.n {
        let (i, j) = (idx / self.n, idx % self.n);
        let coeff = F::from_f64(1.0 / factorial(idx as u32));
        acc = hook.touch(self.a[i * self.n + j].mul_add(coeff, acc));
        out.push(acc.to_f64());
    }
    out
}
