//! Clean twin of `bad_stale_file_allow.rs`: the same file-wide allow,
//! justified and load-bearing — it suppresses the real DT003 findings
//! below, so allow-hygiene stays quiet.
//! mpr-allow-file: determinism -- site tables are hash-keyed for O(1) probes; lookups never iterate, so order cannot leak into results

use std::collections::HashMap;

fn probe(table: &HashMap<u64, u64>, k: u64) -> u64 {
    match table.get(&k) {
        Some(v) => *v,
        None => 0,
    }
}
