//! Fixture: the same persistence shapes routed through the Vfs seam.
//!
//! Nothing here names the standard filesystem API; every byte flows
//! through an injected handle, so a chaos layer (or a real fsync-ing
//! backend) can interpose without the caller changing.

use std::path::Path;

/// Minimal stand-in for the experiment crate's Vfs trait.
pub trait Vfs {
    /// Writes the full byte slice to `path`.
    fn write(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()>;
    /// Atomically renames `from` onto `to`.
    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()>;
}

pub fn save_entry(vfs: &dyn Vfs, dir: &Path, body: &str) -> std::io::Result<()> {
    let tmp = dir.join("entry.json.tmp");
    vfs.write(&tmp, body.as_bytes())?;
    vfs.rename(&tmp, &dir.join("entry.json"))
}

pub fn append_ledger(vfs: &dyn Vfs, path: &Path, line: &str) -> std::io::Result<()> {
    vfs.write(path, line.as_bytes())
}
