//! Known-bad fixture for DT004 determinism-taint: both PR 3 bug
//! shapes, written so that no single line contains a token the
//! line-scoped lints (DT001-DT003) recognize — only the flow-sensitive
//! pass sees the nondeterminism.

/// PR 3 bug shape 1: thread-stride workers pushing into a shared
/// result vector in completion order. Element order ends up depending
/// on `--threads` because nothing ties an element to its strike index.
fn collect_strided(worker: usize, threads: usize, out: &mut Vec<u64>) {
    for i in (worker..256).step_by(threads) {
        out.push(strike_result(i));
    }
}

fn strike_result(i: usize) -> u64 {
    i as u64
}

/// PR 3 bug shape 2: a per-strike seed derived with multiply-XOR
/// arithmetic instead of a full avalanche; neighbouring strikes get
/// correlated low bits and the fault sample is no longer independent.
fn correlated_seed(seed: u64, strike: u64) -> u64 {
    let derived = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ strike;
    let stream = seed_from_u64(derived);
    stream
}
