//! Clean twin of `bad_determinism_taint.rs`: the post-PR 3 shapes.
//! Stride-loop pushes carry the strike index so the merge can restore
//! canonical order, and per-strike seeds go through the avalanche
//! mixer. Must produce zero findings.

/// Each element is tagged with its strike index; the caller sorts by
/// the tag after joining workers, so `--threads` cannot reorder it.
fn collect_strided(worker: usize, threads: usize, out: &mut Vec<(usize, u64)>) {
    for i in (worker..256).step_by(threads) {
        out.push((i, strike_result(i)));
    }
}

fn strike_result(i: usize) -> u64 {
    i as u64
}

/// Per-strike seeds through the blessed avalanche: feeding raw
/// arithmetic *into* the mixer is fine, the mixer's output is not a
/// weak derivation.
fn derived_seed(seed: u64, strike: u64) -> u64 {
    let derived = mix_seed(seed, strike);
    let stream = seed_from_u64(derived);
    stream
}
