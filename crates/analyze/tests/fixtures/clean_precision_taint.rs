//! Clean twin of `bad_precision_taint.rs`: the same value movements,
//! each routed through a blessed conversion fn so the precision change
//! happens at an audited boundary. Must produce zero findings.

/// Narrowing through the blessed conversion instead of a raw cast.
fn narrow_later(golden: &[f64], i: usize) -> f32 {
    let master = golden[i];
    to_f32(master)
}

/// Mixed arithmetic with the narrower operand widened explicitly.
fn fused_mix(a: f32, b: f64) -> f64 {
    let single = a;
    let double = b;
    let z = to_f64(single) * double;
    z
}

/// Value conversion instead of bit reinterpretation.
fn reinterpret(h: Half) -> f32 {
    to_f32(h)
}

/// Call boundary with the conversion visible at the call site.
fn consume_single(x: f32) -> f32 {
    x
}

fn feed(golden: &[f64], i: usize) -> f32 {
    let master = golden[i];
    consume_single(to_f32(master))
}

/// Field initialization through the blessed binary16 constructor.
struct Sample {
    bits: u16,
}

fn store(x: f32, out: &mut Vec<Sample>) {
    let word = Half::from_f32(x);
    out.push(Sample { bits: word.to_bits() });
}
