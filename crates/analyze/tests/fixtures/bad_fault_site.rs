//! Fixture: kernel-loop updates that bypass the fault hook.

fn run<F: FloatExt>(&self, hook: &mut dyn FaultHook) -> Vec<f64> {
    let mut acc = F::zero();
    let mut out = Vec::new();
    for i in 0..self.n {
        acc = acc + self.a[i];
        out.push(self.a[i].mul_add(acc, acc));
    }
    for i in 0..self.n {
        let fused = self.a[i].mul_add(acc, acc);
        acc += fused;
    }
    out.iter().map(|v| v.to_f64()).collect()
}
