//! Fixture: every precision-leak form inside a generic kernel body.

fn run<F: FloatExt>(&self, hook: &mut dyn FaultHook) -> Vec<f64> {
    let scale = 0.5;
    let x = self.input as f64;
    let y = f64::sqrt(x);
    let z: f64 = scale * y;
    vec![z]
}
