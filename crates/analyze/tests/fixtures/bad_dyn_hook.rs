//! Fixture: trait-object hook dispatch inside kernel code — FS002.

/// Bare trait-object hook parameter: a virtual call per touched value.
fn run_slow(hook: &mut dyn FaultHook) -> f64 {
    let mut acc = 0.0;
    acc = hook.touch(acc);
    acc
}

/// Qualified path form — the lint matches the final path segment.
fn dispatch_slow(hook: &mut dyn mpr_fault::hook::FaultHook) -> f64 {
    hook.touch(0.0)
}

/// Boxed form is still a trait object.
struct Slow {
    hook: Box<dyn FaultHook>,
}

/// `dyn` over some *other* trait is fine — only the hook is hot.
fn unrelated(w: &dyn Workload) -> &str {
    w.name()
}

// mpr-allow: fault-site -- sanctioned boundary pragma suppresses FS002 on the next line
fn boundary(hook: &mut dyn FaultHook) -> f64 {
    hook.touch(1.0)
}

#[cfg(test)]
mod tests {
    /// Test helpers may hold trait objects freely.
    fn helper(hook: &mut dyn FaultHook) {}
}
