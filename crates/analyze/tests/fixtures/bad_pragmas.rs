//! Fixture: allowlist-hygiene violations.

fn configure(&self) -> u64 {
    // mpr-allow: no-such-lint -- typo in the lint name
    let a = 1;
    // mpr-allow: determinism
    let b = 2;
    // mpr-allow: panic-hygiene -- suppresses nothing below
    let c = 3;
    a + b + c
}
