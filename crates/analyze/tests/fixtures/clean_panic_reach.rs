//! Clean twin of `bad_panic_reach.rs`: the hot path uses checked
//! indexing with an explicit fallback, and the documented panic lives
//! on a cold path no campaign root reaches. Must produce zero
//! findings.

fn run_from_site(table: &[usize], k: usize) -> usize {
    checked_lookup(table, k)
}

fn checked_lookup(table: &[usize], k: usize) -> usize {
    match table.get(k + 1) {
        Some(v) => *v,
        None => 0,
    }
}

/// # Panics
///
/// Panics when `k` is out of range. Only used by offline tooling,
/// never called from a campaign root.
fn cold_assert(table: &[usize], k: usize) -> usize {
    if k >= table.len() {
        panic!("bad site index {k}");
    }
    table[k]
}
