//! Fixture: persistence code that bypasses the Vfs seam.
//!
//! Direct filesystem calls inside mpr-exp dodge the chaos schedule and
//! the durable-commit protocol, so crash-consistency proofs no longer
//! cover them. Every direct call below must trip FS003.

use std::io::Write;
use std::path::Path;

pub fn save_entry(dir: &Path, body: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut f = std::fs::File::create(dir.join("entry.json"))?;
    f.write_all(body.as_bytes())
}

pub fn append_ledger(path: &Path, line: &str) -> std::io::Result<()> {
    let mut f = std::fs::OpenOptions::new().append(true).open(path)?;
    f.write_all(line.as_bytes())
}

#[cfg(test)]
mod tests {
    // Test helpers may touch the real filesystem directly; only
    // shipped persistence code must route through the seam.
    #[test]
    fn scratch_files_are_fine_in_tests() {
        let _ = std::fs::read("never-present");
    }
}
