//! Fixture for the leaks line-scoped token lints cannot see: the
//! offending statements are split across physical lines, or sit inside
//! a macro invocation body. Scanned twice by the tests — once under a
//! kernel-crate path (PL005 must fire, PL001-PL004 must not) and once
//! under a campaign-crate path (DT004 must fire, DT001-DT003 must
//! not).

monomorphic_workload! {
    fn narrowed_strike(golden: &[f64], i: usize) -> f32 {
        let master = golden[i];
        let out = master as f32;
        out
    }
}

monomorphic_workload! {
    fn strided_collect(worker: usize, threads: usize, out: &mut Vec<u64>) {
        for i in (worker..128).step_by(threads) {
            out.push(one_strike(i));
        }
    }
}

fn one_strike(i: usize) -> u64 {
    i as u64
}

/// The weak derivation is one *statement* but three physical lines;
/// any per-line pattern sees only fragments of it.
fn split_seed(seed: u64, strike: u64) -> u64 {
    let derived = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ strike;
    let stream = seed_from_u64(derived);
    stream
}
