//! Fixture-based lint tests: every known-bad snippet must be flagged
//! with the expected lint ids, every clean snippet must pass, and the
//! shipped workspace itself must scan clean.
//!
//! The fixture sources live in `tests/fixtures/` (a subdirectory, so
//! Cargo never compiles them) and are analyzed under *claimed* paths to
//! exercise the path-based lint scoping.

use mpr_analyze::{analyze_source, analyze_workspace, Analysis, Severity};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name}: {e}"))
}

/// Analyzes one fixture under a claimed workspace path.
fn scan(rel_path: &str, name: &str) -> Analysis {
    Analysis {
        files_scanned: 1,
        findings: analyze_source(rel_path, &fixture(name)),
    }
}

fn lint_ids(analysis: &Analysis) -> Vec<&str> {
    analysis.findings.iter().map(|f| f.lint.as_str()).collect()
}

#[test]
fn bad_precision_fixture_trips_every_pl_lint() {
    let a = scan("crates/kernels/src/fixture.rs", "bad_precision.rs");
    let ids = lint_ids(&a);
    for expected in ["PL001", "PL002", "PL003", "PL004"] {
        assert!(ids.contains(&expected), "{expected} missing from {ids:?}");
    }
    assert!(!a.clean());
}

#[test]
fn clean_precision_fixture_passes() {
    let a = scan("crates/kernels/src/fixture.rs", "clean_precision.rs");
    assert!(a.clean(), "unexpected findings: {}", a.to_text());
}

#[test]
fn precision_lints_do_not_apply_outside_kernel_crates() {
    // The same leaky source is fine in, say, the metrics crate — the
    // golden/dispatch interface legitimately works in f64.
    let a = scan("crates/metrics/src/fixture.rs", "bad_precision.rs");
    assert!(a.clean(), "unexpected findings: {}", a.to_text());
}

#[test]
fn bad_fault_site_fixture_flags_each_untouched_update() {
    let a = scan("crates/nn/src/fixture.rs", "bad_fault_site.rs");
    let fs: Vec<_> = a.findings.iter().filter(|f| f.lint == "FS001").collect();
    assert_eq!(
        fs.len(),
        4,
        "one finding per untouched update: {}",
        a.to_text()
    );
    assert!(!a.clean());
}

#[test]
fn clean_fault_site_fixture_passes() {
    let a = scan("crates/kernels/src/fixture.rs", "clean_fault_site.rs");
    assert!(a.clean(), "unexpected findings: {}", a.to_text());
}

#[test]
fn dyn_hook_fixture_flags_each_trait_object() {
    let a = scan("crates/kernels/src/fixture.rs", "bad_dyn_hook.rs");
    let fs: Vec<_> = a.findings.iter().filter(|f| f.lint == "FS002").collect();
    // Bare, qualified, and boxed forms trip; the pragma'd boundary, the
    // unrelated trait object, and the test helper do not.
    assert_eq!(fs.len(), 3, "FS002 findings: {}", a.to_text());
    assert!(fs.iter().all(|f| f.name == "fault-site"));
    assert!(!a.clean());
}

#[test]
fn dyn_hook_lint_scopes_to_the_kernel_crate() {
    // Campaign crates hold workloads and hooks as trait objects at the
    // dispatch boundary — the same source is legitimate there.
    let a = scan("crates/fault/src/fixture.rs", "bad_dyn_hook.rs");
    assert!(
        !a.findings.iter().any(|f| f.lint == "FS002"),
        "unexpected FS002 outside kernels: {}",
        a.to_text()
    );
}

#[test]
fn bad_determinism_fixture_trips_every_dt_lint() {
    let a = scan("crates/beam/src/fixture.rs", "bad_determinism.rs");
    let ids = lint_ids(&a);
    for expected in ["DT001", "DT002", "DT003"] {
        assert!(ids.contains(&expected), "{expected} missing from {ids:?}");
    }
}

#[test]
fn determinism_lints_scope_to_simulation_crates() {
    let a = scan("crates/metrics/src/fixture.rs", "bad_determinism.rs");
    assert!(a.clean(), "unexpected findings: {}", a.to_text());
}

#[test]
fn clean_determinism_fixture_passes() {
    let a = scan("crates/fault/src/fixture.rs", "clean_determinism.rs");
    assert!(a.clean(), "unexpected findings: {}", a.to_text());
}

#[test]
fn bad_panics_fixture_trips_every_ph_lint() {
    // Panic hygiene applies to every library crate.
    let a = scan("crates/metrics/src/fixture.rs", "bad_panics.rs");
    let ids = lint_ids(&a);
    for expected in ["PH001", "PH002", "PH003"] {
        assert!(ids.contains(&expected), "{expected} missing from {ids:?}");
    }
}

#[test]
fn clean_panics_fixture_passes() {
    // Documented `# Panics` contracts, test modules, and a justified
    // pragma all exempt their panic sites.
    let a = scan("crates/metrics/src/fixture.rs", "clean_panics.rs");
    assert!(a.clean(), "unexpected findings: {}", a.to_text());
}

#[test]
fn pragma_hygiene_fixture_reports_bad_allows() {
    let a = scan("crates/metrics/src/fixture.rs", "bad_pragmas.rs");
    let ids = lint_ids(&a);
    for expected in ["AH001", "AH002", "AH003"] {
        assert!(ids.contains(&expected), "{expected} missing from {ids:?}");
    }
    // Unknown lints and missing justifications are errors; a stale but
    // well-formed allow is only a warning.
    assert!(a.errors() > 0);
    assert!(a
        .findings
        .iter()
        .any(|f| f.lint == "AH003" && f.severity == Severity::Warning));
}

#[test]
fn json_output_round_trips() {
    let a = scan("crates/kernels/src/fixture.rs", "bad_precision.rs");
    let parsed = Analysis::from_json(&a.to_json()).expect("valid JSON");
    assert_eq!(parsed.files_scanned, a.files_scanned);
    assert_eq!(parsed.findings, a.findings);
}

#[test]
fn workspace_tree_with_a_bad_file_is_flagged() {
    let dir = std::env::temp_dir().join(format!("mpr_analyze_bad_{}", std::process::id()));
    let src = dir.join("crates/kernels/src");
    std::fs::create_dir_all(&src).expect("temp tree");
    std::fs::write(src.join("bad.rs"), fixture("bad_precision.rs")).expect("write fixture");
    let a = analyze_workspace(&dir).expect("scan succeeds");
    assert_eq!(a.files_scanned, 1);
    assert!(!a.clean(), "bad tree must be flagged");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shipped_workspace_scans_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let a = analyze_workspace(&root).expect("scan succeeds");
    assert!(
        a.files_scanned > 50,
        "scanned only {} files",
        a.files_scanned
    );
    // No errors *and* no warnings: stale pragmas must not accumulate.
    assert!(
        a.findings.is_empty(),
        "workspace findings:\n{}",
        a.to_text()
    );
}
