//! Fixture-based lint tests: every known-bad snippet must be flagged
//! with the expected lint ids, every clean snippet must pass, and the
//! shipped workspace itself must scan clean.
//!
//! The fixture sources live in `tests/fixtures/` (a subdirectory, so
//! Cargo never compiles them) and are analyzed under *claimed* paths to
//! exercise the path-based lint scoping.

use mpr_analyze::{analyze_source, analyze_workspace, Analysis, Severity};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name}: {e}"))
}

/// Analyzes one fixture under a claimed workspace path.
fn scan(rel_path: &str, name: &str) -> Analysis {
    Analysis {
        files_scanned: 1,
        findings: analyze_source(rel_path, &fixture(name)),
    }
}

fn lint_ids(analysis: &Analysis) -> Vec<&str> {
    analysis.findings.iter().map(|f| f.lint.as_str()).collect()
}

#[test]
fn bad_precision_fixture_trips_every_pl_lint() {
    let a = scan("crates/kernels/src/fixture.rs", "bad_precision.rs");
    let ids = lint_ids(&a);
    for expected in ["PL001", "PL002", "PL003", "PL004"] {
        assert!(ids.contains(&expected), "{expected} missing from {ids:?}");
    }
    assert!(!a.clean());
}

#[test]
fn clean_precision_fixture_passes() {
    let a = scan("crates/kernels/src/fixture.rs", "clean_precision.rs");
    assert!(a.clean(), "unexpected findings: {}", a.to_text());
}

#[test]
fn precision_lints_do_not_apply_outside_kernel_crates() {
    // The same leaky source is fine in, say, the metrics crate — the
    // golden/dispatch interface legitimately works in f64.
    let a = scan("crates/metrics/src/fixture.rs", "bad_precision.rs");
    assert!(a.clean(), "unexpected findings: {}", a.to_text());
}

#[test]
fn bad_fault_site_fixture_flags_each_untouched_update() {
    let a = scan("crates/nn/src/fixture.rs", "bad_fault_site.rs");
    let fs: Vec<_> = a.findings.iter().filter(|f| f.lint == "FS001").collect();
    assert_eq!(
        fs.len(),
        4,
        "one finding per untouched update: {}",
        a.to_text()
    );
    assert!(!a.clean());
}

#[test]
fn clean_fault_site_fixture_passes() {
    let a = scan("crates/kernels/src/fixture.rs", "clean_fault_site.rs");
    assert!(a.clean(), "unexpected findings: {}", a.to_text());
}

#[test]
fn dyn_hook_fixture_flags_each_trait_object() {
    let a = scan("crates/kernels/src/fixture.rs", "bad_dyn_hook.rs");
    let fs: Vec<_> = a.findings.iter().filter(|f| f.lint == "FS002").collect();
    // Bare, qualified, and boxed forms trip; the pragma'd boundary, the
    // unrelated trait object, and the test helper do not.
    assert_eq!(fs.len(), 3, "FS002 findings: {}", a.to_text());
    assert!(fs.iter().all(|f| f.name == "fault-site"));
    assert!(!a.clean());
}

#[test]
fn dyn_hook_lint_scopes_to_the_kernel_crate() {
    // Campaign crates hold workloads and hooks as trait objects at the
    // dispatch boundary — the same source is legitimate there.
    let a = scan("crates/fault/src/fixture.rs", "bad_dyn_hook.rs");
    assert!(
        !a.findings.iter().any(|f| f.lint == "FS002"),
        "unexpected FS002 outside kernels: {}",
        a.to_text()
    );
}

#[test]
fn bad_vfs_bypass_fixture_flags_every_direct_fs_call() {
    let a = scan("crates/exp/src/fixture.rs", "bad_vfs_bypass.rs");
    let fs3: Vec<_> = a.findings.iter().filter(|f| f.lint == "FS003").collect();
    // Two in save_entry (create_dir_all, File::create counts twice via
    // the fs:: path), two in append_ledger (fs:: plus OpenOptions);
    // the test-module read is exempt.
    assert_eq!(fs3.len(), 5, "FS003 findings: {}", a.to_text());
    assert!(fs3.iter().all(|f| f.name == "vfs-bypass"));
    assert!(!a.clean());
}

#[test]
fn clean_vfs_bypass_fixture_passes() {
    let a = scan("crates/exp/src/fixture.rs", "clean_vfs_bypass.rs");
    assert!(a.clean(), "unexpected findings: {}", a.to_text());
}

#[test]
fn vfs_bypass_lint_scopes_to_the_experiment_crate() {
    // The obs recorder and CLI plumbing legitimately hit std::fs
    // directly — only mpr-exp persistence must route through the seam.
    let a = scan("crates/obs/src/fixture.rs", "bad_vfs_bypass.rs");
    assert!(
        !a.findings.iter().any(|f| f.lint == "FS003"),
        "unexpected FS003 outside exp: {}",
        a.to_text()
    );
}

#[test]
fn bad_determinism_fixture_trips_every_dt_lint() {
    let a = scan("crates/beam/src/fixture.rs", "bad_determinism.rs");
    let ids = lint_ids(&a);
    for expected in ["DT001", "DT002", "DT003"] {
        assert!(ids.contains(&expected), "{expected} missing from {ids:?}");
    }
}

#[test]
fn determinism_lints_scope_to_simulation_crates() {
    let a = scan("crates/metrics/src/fixture.rs", "bad_determinism.rs");
    assert!(a.clean(), "unexpected findings: {}", a.to_text());
}

#[test]
fn clean_determinism_fixture_passes() {
    let a = scan("crates/fault/src/fixture.rs", "clean_determinism.rs");
    assert!(a.clean(), "unexpected findings: {}", a.to_text());
}

#[test]
fn bad_panics_fixture_trips_every_ph_lint() {
    // Panic hygiene applies to every library crate.
    let a = scan("crates/metrics/src/fixture.rs", "bad_panics.rs");
    let ids = lint_ids(&a);
    for expected in ["PH001", "PH002", "PH003"] {
        assert!(ids.contains(&expected), "{expected} missing from {ids:?}");
    }
}

#[test]
fn clean_panics_fixture_passes() {
    // Documented `# Panics` contracts, test modules, and a justified
    // pragma all exempt their panic sites.
    let a = scan("crates/metrics/src/fixture.rs", "clean_panics.rs");
    assert!(a.clean(), "unexpected findings: {}", a.to_text());
}

#[test]
fn pragma_hygiene_fixture_reports_bad_allows() {
    let a = scan("crates/metrics/src/fixture.rs", "bad_pragmas.rs");
    let ids = lint_ids(&a);
    for expected in ["AH001", "AH002", "AH003"] {
        assert!(ids.contains(&expected), "{expected} missing from {ids:?}");
    }
    // Unknown lints and missing justifications are errors; a stale but
    // well-formed allow is only a warning.
    assert!(a.errors() > 0);
    assert!(a
        .findings
        .iter()
        .any(|f| f.lint == "AH003" && f.severity == Severity::Warning));
}

#[test]
fn json_output_round_trips() {
    let a = scan("crates/kernels/src/fixture.rs", "bad_precision.rs");
    let parsed = Analysis::from_json(&a.to_json()).expect("valid JSON");
    assert_eq!(parsed.files_scanned, a.files_scanned);
    assert_eq!(parsed.findings, a.findings);
}

#[test]
fn workspace_tree_with_a_bad_file_is_flagged() {
    let dir = std::env::temp_dir().join(format!("mpr_analyze_bad_{}", std::process::id()));
    let src = dir.join("crates/kernels/src");
    std::fs::create_dir_all(&src).expect("temp tree");
    std::fs::write(src.join("bad.rs"), fixture("bad_precision.rs")).expect("write fixture");
    let a = analyze_workspace(&dir).expect("scan succeeds");
    assert_eq!(a.files_scanned, 1);
    assert!(!a.clean(), "bad tree must be flagged");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shipped_workspace_scans_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let a = analyze_workspace(&root).expect("scan succeeds");
    assert!(
        a.files_scanned > 50,
        "scanned only {} files",
        a.files_scanned
    );
    // No errors *and* no warnings: stale pragmas must not accumulate.
    assert!(
        a.findings.is_empty(),
        "workspace findings:\n{}",
        a.to_text()
    );
}

// ---------------------------------------------------------------------
// Flow-sensitive taint lints (PL005 / DT004 / PH004)
// ---------------------------------------------------------------------

#[test]
fn precision_taint_fixture_flags_every_leak_shape() {
    let a = scan("crates/kernels/src/fixture.rs", "bad_precision_taint.rs");
    let pl5: Vec<_> = a.findings.iter().filter(|f| f.lint == "PL005").collect();
    // One per leak shape: cross-line narrowing, mixed arithmetic,
    // from_bits reinterpretation, call boundary, struct field, bit
    // truncation (plus return-position echoes of the tainted values).
    for line in [11, 19, 26, 36, 46, 52] {
        assert!(
            pl5.iter().any(|f| f.line == line),
            "no PL005 at line {line}:\n{}",
            a.to_text()
        );
    }
    // The fns are not FloatExt-generic, so the token lints stay quiet:
    // only the flow-sensitive pass sees these.
    assert!(
        !a.findings
            .iter()
            .any(|f| matches!(f.lint.as_str(), "PL001" | "PL002" | "PL003" | "PL004")),
        "token lint fired unexpectedly:\n{}",
        a.to_text()
    );
}

#[test]
fn clean_precision_taint_fixture_passes() {
    let a = scan("crates/kernels/src/fixture.rs", "clean_precision_taint.rs");
    assert!(a.clean(), "unexpected findings: {}", a.to_text());
}

#[test]
fn precision_taint_scopes_to_precision_crates() {
    let a = scan("crates/exp/src/fixture.rs", "bad_precision_taint.rs");
    assert!(
        !a.findings.iter().any(|f| f.lint == "PL005"),
        "PL005 outside kernels/nn: {}",
        a.to_text()
    );
}

#[test]
fn determinism_taint_fixture_reproduces_both_pr3_bug_shapes() {
    let a = scan("crates/fault/src/fixture.rs", "bad_determinism_taint.rs");
    let dt4: Vec<_> = a.findings.iter().filter(|f| f.lint == "DT004").collect();
    // Shape 1: untagged push inside the thread-stride loop.
    assert!(
        dt4.iter()
            .any(|f| f.line == 11 && f.message.contains("thread-stride")),
        "stride-order shape missed:\n{}",
        a.to_text()
    );
    // Shape 2: multiply-XOR seed derivation reaching the RNG.
    assert!(
        dt4.iter()
            .any(|f| f.line == 24 && f.message.contains("weak multiply-XOR")),
        "weak-seed shape missed:\n{}",
        a.to_text()
    );
    // Neither shape mentions a token DT001-DT003 recognize; the file
    // must be invisible to the line-scoped lints.
    assert!(
        !a.findings
            .iter()
            .any(|f| matches!(f.lint.as_str(), "DT001" | "DT002" | "DT003")),
        "token lint fired unexpectedly:\n{}",
        a.to_text()
    );
}

#[test]
fn clean_determinism_taint_fixture_passes() {
    let a = scan("crates/fault/src/fixture.rs", "clean_determinism_taint.rs");
    assert!(a.clean(), "unexpected findings: {}", a.to_text());
}

#[test]
fn panic_reachability_fixture_flags_documented_and_index_sites() {
    let a = scan("crates/fault/src/fixture.rs", "bad_panic_reach.rs");
    let ph4: Vec<_> = a.findings.iter().filter(|f| f.lint == "PH004").collect();
    assert!(
        ph4.iter().any(|f| f.line == 15),
        "documented panic! missed:\n{}",
        a.to_text()
    );
    assert!(
        ph4.iter().any(|f| f.line == 17),
        "variable indexing missed:\n{}",
        a.to_text()
    );
    // The contract is documented, so PH001-PH003 stay quiet.
    assert!(
        !a.findings
            .iter()
            .any(|f| matches!(f.lint.as_str(), "PH001" | "PH002" | "PH003")),
        "token lint fired unexpectedly:\n{}",
        a.to_text()
    );
}

#[test]
fn clean_panic_reach_fixture_passes() {
    let a = scan("crates/fault/src/fixture.rs", "clean_panic_reach.rs");
    assert!(a.clean(), "unexpected findings: {}", a.to_text());
}

#[test]
fn split_statements_and_macro_bodies_are_visible_to_flow_lints() {
    // Under a kernel-crate path the macro-generated narrowing trips
    // PL005 while the token precision lints see nothing.
    let a = scan("crates/kernels/src/fixture.rs", "bad_split_and_macro.rs");
    assert!(
        a.findings.iter().any(|f| f.lint == "PL005"),
        "macro-generated narrowing missed:\n{}",
        a.to_text()
    );
    assert!(
        !a.findings
            .iter()
            .any(|f| matches!(f.lint.as_str(), "PL001" | "PL002" | "PL003" | "PL004")),
        "token lint fired unexpectedly:\n{}",
        a.to_text()
    );
    // Under a campaign-crate path the macro-generated stride push and
    // the three-line weak-seed statement trip DT004; DT001-DT003 are
    // blind to both.
    let b = scan("crates/fault/src/fixture.rs", "bad_split_and_macro.rs");
    let dt4: Vec<_> = b.findings.iter().filter(|f| f.lint == "DT004").collect();
    assert!(
        dt4.iter().any(|f| f.message.contains("thread-stride")),
        "macro-generated stride push missed:\n{}",
        b.to_text()
    );
    assert!(
        dt4.iter().any(|f| f.message.contains("weak multiply-XOR")),
        "split-statement weak seed missed:\n{}",
        b.to_text()
    );
    assert!(
        !b.findings
            .iter()
            .any(|f| matches!(f.lint.as_str(), "DT001" | "DT002" | "DT003")),
        "token lint fired unexpectedly:\n{}",
        b.to_text()
    );
}

// ---------------------------------------------------------------------
// Allow hygiene: file-wide pragmas
// ---------------------------------------------------------------------

#[test]
fn stale_file_wide_allow_is_reported() {
    let a = scan("crates/fault/src/fixture.rs", "bad_stale_file_allow.rs");
    assert!(
        a.findings
            .iter()
            .any(|f| f.lint == "AH003" && f.message.contains("file-wide")),
        "stale mpr-allow-file not reported:\n{}",
        a.to_text()
    );
}

#[test]
fn load_bearing_file_wide_allow_passes() {
    let a = scan("crates/fault/src/fixture.rs", "clean_file_allow.rs");
    assert!(a.clean(), "unexpected findings: {}", a.to_text());
}

// ---------------------------------------------------------------------
// Deterministic report order and baseline diffing
// ---------------------------------------------------------------------

#[test]
fn findings_are_sorted_by_path_line_and_lint() {
    // Feed files in reverse path order; the report must come back in
    // canonical (file, line, lint) order anyway.
    let noisy = fixture("bad_precision_taint.rs");
    let a = mpr_analyze::analyze_files(vec![
        ("crates/nn/src/zzz.rs".to_string(), noisy.clone()),
        ("crates/kernels/src/aaa.rs".to_string(), noisy),
    ]);
    assert!(a.findings.len() >= 4, "fixture should be noisy");
    let keys: Vec<_> = a
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.lint.clone()))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "report not in canonical order");
    assert_eq!(
        keys.first().map(|k| k.0.as_str()),
        Some("crates/kernels/src/aaa.rs")
    );
}

#[test]
fn committed_baseline_matches_a_fresh_scan() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let baseline_path = root.join("ci/analyze-baseline.json");
    let baseline_text = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", baseline_path.display()));
    let baseline = Analysis::from_json(&baseline_text).expect("baseline parses");
    let current = analyze_workspace(&root).expect("scan succeeds");
    // Findings only: adding a clean file must not invalidate the
    // committed baseline, so files_scanned is not compared.
    if let Some(diff) = mpr_analyze::diff_reports(&baseline, &current) {
        panic!("{diff}");
    }
}
