//! Source model: loads a Rust file and precomputes everything the lints
//! share — a comment/string-masked copy of the text, test and
//! documented-panic regions, `F: FloatExt`-generic function bodies, and
//! the `mpr-allow` suppression pragmas.
//!
//! The scanner is deliberately token-level (no rustc, no syn): it
//! understands just enough lexical structure (nested block comments,
//! string/char/raw-string literals, brace nesting) to make line-oriented
//! pattern checks reliable.

/// A line-scoped suppression: `// mpr-allow: <lint> -- <why>`.
#[derive(Debug, Clone)]
pub struct AllowPragma {
    /// 1-based line the pragma sits on.
    pub line: usize,
    /// Lint name the pragma suppresses (e.g. `panic-hygiene`).
    pub lint: String,
    /// Justification text after ` -- ` (empty when missing).
    pub reason: String,
    /// Whether the pragma covers the whole file (`mpr-allow-file`).
    pub file_wide: bool,
}

/// A parsed source file plus the per-line facts lints consume.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path (forward slashes).
    pub rel_path: String,
    /// Original lines, as read.
    pub lines: Vec<String>,
    /// Lines with comments removed and string/char contents blanked;
    /// same line count and per-line length as `lines`.
    pub masked: Vec<String>,
    /// Per line: inside `#[cfg(test)]` module or `#[test]` function.
    pub in_test: Vec<bool>,
    /// Per line: inside the body of a fn whose doc comment carries a
    /// `# Panics` section.
    pub panic_documented: Vec<bool>,
    /// Per line: inside the body of a fn generic over `F: FloatExt`.
    pub in_generic_kernel: Vec<bool>,
    /// All suppression pragmas found in the file.
    pub pragmas: Vec<AllowPragma>,
}

impl SourceFile {
    /// Parses `text` as the contents of `rel_path`.
    pub fn parse(rel_path: &str, text: &str) -> SourceFile {
        let lines: Vec<String> = text.lines().map(str::to_string).collect();
        let masked = mask_lines(text, lines.len());
        let pragmas = collect_pragmas(&lines);
        let in_test = mark_test_regions(&masked);
        let panic_documented = mark_panic_documented(&lines, &masked);
        let in_generic_kernel = mark_generic_kernels(&masked);
        SourceFile {
            rel_path: rel_path.to_string(),
            lines,
            masked,
            in_test,
            panic_documented,
            in_generic_kernel,
            pragmas,
        }
    }

    /// True when a pragma suppresses `lint` at 1-based `line` (the
    /// pragma may sit on the line itself or the line directly above).
    pub fn allows(&self, lint: &str, line: usize) -> bool {
        self.pragmas
            .iter()
            .any(|p| p.lint == lint && (p.file_wide || p.line == line || p.line + 1 == line))
    }
}

/// Blanks comments entirely and the interiors of string/char literals,
/// preserving line structure and column positions of all other text.
fn mask_lines(text: &str, line_count: usize) -> Vec<String> {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
    }
    let mut out = String::with_capacity(text.len());
    let mut state = State::Code;
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                '"' => {
                    state = State::Str;
                    out.push('"');
                }
                'r' | 'b' if is_raw_string_start(&chars, i) => {
                    let (hashes, consumed) = raw_string_open(&chars, i);
                    state = State::RawStr(hashes);
                    for _ in 0..consumed {
                        out.push(' ');
                    }
                    out.push('"');
                    i += consumed + 1;
                    continue;
                }
                '\'' => {
                    if let Some(len) = char_literal_len(&chars, i) {
                        out.push('\'');
                        for k in 1..len {
                            out.push(if chars[i + k] == '\n' { '\n' } else { ' ' });
                        }
                        i += len;
                        continue;
                    }
                    out.push('\''); // lifetime tick
                }
                _ => out.push(c),
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            State::BlockComment(depth) => {
                if c == '\n' {
                    out.push('\n');
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                } else {
                    out.push(' ');
                }
            }
            State::Str => match c {
                '\\' => {
                    out.push(' ');
                    if next.is_some() {
                        out.push(if next == Some('\n') { '\n' } else { ' ' });
                        i += 2;
                        continue;
                    }
                }
                '"' => {
                    state = State::Code;
                    out.push('"');
                }
                '\n' => out.push('\n'),
                _ => out.push(' '),
            },
            State::RawStr(hashes) => {
                if c == '"' && raw_string_closes(&chars, i, hashes) {
                    out.push('"');
                    for _ in 0..hashes {
                        out.push(' ');
                    }
                    i += 1 + hashes as usize;
                    state = State::Code;
                    continue;
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
            }
        }
        i += 1;
    }
    let mut masked: Vec<String> = out.lines().map(str::to_string).collect();
    masked.resize(line_count, String::new());
    masked
}

fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // r"..."  r#"..."#  br"..."  b"..." is a plain byte string (handled
    // as Str would be overkill; treat b"..." via this path too).
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
        while chars.get(j) == Some(&'#') {
            j += 1;
        }
        return chars.get(j) == Some(&'"');
    }
    // Bare b"...": only when i itself is 'b' followed by a quote.
    chars[i] == 'b' && chars.get(i + 1) == Some(&'"')
}

/// Returns (hash count, chars before the opening quote).
fn raw_string_open(chars: &[char], i: usize) -> (u32, usize) {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
    }
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (hashes, j - i)
}

fn raw_string_closes(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Length in chars of a char literal starting at `'`, or `None` for a
/// lifetime tick.
fn char_literal_len(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1) {
        Some('\\') => {
            // Escaped char: scan to the closing quote (bounded).
            for k in 3..8 {
                if chars.get(i + k) == Some(&'\'') {
                    return Some(k + 1);
                }
            }
            None
        }
        Some(_) if chars.get(i + 2) == Some(&'\'') => Some(3),
        _ => None,
    }
}

fn collect_pragmas(lines: &[String]) -> Vec<AllowPragma> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let trimmed = line.trim_start();
        // A pragma is the entire content of a plain `//` comment (line
        // or trailing), or of a `//!` inner-doc line for the file-wide
        // form. Doc prose that merely mentions the syntax (backticks,
        // fenced examples) does not start the comment with `mpr-allow`.
        let rest = if let Some(doc) = trimmed.strip_prefix("//!") {
            let doc = doc.trim_start();
            if !doc.starts_with("mpr-allow-file:") {
                continue;
            }
            doc
        } else if trimmed.starts_with("///") {
            continue;
        } else {
            let Some(pos) = line.find("//") else {
                continue;
            };
            let comment = line[pos + 2..].trim_start();
            if !comment.starts_with("mpr-allow") {
                continue;
            }
            comment
        };
        let (file_wide, payload) = if let Some(p) = rest.strip_prefix("mpr-allow-file:") {
            (true, p)
        } else if let Some(p) = rest.strip_prefix("mpr-allow:") {
            (false, p)
        } else {
            continue;
        };
        let (lint, reason) = match payload.split_once("--") {
            Some((l, r)) => (l.trim().to_string(), r.trim().to_string()),
            None => (payload.trim().to_string(), String::new()),
        };
        out.push(AllowPragma {
            line: idx + 1,
            lint,
            reason,
            file_wide,
        });
    }
    out
}

/// Finds the line of the matching `}` for the first `{` at or after
/// `open_line` (0-based); returns the 0-based close line, or the last
/// line when unbalanced.
fn matching_close(masked: &[String], open_line: usize) -> usize {
    let mut depth = 0i32;
    let mut seen_open = false;
    for (idx, line) in masked.iter().enumerate().skip(open_line) {
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    seen_open = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
            if seen_open && depth == 0 {
                return idx;
            }
        }
    }
    masked.len().saturating_sub(1)
}

fn mark_span(flags: &mut [bool], from: usize, to: usize) {
    for f in flags.iter_mut().take(to + 1).skip(from) {
        *f = true;
    }
}

fn mark_test_regions(masked: &[String]) -> Vec<bool> {
    let mut flags = vec![false; masked.len()];
    for (idx, line) in masked.iter().enumerate() {
        let t = line.trim();
        let is_mod_gate = t.contains("#[cfg(test)]");
        let is_fn_gate = t == "#[test]" || t.starts_with("#[test]");
        if !is_mod_gate && !is_fn_gate {
            continue;
        }
        // The gated item follows the attribute stack; a gated `use` or
        // other braceless item gates nothing we track.
        let mut item = idx;
        if !(t.contains("mod ") || t.contains("fn ")) {
            item += 1;
            while item < masked.len() {
                let s = masked[item].trim();
                if s.starts_with("#[") || s.is_empty() {
                    item += 1;
                } else {
                    break;
                }
            }
        }
        if item >= masked.len() {
            continue;
        }
        let s = masked[item].trim();
        if !(s.contains("mod ") || s.contains("fn ")) {
            continue;
        }
        let close = matching_close(masked, item);
        mark_span(&mut flags, idx, close);
    }
    flags
}

fn mark_panic_documented(lines: &[String], masked: &[String]) -> Vec<bool> {
    let mut flags = vec![false; masked.len()];
    for (idx, line) in lines.iter().enumerate() {
        let t = line.trim();
        if !(t.starts_with("///") || t.starts_with("//!")) || !t.contains("# Panics") {
            continue;
        }
        // The documented fn follows the doc block and any attributes.
        let mut item = idx + 1;
        while item < masked.len() {
            let s = lines[item].trim();
            if masked[item].contains("fn ") {
                break;
            }
            if !(s.starts_with("///") || s.starts_with('#') || s.is_empty()) {
                break;
            }
            item += 1;
        }
        if item >= masked.len() || !masked[item].contains("fn ") {
            continue;
        }
        let close = matching_close(masked, item);
        mark_span(&mut flags, item, close);
    }
    flags
}

fn mark_generic_kernels(masked: &[String]) -> Vec<bool> {
    let mut flags = vec![false; masked.len()];
    for (idx, line) in masked.iter().enumerate() {
        if !line.contains("fn ") {
            continue;
        }
        // The signature may wrap before its opening brace; look at the
        // text from `fn` to the first `{`.
        let mut sig = String::new();
        let mut open = idx;
        'sig: for (j, l) in masked.iter().enumerate().skip(idx) {
            sig.push_str(l);
            sig.push(' ');
            if l.contains('{') {
                open = j;
                break 'sig;
            }
            if j > idx + 8 {
                break 'sig; // not a fn with a nearby body
            }
        }
        if !sig.contains(": FloatExt") {
            continue;
        }
        let close = matching_close(masked, open);
        // The body is generic; the signature lines themselves (which
        // legitimately mention `Vec<f64>` interface types) are not.
        if open < close {
            mark_span(&mut flags, open + 1, close.saturating_sub(1));
        }
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_blanks_comments_and_strings() {
        let f = SourceFile::parse(
            "x.rs",
            "let a = \"// not a comment\"; // real { brace }\nlet b = 1.0;\n",
        );
        assert!(!f.masked[0].contains("not"));
        assert!(!f.masked[0].contains("real"));
        assert!(!f.masked[0].contains('{'));
        assert_eq!(f.masked[1].trim(), "let b = 1.0;");
    }

    #[test]
    fn masking_handles_nested_block_comments_and_raw_strings() {
        let src = "/* a /* b */ c */ let x = r#\"quote \" here\"#; let y = 2;\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.masked[0].contains('a'));
        assert!(!f.masked[0].contains("quote"));
        assert!(f.masked[0].contains("let y = 2;"));
    }

    #[test]
    fn char_literals_and_lifetimes_are_distinguished() {
        let src = "fn f<'a>(x: &'a str) -> char { let c = '{'; c }\n";
        let f = SourceFile::parse("x.rs", src);
        // The brace inside the char literal must not unbalance braces.
        assert_eq!(f.masked[0].matches('{').count(), 1);
        assert!(f.masked[0].contains("'a"));
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.in_test[0]);
        assert!(f.in_test[2]);
        assert!(f.in_test[3]);
        assert!(f.in_test[4]);
    }

    #[test]
    fn panic_doc_covers_fn_body() {
        let src = "/// Does a thing.\n///\n/// # Panics\n///\n/// Panics when weird.\npub fn f() {\n    panic!(\"weird\");\n}\nfn g() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.panic_documented[6]);
        assert!(!f.panic_documented[8]);
    }

    #[test]
    fn generic_kernel_body_is_marked_signature_excluded() {
        let src = "fn run<F: FloatExt>(&self) -> Vec<f64> {\n    let x = F::zero();\n}\nfn other() {\n    let y = 1.0f64;\n}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.in_generic_kernel[0]);
        assert!(f.in_generic_kernel[1]);
        assert!(!f.in_generic_kernel[3]);
        assert!(!f.in_generic_kernel[4]);
    }

    #[test]
    fn pragmas_parse_with_reason() {
        let src = "// mpr-allow: panic-hygiene -- joins cannot fail here\nx.unwrap();\n//! mpr-allow-file: determinism -- documented\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.pragmas.len(), 2);
        assert_eq!(f.pragmas[0].lint, "panic-hygiene");
        assert!(f.pragmas[0].reason.contains("joins"));
        assert!(f.allows("panic-hygiene", 2));
        assert!(!f.allows("panic-hygiene", 3));
        assert!(f.pragmas[1].file_wide);
        assert!(f.allows("determinism", 999));
    }
}
