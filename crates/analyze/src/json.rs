//! Minimal JSON support for `--json` output.
//!
//! The workspace is fully offline (no serde), so the analyzer carries
//! its own small JSON value type with a renderer and a
//! recursive-descent parser — enough for the findings report to
//! round-trip losslessly.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (the analyzer only emits integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; `BTreeMap` keeps key order deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Member lookup, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::Str(s) => write_escaped(f, s),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Parses one JSON document.
///
/// # Errors
///
/// Returns a message naming the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<Value, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut p = Parser { chars, at: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.at != p.chars.len() {
        return Err(format!("trailing data at offset {}", p.at));
    }
    Ok(v)
}

struct Parser {
    chars: Vec<char>,
    at: usize,
}

impl Parser {
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.at).copied()
    }

    fn eat(&mut self, c: char) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected `{c}` at offset {}", self.at))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some('n') => self.literal("null", Value::Null),
            Some('t') => self.literal("true", Value::Bool(true)),
            Some('f') => self.literal("false", Value::Bool(false)),
            Some('"') => Ok(Value::Str(self.string()?)),
            Some('[') => self.array(),
            Some('{') => self.object(),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.at)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        for c in word.chars() {
            self.eat(c)?;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat('"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some('"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some('"') => out.push('"'),
                        Some('\\') => out.push('\\'),
                        Some('/') => out.push('/'),
                        Some('n') => out.push('\n'),
                        Some('r') => out.push('\r'),
                        Some('t') => out.push('\t'),
                        Some('b') => out.push('\u{8}'),
                        Some('f') => out.push('\u{c}'),
                        Some('u') => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                self.at += 1;
                                let d = self
                                    .peek()
                                    .and_then(|c| c.to_digit(16))
                                    .ok_or_else(|| format!("bad \\u escape at {}", self.at))?;
                                code = code * 16 + d;
                            }
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.at += 1;
                }
                Some(c) => {
                    out.push(c);
                    self.at += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.at;
        if self.peek() == Some('-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-')
        {
            self.at += 1;
        }
        let text: String = self.chars[start..self.at].iter().collect();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number `{text}` at offset {start}"))
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.at += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(',') => self.at += 1,
                Some(']') => {
                    self.at += 1;
                    return Ok(Value::Arr(items));
                }
                other => return Err(format!("expected `,` or `]`, got {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat('{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.at += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(':')?;
            let value = self.value()?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(',') => self.at += 1,
                Some('}') => {
                    self.at += 1;
                    return Ok(Value::Obj(members));
                }
                other => return Err(format!("expected `,` or `}}`, got {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let src = r#"{"a":[1,2.5,-3],"b":{"c":"x \"y\" z","d":null,"e":true}}"#;
        let v = parse(src).expect("parse");
        let rendered = v.to_string();
        assert_eq!(parse(&rendered).expect("reparse"), v);
    }

    #[test]
    fn escapes_control_characters() {
        let v = Value::Str("a\nb\t\"c\"\\".to_string());
        let text = v.to_string();
        assert_eq!(parse(&text).expect("parse"), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("12 34").is_err());
    }
}
