//! `mpr-analyze` — domain-specific static analysis for the
//! mixed-precision reliability workspace.
//!
//! The simulator's correctness rests on conventions a compiler cannot
//! check: kernel arithmetic must stay generic over [`FloatExt`] so one
//! code path serves double/single/half, every intermediate value must
//! pass through the fault hook so injection campaigns see it, campaigns
//! must be bit-reproducible from their seed, and library crates must
//! not panic on recoverable conditions. This crate enforces those
//! conventions in two tiers, wired into the CLI as `mpr analyze`:
//! line/token pattern lints (PR 1), and flow-sensitive taint lints that
//! run a hand-rolled lexer ([`lexer`]), an item-level parser
//! ([`parse`]), a per-function dataflow pass ([`flow`]), and a
//! workspace call graph ([`callgraph`]) — still no rustc plugin, no
//! syn.
//!
//! | family                | ids        | scope                        |
//! |-----------------------|------------|------------------------------|
//! | `precision-leak`      | PL001-PL004| `crates/kernels`, `crates/nn` (generic fn bodies) |
//! | `precision-taint`     | PL005      | `crates/kernels`, `crates/nn` (flow-sensitive) |
//! | `fault-site`          | FS001-FS002| FS001: `crates/kernels`, `crates/nn` (generic fn bodies); FS002 (`dyn FaultHook`): `crates/kernels` |
//! | `determinism`         | DT001-DT003| `crates/beam`, `crates/fault`, `crates/core`, `crates/exp`, `crates/obs` |
//! | `determinism-taint`   | DT004      | same crates as `determinism` (flow-sensitive) |
//! | `panic-hygiene`       | PH001-PH003| every library crate          |
//! | `panic-reachability`  | PH004      | `crates/kernels`, `crates/fault`, `crates/beam`, `crates/exp` (call-graph reachable from the strike fast path) |
//! | `vfs-bypass`          | FS003      | `crates/exp` (direct `std::fs` traffic outside the `Vfs` layer) |
//! | `allow-hygiene`       | AH001-AH003| pragma bookkeeping           |
//!
//! Violations are suppressed line-by-line with a justified pragma:
//!
//! ```text
//! // mpr-allow: panic-hygiene -- a poisoned lock is unrecoverable here
//! ```
//!
//! or file-wide with `//! mpr-allow-file: <lint> -- <why>`. A pragma
//! without a justification, naming an unknown lint, or suppressing
//! nothing is itself reported, so the allowlist stays auditable.
//!
//! [`FloatExt`]: https://docs.rs/mpr-softfloat

pub mod callgraph;
pub mod flow;
pub mod json;
pub mod lexer;
pub mod lints;
pub mod parse;
pub mod source;

use parse::ParsedFile;
use source::SourceFile;
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// How severe a finding is; only errors fail the build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Gate-failing violation.
    Error,
    /// Reported, but does not fail the gate.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        })
    }
}

/// One diagnostic produced by a lint.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Stable id, e.g. `PL001`.
    pub lint: String,
    /// Lint family, e.g. `precision-leak` (the name pragmas use).
    pub name: String,
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} [{}] {}",
            self.file, self.line, self.severity, self.lint, self.message
        )
    }
}

/// The result of analyzing a file set.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All findings, sorted by (file, line, lint).
    pub findings: Vec<Finding>,
}

impl Analysis {
    /// True when no error-severity findings remain.
    pub fn clean(&self) -> bool {
        self.errors() == 0
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Renders the human-readable report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} file(s) scanned, {} error(s), {} warning(s)\n",
            self.files_scanned,
            self.errors(),
            self.findings.len() - self.errors()
        ));
        out
    }

    /// Renders the report as a single JSON document.
    pub fn to_json(&self) -> String {
        let findings: Vec<json::Value> = self
            .findings
            .iter()
            .map(|f| {
                let mut m = BTreeMap::new();
                m.insert("file".to_string(), json::Value::Str(f.file.clone()));
                m.insert("line".to_string(), json::Value::Num(f.line as f64));
                m.insert("lint".to_string(), json::Value::Str(f.lint.clone()));
                m.insert("name".to_string(), json::Value::Str(f.name.clone()));
                m.insert(
                    "severity".to_string(),
                    json::Value::Str(f.severity.to_string()),
                );
                m.insert("message".to_string(), json::Value::Str(f.message.clone()));
                json::Value::Obj(m)
            })
            .collect();
        let mut root = BTreeMap::new();
        root.insert(
            "files_scanned".to_string(),
            json::Value::Num(self.files_scanned as f64),
        );
        root.insert("errors".to_string(), json::Value::Num(self.errors() as f64));
        root.insert("findings".to_string(), json::Value::Arr(findings));
        json::Value::Obj(root).to_string()
    }

    /// Parses a report previously rendered by [`Analysis::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message when the text is not valid JSON or lacks the
    /// report fields.
    pub fn from_json(text: &str) -> Result<Analysis, String> {
        let v = json::parse(text)?;
        let files_scanned = v
            .get("files_scanned")
            .and_then(json::Value::as_num)
            .ok_or("missing files_scanned")? as usize;
        let mut findings = Vec::new();
        for f in v
            .get("findings")
            .and_then(json::Value::as_arr)
            .ok_or("missing findings")?
        {
            let field = |k: &str| -> Result<String, String> {
                f.get(k)
                    .and_then(json::Value::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("finding missing `{k}`"))
            };
            findings.push(Finding {
                file: field("file")?,
                line: f
                    .get("line")
                    .and_then(json::Value::as_num)
                    .ok_or("finding missing `line`")? as usize,
                lint: field("lint")?,
                name: field("name")?,
                severity: match field("severity")?.as_str() {
                    "error" => Severity::Error,
                    "warning" => Severity::Warning,
                    other => return Err(format!("unknown severity `{other}`")),
                },
                message: field("message")?,
            });
        }
        Ok(Analysis {
            files_scanned,
            findings,
        })
    }
}

/// True when `lint` applies to the file at workspace-relative `rel_path`.
/// Separators are normalized (backslashes, a leading `./`) before the
/// prefix checks, so Windows-style and walker-relative paths scope the
/// same as canonical ones.
pub fn lint_applies(lint: &str, rel_path: &str) -> bool {
    let p = rel_path.replace('\\', "/");
    let p = p.strip_prefix("./").unwrap_or(&p);
    match lint {
        // PL005 extends the precision discipline beyond generic bodies
        // to everything in the precision-bearing crates, so it shares
        // the PL001–PL004 scope.
        "precision-leak" | "fault-site" | "precision-taint" => {
            p.starts_with("crates/kernels/src") || p.starts_with("crates/nn/src")
        }
        // FS002: campaigns legitimately hold `dyn FaultHook` at the
        // dispatch boundary, so the trait-object ban covers only the
        // kernel crate where per-touch virtual calls are hot.
        "dyn-hook" => p.starts_with("crates/kernels/src"),
        // FS003: every byte mpr-exp persists must route through the
        // `Vfs` seam so chaos injection and the durable-commit
        // protocol cover it; `vfs.rs` itself carries a file-wide allow.
        "vfs-bypass" => p.starts_with("crates/exp/src"),
        "determinism" | "determinism-taint" => {
            p.starts_with("crates/beam/src")
                || p.starts_with("crates/fault/src")
                || p.starts_with("crates/core/src")
                || p.starts_with("crates/exp/src")
                || p.starts_with("crates/obs/src")
        }
        "panic-hygiene" => true,
        // PH004 reports where the strike fast path and the campaign
        // drivers live; reachability itself crosses every crate.
        "panic-reachability" => {
            p.starts_with("crates/kernels/src")
                || p.starts_with("crates/fault/src")
                || p.starts_with("crates/beam/src")
                || p.starts_with("crates/exp/src")
        }
        _ => false,
    }
}

/// Analyzes one file's text as if it lived at `rel_path`, applying the
/// path-scoped lints and the pragma suppressions. This is the unit the
/// fixture tests use; the flow-sensitive lints run too, with the call
/// graph restricted to this one file.
pub fn analyze_source(rel_path: &str, text: &str) -> Vec<Finding> {
    analyze_files(vec![(rel_path.to_string(), text.to_string())]).findings
}

/// The full analysis pipeline over an in-memory file set: per-file
/// token lints, per-function flow-sensitive taint lints, the
/// workspace call graph for panic reachability, then pragma
/// suppression and allowlist hygiene. Findings come back sorted by
/// (file, line, lint id) so reports are stable regardless of input
/// order.
pub fn analyze_files(inputs: Vec<(String, String)>) -> Analysis {
    let files: Vec<(SourceFile, ParsedFile)> = inputs
        .into_iter()
        .map(|(rel, text)| {
            let sf = SourceFile::parse(&rel, &text);
            let pf = ParsedFile::parse(&sf);
            (sf, pf)
        })
        .collect();
    let files_scanned = files.len();

    // Per-file raw findings (token-level and intraprocedural flow).
    let mut raw: Vec<Vec<Finding>> = files
        .iter()
        .map(|(sf, pf)| {
            let rel = sf.rel_path.clone();
            let mut out: Vec<Finding> = Vec::new();
            if lint_applies("precision-leak", &rel) {
                out.extend(lints::precision_leak(sf));
            }
            if lint_applies("fault-site", &rel) {
                out.extend(lints::fault_site(sf));
            }
            if lint_applies("dyn-hook", &rel) {
                out.extend(lints::dyn_hook(sf));
            }
            if lint_applies("vfs-bypass", &rel) {
                out.extend(lints::vfs_bypass(sf));
            }
            if lint_applies("determinism", &rel) {
                out.extend(lints::determinism(sf));
            }
            if lint_applies("panic-hygiene", &rel) {
                out.extend(lints::panic_hygiene(sf));
            }
            let precision = lint_applies("precision-taint", &rel);
            let determinism = lint_applies("determinism-taint", &rel);
            if precision || determinism {
                out.extend(flow::taint_lints(sf, pf, precision, determinism));
            }
            out
        })
        .collect();

    // Workspace pass: panic reachability over the whole call graph.
    for f in callgraph::panic_reachability(&files, &|p| lint_applies("panic-reachability", p)) {
        if let Some(slot) = files.iter().position(|(sf, _)| sf.rel_path == f.file) {
            raw[slot].push(f);
        }
    }

    // Pragma suppression and allowlist hygiene, per file.
    let mut findings: Vec<Finding> = Vec::new();
    for ((sf, _), raw_file) in files.iter().zip(raw) {
        let mut used: Vec<usize> = Vec::new();
        for f in raw_file {
            let suppressed = sf.pragmas.iter().find(|p| {
                p.lint == f.name && (p.file_wide || p.line == f.line || p.line + 1 == f.line)
            });
            match suppressed {
                Some(p) => used.push(p.line),
                None => findings.push(f),
            }
        }
        findings.extend(lints::allow_hygiene(sf, &used));
    }
    sort_findings(&mut findings);
    Analysis {
        files_scanned,
        findings,
    }
}

/// The one canonical finding order: (file, line, lint id). Applied
/// before every text/JSON emission so CI diffs and baseline
/// comparisons are stable regardless of directory walk order.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| (&a.file, a.line, &a.lint).cmp(&(&b.file, b.line, &b.lint)));
}

/// Renders the difference between a baseline report and the current
/// one as a human-readable added/removed listing, or `None` when the
/// findings match. `files_scanned` is intentionally ignored — adding a
/// clean file must not invalidate a baseline.
pub fn diff_reports(baseline: &Analysis, current: &Analysis) -> Option<String> {
    let in_other = |f: &Finding, other: &Analysis| other.findings.iter().any(|g| g == f);
    let added: Vec<&Finding> = current
        .findings
        .iter()
        .filter(|f| !in_other(f, baseline))
        .collect();
    let removed: Vec<&Finding> = baseline
        .findings
        .iter()
        .filter(|f| !in_other(f, current))
        .collect();
    if added.is_empty() && removed.is_empty() {
        return None;
    }
    let mut out = String::new();
    out.push_str(&format!(
        "analyze findings changed vs baseline: {} added, {} removed\n",
        added.len(),
        removed.len()
    ));
    for f in added {
        out.push_str(&format!("  + {f}\n"));
    }
    for f in removed {
        out.push_str(&format!("  - {f}\n"));
    }
    out.push_str(
        "update the baseline intentionally: mpr analyze --json > ci/analyze-baseline.json\n",
    );
    Some(out)
}

/// Walks the workspace at `root` (the directory holding the top-level
/// `Cargo.toml`) and analyzes `src/` plus every `crates/*/src` tree.
/// Vendored dependency shims (`vendor/`) stand in for external crates
/// and are not scanned.
///
/// # Errors
///
/// Returns the first I/O error hit while reading the tree.
pub fn analyze_workspace(root: &Path) -> io::Result<Analysis> {
    if !root.is_dir() {
        // A misspelled root must not scan vacuously clean.
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("workspace root {} is not a directory", root.display()),
        ));
    }
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            collect_rs(&member.join("src"), &mut files)?;
        }
    }
    files.sort();

    let mut inputs = Vec::with_capacity(files.len());
    for path in files {
        let text = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        inputs.push((rel, text));
    }
    Ok(analyze_files(inputs))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoping_routes_lints_to_crates() {
        assert!(lint_applies("precision-leak", "crates/kernels/src/gemm.rs"));
        assert!(lint_applies("precision-leak", "crates/nn/src/layers.rs"));
        assert!(!lint_applies(
            "precision-leak",
            "crates/beam/src/campaign.rs"
        ));
        assert!(lint_applies("dyn-hook", "crates/kernels/src/gemm.rs"));
        assert!(!lint_applies("dyn-hook", "crates/nn/src/layers.rs"));
        assert!(!lint_applies("dyn-hook", "crates/fault/src/campaign.rs"));
        assert!(lint_applies("vfs-bypass", "crates/exp/src/store.rs"));
        assert!(!lint_applies("vfs-bypass", "crates/obs/src/jsonl.rs"));
        assert!(!lint_applies("vfs-bypass", "crates/cli/src/commands.rs"));
        assert!(lint_applies("determinism", "crates/core/src/study.rs"));
        assert!(lint_applies("determinism", "crates/exp/src/engine.rs"));
        assert!(lint_applies("determinism", "crates/obs/src/record.rs"));
        assert!(!lint_applies("determinism", "crates/metrics/src/fit.rs"));
        assert!(lint_applies("panic-hygiene", "crates/metrics/src/fit.rs"));
    }

    /// The full scoping matrix: every lint family against every crate
    /// directory in the workspace, so adding a crate or a family forces
    /// an explicit decision here instead of an accidental default.
    #[test]
    fn scoping_matrix_covers_every_lint_and_crate() {
        let crates = [
            "analyze",
            "arch",
            "beam",
            "bench",
            "cli",
            "core",
            "exp",
            "fault",
            "kernels",
            "metrics",
            "nn",
            "obs",
            "softfloat",
        ];
        let families = [
            "precision-leak",
            "precision-taint",
            "fault-site",
            "dyn-hook",
            "determinism",
            "determinism-taint",
            "panic-hygiene",
            "panic-reachability",
            "vfs-bypass",
        ];
        let expected = |lint: &str, krate: &str| -> bool {
            match lint {
                "precision-leak" | "precision-taint" | "fault-site" => {
                    matches!(krate, "kernels" | "nn")
                }
                "dyn-hook" => krate == "kernels",
                "determinism" | "determinism-taint" => {
                    matches!(krate, "beam" | "core" | "exp" | "fault" | "obs")
                }
                "panic-hygiene" => true,
                "panic-reachability" => {
                    matches!(krate, "beam" | "exp" | "fault" | "kernels")
                }
                "vfs-bypass" => krate == "exp",
                _ => unreachable!("unknown family {lint}"),
            }
        };
        for lint in families {
            for krate in crates {
                let path = format!("crates/{krate}/src/lib.rs");
                assert_eq!(
                    lint_applies(lint, &path),
                    expected(lint, krate),
                    "scoping of `{lint}` for {path}"
                );
            }
        }
        // An unknown family applies nowhere rather than everywhere.
        assert!(!lint_applies("no-such-family", "crates/kernels/src/lib.rs"));
    }

    /// Walker-relative and Windows-style separators scope identically
    /// to canonical workspace-relative paths.
    #[test]
    fn scoping_normalizes_path_separators() {
        assert!(lint_applies(
            "precision-leak",
            "./crates/kernels/src/gemm.rs"
        ));
        assert!(lint_applies(
            "precision-leak",
            "crates\\kernels\\src\\gemm.rs"
        ));
        assert!(lint_applies(
            "determinism-taint",
            ".\\crates\\fault\\src\\campaign.rs"
        ));
        assert!(!lint_applies(
            "determinism-taint",
            "crates\\metrics\\src\\fit.rs"
        ));
    }

    #[test]
    fn findings_render_as_file_line_lint() {
        let f = Finding {
            file: "crates/x/src/lib.rs".to_string(),
            line: 7,
            lint: "PH001".to_string(),
            name: "panic-hygiene".to_string(),
            severity: Severity::Error,
            message: "no".to_string(),
        };
        assert_eq!(f.to_string(), "crates/x/src/lib.rs:7: error [PH001] no");
    }

    #[test]
    fn json_report_round_trips() {
        let analysis = Analysis {
            files_scanned: 3,
            findings: vec![Finding {
                file: "crates/x/src/a.rs".to_string(),
                line: 12,
                lint: "DT003".to_string(),
                name: "determinism".to_string(),
                severity: Severity::Warning,
                message: "iteration \"order\"\nis unstable".to_string(),
            }],
        };
        let text = analysis.to_json();
        let back = Analysis::from_json(&text).expect("parse");
        assert_eq!(back, analysis);
    }
}
