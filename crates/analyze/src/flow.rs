//! Flow-sensitive taint analysis over function bodies.
//!
//! Two lint families run here, both working on the tokens of one
//! function at a time with an environment mapping bindings to taints:
//!
//! * **PL005 precision-taint** — a value known to be binary16 (`Half`),
//!   `f32`, or `f64` reaching an op or sink of a *different* precision
//!   (mixed arithmetic, a lossy `as` narrowing, a call parameter, a
//!   return, a struct field, or a cross-width `from_bits`
//!   reinterpretation) without passing through one of the blessed
//!   conversion fns (`from_f64`/`to_f64`/`from_f32`/`to_f32`,
//!   `Half::from_bits`). Unlike PL001–PL004 this follows the value
//!   through `let` bindings across lines, and it is not limited to
//!   `FloatExt`-generic bodies.
//! * **DT004 determinism-taint** — a nondeterminism source (`Instant`,
//!   `SystemTime`, thread ids/counts, `HashMap`/`HashSet` iteration,
//!   `RandomState`, or a weak multiply-XOR seed derivation) flowing
//!   into a determinism sink: RNG seeding, `CellKey` construction,
//!   cache byte writes, or campaign result vectors. Two shapes this
//!   catches are exactly the PR 3 bugs: per-strike seeds derived with
//!   `seed * C ^ i` instead of a full avalanche, and worker loops
//!   pushing results in thread-stride order without an index tag.
//!
//! The analysis is intraprocedural and flow-sensitive in statement
//! order; call boundaries are checked against same-file signatures
//! (the workspace call graph handles reachability, see
//! [`crate::callgraph`]). It is a lint, not a type checker: unknown
//! constructs default to untainted, so the cost of imprecision is a
//! missed finding, never a spurious gate failure from code the parser
//! cannot see through.

use crate::lexer::{TokKind, Token};
use crate::parse::{FnItem, ParsedFile};
use crate::source::SourceFile;
use crate::{Finding, Severity};
use std::collections::BTreeMap;

/// A concrete floating-point precision a value can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Prec {
    /// binary16 (`Half` or its `u16` bit pattern).
    B16,
    /// binary32.
    F32,
    /// binary64.
    F64,
}

impl Prec {
    fn name(self) -> &'static str {
        match self {
            Prec::B16 => "binary16",
            Prec::F32 => "f32",
            Prec::F64 => "f64",
        }
    }
}

/// A nondeterminism source class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Det {
    /// `Instant`/`SystemTime` reads.
    Clock,
    /// Thread identity or thread count.
    Thread,
    /// `HashMap`/`HashSet` iteration order or `RandomState`.
    HashIter,
    /// Weak (non-avalanche) seed derivation: `*`/`^` arithmetic on a
    /// seed that did not pass through `mix_seed`/`splitmix64`.
    WeakSeed,
    /// A loop index whose iteration schedule depends on the worker
    /// stride (thread-count-dependent order).
    Schedule,
}

impl Det {
    fn describe(self) -> &'static str {
        match self {
            Det::Clock => "a wall/monotonic clock read",
            Det::Thread => "thread identity or thread count",
            Det::HashIter => "hash-order iteration",
            Det::WeakSeed => "a weak multiply-XOR seed derivation",
            Det::Schedule => "a thread-stride iteration schedule",
        }
    }
}

/// The taint carried by one binding.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Taint {
    /// Known concrete precision, when any.
    pub prec: Option<Prec>,
    /// Determinism taints (sorted, deduped).
    pub det: Vec<Det>,
    /// True when the value is a `HashMap`/`HashSet` container (its
    /// *iteration* yields `Det::HashIter`).
    pub hash_container: bool,
}

impl Taint {
    fn join(&mut self, other: &Taint) {
        // Mixed precision joins keep the first; the mixing itself is
        // reported at the op, not stored.
        if self.prec.is_none() {
            self.prec = other.prec;
        }
        for d in &other.det {
            if !self.det.contains(d) {
                self.det.push(*d);
            }
        }
        self.det.sort();
        self.hash_container |= other.hash_container;
    }

    fn with_det(d: Det) -> Taint {
        Taint {
            det: vec![d],
            ..Taint::default()
        }
    }

    fn with_prec(p: Prec) -> Taint {
        Taint {
            prec: Some(p),
            ..Taint::default()
        }
    }
}

/// Blessed precision-conversion fns: flowing through one is the
/// audited way to change precision.
const BLESSED_CONV: [&str; 6] = [
    "from_f64", "to_f64", "from_f32", "to_f32", "widen", "narrow",
];

/// Blessed seed mixers: a derivation through one is a full avalanche.
const BLESSED_MIX: [&str; 4] = ["mix_seed", "splitmix64", "fnv1a64", "seed_for"];

/// Identifiers that denote a worker/thread count or index when they
/// shape an iteration schedule.
const THREAD_IDENTS: [&str; 9] = [
    "threads",
    "n_threads",
    "num_threads",
    "workers",
    "n_workers",
    "worker",
    "worker_idx",
    "worker_id",
    "thread_idx",
];

/// Sinks whose argument seeds an RNG stream.
const SEED_SINKS: [&str; 3] = ["seed_from_u64", "from_seed", "new_seeded"];

/// Signature knowledge for one file: fn name → (param precisions,
/// return precision), struct field → precision.
struct FileSigs {
    fns: BTreeMap<String, (Vec<Option<Prec>>, Option<Prec>)>,
    fields: BTreeMap<String, Prec>,
    structs: Vec<String>,
}

/// Precision named by a type's token text, when unambiguous.
fn prec_of_type(ty: &str) -> Option<Prec> {
    let has = |w: &str| {
        ty.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .any(|t| t == w)
    };
    match (has("Half") || has("u16"), has("f32"), has("f64")) {
        (true, false, false) => Some(Prec::B16),
        (false, true, false) => Some(Prec::F32),
        (false, false, true) => Some(Prec::F64),
        _ => None,
    }
}

impl FileSigs {
    fn build(parsed: &ParsedFile) -> FileSigs {
        let mut fns = BTreeMap::new();
        for f in &parsed.fns {
            let params = f
                .params
                .iter()
                .map(|p| prec_of_type(&p.ty))
                .collect::<Vec<_>>();
            fns.insert(f.name.clone(), (params, prec_of_type(&f.ret)));
        }
        let mut fields = BTreeMap::new();
        let mut structs = Vec::new();
        for s in &parsed.structs {
            structs.push(s.name.clone());
            for (name, ty) in &s.fields {
                if let Some(p) = prec_of_type(ty) {
                    fields.insert(name.clone(), p);
                }
            }
        }
        FileSigs {
            fns,
            fields,
            structs,
        }
    }
}

/// Runs both taint lints over every function of `parsed`.
/// `precision` / `determinism` gate the two families independently so
/// path scoping stays in [`crate::lint_applies`].
pub fn taint_lints(
    file: &SourceFile,
    parsed: &ParsedFile,
    precision: bool,
    determinism: bool,
) -> Vec<Finding> {
    let sigs = FileSigs::build(parsed);
    let mut out = Vec::new();
    for f in &parsed.fns {
        if file.in_test.get(f.line - 1).copied().unwrap_or(false) {
            continue;
        }
        let mut fa = FnFlow::new(file, parsed, f, &sigs, precision, determinism);
        fa.run();
        out.extend(fa.findings);
    }
    out
}

/// One function's flow state.
struct FnFlow<'a> {
    file: &'a SourceFile,
    toks: &'a [Token],
    item: &'a FnItem,
    sigs: &'a FileSigs,
    precision: bool,
    determinism: bool,
    env: BTreeMap<String, Taint>,
    /// Innermost-last stack of (loop variable, schedule-tainted).
    loops: Vec<(String, bool)>,
    /// Bindings declared inside the current loop nest.
    loop_locals: Vec<String>,
    findings: Vec<Finding>,
}

impl<'a> FnFlow<'a> {
    fn new(
        file: &'a SourceFile,
        parsed: &'a ParsedFile,
        item: &'a FnItem,
        sigs: &'a FileSigs,
        precision: bool,
        determinism: bool,
    ) -> FnFlow<'a> {
        let mut env = BTreeMap::new();
        for p in &item.params {
            let mut t = Taint {
                prec: prec_of_type(&p.ty),
                hash_container: p.ty.contains("HashMap") || p.ty.contains("HashSet"),
                ..Taint::default()
            };
            if THREAD_IDENTS.contains(&p.name.as_str()) {
                t.det.push(Det::Thread);
            }
            env.insert(p.name.clone(), t);
        }
        FnFlow {
            file,
            toks: &parsed.tokens,
            item,
            sigs,
            precision,
            determinism,
            env,
            loops: Vec::new(),
            loop_locals: Vec::new(),
            findings: Vec::new(),
        }
    }

    fn flag(&mut self, line: usize, lint: &'static str, name: &'static str, message: String) {
        self.findings.push(Finding {
            file: self.file.rel_path.clone(),
            line,
            lint: lint.to_string(),
            name: name.to_string(),
            severity: Severity::Error,
            message,
        });
    }

    /// Walks the body, splitting statements at `;`/`{`/`}` (paren and
    /// bracket nesting kept whole) and tracking `for` loop contexts.
    fn run(&mut self) {
        let (open, close) = self.item.body;
        let mut i = open + 1;
        let mut stmt_start = i;
        let mut depth = 0i32;
        // Brace-token indices at which a loop context ends.
        let mut loop_ends: Vec<usize> = Vec::new();
        while i < close {
            let t = &self.toks[i];
            // Nested fn items are separate analysis units: skip them.
            if t.is_ident("fn")
                && self
                    .toks
                    .get(i + 1)
                    .is_some_and(|n| n.kind == TokKind::Ident)
            {
                if let Some(end) = skip_to_body_close(self.toks, i, close) {
                    i = end + 1;
                    stmt_start = i;
                    continue;
                }
            }
            match t.text.as_str() {
                "(" | "[" if t.kind == TokKind::Punct => depth += 1,
                ")" | "]" if t.kind == TokKind::Punct => depth -= 1,
                "{" if t.kind == TokKind::Punct && depth <= 0 => {
                    let stmt = &self.toks[stmt_start..i];
                    let head_is_for = stmt.first().is_some_and(|t| t.is_ident("for"));
                    if head_is_for {
                        if let Some(end) = matching_brace(self.toks, i, close) {
                            self.enter_loop(stmt);
                            loop_ends.push(end);
                        }
                    } else {
                        self.statement(stmt);
                    }
                    stmt_start = i + 1;
                }
                "}" if t.kind == TokKind::Punct && depth <= 0 => {
                    self.statement(&self.toks[stmt_start..i]);
                    if loop_ends.last() == Some(&i) {
                        loop_ends.pop();
                        self.exit_loop();
                    }
                    stmt_start = i + 1;
                }
                ";" if t.kind == TokKind::Punct && depth <= 0 => {
                    self.statement(&self.toks[stmt_start..i]);
                    stmt_start = i + 1;
                }
                _ => {}
            }
            i += 1;
        }
        // Tail expression: an unterminated final statement is the
        // function's return value.
        let tail = &self.toks[stmt_start.min(close)..close];
        if !tail.is_empty() {
            self.statement(tail);
            self.check_return(tail, tail[0].line);
        }
    }

    /// Handles `for <var> in <range> {` — decides whether the loop
    /// variable carries a schedule taint.
    fn enter_loop(&mut self, head: &[Token]) {
        // head = `for pat in expr`
        let var = head
            .get(1)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        let in_pos = head.iter().position(|t| t.is_ident("in"));
        let range = in_pos.map(|p| &head[p + 1..]).unwrap_or(&[]);
        let range_taint = self.expr_taint(range);
        let mentions_thread = range.iter().any(|t| {
            t.kind == TokKind::Ident
                && (THREAD_IDENTS.contains(&t.text.as_str())
                    || self
                        .env
                        .get(&t.text)
                        .is_some_and(|tt| tt.det.contains(&Det::Thread)))
        });
        let strided = range.iter().any(|t| t.is_ident("step_by"));
        let schedule = mentions_thread && strided;
        if !var.is_empty() {
            let mut t = Taint::default();
            if schedule {
                t.det.push(Det::Schedule);
            }
            // Iterating a hash container (directly or via
            // `.iter()/.keys()/.values()/.drain()`) yields items in
            // hash order.
            if range_taint.hash_container || range_taint.det.contains(&Det::HashIter) {
                t.det.push(Det::HashIter);
            }
            self.env.insert(var.clone(), t);
        }
        self.loops.push((var, schedule));
    }

    fn exit_loop(&mut self) {
        self.loops.pop();
        if self.loops.is_empty() {
            for name in self.loop_locals.drain(..) {
                self.env.remove(&name);
            }
        }
    }

    /// Analyzes one statement: sink checks first (on the pre-statement
    /// environment), then the binding update.
    fn statement(&mut self, stmt: &[Token]) {
        if stmt.is_empty() {
            return;
        }
        let line = stmt[0].line;
        if self.precision {
            self.check_mixed_arith(stmt, line);
            self.check_narrowing(stmt, line);
            self.check_from_bits(stmt, line);
            self.check_call_params(stmt, line);
            self.check_struct_fields(stmt, line);
            if stmt.first().is_some_and(|t| t.is_ident("return")) {
                self.check_return(&stmt[1..], line);
            }
        }
        if self.determinism {
            self.check_seed_sinks(stmt, line);
            self.check_collection_sinks(stmt, line);
            self.check_write_sinks(stmt, line);
        }
        self.bind(stmt);
    }

    // -- environment -------------------------------------------------

    /// Applies `let x = ..` / `x = ..` / `x op= ..` to the env.
    fn bind(&mut self, stmt: &[Token]) {
        let mut k = 0;
        let is_let = stmt.first().is_some_and(|t| t.is_ident("let"));
        if is_let {
            k += 1;
        }
        while stmt.get(k).is_some_and(|t| t.is_ident("mut")) {
            k += 1;
        }
        let Some(name_tok) = stmt.get(k) else { return };
        if name_tok.kind != TokKind::Ident {
            return; // destructuring patterns are not tracked
        }
        let name = name_tok.text.clone();
        // Optional ascription `: Type` up to `=`.
        let eq = stmt.iter().position(|t| t.is_punct("="));
        let compound = stmt.iter().position(|t| {
            matches!(
                t.text.as_str(),
                "+=" | "-=" | "*=" | "/=" | "^=" | "|=" | "&=" | "<<=" | ">>="
            ) && t.kind == TokKind::Punct
        });
        let (assign_at, joins) = match (eq, compound) {
            (Some(e), None) => (e, false),
            (None, Some(c)) => (c, true),
            (Some(e), Some(c)) => {
                if e < c {
                    (e, false)
                } else {
                    (c, true)
                }
            }
            (None, None) => return,
        };
        // Plain assignments only bind when the LHS is a bare ident
        // (field/index stores do not rebind).
        if !is_let && assign_at != k + 1 {
            return;
        }
        let mut taint = self.expr_taint(&stmt[assign_at + 1..]);
        if is_let {
            // Ascribed type wins for precision and container class.
            let ty_text: String = stmt[k + 1..assign_at]
                .iter()
                .filter(|t| !t.is_punct(":"))
                .map(|t| t.text.as_str())
                .collect::<Vec<_>>()
                .join(" ");
            if let Some(p) = prec_of_type(&ty_text) {
                taint.prec = Some(p);
            }
            if ty_text.contains("HashMap") || ty_text.contains("HashSet") {
                taint.hash_container = true;
            }
            if !self.loops.is_empty() {
                self.loop_locals.push(name.clone());
            }
            self.env.insert(name, taint);
        } else if joins {
            self.env.entry(name).or_default().join(&taint);
        } else {
            self.env.insert(name, taint);
        }
    }

    /// Joined taint of an expression token slice.
    fn expr_taint(&self, expr: &[Token]) -> Taint {
        let mut t = Taint::default();
        // Token ranges consumed by blessed mixer calls — excluded from
        // the weak-derivation scan below (feeding raw arithmetic *into*
        // an avalanche is exactly what the mixers are for).
        let mut mixed: Vec<(usize, usize)> = Vec::new();
        let mut i = 0;
        while i < expr.len() {
            let tok = &expr[i];
            match tok.kind {
                TokKind::Ident => {
                    let name = tok.text.as_str();
                    let next_open = expr.get(i + 1).is_some_and(|n| n.is_punct("("));
                    if next_open {
                        // A call: conversions and mixers transform
                        // taint instead of propagating it raw.
                        if BLESSED_CONV.contains(&name) {
                            let target = match name {
                                "to_f64" => Some(Prec::F64),
                                "to_f32" => Some(Prec::F32),
                                _ => self.conv_target(expr, i),
                            };
                            if let Some(end) = matching_paren(expr, i + 1) {
                                i = end + 1;
                            } else {
                                i += 1;
                            }
                            let conv = Taint {
                                prec: target,
                                ..Taint::default()
                            };
                            t.join(&conv);
                            continue;
                        }
                        if BLESSED_MIX.contains(&name) {
                            // A full avalanche cleanses weak-derivation
                            // taint but not clock/thread/hash taints.
                            if let Some(end) = matching_paren(expr, i + 1) {
                                let mut inner = self.expr_taint(&expr[i + 2..end]);
                                inner.det.retain(|d| *d != Det::WeakSeed);
                                inner.prec = None;
                                t.join(&inner);
                                mixed.push((i, end));
                                i = end + 1;
                                continue;
                            }
                        }
                        if let Some((_, Some(p))) = self.sigs.fns.get(name) {
                            t.join(&Taint::with_prec(*p));
                        }
                        match name {
                            "now" | "elapsed" | "duration_since" => {
                                t.join(&Taint::with_det(Det::Clock))
                            }
                            // `thread::current()` / thread counts.
                            "current" if path_prefix(expr, i).as_deref() != Some("thread") => {}
                            "available_parallelism" | "current" => {
                                t.join(&Taint::with_det(Det::Thread));
                            }
                            "iter" | "keys" | "values" | "drain" | "into_iter" => {
                                if let Some(recv) = receiver_ident(expr, i) {
                                    if self.env.get(&recv).is_some_and(|rt| rt.hash_container) {
                                        t.join(&Taint::with_det(Det::HashIter));
                                    }
                                }
                            }
                            "new" | "with_capacity" | "default" => {
                                if matches!(
                                    path_prefix(expr, i).as_deref(),
                                    Some("HashMap") | Some("HashSet")
                                ) {
                                    t.hash_container = true;
                                }
                                if path_prefix(expr, i).as_deref() == Some("RandomState") {
                                    t.join(&Taint::with_det(Det::HashIter));
                                }
                            }
                            "from_bits" => {
                                if let Some(p) = self.conv_target(expr, i) {
                                    t.join(&Taint::with_prec(p));
                                }
                            }
                            _ => {}
                        }
                        i += 1;
                        continue;
                    }
                    match name {
                        "Instant" | "SystemTime" => t.join(&Taint::with_det(Det::Clock)),
                        "RandomState" => t.join(&Taint::with_det(Det::HashIter)),
                        "ThreadId" => t.join(&Taint::with_det(Det::Thread)),
                        _ => {
                            if let Some(known) = self.env.get(name) {
                                t.join(known);
                            }
                        }
                    }
                }
                TokKind::Float => {
                    let p = if tok.text.ends_with("f32") {
                        Prec::F32
                    } else {
                        Prec::F64
                    };
                    t.join(&Taint::with_prec(p));
                }
                _ => {}
            }
            i += 1;
        }
        // Weak seed derivation: xor/multiply arithmetic on a seed-like
        // operand outside any blessed mixer call.
        let outside_mixers = |k: usize| !mixed.iter().any(|&(a, b)| a <= k && k <= b);
        let weak_ops = expr.iter().enumerate().any(|(k, t)| {
            outside_mixers(k)
                && (t.kind == TokKind::Punct && matches!(t.text.as_str(), "^" | "^=")
                    || t.is_ident("wrapping_mul")
                    || t.is_ident("rotate_left"))
        });
        let seedish = expr
            .iter()
            .enumerate()
            .any(|(k, t)| outside_mixers(k) && t.kind == TokKind::Ident && t.text.contains("seed"));
        if weak_ops && seedish {
            t.join(&Taint::with_det(Det::WeakSeed));
        }
        t
    }

    /// Target precision of a conversion/`from_bits` call at `i`, read
    /// from its path qualifier (`Half::from_bits`, `f32::from_bits`)
    /// or receiver taint.
    fn conv_target(&self, expr: &[Token], i: usize) -> Option<Prec> {
        match path_prefix(expr, i).as_deref() {
            Some("Half") => Some(Prec::B16),
            Some("f32") => Some(Prec::F32),
            Some("f64") => Some(Prec::F64),
            Some("F") => None, // generic: no concrete precision
            _ => None,
        }
    }

    // -- precision sinks (PL005) -------------------------------------

    /// Arithmetic mixing two known, different precisions in one
    /// statement without a blessed conversion.
    fn check_mixed_arith(&mut self, stmt: &[Token], line: usize) {
        let has_arith = stmt
            .iter()
            .any(|t| t.kind == TokKind::Punct && matches!(t.text.as_str(), "+" | "-" | "*" | "/"));
        if !has_arith || stmt.iter().any(is_blessed_tok) {
            return;
        }
        let mut precs: Vec<Prec> = Vec::new();
        for tok in stmt {
            let p = match tok.kind {
                TokKind::Ident => self.env.get(&tok.text).and_then(|t| t.prec),
                TokKind::Float => Some(if tok.text.ends_with("f32") {
                    Prec::F32
                } else {
                    Prec::F64
                }),
                _ => None,
            };
            if let Some(p) = p {
                if !precs.contains(&p) {
                    precs.push(p);
                }
            }
        }
        if precs.len() >= 2 {
            precs.sort();
            let names: Vec<&str> = precs.iter().map(|p| p.name()).collect();
            self.flag(
                line,
                "PL005",
                "precision-taint",
                format!(
                    "arithmetic mixes {} values in one expression; convert explicitly through `to_f64`/`from_f64` (or the `Half` conversions) at an audited boundary",
                    names.join(" and ")
                ),
            );
        }
    }

    /// `x as f32` where `x` is f64-tainted: a lossy narrowing outside
    /// the blessed conversion fns, possibly far from where `x` was
    /// produced.
    fn check_narrowing(&mut self, stmt: &[Token], line: usize) {
        for i in 0..stmt.len() {
            if !stmt[i].is_ident("as") {
                continue;
            }
            let Some(target) = stmt.get(i + 1) else {
                continue;
            };
            let target_prec = match target.text.as_str() {
                "f32" => Prec::F32,
                "u16" => Prec::B16, // truncating bits toward binary16
                _ => continue,
            };
            let Some(source) = primary_before(stmt, i) else {
                continue;
            };
            let src_prec = self.env.get(&source).and_then(|t| t.prec);
            if src_prec == Some(Prec::F64) {
                self.flag(
                    line,
                    "PL005",
                    "precision-taint",
                    format!(
                        "`{source} as {}` narrows an f64-tainted value lossily; route the conversion through a blessed fn (`from_f64` on the target precision) so the rounding is audited",
                        target.text
                    ),
                );
            } else if src_prec == Some(Prec::F32) && target_prec == Prec::B16 {
                self.flag(
                    line,
                    "PL005",
                    "precision-taint",
                    format!(
                        "`{source} as u16` truncates f32-tainted bits toward binary16; use `Half::from_f32` so round-to-nearest-even is applied",
                    ),
                );
            }
        }
    }

    /// `f32::from_bits(x)`/`f64::from_bits(x)`/`Half::from_bits(x)`
    /// where `x` carries bits of a *different* precision.
    fn check_from_bits(&mut self, stmt: &[Token], line: usize) {
        for i in 0..stmt.len() {
            if !stmt[i].is_ident("from_bits") {
                continue;
            }
            let Some(target) = self.conv_target(stmt, i) else {
                continue;
            };
            let Some(open) = stmt.get(i + 1).filter(|t| t.is_punct("(")) else {
                continue;
            };
            let _ = open;
            let Some(end) = matching_paren(stmt, i + 1) else {
                continue;
            };
            let arg_taint = self.expr_taint(&stmt[i + 2..end]);
            if let Some(src) = arg_taint.prec {
                if src != target {
                    self.flag(
                        line,
                        "PL005",
                        "precision-taint",
                        format!(
                            "`from_bits` reinterprets {}-tainted bits as {}; bit patterns are not convertible across IEEE-754 layouts — convert the *value* through the blessed fns instead",
                            src.name(),
                            target.name()
                        ),
                    );
                }
            }
        }
    }

    /// Calls to same-file fns with a precision-typed parameter: the
    /// argument's taint must match the declared parameter precision.
    fn check_call_params(&mut self, stmt: &[Token], line: usize) {
        for i in 0..stmt.len() {
            if stmt[i].kind != TokKind::Ident {
                continue;
            }
            let Some((params, _)) = self.sigs.fns.get(&stmt[i].text) else {
                continue;
            };
            if !stmt.get(i + 1).is_some_and(|t| t.is_punct("(")) {
                continue;
            }
            let Some(end) = matching_paren(stmt, i + 1) else {
                continue;
            };
            let args = split_args(&stmt[i + 2..end]);
            for (k, arg) in args.iter().enumerate() {
                let Some(Some(want)) = params.get(k) else {
                    continue;
                };
                if arg.iter().any(is_blessed_tok) {
                    continue;
                }
                let got = self.expr_taint(arg);
                if let Some(gp) = got.prec {
                    if gp != *want {
                        self.flag(
                            line,
                            "PL005",
                            "precision-taint",
                            format!(
                                "argument {} of `{}` carries {} but the parameter is declared {}; convert through the blessed fns at the call boundary",
                                k + 1,
                                stmt[i].text,
                                gp.name(),
                                want.name()
                            ),
                        );
                    }
                }
            }
        }
    }

    /// Struct literals (`Name { field: expr }`) against declared field
    /// precisions.
    fn check_struct_fields(&mut self, stmt: &[Token], line: usize) {
        for i in 0..stmt.len() {
            if stmt[i].kind != TokKind::Ident
                || !self.sigs.structs.contains(&stmt[i].text)
                || !stmt.get(i + 1).is_some_and(|t| t.is_punct("{"))
            {
                continue;
            }
            // Walk `field : expr ,` pairs at depth 1.
            let mut k = i + 2;
            let mut depth = 1i32;
            while k < stmt.len() && depth > 0 {
                if stmt[k].is_punct("{") {
                    depth += 1;
                } else if stmt[k].is_punct("}") {
                    depth -= 1;
                } else if depth == 1
                    && stmt[k].kind == TokKind::Ident
                    && stmt.get(k + 1).is_some_and(|t| t.is_punct(":"))
                {
                    let field = stmt[k].text.clone();
                    if let Some(want) = self.sigs.fields.get(&field).copied() {
                        let vend = stmt[k + 2..]
                            .iter()
                            .position(|t| t.is_punct(",") || t.is_punct("}"))
                            .map(|p| k + 2 + p)
                            .unwrap_or(stmt.len());
                        let arg = &stmt[k + 2..vend];
                        if !arg.iter().any(is_blessed_tok) {
                            let got = self.expr_taint(arg);
                            if let Some(gp) = got.prec {
                                if gp != want {
                                    self.flag(
                                        line,
                                        "PL005",
                                        "precision-taint",
                                        format!(
                                            "field `{field}` is declared {} but is initialized with a {}-tainted value; convert through the blessed fns first",
                                            want.name(),
                                            gp.name()
                                        ),
                                    );
                                }
                            }
                        }
                        k = vend;
                        continue;
                    }
                }
                k += 1;
            }
        }
    }

    /// Return-position check against the declared return precision.
    fn check_return(&mut self, expr: &[Token], line: usize) {
        if !self.precision {
            return;
        }
        let Some(want) = prec_of_type(&self.item.ret) else {
            return;
        };
        if expr.iter().any(is_blessed_tok) {
            return;
        }
        let got = self.expr_taint(expr);
        if let Some(gp) = got.prec {
            if gp != want {
                self.flag(
                    line,
                    "PL005",
                    "precision-taint",
                    format!(
                        "returning a {}-tainted value from a fn declared `-> {}`; convert through the blessed fns before returning",
                        gp.name(),
                        self.item.ret
                    ),
                );
            }
        }
    }

    // -- determinism sinks (DT004) -----------------------------------

    /// RNG seeding and seed mixing: the seed expression must be free
    /// of clock/thread/hash taints and must not be a raw multiply-XOR
    /// derivation.
    fn check_seed_sinks(&mut self, stmt: &[Token], line: usize) {
        for i in 0..stmt.len() {
            let tok = &stmt[i];
            if tok.kind != TokKind::Ident {
                continue;
            }
            let is_seed_sink = SEED_SINKS.contains(&tok.text.as_str())
                || (tok.text == "new" && path_prefix(stmt, i).as_deref() == Some("SplitMix"));
            let is_mixer = BLESSED_MIX.contains(&tok.text.as_str());
            if !is_seed_sink && !is_mixer {
                continue;
            }
            if !stmt.get(i + 1).is_some_and(|t| t.is_punct("(")) {
                continue;
            }
            let Some(end) = matching_paren(stmt, i + 1) else {
                continue;
            };
            let arg = &stmt[i + 2..end];
            let t = self.expr_taint(arg);
            let bad: Vec<Det> = t
                .det
                .iter()
                .copied()
                .filter(|d| {
                    if is_mixer {
                        // Mixers avalanche their inputs, so a weak
                        // derivation *feeding* one is fine; ambient
                        // nondeterminism is not.
                        matches!(d, Det::Clock | Det::Thread | Det::HashIter)
                    } else {
                        true
                    }
                })
                .collect();
            if let Some(d) = bad.first() {
                self.flag(
                    line,
                    "DT004",
                    "determinism-taint",
                    format!(
                        "seed expression reaching `{}` is tainted by {}; campaign seeds must be pure functions of the cell key — derive per-strike seeds with `mix_seed(seed, index)`",
                        tok.text,
                        d.describe()
                    ),
                );
            }
        }
    }

    /// Result-vector sinks: pushing a det-tainted value, or pushing
    /// from inside a thread-stride loop without tagging the element
    /// with its schedule index (the PR 3 result-order bug shape).
    fn check_collection_sinks(&mut self, stmt: &[Token], line: usize) {
        for i in 0..stmt.len() {
            let tok = &stmt[i];
            if tok.kind != TokKind::Ident
                || !matches!(tok.text.as_str(), "push" | "extend" | "insert")
                || !stmt.get(i + 1).is_some_and(|t| t.is_punct("("))
            {
                continue;
            }
            let Some(end) = matching_paren(stmt, i + 1) else {
                continue;
            };
            let arg = &stmt[i + 2..end];
            let t = self.expr_taint(arg);
            let ambient: Vec<Det> = t
                .det
                .iter()
                .copied()
                .filter(|d| matches!(d, Det::Clock | Det::Thread | Det::HashIter))
                .collect();
            if let Some(d) = ambient.first() {
                self.flag(
                    line,
                    "DT004",
                    "determinism-taint",
                    format!(
                        "a value tainted by {} is stored into a result collection; results must be pure functions of the cell key and seed",
                        d.describe()
                    ),
                );
                continue;
            }
            // Stride-order shape: inside a schedule-tainted loop, a
            // push to a collection declared *outside* the loop must
            // carry the loop index so the merge can restore canonical
            // order.
            if let Some((var, true)) = self.loops.last().cloned() {
                let recv_local =
                    receiver_ident(stmt, i).is_some_and(|r| self.loop_locals.contains(&r));
                // The blessed shape tags the element with the loop
                // index itself: `out.push((i, v))` or `map.insert(i, v)`
                // — the index must be a standalone element, not merely
                // mentioned somewhere inside the value (`push(f(i))`
                // still lands in completion order).
                let tagged = split_args(arg).iter().any(|a| {
                    (a.len() == 1 && a[0].kind == TokKind::Ident && a[0].text == var)
                        || (a.first().is_some_and(|t| t.is_punct("("))
                            && a.last().is_some_and(|t| t.is_punct(")"))
                            && split_args(&a[1..a.len() - 1]).iter().any(|e| {
                                e.len() == 1 && e[0].kind == TokKind::Ident && e[0].text == var
                            }))
                });
                if !recv_local && !tagged {
                    self.flag(
                        line,
                        "DT004",
                        "determinism-taint",
                        format!(
                            "push inside a thread-stride loop does not carry the loop index `{var}`; element order will depend on `--threads` — tag elements with the index and sort after the merge",
                        ),
                    );
                }
            }
        }
    }

    /// Cache byte sinks: serialized bytes must be det-taint free.
    fn check_write_sinks(&mut self, stmt: &[Token], line: usize) {
        for i in 0..stmt.len() {
            let tok = &stmt[i];
            if tok.kind != TokKind::Ident
                || !matches!(tok.text.as_str(), "write_all" | "save" | "serialize")
                || !stmt.get(i + 1).is_some_and(|t| t.is_punct("("))
            {
                continue;
            }
            let Some(end) = matching_paren(stmt, i + 1) else {
                continue;
            };
            let t = self.expr_taint(&stmt[i + 2..end]);
            if let Some(d) = t
                .det
                .iter()
                .find(|d| matches!(d, Det::Clock | Det::Thread | Det::HashIter | Det::Schedule))
            {
                self.flag(
                    line,
                    "DT004",
                    "determinism-taint",
                    format!(
                        "bytes tainted by {} reach a cache/serialization sink; cached artifacts must be byte-stable across runs",
                        d.describe()
                    ),
                );
            }
        }
    }
}

/// True for tokens naming a blessed conversion fn (their presence in
/// an expression marks an audited precision change).
fn is_blessed_tok(t: &Token) -> bool {
    t.kind == TokKind::Ident && BLESSED_CONV.contains(&t.text.as_str())
}

/// The `::`-qualifier directly before the ident at `i`, if any.
fn path_prefix(expr: &[Token], i: usize) -> Option<String> {
    if i >= 2 && expr[i - 1].is_punct("::") && expr[i - 2].kind == TokKind::Ident {
        Some(expr[i - 2].text.clone())
    } else {
        None
    }
}

/// The receiver ident of a method call at `i` (`recv.method(`), seeing
/// through one field access (`self.out.push(` → `out`).
fn receiver_ident(expr: &[Token], i: usize) -> Option<String> {
    if i >= 2 && expr[i - 1].is_punct(".") && expr[i - 2].kind == TokKind::Ident {
        return Some(expr[i - 2].text.clone());
    }
    None
}

/// The primary expression ident directly before token `i` (used for
/// `x as f32` — walks back over one `)`-balanced group or field chain).
fn primary_before(stmt: &[Token], i: usize) -> Option<String> {
    if i == 0 {
        return None;
    }
    let prev = &stmt[i - 1];
    if prev.kind == TokKind::Ident {
        return Some(prev.text.clone());
    }
    if prev.is_punct(")") {
        // Walk back to the matching `(` and take the ident before it.
        let mut depth = 0i32;
        let mut k = i - 1;
        loop {
            if stmt[k].is_punct(")") {
                depth += 1;
            } else if stmt[k].is_punct("(") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if k == 0 {
                return None;
            }
            k -= 1;
        }
        if k >= 1 && stmt[k - 1].kind == TokKind::Ident {
            return Some(stmt[k - 1].text.clone());
        }
    }
    None
}

/// Token index of the `)` matching the `(` at `open`.
fn matching_paren(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Token index of the `}` matching the `{` at `open`, bounded by `end`.
fn matching_brace(toks: &[Token], open: usize, end: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks
        .iter()
        .enumerate()
        .skip(open)
        .take(end.saturating_sub(open) + 1)
    {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// For a nested `fn` at token `at`, the index of its body's closing
/// brace (so the outer walk can skip it).
fn skip_to_body_close(toks: &[Token], at: usize, end: usize) -> Option<usize> {
    let mut k = at;
    let mut paren = 0i32;
    while k < end {
        if toks[k].is_punct("(") {
            paren += 1;
        } else if toks[k].is_punct(")") {
            paren -= 1;
        } else if toks[k].is_punct(";") && paren <= 0 {
            return Some(k); // bodyless declaration
        } else if toks[k].is_punct("{") && paren <= 0 {
            return matching_brace(toks, k, end);
        }
        k += 1;
    }
    None
}

/// Splits a call's argument tokens at top-level commas.
fn split_args(toks: &[Token]) -> Vec<Vec<Token>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut depth = 0i32;
    for t in toks {
        match t.text.as_str() {
            "(" | "[" | "{" if t.kind == TokKind::Punct => depth += 1,
            ")" | "]" | "}" if t.kind == TokKind::Punct => depth -= 1,
            "," if t.kind == TokKind::Punct && depth <= 0 => {
                out.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::ParsedFile;

    fn run(src: &str) -> Vec<Finding> {
        let file = SourceFile::parse("crates/kernels/src/x.rs", src);
        let parsed = ParsedFile::parse(&file);
        taint_lints(&file, &parsed, true, true)
    }

    #[test]
    fn cross_line_narrowing_is_flagged() {
        let f = run("fn g(golden: &[f64], i: usize) -> f32 {\n    let master = golden[i];\n    let out = master as f32;\n    out\n}\n");
        assert!(
            f.iter().any(|x| x.lint == "PL005" && x.line == 3),
            "findings: {f:?}"
        );
    }

    #[test]
    fn blessed_conversion_is_clean() {
        let f = run("fn g(golden: &[f64], i: usize) -> f32 {\n    let master = golden[i];\n    narrow(master)\n}\nfn narrow(x: f64) -> f32 { from_f64(x) }\n");
        assert!(f.is_empty(), "findings: {f:?}");
    }

    #[test]
    fn weak_seed_derivation_reaching_rng_is_flagged() {
        let f = run("fn seeds(seed: u64, i: u64) {\n    let s = seed.wrapping_mul(31) ^ i;\n    let rng = StdRng::seed_from_u64(s);\n    let _ = rng;\n}\n");
        assert!(
            f.iter().any(|x| x.lint == "DT004" && x.line == 3),
            "findings: {f:?}"
        );
    }

    #[test]
    fn avalanche_seed_derivation_is_clean() {
        let f = run("fn seeds(seed: u64, i: u64) {\n    let s = mix_seed(seed, i);\n    let rng = StdRng::seed_from_u64(s);\n    let _ = rng;\n}\n");
        assert!(f.iter().all(|x| x.lint != "DT004"), "findings: {f:?}");
    }

    #[test]
    fn thread_stride_push_without_tag_is_flagged() {
        let f = run("fn worker(worker: usize, threads: usize, out: &mut Vec<u8>) {\n    for i in (worker..100).step_by(threads) {\n        out.push(run_one(i));\n    }\n}\nfn run_one(i: usize) -> u8 { 0 }\n");
        assert!(f.iter().any(|x| x.lint == "DT004"), "findings: {f:?}");
    }

    #[test]
    fn tagged_stride_push_is_clean() {
        let f = run("fn worker(worker: usize, threads: usize, out: &mut Vec<(usize, u8)>) {\n    for i in (worker..100).step_by(threads) {\n        out.push((i, run_one(i)));\n    }\n}\nfn run_one(i: usize) -> u8 { 0 }\n");
        assert!(f.iter().all(|x| x.lint != "DT004"), "findings: {f:?}");
    }

    #[test]
    fn clock_value_into_results_is_flagged() {
        let f = run("fn record(out: &mut Vec<u128>) {\n    let t0 = Instant::now();\n    let dt = t0.elapsed();\n    out.push(dt);\n}\n");
        assert!(
            f.iter().any(|x| x.lint == "DT004" && x.line == 4),
            "findings: {f:?}"
        );
    }

    #[test]
    fn hashmap_iteration_into_results_is_flagged() {
        let f = run("fn collect(m: HashMap<u64, f64>, out: &mut Vec<f64>) {\n    for v in m.values() {\n        out.push(v);\n    }\n}\n");
        assert!(f.iter().any(|x| x.lint == "DT004"), "findings: {f:?}");
    }

    #[test]
    fn mixed_precision_arithmetic_is_flagged() {
        let f = run("fn mixy(a: f32, b: f64) -> f64 {\n    let x = a;\n    let y = b;\n    let z = x * y;\n    z\n}\n");
        assert!(
            f.iter().any(|x| x.lint == "PL005" && x.line == 4),
            "findings: {f:?}"
        );
    }

    #[test]
    fn from_bits_reinterpretation_is_flagged() {
        let f = run(
            "fn reinterpret(h: Half) -> f32 {\n    let bits = h;\n    f32::from_bits(bits)\n}\n",
        );
        assert!(
            f.iter().any(|x| x.lint == "PL005" && x.line == 3),
            "findings: {f:?}"
        );
    }
}
