//! Token-level lexer over masked source text.
//!
//! The flow-sensitive lints (PL005/DT004/PH004) need more structure
//! than line patterns: identifiers, literals with their suffixes, and
//! multi-character operators, each carrying its source position. This
//! lexer runs over [`SourceFile::masked`] lines — comments are already
//! blanked and string/char interiors erased — so it only has to
//! tokenize live code. It is deliberately small: no keywords table
//! beyond what the parser asks about, no macro expansion, no spans
//! finer than (line, column).
//!
//! [`SourceFile::masked`]: crate::source::SourceFile

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `let`, `foo`).
    Ident,
    /// Integer literal, including any suffix (`42`, `0xFF`, `7u16`).
    Int,
    /// Float literal, including any suffix (`1.0`, `2e9`, `0.5f32`).
    Float,
    /// A (masked) string literal — contents are blanks, only the
    /// delimiters survive masking.
    Str,
    /// Lifetime tick or (masked) char literal.
    Life,
    /// Punctuation/operator, possibly multi-char (`::`, `->`, `..=`).
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind.
    pub kind: TokKind,
    /// The token text (for `Str`/`Life` just the delimiters survive).
    pub text: String,
    /// 1-based source line.
    pub line: usize,
    /// 0-based byte column on that line.
    pub col: usize,
}

impl Token {
    /// True when this token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text == word
    }

    /// True when this token is the punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }
}

/// Multi-character operators, longest first so maximal munch works.
const PUNCTS: [&str; 24] = [
    "..=", "...", "<<=", ">>=", "::", "->", "=>", "..", "==", "!=", "<=", ">=", "&&", "||", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Lexes masked lines (1-based line numbers follow the slice order).
pub fn lex(masked: &[String]) -> Vec<Token> {
    let mut out = Vec::new();
    for (idx, line) in masked.iter().enumerate() {
        lex_line(line, idx + 1, &mut out);
    }
    out
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

fn lex_line(line: &str, line_no: usize, out: &mut Vec<Token>) {
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Masked strings survive as `"   "`; emit one Str token and
        // skip to the closing quote (masking guarantees it is on this
        // line or the literal continues — treat end-of-line as close).
        if c == b'"' {
            let start = i;
            i += 1;
            while i < bytes.len() && bytes[i] != b'"' {
                i += 1;
            }
            i = (i + 1).min(bytes.len());
            out.push(Token {
                kind: TokKind::Str,
                text: "\"\"".to_string(),
                line: line_no,
                col: start,
            });
            continue;
        }
        // Lifetime tick or masked char literal: `'a`, `' '`.
        if c == b'\'' {
            let start = i;
            i += 1;
            while i < bytes.len() && is_ident_char(bytes[i]) {
                i += 1;
            }
            if i < bytes.len() && bytes[i] == b'\'' {
                i += 1; // masked char literal's closing quote
            }
            out.push(Token {
                kind: TokKind::Life,
                text: line[start..i].to_string(),
                line: line_no,
                col: start,
            });
            continue;
        }
        if is_ident_start(c) {
            let start = i;
            while i < bytes.len() && is_ident_char(bytes[i]) {
                i += 1;
            }
            out.push(Token {
                kind: TokKind::Ident,
                text: line[start..i].to_string(),
                line: line_no,
                col: start,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let (tok, len) = lex_number(line, i);
            out.push(Token {
                kind: tok,
                text: line[i..i + len].to_string(),
                line: line_no,
                col: i,
            });
            i += len;
            continue;
        }
        // Maximal-munch punctuation.
        let rest = &line[i..];
        let mut matched = 1;
        for p in PUNCTS {
            if rest.starts_with(p) {
                matched = p.len();
                break;
            }
        }
        out.push(Token {
            kind: TokKind::Punct,
            text: line[i..i + matched].to_string(),
            line: line_no,
            col: i,
        });
        i += matched;
    }
}

/// Lexes a numeric literal at byte `at`; returns (kind, length).
fn lex_number(line: &str, at: usize) -> (TokKind, usize) {
    let bytes = line.as_bytes();
    let mut i = at;
    let mut float = false;
    if line[i..].starts_with("0x") || line[i..].starts_with("0b") || line[i..].starts_with("0o") {
        i += 2;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        return (TokKind::Int, i - at);
    }
    while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
        i += 1;
    }
    // Fractional part — but `0..n` is a range and `x.0` is a field.
    if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
        float = true;
        i += 1;
        while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
            i += 1;
        }
    }
    // Trailing `1.` (not `1..`): still a float.
    if !float && i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1] != b'.' {
        let next = bytes[i + 1];
        if !is_ident_start(next) {
            float = true;
            i += 1;
        }
    }
    // Exponent.
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            float = true;
            i = j;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    // Suffix (`f32`, `u16`, `usize`, …) glues onto the literal.
    if i < bytes.len() && is_ident_start(bytes[i]) {
        let suffix_start = i;
        while i < bytes.len() && is_ident_char(bytes[i]) {
            i += 1;
        }
        if line[suffix_start..i].starts_with('f') {
            float = true;
        }
    }
    (if float { TokKind::Float } else { TokKind::Int }, i - at)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(&[src.to_string()])
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_numbers_and_puncts() {
        let toks = kinds("let x = a.mul_add(1.0f32, 2) ;");
        assert_eq!(toks[0], (TokKind::Ident, "let".to_string()));
        assert_eq!(toks[1], (TokKind::Ident, "x".to_string()));
        assert!(toks.contains(&(TokKind::Float, "1.0f32".to_string())));
        assert!(toks.contains(&(TokKind::Int, "2".to_string())));
    }

    #[test]
    fn ranges_are_not_floats() {
        let toks = kinds("for i in 0..n { a[i] = i; }");
        assert!(toks.contains(&(TokKind::Int, "0".to_string())));
        assert!(toks.contains(&(TokKind::Punct, "..".to_string())));
        assert!(!toks.iter().any(|(k, _)| *k == TokKind::Float));
    }

    #[test]
    fn multi_char_operators_munch_maximally() {
        let toks = kinds("a ^= b >> 2; c :: d -> e");
        assert!(toks.contains(&(TokKind::Punct, "^=".to_string())));
        assert!(toks.contains(&(TokKind::Punct, ">>".to_string())));
        assert!(toks.contains(&(TokKind::Punct, "::".to_string())));
        assert!(toks.contains(&(TokKind::Punct, "->".to_string())));
    }

    #[test]
    fn suffixed_ints_and_hex_stay_ints() {
        let toks = kinds("let b = 0xCBF2_u64 + 7u16;");
        assert!(toks.contains(&(TokKind::Int, "0xCBF2_u64".to_string())));
        assert!(toks.contains(&(TokKind::Int, "7u16".to_string())));
    }

    #[test]
    fn positions_are_line_and_column() {
        let toks = lex(&["let x;".to_string(), "  y".to_string()]);
        assert_eq!((toks[0].line, toks[0].col), (1, 0));
        let y = toks.iter().find(|t| t.is_ident("y")).expect("y lexed");
        assert_eq!((y.line, y.col), (2, 2));
    }
}
