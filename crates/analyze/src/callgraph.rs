//! Workspace call graph and PH004 panic-reachability.
//!
//! PR 4 turned panics in campaign code from crashes into retried
//! cells — which means a reachable panic on the strike fast path or in
//! a campaign driver no longer *fails* anything, it silently burns
//! retry budget. PH004 makes that cost visible: it walks the call
//! graph from the hot roots (`run_from_site`, `run_from_site_into`,
//! `dispatch_mono`, and the `run*` drivers in `campaign.rs` files) and
//! flags panic sites in every function reachable from them.
//!
//! Resolution is by simple name: a call to `run` edges to every
//! function named `run` in the workspace (same-file definitions
//! preferred when any exist). That overapproximates — the cost of a
//! false edge is a finding to audit, never a missed panic on a real
//! path.
//!
//! Two deliberate scope cuts keep the signal usable:
//!
//! * `unwrap`/`expect`/panic-macro sites are only reported when they
//!   sit under a documented `# Panics` contract — undocumented sites
//!   are already PH001–PH003 errors, and pragma-suppressed ones
//!   already carry a written justification.
//! * Indexing sites (`buf[idx]` with a variable index) are reported
//!   only outside `crates/kernels` — kernel inner loops *are* index
//!   arithmetic, bounds-proved by construction and covered by the
//!   differential tests; driver-level indexing is bookkeeping where a
//!   slip burns budget.

use crate::parse::{FnItem, PanicKind, ParsedFile};
use crate::source::SourceFile;
use crate::{Finding, Severity};
use std::collections::BTreeMap;

/// Fast-path entry points recognized anywhere in the workspace.
const ROOT_FNS: [&str; 3] = ["run_from_site", "run_from_site_into", "dispatch_mono"];

/// True when `f` (defined in `rel_path`) is a reachability root.
fn is_root(rel_path: &str, f: &FnItem) -> bool {
    if ROOT_FNS.contains(&f.name.as_str()) {
        return true;
    }
    rel_path.ends_with("campaign.rs")
        && (f.name.starts_with("run") || f.name.starts_with("try_run"))
}

/// One function node in the workspace graph.
struct Node<'a> {
    file: &'a SourceFile,
    item: &'a FnItem,
}

/// Runs PH004 over the whole file set. `in_scope` decides (by
/// workspace-relative path) whether findings from a file are emitted;
/// reachability itself always crosses file boundaries.
pub fn panic_reachability(
    files: &[(SourceFile, ParsedFile)],
    in_scope: &dyn Fn(&str) -> bool,
) -> Vec<Finding> {
    // Collect non-test functions and index them by simple name.
    let mut nodes: Vec<Node<'_>> = Vec::new();
    for (file, parsed) in files {
        for item in &parsed.fns {
            if file.in_test.get(item.line - 1).copied().unwrap_or(false) {
                continue;
            }
            nodes.push(Node { file, item });
        }
    }
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        by_name.entry(n.item.name.as_str()).or_default().push(i);
    }

    // BFS from the roots, remembering the first caller for the trace.
    let mut reached_via: Vec<Option<String>> = vec![None; nodes.len()];
    let mut queue: Vec<usize> = Vec::new();
    for (i, n) in nodes.iter().enumerate() {
        if is_root(&n.file.rel_path, n.item) {
            reached_via[i] = Some("<root>".to_string());
            queue.push(i);
        }
    }
    let mut head = 0;
    while head < queue.len() {
        let at = queue[head];
        head += 1;
        let caller = nodes[at].item.qual.clone();
        let caller_file = nodes[at].file.rel_path.clone();
        for callee in &nodes[at].item.calls {
            let Some(candidates) = by_name.get(callee.as_str()) else {
                continue;
            };
            // Prefer same-file definitions when any exist — a local
            // helper should not edge into every same-named fn in the
            // workspace.
            let local: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&c| nodes[c].file.rel_path == caller_file)
                .collect();
            let targets = if local.is_empty() { candidates } else { &local };
            for &c in targets {
                if reached_via[c].is_none() {
                    reached_via[c] = Some(caller.clone());
                    queue.push(c);
                }
            }
        }
    }

    // Report panic sites inside reachable, in-scope functions.
    let mut out = Vec::new();
    for (i, n) in nodes.iter().enumerate() {
        let Some(via) = &reached_via[i] else { continue };
        if !in_scope(&n.file.rel_path) {
            continue;
        }
        let mut seen_lines: Vec<(usize, PanicKind)> = Vec::new();
        for site in &n.item.panics {
            let documented = n
                .file
                .panic_documented
                .get(site.line - 1)
                .copied()
                .unwrap_or(false);
            let report = match site.kind {
                // Undocumented panic ops are PH001–PH003 errors (or
                // carry a pragma justification already); PH004 adds
                // the documented ones the hot path can still hit.
                PanicKind::Unwrap | PanicKind::Expect | PanicKind::Macro => documented,
                // Kernel inner loops are index arithmetic by design.
                PanicKind::Index => !n.file.rel_path.starts_with("crates/kernels"),
            };
            if !report || seen_lines.contains(&(site.line, site.kind)) {
                continue;
            }
            seen_lines.push((site.line, site.kind));
            let via_text = if via == "<root>" {
                format!("`{}` is itself a hot-path root", n.item.qual)
            } else {
                format!(
                    "`{}` is reachable from the hot path via `{via}`",
                    n.item.qual
                )
            };
            out.push(Finding {
                file: n.file.rel_path.clone(),
                line: site.line,
                lint: "PH004".to_string(),
                name: "panic-reachability".to_string(),
                severity: Severity::Error,
                message: format!(
                    "{} in {}: {} — a panic here is retried, not fatal, so it silently burns strike budget; return a `Result` or hoist the check out of the hot path",
                    site.what, via_text,
                    match site.kind {
                        PanicKind::Index =>
                            "variable indexing can panic on a bad site table",
                        _ => "a documented panic contract still fires at run time",
                    },
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let parsed: Vec<(SourceFile, ParsedFile)> = files
            .iter()
            .map(|(path, text)| {
                let sf = SourceFile::parse(path, text);
                let pf = ParsedFile::parse(&sf);
                (sf, pf)
            })
            .collect();
        panic_reachability(&parsed, &|_| true)
    }

    #[test]
    fn documented_panic_reachable_from_fast_path_is_flagged() {
        let f = run(&[(
            "crates/fault/src/x.rs",
            "fn run_from_site(k: usize) {\n    helper(k);\n}\n/// # Panics\n///\n/// Panics when k is 0.\nfn helper(k: usize) {\n    if k == 0 { panic!(\"zero\") }\n}\n",
        )]);
        assert!(
            f.iter().any(|x| x.lint == "PH004" && x.line == 8),
            "findings: {f:?}"
        );
    }

    #[test]
    fn unreachable_documented_panic_is_not_flagged() {
        let f = run(&[(
            "crates/fault/src/x.rs",
            "/// # Panics\n///\n/// Panics always.\nfn cold_path() {\n    panic!(\"never called from the hot path\")\n}\n",
        )]);
        assert!(f.is_empty(), "findings: {f:?}");
    }

    #[test]
    fn reachability_crosses_files() {
        let f = run(&[
            (
                "crates/fault/src/campaign.rs",
                "fn run_campaign(n: usize) {\n    deep_helper(n);\n}\n",
            ),
            (
                "crates/exp/src/engine.rs",
                "fn deep_helper(n: usize) {\n    let v = vec![0u8; n];\n    let k = n / 2;\n    let _ = v[k + 1];\n}\n",
            ),
        ]);
        assert!(
            f.iter()
                .any(|x| x.lint == "PH004" && x.file == "crates/exp/src/engine.rs"),
            "findings: {f:?}"
        );
    }

    #[test]
    fn kernel_indexing_is_exempt_but_driver_indexing_is_not() {
        let files = [
            (
                "crates/kernels/src/gemm.rs",
                "fn run_from_site(a: &[f64], i: usize, n: usize) -> f64 {\n    a[i * n]\n}\n",
            ),
            (
                "crates/beam/src/campaign.rs",
                "fn run_beam(sites: &[usize], i: usize) -> usize {\n    sites[i + 1]\n}\n",
            ),
        ];
        let f = run(&files);
        assert!(
            !f.iter().any(|x| x.file.starts_with("crates/kernels")),
            "kernel indexing flagged: {f:?}"
        );
        assert!(
            f.iter().any(|x| x.file.starts_with("crates/beam")),
            "driver indexing missed: {f:?}"
        );
    }

    #[test]
    fn undocumented_unwrap_is_left_to_ph001() {
        // The same site is a PH001 error already; PH004 stays quiet so
        // one problem is reported once.
        let f = run(&[(
            "crates/fault/src/campaign.rs",
            "fn run_x(v: &[u8]) {\n    let _ = v.first().unwrap();\n}\n",
        )]);
        assert!(f.is_empty(), "findings: {f:?}");
    }
}
