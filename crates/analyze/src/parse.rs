//! Item-level parser: functions, impl blocks, structs, calls, and
//! panic sites — no full grammar.
//!
//! The parser walks the token stream once and recovers just the
//! structure the dataflow and call-graph passes need: every `fn` with
//! its name, parameters, return type, and body token range; every
//! struct with its named fields and their types; and, per function,
//! the names it calls and the places it can panic. Function items are
//! recognized at *any* brace depth, so item-like code inside macro
//! invocations (`monomorphic_workload! { fn run<F: FloatExt>(..) {..} }`)
//! is analyzed like ordinary code instead of vanishing into an opaque
//! macro body.

use crate::lexer::{lex, TokKind, Token};
use crate::source::SourceFile;

/// One `name: Type` function parameter (pattern params are skipped).
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name.
    pub name: String,
    /// Type text, tokens joined by single spaces (e.g. `& [ f64 ]`).
    pub ty: String,
}

/// Where a function can panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `.unwrap()`
    Unwrap,
    /// `.expect(..)`
    Expect,
    /// `panic!`/`unreachable!`/`todo!`/`unimplemented!`
    Macro,
    /// Slice/array indexing with a non-literal index.
    Index,
}

/// One potential panic site inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// 1-based line.
    pub line: usize,
    /// What panics there.
    pub kind: PanicKind,
    /// Short source-ish rendering for the message (`.unwrap()`,
    /// `buf[idx]`).
    pub what: String,
}

/// A parsed function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Simple name (`run_from_site`).
    pub name: String,
    /// Qualified name when inside an `impl` block (`Gemm::run_from_site`),
    /// otherwise the simple name.
    pub qual: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Parameters with recoverable `name: Type` shape.
    pub params: Vec<Param>,
    /// Return type text (empty when the fn returns `()`).
    pub ret: String,
    /// True when the signature carries a `: FloatExt` bound.
    pub generic_float: bool,
    /// Token index range of the body: `[open_brace, close_brace]`
    /// inclusive of both braces.
    pub body: (usize, usize),
    /// Simple names of everything this body calls (`foo(..)`,
    /// `.method(..)`, `Path::assoc(..)`), in source order.
    pub calls: Vec<String>,
    /// Potential panic sites in the body.
    pub panics: Vec<PanicSite>,
}

/// A parsed struct with named fields.
#[derive(Debug, Clone)]
pub struct StructItem {
    /// Struct name.
    pub name: String,
    /// `(field, type-text)` pairs.
    pub fields: Vec<(String, String)>,
}

/// Everything recovered from one file.
#[derive(Debug)]
pub struct ParsedFile {
    /// Tokens, shared by the flow pass.
    pub tokens: Vec<Token>,
    /// All function items, in source order.
    pub fns: Vec<FnItem>,
    /// All field-bearing structs.
    pub structs: Vec<StructItem>,
}

impl ParsedFile {
    /// Parses the masked text of `file`.
    pub fn parse(file: &SourceFile) -> ParsedFile {
        let tokens = lex(&file.masked);
        let braces = match_braces(&tokens);
        let impls = impl_contexts(&tokens, &braces);
        let mut fns = Vec::new();
        let mut structs = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            if t.is_ident("fn") {
                if let Some((item, next)) = parse_fn(&tokens, &braces, &impls, i) {
                    fns.push(item);
                    i = next;
                    continue;
                }
            } else if t.is_ident("struct") {
                if let Some((item, next)) = parse_struct(&tokens, &braces, i) {
                    structs.push(item);
                    i = next;
                    continue;
                }
            }
            i += 1;
        }
        ParsedFile {
            tokens,
            fns,
            structs,
        }
    }

    /// The function whose signature declares parameter `param` as type
    /// text containing `ty` — used by fixtures/tests.
    pub fn fn_named(&self, name: &str) -> Option<&FnItem> {
        self.fns.iter().find(|f| f.name == name)
    }
}

/// Token index of the matching close brace for each open brace.
fn match_braces(tokens: &[Token]) -> Vec<Option<usize>> {
    let mut map = vec![None; tokens.len()];
    let mut stack = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.is_punct("{") {
            stack.push(i);
        } else if t.is_punct("}") {
            if let Some(open) = stack.pop() {
                map[open] = Some(i);
            }
        }
    }
    map
}

/// `(open_brace, close_brace, self_type)` for each `impl` block.
fn impl_contexts(tokens: &[Token], braces: &[Option<usize>]) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("impl") {
            continue;
        }
        // Scan to the block's `{`; the self type is the first path
        // segment after `for` when present (`impl Trait for Type`),
        // otherwise the first identifier after any generics.
        let mut j = i + 1;
        let mut after_for = None;
        let mut first_ident = None;
        let mut angle = 0i32;
        while j < tokens.len() && !tokens[j].is_punct("{") && !tokens[j].is_punct(";") {
            let tok = &tokens[j];
            match tok.text.as_str() {
                "<" if tok.kind == TokKind::Punct => angle += 1,
                ">" if tok.kind == TokKind::Punct => angle -= 1,
                ">>" if tok.kind == TokKind::Punct => angle -= 2,
                "for" if tok.kind == TokKind::Ident && angle <= 0 => {
                    // `impl Trait for Type`: the self type follows.
                    first_ident = None;
                    after_for = Some(());
                }
                _ if tok.kind == TokKind::Ident && angle <= 0 => {
                    if after_for.is_some() {
                        first_ident = Some(tok.text.clone());
                        after_for = None;
                    } else if first_ident.is_none() {
                        first_ident = Some(tok.text.clone());
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if j < tokens.len() && tokens[j].is_punct("{") {
            if let (Some(close), Some(ty)) = (braces[j], first_ident) {
                out.push((j, close, ty));
            }
        }
    }
    out
}

/// Parses a `fn` item starting at token `at` (the `fn` keyword).
/// Returns the item and the token index to resume scanning from (just
/// past the signature — nested fns inside the body are found by the
/// main loop continuing through it).
fn parse_fn(
    tokens: &[Token],
    braces: &[Option<usize>],
    impls: &[(usize, usize, String)],
    at: usize,
) -> Option<(FnItem, usize)> {
    let name_tok = tokens.get(at + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None; // `fn(..)` pointer type
    }
    let name = name_tok.text.clone();
    let mut i = at + 2;
    // Generics.
    if tokens.get(i).is_some_and(|t| t.is_punct("<")) {
        let mut depth = 0i32;
        while i < tokens.len() {
            match tokens[i].text.as_str() {
                "<" if tokens[i].kind == TokKind::Punct => depth += 1,
                ">" if tokens[i].kind == TokKind::Punct => depth -= 1,
                ">>" if tokens[i].kind == TokKind::Punct => depth -= 2,
                _ => {}
            }
            i += 1;
            if depth <= 0 {
                break;
            }
        }
    }
    // Parameters.
    if !tokens.get(i).is_some_and(|t| t.is_punct("(")) {
        return None;
    }
    let params_open = i;
    let mut depth = 0i32;
    while i < tokens.len() {
        if tokens[i].is_punct("(") {
            depth += 1;
        } else if tokens[i].is_punct(")") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        i += 1;
    }
    let params_close = i;
    if params_close >= tokens.len() {
        return None;
    }
    let params = parse_params(&tokens[params_open + 1..params_close]);
    // Return type and the rest of the signature, up to `{` or `;`.
    i = params_close + 1;
    let mut ret_tokens: Vec<&Token> = Vec::new();
    let mut in_ret = false;
    while i < tokens.len() && !tokens[i].is_punct("{") && !tokens[i].is_punct(";") {
        if tokens[i].is_punct("->") {
            in_ret = true;
        } else if tokens[i].is_ident("where") {
            in_ret = false;
        } else if in_ret {
            ret_tokens.push(&tokens[i]);
        }
        i += 1;
    }
    if i >= tokens.len() || tokens[i].is_punct(";") {
        // Trait method declaration without a body.
        return None;
    }
    let body_open = i;
    let body_close = braces[body_open].unwrap_or(tokens.len() - 1);
    let generic_float = (at..body_open).any(|k| {
        tokens[k].is_punct(":") && tokens.get(k + 1).is_some_and(|t| t.is_ident("FloatExt"))
    });
    let qual = impls
        .iter()
        .find(|(open, close, _)| *open < at && at < *close)
        .map(|(_, _, ty)| format!("{ty}::{name}"))
        .unwrap_or_else(|| name.clone());
    let body_tokens = &tokens[body_open..=body_close.min(tokens.len() - 1)];
    let item = FnItem {
        name,
        qual,
        line: tokens[at].line,
        params,
        ret: ret_tokens
            .iter()
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>()
            .join(" "),
        generic_float,
        body: (body_open, body_close.min(tokens.len() - 1)),
        calls: collect_calls(body_tokens),
        panics: collect_panics(body_tokens),
    };
    Some((item, body_open + 1))
}

/// Splits a parameter token slice at top-level commas into
/// `name: Type` params; destructuring patterns are skipped.
fn parse_params(tokens: &[Token]) -> Vec<Param> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    let mut flush = |range: &[Token]| {
        // `name : Type` — possibly prefixed by `mut`; `self` forms and
        // patterns have no single leading ident before the colon.
        let mut k = 0;
        while range.get(k).is_some_and(|t| t.is_ident("mut")) {
            k += 1;
        }
        let (Some(name), Some(colon)) = (range.get(k), range.get(k + 1)) else {
            return;
        };
        if name.kind != TokKind::Ident || !colon.is_punct(":") || name.text == "self" {
            return;
        }
        let ty = range[k + 2..]
            .iter()
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>()
            .join(" ");
        out.push(Param {
            name: name.text.clone(),
            ty,
        });
    };
    for (i, t) in tokens.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" | "{" | "<" if t.kind == TokKind::Punct => depth += 1,
            ")" | "]" | "}" | ">" if t.kind == TokKind::Punct => depth -= 1,
            ">>" if t.kind == TokKind::Punct => depth -= 2,
            "," if t.kind == TokKind::Punct && depth <= 0 => {
                flush(&tokens[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < tokens.len() {
        flush(&tokens[start..]);
    }
    out
}

/// Parses `struct Name { field: Type, .. }`; tuple and unit structs
/// carry no named fields and are skipped.
fn parse_struct(
    tokens: &[Token],
    braces: &[Option<usize>],
    at: usize,
) -> Option<(StructItem, usize)> {
    let name_tok = tokens.get(at + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let mut i = at + 2;
    while i < tokens.len()
        && !tokens[i].is_punct("{")
        && !tokens[i].is_punct(";")
        && !tokens[i].is_punct("(")
    {
        i += 1;
    }
    if i >= tokens.len() || !tokens[i].is_punct("{") {
        return None;
    }
    let close = braces[i]?;
    let mut fields = Vec::new();
    let body = &tokens[i + 1..close];
    let mut depth = 0i32;
    let mut start = 0;
    for (k, t) in body
        .iter()
        .enumerate()
        .chain([(body.len(), &tokens[close])])
    {
        let is_sep =
            k == body.len() || (t.is_punct(",") && depth <= 0) || (t.is_punct(";") && depth <= 0);
        if !is_sep {
            match t.text.as_str() {
                "(" | "[" | "{" | "<" if t.kind == TokKind::Punct => depth += 1,
                ")" | "]" | "}" | ">" if t.kind == TokKind::Punct => depth -= 1,
                ">>" if t.kind == TokKind::Punct => depth -= 2,
                _ => {}
            }
            continue;
        }
        let range = &body[start..k.min(body.len())];
        start = k + 1;
        // `pub name : Type`
        let mut j = 0;
        while range.get(j).is_some_and(|t| {
            t.is_ident("pub") || t.is_punct("(") || t.is_ident("crate") || t.is_punct(")")
        }) {
            j += 1;
        }
        let (Some(name), Some(colon)) = (range.get(j), range.get(j + 1)) else {
            continue;
        };
        if name.kind != TokKind::Ident || !colon.is_punct(":") {
            continue;
        }
        fields.push((
            name.text.clone(),
            range[j + 2..]
                .iter()
                .map(|t| t.text.as_str())
                .collect::<Vec<_>>()
                .join(" "),
        ));
    }
    Some((
        StructItem {
            name: name_tok.text.clone(),
            fields,
        },
        close + 1,
    ))
}

/// Simple names of every call in a body token slice.
fn collect_calls(body: &[Token]) -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..body.len() {
        if body[i].kind != TokKind::Ident {
            continue;
        }
        let Some(next) = body.get(i + 1) else {
            continue;
        };
        let called = next.is_punct("(")
            || (next.is_punct("!") && body.get(i + 2).is_some_and(|t| t.is_punct("(")));
        if !called {
            continue;
        }
        // `fn name(..)` nested item — a definition, not a call.
        if i > 0 && body[i - 1].is_ident("fn") {
            continue;
        }
        out.push(body[i].text.clone());
    }
    out
}

/// True when `tokens[i]` starts exactly where `tokens[i-1]` ends (no
/// whitespace between them on the same line).
fn adjacent(prev: &Token, tok: &Token) -> bool {
    prev.line == tok.line && prev.col + prev.text.len() == tok.col
}

/// Potential panic sites in a body token slice.
fn collect_panics(body: &[Token]) -> Vec<PanicSite> {
    let mut out = Vec::new();
    for i in 0..body.len() {
        let t = &body[i];
        if t.kind == TokKind::Ident {
            let next = body.get(i + 1);
            let prev_dot = i > 0 && body[i - 1].is_punct(".");
            if prev_dot && next.is_some_and(|n| n.is_punct("(")) {
                match t.text.as_str() {
                    "unwrap" => out.push(PanicSite {
                        line: t.line,
                        kind: PanicKind::Unwrap,
                        what: ".unwrap()".to_string(),
                    }),
                    "expect" => out.push(PanicSite {
                        line: t.line,
                        kind: PanicKind::Expect,
                        what: ".expect(..)".to_string(),
                    }),
                    _ => {}
                }
            }
            if next.is_some_and(|n| n.is_punct("!"))
                && matches!(
                    t.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                )
            {
                out.push(PanicSite {
                    line: t.line,
                    kind: PanicKind::Macro,
                    what: format!("{}!", t.text),
                });
            }
        }
        // Indexing: `expr[..]` — `[` glued to an ident/`)`/`]`, with a
        // non-literal index inside. `let x = [0; n]`, slice types
        // `&[f64]`, and `vec![..]` never have an ident/close directly
        // before the bracket.
        if t.is_punct("[") && i > 0 {
            let prev = &body[i - 1];
            let indexable = (prev.kind == TokKind::Ident
                && !matches!(prev.text.as_str(), "return" | "in" | "else"))
                || prev.is_punct(")")
                || prev.is_punct("]");
            if !(indexable && adjacent(prev, t)) {
                continue;
            }
            // Find the matching `]` and require a variable index.
            let mut depth = 0i32;
            let mut j = i;
            let mut has_ident = false;
            while j < body.len() {
                if body[j].is_punct("[") {
                    depth += 1;
                } else if body[j].is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if depth >= 1 && body[j].kind == TokKind::Ident {
                    has_ident = true;
                }
                j += 1;
            }
            if has_ident {
                let base = if prev.kind == TokKind::Ident {
                    prev.text.clone()
                } else {
                    "..".to_string()
                };
                out.push(PanicSite {
                    line: t.line,
                    kind: PanicKind::Index,
                    what: format!("{base}[..]"),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        ParsedFile::parse(&SourceFile::parse("x.rs", src))
    }

    #[test]
    fn fn_signature_is_recovered() {
        let p = parse("fn scale(x: f64, n: usize) -> f32 {\n    helper(x)\n}\n");
        let f = p.fn_named("scale").expect("parsed");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name, "x");
        assert_eq!(f.params[0].ty, "f64");
        assert_eq!(f.ret, "f32");
        assert_eq!(f.calls, vec!["helper".to_string()]);
    }

    #[test]
    fn generic_float_bound_is_detected() {
        let p = parse("fn run<F: FloatExt>(a: &mut [F]) {\n}\nfn plain(a: f64) {}\n");
        assert!(p.fn_named("run").expect("run").generic_float);
        assert!(!p.fn_named("plain").expect("plain").generic_float);
    }

    #[test]
    fn impl_methods_are_qualified() {
        let p = parse("impl Gemm {\n    fn run_from_site(&self) {}\n}\nimpl Workload for Lud {\n    fn run(&self) {}\n}\n");
        assert_eq!(
            p.fn_named("run_from_site").expect("m").qual,
            "Gemm::run_from_site"
        );
        assert_eq!(p.fn_named("run").expect("m").qual, "Lud::run");
    }

    #[test]
    fn fns_inside_macro_invocations_are_found() {
        let p = parse("monomorphic_workload! {\n    fn kernel<F: FloatExt>(x: F) {\n        touch(x);\n    }\n}\n");
        let f = p.fn_named("kernel").expect("macro-wrapped fn parsed");
        assert!(f.generic_float);
        assert_eq!(f.calls, vec!["touch".to_string()]);
    }

    #[test]
    fn struct_fields_parse() {
        let p = parse("pub struct CellKey {\n    pub seed: u64,\n    pub golden: Vec<f32>,\n}\nstruct Unit;\n");
        assert_eq!(p.structs.len(), 1);
        let s = &p.structs[0];
        assert_eq!(s.name, "CellKey");
        assert_eq!(s.fields[0], ("seed".to_string(), "u64".to_string()));
        assert_eq!(
            s.fields[1],
            ("golden".to_string(), "Vec < f32 >".to_string())
        );
    }

    #[test]
    fn panic_sites_are_collected() {
        let p = parse(
            "fn f(v: &[f64], i: usize) -> f64 {\n    let x = v.first().unwrap();\n    let y = v.get(1).expect(\"one\");\n    if *x > 0.0 { panic!(\"no\") }\n    v[i + 1]\n}\n",
        );
        let f = p.fn_named("f").expect("f");
        let kinds: Vec<PanicKind> = f.panics.iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&PanicKind::Unwrap));
        assert!(kinds.contains(&PanicKind::Expect));
        assert!(kinds.contains(&PanicKind::Macro));
        assert!(kinds.contains(&PanicKind::Index));
    }

    #[test]
    fn literal_indexing_and_slice_types_are_not_panic_sites() {
        let p = parse("fn f(v: &[f64]) -> f64 {\n    let a = [0.0; 4];\n    a[0] + v[1]\n}\n");
        let f = p.fn_named("f").expect("f");
        assert!(f.panics.is_empty(), "sites: {:?}", f.panics);
    }

    #[test]
    fn trait_declarations_without_bodies_are_skipped() {
        let p = parse("trait Hook {\n    fn touch(&self, x: f64) -> f64;\n}\n");
        assert!(p.fns.is_empty());
    }
}
