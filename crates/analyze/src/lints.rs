//! The four domain lints plus allowlist hygiene.
//!
//! Every lint is a pure function from a [`SourceFile`] to findings;
//! path-based scoping (which crates a lint applies to) lives in
//! [`crate::lint_applies`] so fixtures can exercise lints by claiming a
//! path.

use crate::source::SourceFile;
use crate::{Finding, Severity};

/// Lint family names as used in `mpr-allow` pragmas.
pub const LINT_NAMES: [&str; 8] = [
    "precision-leak",
    "fault-site",
    "determinism",
    "panic-hygiene",
    "precision-taint",
    "determinism-taint",
    "panic-reachability",
    "vfs-bypass",
];

fn finding(
    file: &SourceFile,
    line: usize,
    lint: &'static str,
    name: &'static str,
    message: String,
) -> Finding {
    Finding {
        file: file.rel_path.clone(),
        line,
        lint: lint.to_string(),
        name: name.to_string(),
        severity: Severity::Error,
        message,
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Byte offsets of `needle` in `hay` occurring as a whole word (not
/// embedded in a longer identifier).
fn word_positions(hay: &str, needle: &str) -> Vec<usize> {
    let bytes = hay.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = hay[from..].find(needle) {
        let at = from + p;
        let before_ok = at == 0 || !is_ident_char(bytes[at - 1] as char);
        let end = at + needle.len();
        let after_ok = end >= hay.len() || !is_ident_char(bytes[end] as char);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + needle.len().max(1);
    }
    out
}

// ---------------------------------------------------------------------
// precision-leak (PL)
// ---------------------------------------------------------------------

/// Inside `F: FloatExt`-generic kernel bodies, all float work must stay
/// in the generic type: native literals, casts, `f32::`/`f64::` paths,
/// and bare native float types leak a fixed precision into code that the
/// study must be able to run at double, single, and half.
pub fn precision_leak(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for (idx, masked) in file.masked.iter().enumerate() {
        let line_no = idx + 1;
        if !file.in_generic_kernel[idx] || file.in_test[idx] {
            continue;
        }
        for (col, lit) in float_literals(masked) {
            if feeds_conversion(masked, col) {
                continue;
            }
            out.push(finding(
                file,
                line_no,
                "PL001",
                "precision-leak",
                format!("native float literal `{lit}` in a precision-generic kernel; wrap it in `F::from_f64(..)`"),
            ));
        }
        for ty in ["f32", "f64"] {
            for at in unenclosed(masked, &format!(" as {ty}")) {
                let after = &masked[at + 4 + ty.len()..];
                if after.starts_with(|c: char| is_ident_char(c)) {
                    continue; // e.g. ` as f64x4` — not the native type
                }
                out.push(finding(
                    file,
                    line_no,
                    "PL002",
                    "precision-leak",
                    format!("`as {ty}` cast in a precision-generic kernel; convert through `F::from_f64`/`to_f64` at the interface instead"),
                ));
            }
            for _ in unenclosed(masked, &format!("{ty}::")) {
                out.push(finding(
                    file,
                    line_no,
                    "PL003",
                    "precision-leak",
                    format!("`{ty}::` associated item in a precision-generic kernel; use the `FloatExt` equivalent"),
                ));
            }
            for at in word_positions(masked, ty) {
                // Skip occurrences already reported as casts or paths.
                let after = &masked[at + ty.len()..];
                let before = &masked[..at];
                if after.starts_with("::") || before.ends_with("as ") {
                    continue;
                }
                if feeds_conversion(masked, at) {
                    continue;
                }
                out.push(finding(
                    file,
                    line_no,
                    "PL004",
                    "precision-leak",
                    format!("native `{ty}` type in a precision-generic kernel body; keep intermediate values in `F`"),
                ));
            }
        }
    }
    out
}

/// Float literal tokens in a masked line: `(byte offset, token text)`.
fn float_literals(line: &str) -> Vec<(usize, String)> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if !c.is_ascii_digit()
            || (i > 0 && is_ident_char(bytes[i - 1] as char))
            || (i > 0 && bytes[i - 1] == b'.')
        {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'_') {
            i += 1;
        }
        let mut is_float = false;
        // Fractional part — but `0..n` is a range, and `x.0` is a field.
        if i + 1 < bytes.len() && bytes[i] == b'.' && (bytes[i + 1] as char).is_ascii_digit() {
            is_float = true;
            i += 1;
            while i < bytes.len() && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'_') {
                i += 1;
            }
        }
        // Exponent.
        if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
            let mut j = i + 1;
            if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                j += 1;
            }
            if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                is_float = true;
                i = j;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
            }
        }
        // Suffix.
        if line[i..].starts_with("f32") || line[i..].starts_with("f64") {
            is_float = true;
            i += 3;
        }
        if is_float {
            out.push((start, line[start..i].to_string()));
        }
    }
    out
}

/// Byte offsets where `needle` occurs outside any enclosing
/// `from_f64`/`from_f32` call. Native-float syntax is sanctioned inside
/// the conversion's argument list — that is where the f64 master value
/// is assembled before it crosses into `F`.
fn unenclosed(line: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = line[from..].find(needle) {
        let at = from + p;
        if !feeds_conversion(line, at) {
            out.push(at);
        }
        from = at + needle.len().max(1);
    }
    out
}

/// True when the token at `col` sits inside a call whose chain of
/// enclosing calls (on this line) includes `from_f64`/`from_f32` — the
/// sanctioned way to introduce constants into generic code.
fn feeds_conversion(line: &str, col: usize) -> bool {
    let mut depth = 0i32;
    let bytes = line.as_bytes();
    let mut i = col;
    while i > 0 {
        i -= 1;
        match bytes[i] {
            b')' => depth += 1,
            b'(' => {
                if depth > 0 {
                    depth -= 1;
                    continue;
                }
                // An unmatched open paren: read the identifier before it.
                let end = i;
                let mut s = i;
                while s > 0 && is_ident_char(bytes[s - 1] as char) {
                    s -= 1;
                }
                let ident = &line[s..end];
                if ident.ends_with("from_f64") || ident.ends_with("from_f32") {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

// ---------------------------------------------------------------------
// fault-site (FS)
// ---------------------------------------------------------------------

/// Inside kernel loops, every statement that updates a float value
/// (assignment, compound assignment, or `.push`) must route the result
/// through the fault hook (`hook.touch(..)` / `touch_bits`). A computed
/// value that bypasses the hook is invisible to injection campaigns,
/// silently shrinking the fault-site population the paper's methodology
/// samples from.
///
/// `let` bindings and control headers are setup work (constants built
/// for `from_f64`, index math) and are exempt *unless* they invoke a
/// float math method (`mul_add`, `sqrt`, …), which marks real
/// in-precision arithmetic wherever it appears.
pub fn fault_site(file: &SourceFile) -> Vec<Finding> {
    let masked = &file.masked;
    let mut flagged = std::collections::BTreeSet::new();
    for (idx, line) in masked.iter().enumerate() {
        if !file.in_generic_kernel[idx] || file.in_test[idx] {
            continue;
        }
        let trimmed = line.trim_start();
        if !(trimmed.starts_with("for ") || trimmed.starts_with("while ")) {
            continue;
        }
        let close = body_close(masked, idx);
        for stmt in statements(masked, idx + 1, close) {
            if stmt.text.contains("touch") {
                continue;
            }
            let head = stmt.text.trim_start();
            let is_setup = ["let ", "if ", "for ", "while ", "match ", "else"]
                .iter()
                .any(|k| head.starts_with(k));
            let computes = if is_setup {
                has_float_method(&stmt.text)
            } else if stmt.text.contains(".push(") || has_assignment(&stmt.text) {
                has_float_method(&stmt.text) || has_operator_arithmetic(&stmt.text)
            } else {
                false
            };
            if computes {
                flagged.insert(stmt.line);
            }
        }
    }
    flagged
        .into_iter()
        .map(|line| {
            finding(
                file,
                line,
                "FS001",
                "fault-site",
                "kernel-loop statement computes a value without routing it through the fault hook; wrap the update in `hook.touch(..)`".to_string(),
            )
        })
        .collect()
}

/// Trait-object hook dispatch in kernel code. `dyn FaultHook` costs a
/// virtual call per touched value — millions per run — which is exactly
/// what the monomorphized fast path removes. Kernel code must take the
/// hook generically (`H: FaultHook + ?Sized`) and let
/// [`Workload::dispatch_mono`] instantiate it statically; the one
/// sanctioned trait-object boundary is the campaign-facing `dispatch`,
/// which carries a justified pragma.
///
/// [`Workload::dispatch_mono`]: https://docs.rs/mpr-fault
pub fn dyn_hook(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for (idx, masked) in file.masked.iter().enumerate() {
        if file.in_test[idx] {
            continue;
        }
        for at in word_positions(masked, "dyn") {
            // Read the (possibly qualified) path after `dyn`; flag it
            // when its final segment is the hook trait.
            let path: String = masked[at + 3..]
                .trim_start()
                .chars()
                .take_while(|&c| is_ident_char(c) || c == ':')
                .collect();
            if path.rsplit("::").next() == Some("FaultHook") {
                out.push(finding(
                    file,
                    idx + 1,
                    "FS002",
                    "fault-site",
                    format!(
                        "`dyn {path}` in kernel code pays a virtual call per touched value; \
                         take `H: FaultHook + ?Sized` generically so `dispatch_mono` \
                         monomorphizes the hook, and keep trait objects at the campaign boundary"
                    ),
                ));
            }
        }
    }
    out
}

/// True when the statement contains an assignment operator: a bare `=`
/// or a compound `+=`-family one, but not `==`, `<=`, `>=`, `!=`, `=>`.
fn has_assignment(stmt: &str) -> bool {
    let bytes = stmt.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'=' {
            continue;
        }
        if matches!(bytes.get(i + 1), Some(b'=') | Some(b'>')) {
            continue;
        }
        if i > 0 && matches!(bytes[i - 1], b'=' | b'<' | b'>' | b'!') {
            continue;
        }
        return true;
    }
    false
}

/// 0-based line of the `}` closing the block opened at/after `open_line`.
fn body_close(masked: &[String], open_line: usize) -> usize {
    let mut depth = 0i32;
    let mut seen = false;
    for (idx, line) in masked.iter().enumerate().skip(open_line) {
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    seen = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
            if seen && depth == 0 {
                return idx;
            }
        }
    }
    masked.len().saturating_sub(1)
}

struct Stmt {
    /// 1-based line the statement starts on.
    line: usize,
    text: String,
}

/// Splits lines `[from, to)` (0-based) into leaf statements: pieces are
/// cut at `;` and at `{`/`}` block boundaries (so nested loop bodies are
/// examined statement by statement), while `(..)`/`[..]` nesting keeps
/// multi-line call expressions whole.
fn statements(masked: &[String], from: usize, to: usize) -> Vec<Stmt> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut start_line = 0usize;
    let mut depth = 0i32;
    let mut flush = |current: &mut String, start_line: usize, terminated: bool| {
        if terminated {
            current.push(';');
        }
        let text = current.trim().to_string();
        if !text.is_empty() && text != ";" {
            out.push(Stmt {
                line: start_line,
                text,
            });
        }
        current.clear();
    };
    for (idx, line) in masked.iter().enumerate().take(to).skip(from) {
        if current.trim().is_empty() {
            current.clear();
            start_line = idx + 1;
        }
        for c in line.chars() {
            match c {
                '(' | '[' => depth += 1,
                ')' | ']' => depth -= 1,
                '{' | '}' if depth <= 0 => {
                    flush(&mut current, start_line, false);
                    start_line = idx + 1;
                    continue;
                }
                ';' if depth <= 0 => {
                    flush(&mut current, start_line, true);
                    start_line = idx + 1;
                    continue;
                }
                _ => {}
            }
            current.push(c);
        }
        current.push(' ');
    }
    flush(&mut current, start_line, false);
    out
}

/// FloatExt math-method calls — unambiguous in-precision arithmetic.
fn has_float_method(stmt: &str) -> bool {
    [".mul_add(", ".sqrt(", ".abs(", ".recip(", ".powi(", ".exp("]
        .iter()
        .any(|m| stmt.contains(m))
}

/// Binary arithmetic on values (not on indices): spaced operators
/// outside `[..]` index expressions — the workspace is
/// rustfmt-formatted, so real operators are spaced.
fn has_operator_arithmetic(stmt: &str) -> bool {
    let mut depth = 0i32;
    let mut cleaned = String::with_capacity(stmt.len());
    for c in stmt.chars() {
        match c {
            '[' => {
                depth += 1;
                cleaned.push(' ');
            }
            ']' => {
                depth -= 1;
                cleaned.push(' ');
            }
            _ if depth > 0 => cleaned.push(' '),
            _ => cleaned.push(c),
        }
    }
    [" + ", " - ", " * ", " / ", " += ", " -= ", " *= ", " /= "]
        .iter()
        .any(|op| cleaned.contains(op))
}

// ---------------------------------------------------------------------
// vfs-bypass (FS003)
// ---------------------------------------------------------------------

/// Direct `std::fs` traffic in the experiment engine outside the `Vfs`
/// implementation layer. Every byte mpr-exp persists must route
/// through the `Vfs` trait so the chaos layer sees it, the durable
/// commit protocol covers it, and the crash-consistency property tests
/// stay exhaustive — an I/O call that bypasses the seam is untestable
/// under fault injection and silently un-durable. `vfs.rs` itself (the
/// `RealFs` passthrough) carries a file-wide pragma; tests are exempt.
pub fn vfs_bypass(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for (idx, masked) in file.masked.iter().enumerate() {
        if file.in_test[idx] {
            continue;
        }
        let line_no = idx + 1;
        for at in word_positions(masked, "fs") {
            if masked[at + 2..].starts_with("::") {
                out.push(finding(
                    file,
                    line_no,
                    "FS003",
                    "vfs-bypass",
                    "direct `fs::` call in mpr-exp bypasses the `Vfs` seam; route it through the store's `Vfs` handle so chaos injection and the durable-commit protocol cover it".to_string(),
                ));
            }
        }
        for at in word_positions(masked, "File") {
            if masked[at + 4..].starts_with("::") {
                out.push(finding(
                    file,
                    line_no,
                    "FS003",
                    "vfs-bypass",
                    "direct `File::` use in mpr-exp bypasses the `Vfs` seam; add the operation to the `Vfs` trait instead of opening handles inline".to_string(),
                ));
            }
        }
        if !word_positions(masked, "OpenOptions").is_empty() {
            out.push(finding(
                file,
                line_no,
                "FS003",
                "vfs-bypass",
                "`OpenOptions` in mpr-exp bypasses the `Vfs` seam; add the operation to the `Vfs` trait instead of opening handles inline".to_string(),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------
// determinism (DT)
// ---------------------------------------------------------------------

/// Campaign results must be exactly reproducible from the seed: no
/// ambient RNG, no wall-clock reads, no iteration over unordered
/// collections in the simulation crates.
pub fn determinism(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let checks = [
        (
            "DT001",
            "thread_rng",
            "ambient RNG breaks seeded reproducibility; derive a `StdRng` from the campaign seed",
        ),
        (
            "DT001",
            "from_entropy",
            "entropy-seeded RNG breaks reproducibility; use `seed_from_u64` with a derived seed",
        ),
        (
            "DT002",
            "SystemTime",
            "wall-clock reads make runs time-dependent; thread timestamps in from the caller",
        ),
        (
            "DT002",
            "Instant",
            "monotonic-clock reads make results machine-dependent; benchmarks belong in crates/bench",
        ),
        (
            "DT003",
            "HashMap",
            "hash-map iteration order is nondeterministic; use `BTreeMap` or a sorted `Vec`",
        ),
        (
            "DT003",
            "HashSet",
            "hash-set iteration order is nondeterministic; use `BTreeSet` or a sorted `Vec`",
        ),
    ];
    for (idx, masked) in file.masked.iter().enumerate() {
        if file.in_test[idx] {
            continue;
        }
        for (lint, token, why) in checks {
            if !word_positions(masked, token).is_empty() {
                out.push(finding(
                    file,
                    idx + 1,
                    lint,
                    "determinism",
                    format!("`{token}`: {why}"),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// panic-hygiene (PH)
// ---------------------------------------------------------------------

/// Library code must not panic on recoverable conditions: `unwrap`,
/// `expect`, and panic-family macros are reserved for tests and for
/// functions whose doc comment carries a `# Panics` contract.
pub fn panic_hygiene(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for (idx, masked) in file.masked.iter().enumerate() {
        if file.in_test[idx] || file.panic_documented[idx] {
            continue;
        }
        let line_no = idx + 1;
        if masked.contains(".unwrap()") {
            out.push(finding(
                file,
                line_no,
                "PH001",
                "panic-hygiene",
                "`.unwrap()` in library code; return a `Result` or document the panic contract under `# Panics`".to_string(),
            ));
        }
        if masked.contains(".expect(") {
            out.push(finding(
                file,
                line_no,
                "PH002",
                "panic-hygiene",
                "`.expect(..)` in library code; return a `Result` or document the panic contract under `# Panics`".to_string(),
            ));
        }
        for mac in ["panic!(", "unreachable!(", "todo!(", "unimplemented!("] {
            if masked.contains(mac) {
                out.push(finding(
                    file,
                    line_no,
                    "PH003",
                    "panic-hygiene",
                    format!("`{}..)` in library code; return an error or document the panic contract under `# Panics`", mac),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// allowlist hygiene (AH)
// ---------------------------------------------------------------------

/// Pragmas are part of the lint surface: an allow without a
/// justification, or naming an unknown lint, is itself a finding.
/// `used` carries the pragma lines that suppressed at least one raw
/// finding; an allow that suppresses nothing is reported so the
/// allowlist cannot rot.
pub fn allow_hygiene(file: &SourceFile, used: &[usize]) -> Vec<Finding> {
    let mut out = Vec::new();
    for p in &file.pragmas {
        // Lints skip test regions entirely, so pragmas there have no
        // effect and are not audited.
        if file.in_test.get(p.line - 1).copied().unwrap_or(false) {
            continue;
        }
        if !LINT_NAMES.contains(&p.lint.as_str()) {
            out.push(Finding {
                file: file.rel_path.clone(),
                line: p.line,
                lint: "AH001".to_string(),
                name: "allow-hygiene".to_string(),
                severity: Severity::Error,
                message: format!(
                    "`mpr-allow` names unknown lint `{}` (known: {})",
                    p.lint,
                    LINT_NAMES.join(", ")
                ),
            });
            continue;
        }
        if p.reason.is_empty() {
            out.push(Finding {
                file: file.rel_path.clone(),
                line: p.line,
                lint: "AH002".to_string(),
                name: "allow-hygiene".to_string(),
                severity: Severity::Error,
                message: "`mpr-allow` without a justification; append ` -- <why this is sound>`"
                    .to_string(),
            });
        }
        if !used.contains(&p.line) {
            // Stale-suppression audit covers both pragma forms: a line
            // allow that shields nothing nearby, and a file-wide allow
            // whose lint family produces zero findings anywhere in the
            // file.
            let message = if p.file_wide {
                format!(
                    "`mpr-allow-file: {}` suppresses nothing — the `{}` lints produce zero findings in this file; remove the stale file-wide allow",
                    p.lint, p.lint
                )
            } else {
                format!(
                    "`mpr-allow: {}` suppresses nothing on this or the next line; remove the stale entry",
                    p.lint
                )
            };
            out.push(Finding {
                file: file.rel_path.clone(),
                line: p.line,
                lint: "AH003".to_string(),
                name: "allow-hygiene".to_string(),
                severity: Severity::Warning,
                message,
            });
        }
    }
    out
}
