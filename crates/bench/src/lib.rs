//! # mpr-bench
//!
//! Criterion benchmark harness. Each bench target regenerates one group
//! of the paper's tables/figures (printing them once per run) and times
//! the regeneration:
//!
//! * `paper_tables` — Tables 1-3 (execution-time models).
//! * `fpga_figures` — Figures 2-5 (Zynq-7000 campaigns).
//! * `knc_figures` — Figures 6-9 (Xeon Phi campaigns).
//! * `gpu_figures` — Figures 10-13 (Titan V campaigns).
//! * `softfloat_ops` — raw binary16 soft-float operation latencies.
//! * `kernel_throughput` — the study's kernels at each precision on the
//!   host CPU (the simulator's own mixed-precision cost).
//!
//! Run with `cargo bench --workspace`.

/// The seed every bench uses, so printed tables match EXPERIMENTS.md.
pub const BENCH_SEED: u64 = 2019;
