//! Ablation benches: ECC on/off and fault-model sensitivity.

use criterion::{criterion_group, criterion_main, Criterion};
use mpr_bench::BENCH_SEED;
use mpr_core::Study;

fn bench_ablations(c: &mut Criterion) {
    let study = Study::quick(BENCH_SEED);

    println!("{}", study.ablation_gpu_ecc().to_table());
    println!("{}", study.ablation_fault_models().to_table());

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("gpu_ecc", |b| {
        b.iter(|| study.ablation_gpu_ecc().sdc_reduction()[1][0])
    });
    group.bench_function("fault_models", |b| {
        b.iter(|| study.ablation_fault_models().avf[0][0])
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
