//! Raw binary16 soft-float operation latencies — the cost of the
//! simulator's own half-precision substrate.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mpr_softfloat::Half;

fn bench_softfloat(c: &mut Criterion) {
    let a = Half::from_f64(1.2345);
    let b = Half::from_f64(0.9876);
    let d = Half::from_f64(-0.5);

    let mut group = c.benchmark_group("softfloat_ops");
    group.bench_function("half_add", |bch| bch.iter(|| black_box(a) + black_box(b)));
    group.bench_function("half_mul", |bch| bch.iter(|| black_box(a) * black_box(b)));
    group.bench_function("half_div", |bch| bch.iter(|| black_box(a) / black_box(b)));
    group.bench_function("half_fma_exact", |bch| {
        bch.iter(|| black_box(a).mul_add(black_box(b), black_box(d)))
    });
    group.bench_function("half_sqrt", |bch| bch.iter(|| black_box(a).sqrt()));
    group.bench_function("half_exp_poly", |bch| {
        bch.iter(|| mpr_softfloat::math::exp_poly(black_box(d)))
    });
    group.bench_function("half_from_f64", |bch| {
        bch.iter(|| Half::from_f64(black_box(1.2345f64)))
    });
    group.bench_function("half_to_f64", |bch| bch.iter(|| black_box(a).to_f64()));
    group.finish();
}

criterion_group!(benches, bench_softfloat);
criterion_main!(benches);
