//! Regenerates Figures 2-5 (Zynq-7000 beam campaigns).

use criterion::{criterion_group, criterion_main, Criterion};
use mpr_bench::BENCH_SEED;
use mpr_core::Study;

fn bench_fpga(c: &mut Criterion) {
    let study = Study::quick(BENCH_SEED);

    println!("{}", study.fig2_fpga_resources().to_table());
    println!("{}", study.fig3_fpga_fit().to_table());
    println!("{}", study.fig4_fpga_tre().to_table());
    println!("{}", study.fig5_fpga_mebf().to_table());

    let mut group = c.benchmark_group("fpga_figures");
    group.sample_size(10);
    group.bench_function("fig2_resources", |b| {
        b.iter(|| study.fig2_fpga_resources().rows.len())
    });
    group.bench_function("fig3_fit_campaigns", |b| {
        b.iter(|| study.fig3_fpga_fit().mxm_fit[0])
    });
    group.bench_function("fig4_tre_campaigns", |b| {
        b.iter(|| study.fig4_fpga_tre().surviving_at(1e-3)[0])
    });
    group.bench_function("fig5_mebf_campaigns", |b| {
        b.iter(|| study.fig5_fpga_mebf().mxm_mebf[2])
    });
    group.finish();
}

criterion_group!(benches, bench_fpga);
criterion_main!(benches);
