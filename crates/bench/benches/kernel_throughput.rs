//! Host-CPU throughput of the study's kernels at each precision — the
//! simulator's own mixed-precision cost profile (native f64/f32 vs the
//! soft-float binary16).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpr_fault::Workload;
use mpr_kernels::{Gemm, LavaMd, Lud, Micro, MicroKernelOp};
use mpr_softfloat::Precision;

fn bench_kernels(c: &mut Criterion) {
    let gemm = Gemm::new(16);
    let lavamd = LavaMd::new(2, 3);
    let lud = Lud::new(20);
    let micro = Micro::new(MicroKernelOp::Fma, 8, 256);
    let workloads: [(&str, &dyn Workload); 4] = [
        ("gemm16", &gemm),
        ("lavamd_2x3", &lavamd),
        ("lud20", &lud),
        ("micro_fma", &micro),
    ];

    let mut group = c.benchmark_group("kernel_throughput");
    for (name, w) in workloads {
        for p in Precision::ALL {
            if !w.supports(p) {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(name, p), &p, |b, &p| {
                b.iter(|| w.run_golden(p))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
