//! Regenerates Figures 6-9 (Xeon Phi beam and injection campaigns).

use criterion::{criterion_group, criterion_main, Criterion};
use mpr_bench::BENCH_SEED;
use mpr_core::Study;

fn bench_knc(c: &mut Criterion) {
    let study = Study::quick(BENCH_SEED);

    println!("{}", study.fig6_knc_fit().to_table());
    println!("{}", study.fig7_knc_pvf().to_table());
    println!("{}", study.fig8_knc_tre().to_table());
    println!("{}", study.fig9_knc_mebf().to_table());

    let mut group = c.benchmark_group("knc_figures");
    group.sample_size(10);
    group.bench_function("fig6_fit_campaigns", |b| {
        b.iter(|| study.fig6_knc_fit().sdc_fit[0][0])
    });
    group.bench_function("fig7_pvf_injection", |b| {
        b.iter(|| study.fig7_knc_pvf().pvf[0][0].factor())
    });
    group.bench_function("fig8_tre_campaigns", |b| {
        b.iter(|| study.fig8_knc_tre().surviving_at(0, 1e-3)[0])
    });
    group.bench_function("fig9_mebf_campaigns", |b| {
        b.iter(|| study.fig9_knc_mebf().mebf[0][1])
    });
    group.finish();
}

criterion_group!(benches, bench_knc);
criterion_main!(benches);
