//! Regenerates Tables 1-3 (execution times on each device).

use criterion::{criterion_group, criterion_main, Criterion};
use mpr_bench::BENCH_SEED;
use mpr_core::Study;

fn bench_tables(c: &mut Criterion) {
    let study = Study::quick(BENCH_SEED);

    // Print each table once so the bench log doubles as the artifact.
    println!("{}", study.table1_fpga_times());
    println!("{}", study.table2_knc_times());
    println!("{}", study.table3_gpu_times());

    let mut group = c.benchmark_group("paper_tables");
    group.bench_function("table1_fpga_times", |b| {
        b.iter(|| study.table1_fpga_times().row_count())
    });
    group.bench_function("table2_knc_times", |b| {
        b.iter(|| study.table2_knc_times().row_count())
    });
    group.bench_function("table3_gpu_times", |b| {
        b.iter(|| study.table3_gpu_times().row_count())
    });
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
