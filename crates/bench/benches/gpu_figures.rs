//! Regenerates Figures 10-13 (Titan V beam and injection campaigns).

use criterion::{criterion_group, criterion_main, Criterion};
use mpr_bench::BENCH_SEED;
use mpr_core::Study;

fn bench_gpu(c: &mut Criterion) {
    let study = Study::quick(BENCH_SEED);

    println!("{}", study.fig10_gpu_fit().to_table());
    println!("{}", study.fig11_gpu_tre().to_table());
    println!("{}", study.fig12_gpu_avf().to_table());
    println!("{}", study.fig13_gpu_mebf().to_table());

    let mut group = c.benchmark_group("gpu_figures");
    group.sample_size(10);
    group.bench_function("fig10_fit_campaigns", |b| {
        b.iter(|| study.fig10_gpu_fit().micro_sdc[1][0])
    });
    group.bench_function("fig11_tre_campaigns", |b| {
        b.iter(|| study.fig11_gpu_tre().yolo_criticality[0][0])
    });
    group.bench_function("fig12_avf_injection", |b| {
        b.iter(|| study.fig12_gpu_avf().avf[0][0].factor())
    });
    group.bench_function("fig13_mebf_campaigns", |b| {
        b.iter(|| study.fig13_gpu_mebf().mebf[4][2])
    });
    group.finish();
}

criterion_group!(benches, bench_gpu);
criterion_main!(benches);
