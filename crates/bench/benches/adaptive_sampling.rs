//! Adaptive-sampling budget gate: stratified allocation with
//! sequential early stopping must cut campaign strike budgets by at
//! least 5x at the pinned CI-width targets, without moving the
//! cross-section estimates off the fixed-path reference.
//!
//! Both campaign drivers are exercised — the FPGA beam proxy (stuck
//! bits, the paper's MxM configuration-upset campaigns) and the
//! CAROL-FI style injection campaign — each run twice with the same
//! seed: once fixed (the reference oracle, every budgeted strike
//! executed) and once adaptive. The gated number is the *worst*
//! per-config budget reduction, so no campaign can hide behind the
//! headline. Every gated quantity is a deterministic function of the
//! seed: reruns reproduce `BENCH_sampling.json` byte-for-byte.
//!
//! Gates:
//! - `strikes_saved_ratio` (min over configs of budget / executed)
//!   >= 5x in quick and full modes;
//! - every adaptive cell lands at or under its CI-width target;
//! - every adaptive SDC-rate estimate stays within the CI-width
//!   target of the fixed-path estimate (relative).
//!
//! Modes (args after `cargo bench --bench adaptive_sampling -- ...`):
//! - `--test`:  tiny budgets, invariants only, no file written
//! - `--quick`: quick CI target (0.8), writes `BENCH_sampling.json`
//! - default:   paper CI target (0.25), larger budgets, same gates

use mpr_analyze::json::{self, Value};
use mpr_arch::Fpga;
use mpr_beam::{BeamCampaign, BeamSession};
use mpr_fault::InjectionCampaign;
use mpr_kernels::{profiles, Gemm};
use mpr_metrics::{SamplingConfig, SamplingPlan};
use mpr_softfloat::Precision;
use std::collections::BTreeMap;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Test,
    Quick,
    Full,
}

struct Measurement {
    label: &'static str,
    budget: u64,
    executed: u64,
    ci_target: f64,
    ci_width: f64,
    fixed_rate: f64,
    adaptive_rate: f64,
}

impl Measurement {
    /// The gated number: budgeted strikes per executed strike.
    fn saved_ratio(&self) -> f64 {
        self.budget as f64 / self.executed.max(1) as f64
    }

    /// Relative drift of the adaptive SDC-rate estimate off the
    /// fixed-path reference.
    fn rate_drift(&self) -> f64 {
        (self.adaptive_rate - self.fixed_rate).abs() / self.fixed_rate.max(1e-12)
    }
}

/// The paper's FPGA MxM beam campaign, fixed vs adaptive at one seed.
fn measure_beam(budget: u64, config: SamplingConfig) -> Measurement {
    let gemm8 = Gemm::new(8);
    let fpga = Fpga::zynq7000();
    let profile = profiles::mxm_fpga();
    let run = |plan: SamplingPlan| {
        let mut session = BeamSession::quick(11).with_target_candidates(budget);
        session.threads = 2;
        BeamCampaign::new(&fpga, &gemm8, &profile, Precision::Half)
            .session(session)
            .sampling(plan)
            .run()
    };
    let fixed = run(SamplingPlan::Fixed);
    let adaptive = run(SamplingPlan::Adaptive(config));
    Measurement {
        label: "fpga_gemm8_half_beam",
        budget: fixed.candidates,
        executed: adaptive.executed,
        ci_target: config.ci_width,
        ci_width: adaptive.ci_width(),
        fixed_rate: fixed.sdc.events() as f64 / fixed.candidates.max(1) as f64,
        adaptive_rate: adaptive.sdc.events() as f64 / adaptive.executed.max(1) as f64,
    }
}

/// The CAROL-FI style GEMM injection campaign, fixed vs adaptive.
fn measure_inject(budget: u64, config: SamplingConfig) -> Measurement {
    let gemm10 = Gemm::new(10);
    let run = |plan: SamplingPlan| {
        InjectionCampaign::new(&gemm10, Precision::Single)
            .injections(budget)
            .seed(42)
            .threads(2)
            .sampling(plan)
            .run()
    };
    let fixed = run(SamplingPlan::Fixed);
    let adaptive = run(SamplingPlan::Adaptive(config));
    let executed = adaptive.counts.total();
    Measurement {
        label: "gemm10_single_inject",
        budget,
        executed,
        ci_target: config.ci_width,
        ci_width: mpr_metrics::sampling::rel_ci_width(adaptive.counts.sdc),
        fixed_rate: fixed.counts.sdc as f64 / budget.max(1) as f64,
        adaptive_rate: adaptive.counts.sdc as f64 / executed.max(1) as f64,
    }
}

fn report_json(mode: Mode, results: &[Measurement], headline: f64) -> String {
    let configs: Vec<Value> = results
        .iter()
        .map(|m| {
            let mut o = BTreeMap::new();
            o.insert("label".to_string(), Value::Str(m.label.to_string()));
            o.insert("budget".to_string(), Value::Num(m.budget as f64));
            o.insert("executed".to_string(), Value::Num(m.executed as f64));
            o.insert("ci_target".to_string(), Value::Num(m.ci_target));
            o.insert("ci_width".to_string(), Value::Num(round3(m.ci_width)));
            o.insert(
                "saved_ratio".to_string(),
                Value::Num(round3(m.saved_ratio())),
            );
            o.insert(
                "fixed_sdc_rate".to_string(),
                Value::Num(round3(m.fixed_rate)),
            );
            o.insert(
                "adaptive_sdc_rate".to_string(),
                Value::Num(round3(m.adaptive_rate)),
            );
            Value::Obj(o)
        })
        .collect();
    let mut root = BTreeMap::new();
    root.insert(
        "bench".to_string(),
        Value::Str("adaptive_sampling".to_string()),
    );
    root.insert(
        "mode".to_string(),
        Value::Str(
            match mode {
                Mode::Test => "test",
                Mode::Quick => "quick",
                Mode::Full => "full",
            }
            .to_string(),
        ),
    );
    root.insert(
        "strikes_saved_ratio".to_string(),
        Value::Num(round3(headline)),
    );
    root.insert("floor".to_string(), Value::Num(5.0));
    root.insert("configs".to_string(), Value::Arr(configs));
    Value::Obj(root).to_string()
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mode = if args.iter().any(|a| a == "--test") {
        Mode::Test
    } else if args.iter().any(|a| a == "--quick") {
        Mode::Quick
    } else {
        Mode::Full
    };
    // Budgets sized like the paper's campaigns relative to the CI
    // target: a fixed run burns the whole budget, an adaptive run
    // stops a few rounds after the target is met.
    let (budget, config) = match mode {
        Mode::Test => (512, SamplingConfig::quick()),
        Mode::Quick => (1024, SamplingConfig::quick()),
        Mode::Full => (4096, SamplingConfig::paper()),
    };

    let results = [measure_beam(budget, config), measure_inject(budget, config)];
    for m in &results {
        println!(
            "{:<22} {:>6} budgeted  {:>6} executed  {:>6.2}x saved  ci {:.3} (target {:.2})  \
             sdc rate {:.3} fixed / {:.3} adaptive",
            m.label,
            m.budget,
            m.executed,
            m.saved_ratio(),
            m.ci_width,
            m.ci_target,
            m.fixed_rate,
            m.adaptive_rate,
        );
    }

    let headline = results
        .iter()
        .map(Measurement::saved_ratio)
        .fold(f64::INFINITY, f64::min);
    println!("strikes saved ratio (worst config): {headline:.2}x");

    for m in &results {
        assert!(
            m.ci_width <= m.ci_target,
            "{}: adaptive stopped at CI width {:.3}, above its {:.2} target",
            m.label,
            m.ci_width,
            m.ci_target
        );
        assert!(
            m.rate_drift() <= m.ci_target,
            "{}: adaptive SDC rate {:.3} drifted {:.1}% off the fixed-path {:.3}",
            m.label,
            m.adaptive_rate,
            m.rate_drift() * 100.0,
            m.fixed_rate
        );
    }
    if mode != Mode::Test {
        assert!(
            headline >= 5.0,
            "adaptive sampling saved only {headline:.2}x strikes — below the 5x gate"
        );
    }

    let text = report_json(mode, &results, headline);
    // The report must round-trip through the workspace JSON parser so
    // CI's smoke grep and downstream tooling can consume it.
    let parsed = json::parse(&text).expect("report is valid JSON");
    assert!(
        parsed
            .get("strikes_saved_ratio")
            .and_then(Value::as_num)
            .is_some(),
        "report lost its headline ratio"
    );

    if mode != Mode::Test {
        let path =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sampling.json");
        std::fs::write(&path, format!("{text}\n")).expect("write BENCH_sampling.json");
        let back = std::fs::read_to_string(&path).expect("read BENCH_sampling.json back");
        json::parse(&back).expect("BENCH_sampling.json parses");
        println!("wrote {}", path.display());
    }
}
