//! Strike-execution throughput: the batched golden-prefix replay path
//! (`Workload::run_strike_batch`, what the campaign drivers now run)
//! and the per-strike replay (`Workload::run_from_site_into`) against
//! the naive full-rerun path (`Workload::run_with_fault`), over the
//! exact strike stream the campaign drivers draw (`mix_seed`-derived
//! per-strike RNG, site then fault sample).
//!
//! The naive lap is *conservative*: it already benefits from the
//! per-precision input cache, so the reported speedups understate the
//! win over the original code, which also regenerated every input
//! through `gen_value` on each strike.
//!
//! Headline numbers land in `BENCH_strikes.json` at the repo root so
//! the perf trajectory has a baseline CI can smoke-check.
//!
//! Gates (the old gate only watched the GEMM beam proxy, which let the
//! LUD snapshot blow-up and the half-precision softfloat tax regress
//! unseen):
//! - every workload has its own speedup floor (`Config::floor`), so no
//!   workload can regress behind the headline;
//! - GEMM half must run within 2x of GEMM single on the batched path —
//!   the wide binary16 lanes close the softfloat gap, and this ratio
//!   is the regression tripwire for them.
//!
//! Modes (args after `cargo bench --bench strike_throughput -- ...`):
//! - `--test`:  tiny sizes, byte-identity check only, no file written
//! - `--quick`: small sizes, asserts batched >= naive on every
//!   workload, writes and re-parses `BENCH_strikes.json`
//! - default:   paper proxy sizes, asserts the per-workload floors
//!   (GEMM beam proxy >= 5x, LUD >= 10x, ...) and the half-vs-single
//!   ratio, writes and re-parses `BENCH_strikes.json`

use mpr_analyze::json::{self, Value};
use mpr_fault::{FaultModel, ValueFault, Workload};
use mpr_kernels::{Gemm, LavaMd, Lud, Micro, MicroKernelOp};
use mpr_obs::mix_seed;
use mpr_softfloat::Precision;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;

/// Strikes handed to one `run_strike_batch` call — the campaign
/// drivers' default batch size.
const BATCH: usize = 64;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Test,
    Quick,
    Full,
}

struct Config {
    label: &'static str,
    workload: Box<dyn Workload>,
    model: FaultModel,
    /// Part of the >= 5x acceptance gate (the paper-proxy GEMM beam
    /// campaign's workload/model pairing).
    headline: bool,
    /// Full-mode speedup floor for the batched path, across every
    /// supported precision. Calibrated at roughly half the measured
    /// speedup so noise does not trip the gate but a real regression
    /// (like the old O(n^3)-bit LUD snapshots) does.
    floor: f64,
}

struct Measurement {
    label: &'static str,
    name: String,
    precision: Precision,
    strikes: u64,
    sites: u64,
    naive_per_s: f64,
    replay_per_s: f64,
    batched_per_s: f64,
    headline: bool,
    floor: f64,
}

impl Measurement {
    /// The gated number: batched path vs naive full rerun.
    fn speedup(&self) -> f64 {
        self.batched_per_s / self.naive_per_s
    }
}

fn configs(mode: Mode) -> Vec<Config> {
    // The beam proxy mirrors the paper's signature MxM beam campaigns
    // (FPGA configuration upsets => persistent stuck bits); the rest use
    // the CAROL-FI single-bit model the PVF campaigns sample.
    match mode {
        Mode::Test => vec![
            Config {
                label: "gemm8_beam_proxy",
                workload: Box::new(Gemm::new(8)),
                model: FaultModel::StuckBit,
                headline: true,
                floor: 1.0,
            },
            Config {
                label: "lud8",
                workload: Box::new(Lud::new(8)),
                model: FaultModel::SingleBit,
                headline: false,
                floor: 1.0,
            },
            Config {
                label: "lavamd_2x2",
                workload: Box::new(LavaMd::new(2, 2)),
                model: FaultModel::SingleBit,
                headline: false,
                floor: 1.0,
            },
            Config {
                label: "micro_fma_4x64",
                workload: Box::new(Micro::new(MicroKernelOp::Fma, 4, 64)),
                model: FaultModel::SingleBit,
                headline: false,
                floor: 1.0,
            },
        ],
        Mode::Quick => vec![
            Config {
                label: "gemm16_beam_proxy",
                workload: Box::new(Gemm::new(16)),
                model: FaultModel::StuckBit,
                headline: true,
                floor: 1.0,
            },
            Config {
                label: "lud16",
                workload: Box::new(Lud::new(16)),
                model: FaultModel::SingleBit,
                headline: false,
                floor: 1.0,
            },
            Config {
                label: "lavamd_2x3",
                workload: Box::new(LavaMd::new(2, 3)),
                model: FaultModel::SingleBit,
                headline: false,
                floor: 1.0,
            },
            Config {
                label: "micro_fma_8x256",
                workload: Box::new(Micro::new(MicroKernelOp::Fma, 8, 256)),
                model: FaultModel::SingleBit,
                headline: false,
                floor: 1.0,
            },
        ],
        Mode::Full => vec![
            Config {
                label: "gemm32_beam_proxy",
                workload: Box::new(Gemm::new(32)),
                model: FaultModel::StuckBit,
                headline: true,
                floor: 5.0,
            },
            Config {
                label: "lud64",
                workload: Box::new(Lud::new(64)),
                model: FaultModel::SingleBit,
                headline: false,
                floor: 10.0,
            },
            Config {
                label: "lavamd_3x3",
                workload: Box::new(LavaMd::new(3, 3)),
                model: FaultModel::SingleBit,
                headline: false,
                floor: 20.0,
            },
            Config {
                label: "micro_fma_16x512",
                workload: Box::new(Micro::new(MicroKernelOp::Fma, 16, 512)),
                model: FaultModel::SingleBit,
                headline: false,
                floor: 7.0,
            },
        ],
    }
}

/// The campaign drivers' strike stream: per-strike `StdRng` derived via
/// `mix_seed(seed, i)`, site drawn before the fault.
fn strike_stream(
    seed: u64,
    strikes: u64,
    sites: u64,
    width: u32,
    model: FaultModel,
) -> Vec<(u64, ValueFault)> {
    (0..strikes)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(mix_seed(seed, i));
            let site = rng.gen_range(0..sites);
            (site, model.sample(width, &mut rng))
        })
        .collect()
}

fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn measure(config: &Config, precision: Precision, strikes: u64, seed: u64) -> Measurement {
    let w: &dyn Workload = config.workload.as_ref();
    let golden = w.run_golden(precision);
    let sites = w.site_count(precision);
    let width = precision.total_bits();
    let stream = strike_stream(seed, strikes, sites, width, config.model);

    // Differential check (untimed): both fast paths must be
    // byte-identical to the full rerun on every strike they are about
    // to be timed on. Batched results arrive in region order, so they
    // are keyed back by index before comparing.
    let mut out = Vec::with_capacity(golden.len());
    let mut naives = Vec::with_capacity(stream.len());
    for &(site, fault) in &stream {
        let naive = w.run_with_fault(precision, site, fault);
        w.run_from_site_into(precision, site, fault, &golden, &mut out);
        assert!(
            bits_equal(&out, &naive),
            "{} {} site {site} {fault:?}: per-strike replay diverged from naive",
            config.label,
            precision
        );
        naives.push(naive);
    }
    for (c, chunk) in stream.chunks(BATCH).enumerate() {
        w.run_strike_batch(precision, chunk, &golden, &mut |b, out| {
            let (site, fault) = chunk[b];
            assert!(
                bits_equal(out, &naives[c * BATCH + b]),
                "{} {} site {site} {fault:?}: batched replay diverged from naive",
                config.label,
                precision
            );
            true
        });
    }
    drop(naives);

    // Best of three laps per phase: the gates compare phase ratios, and
    // a single descheduling event inside one lap would skew them.
    let lap = |f: &mut dyn FnMut()| -> f64 {
        (0..3)
            .map(|_| {
                let start = Instant::now();
                f();
                start.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };

    let naive_secs = lap(&mut || {
        for &(site, fault) in &stream {
            black_box(w.run_with_fault(precision, site, fault));
        }
    });

    let replay_secs = lap(&mut || {
        for &(site, fault) in &stream {
            w.run_from_site_into(precision, site, fault, &golden, &mut out);
            black_box(&out);
        }
    });

    let batched_secs = lap(&mut || {
        for chunk in stream.chunks(BATCH) {
            w.run_strike_batch(precision, chunk, &golden, &mut |_, out| {
                black_box(out);
                true
            });
        }
    });

    Measurement {
        label: config.label,
        name: w.name().to_string(),
        precision,
        strikes,
        sites,
        naive_per_s: strikes as f64 / naive_secs.max(1e-9),
        replay_per_s: strikes as f64 / replay_secs.max(1e-9),
        batched_per_s: strikes as f64 / batched_secs.max(1e-9),
        headline: config.headline,
        floor: config.floor,
    }
}

/// GEMM half-vs-single throughput ratio on the batched path:
/// `single strikes/s / half strikes/s`, 1.0 = parity, gated at <= 2.0
/// in full mode. Only the headline (GEMM) config contributes.
fn half_vs_single_ratio(results: &[Measurement]) -> Option<f64> {
    let per_s = |p: Precision| {
        results
            .iter()
            .find(|m| m.headline && m.precision == p)
            .map(|m| m.batched_per_s)
    };
    Some(per_s(Precision::Single)? / per_s(Precision::Half)?)
}

fn report_json(mode: Mode, results: &[Measurement], headline: f64, ratio: Option<f64>) -> String {
    let configs: Vec<Value> = results
        .iter()
        .map(|m| {
            let mut o = BTreeMap::new();
            o.insert("label".to_string(), Value::Str(m.label.to_string()));
            o.insert("workload".to_string(), Value::Str(m.name.clone()));
            o.insert("precision".to_string(), Value::Str(m.precision.to_string()));
            o.insert("strikes".to_string(), Value::Num(m.strikes as f64));
            o.insert("sites".to_string(), Value::Num(m.sites as f64));
            o.insert(
                "naive_strikes_per_s".to_string(),
                Value::Num(round2(m.naive_per_s)),
            );
            o.insert(
                "fast_strikes_per_s".to_string(),
                Value::Num(round2(m.replay_per_s)),
            );
            o.insert(
                "batched_strikes_per_s".to_string(),
                Value::Num(round2(m.batched_per_s)),
            );
            o.insert("speedup".to_string(), Value::Num(round2(m.speedup())));
            o.insert("floor".to_string(), Value::Num(m.floor));
            Value::Obj(o)
        })
        .collect();
    let mut root = BTreeMap::new();
    root.insert(
        "bench".to_string(),
        Value::Str("strike_throughput".to_string()),
    );
    root.insert(
        "mode".to_string(),
        Value::Str(
            match mode {
                Mode::Test => "test",
                Mode::Quick => "quick",
                Mode::Full => "full",
            }
            .to_string(),
        ),
    );
    root.insert("strike_batch".to_string(), Value::Num(BATCH as f64));
    root.insert(
        "gemm_beam_proxy_min_speedup".to_string(),
        Value::Num(round2(headline)),
    );
    if let Some(r) = ratio {
        root.insert(
            "gemm_half_vs_single_ratio".to_string(),
            Value::Num(round2(r)),
        );
    }
    root.insert("configs".to_string(), Value::Arr(configs));
    Value::Obj(root).to_string()
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mode = if args.iter().any(|a| a == "--test") {
        Mode::Test
    } else if args.iter().any(|a| a == "--quick") {
        Mode::Quick
    } else {
        Mode::Full
    };
    let strikes = match mode {
        Mode::Test => 8,
        Mode::Quick => 60,
        Mode::Full => 300,
    };
    let seed = 0x57_81_4E;

    let mut results = Vec::new();
    for config in configs(mode) {
        for precision in Precision::ALL {
            if !config.workload.supports(precision) {
                continue;
            }
            let m = measure(&config, precision, strikes, seed);
            println!(
                "{:<22} {:<6}  {:>12.0} naive/s  {:>12.0} replay/s  {:>12.0} batched/s  {:>7.1}x",
                m.label,
                m.precision.to_string(),
                m.naive_per_s,
                m.replay_per_s,
                m.batched_per_s,
                m.speedup()
            );
            results.push(m);
        }
    }

    let headline = results
        .iter()
        .filter(|m| m.headline)
        .map(Measurement::speedup)
        .fold(f64::INFINITY, f64::min);
    println!("gemm beam proxy min speedup: {headline:.1}x over {strikes} strikes");
    let ratio = half_vs_single_ratio(&results);
    if let Some(r) = ratio {
        println!("gemm half-vs-single batched ratio: {r:.2}x (1.0 = parity)");
    }

    match mode {
        Mode::Test => {}
        Mode::Quick | Mode::Full => {
            for m in &results {
                assert!(
                    m.speedup() >= m.floor,
                    "{} {}: batched speedup {:.2}x is below its {:.1}x floor",
                    m.label,
                    m.precision,
                    m.speedup(),
                    m.floor
                );
            }
            if mode == Mode::Full {
                let r = ratio.expect("full mode measures GEMM half and single");
                assert!(
                    r <= 2.0,
                    "GEMM half runs {r:.2}x slower than single — wide binary16 lanes regressed \
                     past the 2x gate"
                );
            }
        }
    }

    let text = report_json(mode, &results, headline, ratio);
    // The report must round-trip through the workspace JSON parser so
    // downstream tooling can consume it.
    let parsed = json::parse(&text).expect("report is valid JSON");
    assert!(
        parsed
            .get("configs")
            .and_then(Value::as_arr)
            .is_some_and(|c| !c.is_empty()),
        "report lost its configs"
    );

    if mode != Mode::Test {
        let path =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_strikes.json");
        std::fs::write(&path, format!("{text}\n")).expect("write BENCH_strikes.json");
        let back = std::fs::read_to_string(&path).expect("read BENCH_strikes.json back");
        json::parse(&back).expect("BENCH_strikes.json parses");
        println!("wrote {}", path.display());
    }
}
