//! Small statistics toolbox: confidence intervals for counting
//! experiments and basic descriptive statistics.

/// Wilson score interval for a binomial proportion at ~95% confidence.
///
/// Used for AVF/PVF estimates: `successes` SDCs out of `trials`
/// injections. Returns `(low, high)`; degenerate inputs (zero trials)
/// yield `(0.0, 1.0)`.
///
/// ```rust
/// use mpr_metrics::stats::wilson_ci95;
/// let (lo, hi) = wilson_ci95(50, 100);
/// assert!(lo < 0.5 && 0.5 < hi);
/// assert!(hi - lo < 0.25);
/// ```
pub fn wilson_ci95(successes: u64, trials: u64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let z = 1.959964; // 97.5th percentile of the standard normal
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let margin = (z / denom) * ((p * (1.0 - p) / n) + z2 / (4.0 * n * n)).sqrt();
    ((center - margin).max(0.0), (center + margin).min(1.0))
}

/// Approximate 95% confidence interval for a Poisson rate with `events`
/// observations, expressed as multipliers on the point estimate.
///
/// Uses the normal approximation on the square-root scale, which is
/// accurate for the tens-to-thousands of events the campaigns produce.
///
/// **Zero events are a hazard for this parameterization**: the point
/// estimate is zero, so *any* multiplier pair collapses the interval to
/// `(0, 0)` when applied. Callers with a possibly-zero count must use
/// [`poisson_ci95_counts`], which returns absolute event-count bounds
/// instead. For zero events this function returns `(0.0, 3.7)` — the
/// exact bounds *in counts*, which are **not** usable as multipliers.
pub fn poisson_ci95(events: u64) -> (f64, f64) {
    if events == 0 {
        return (0.0, 3.7);
    }
    let k = events as f64;
    let z = 1.959964;
    // Square-root (variance-stabilizing) transform: sqrt(k) +- z/2.
    let lo = (k.sqrt() - z / 2.0).max(0.0).powi(2) / k;
    let hi = (k.sqrt() + z / 2.0).powi(2) / k;
    (lo, hi)
}

/// Approximate 95% confidence interval for a Poisson count, in absolute
/// event counts rather than multipliers on the point estimate.
///
/// Divides cleanly by an exposure (fluence, time) to bound a rate, and —
/// unlike [`poisson_ci95`] — stays meaningful at zero observed events:
/// the upper bound is the exact `3.7` events of a zero count (the
/// classic rule-of-three-style limit), so a clean campaign still yields
/// a positive upper FIT bound.
///
/// ```rust
/// use mpr_metrics::stats::poisson_ci95_counts;
/// let (lo, hi) = poisson_ci95_counts(0);
/// assert_eq!(lo, 0.0);
/// assert!(hi > 3.0); // zero observed events still bound the rate
/// ```
pub fn poisson_ci95_counts(events: u64) -> (f64, f64) {
    if events == 0 {
        return (0.0, 3.7);
    }
    let (lo, hi) = poisson_ci95(events);
    let k = events as f64;
    (k * lo, k * hi)
}

/// Arithmetic mean. Empty input yields NaN.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n-1 denominator). Inputs with fewer than two
/// elements yield 0.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Geometric mean of strictly positive values. Empty input yields NaN.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_interval_contains_point_estimate() {
        for (s, n) in [(0u64, 10u64), (1, 10), (5, 10), (10, 10), (500, 2000)] {
            let p = s as f64 / n as f64;
            let (lo, hi) = wilson_ci95(s, n);
            assert!(lo <= p + 1e-12 && p <= hi + 1e-12, "s={s} n={n}");
            assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        }
    }

    #[test]
    fn wilson_interval_narrows_with_more_trials() {
        let (lo1, hi1) = wilson_ci95(10, 100);
        let (lo2, hi2) = wilson_ci95(100, 1000);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    fn wilson_zero_trials() {
        assert_eq!(wilson_ci95(0, 0), (0.0, 1.0));
    }

    #[test]
    fn poisson_interval_brackets_unity() {
        for k in [1u64, 10, 100, 1000] {
            let (lo, hi) = poisson_ci95(k);
            assert!(lo < 1.0 && 1.0 < hi, "k={k}");
        }
        // More events -> tighter multiplier interval.
        let (lo_small, hi_small) = poisson_ci95(10);
        let (lo_big, hi_big) = poisson_ci95(1000);
        assert!(hi_big - lo_big < hi_small - lo_small);
    }

    #[test]
    fn poisson_zero_events() {
        let (lo, hi) = poisson_ci95(0);
        assert_eq!(lo, 0.0);
        assert!(hi > 3.0);
    }

    #[test]
    fn poisson_zero_events_exact_upper_limit() {
        // The zero-count bounds are absolute counts, not multipliers:
        // both interval forms must agree on the exact 3.7-event limit.
        assert_eq!(poisson_ci95(0), (0.0, 3.7));
        assert_eq!(poisson_ci95_counts(0), (0.0, 3.7));
    }

    #[test]
    fn poisson_single_event() {
        // k=1 on the sqrt scale: lo = (1 - z/2)^2, hi = (1 + z/2)^2.
        let z: f64 = 1.959964;
        let (lo, hi) = poisson_ci95(1);
        assert!((lo - (1.0 - z / 2.0).powi(2)).abs() < 1e-12);
        assert!((hi - (1.0 + z / 2.0).powi(2)).abs() < 1e-12);
        assert!(lo > 0.0 && lo < 0.001, "lo {lo}");
        assert!((3.5..4.0).contains(&hi), "hi {hi}");
        // Count form is just the multiplier form scaled by k=1.
        assert_eq!(poisson_ci95_counts(1), poisson_ci95(1));
    }

    #[test]
    fn poisson_large_count_matches_normal_approximation() {
        // For large k the sqrt-scale interval must converge to the
        // plain normal approximation k +- z*sqrt(k): relative width
        // 2z/sqrt(k). At 1e4 events the two agree to a few percent.
        let z = 1.959964;
        for k in [10_000u64, 100_000, 1_000_000] {
            let (lo, hi) = poisson_ci95(k);
            let width = hi - lo;
            let normal = 2.0 * z / (k as f64).sqrt();
            assert!(
                (width / normal - 1.0).abs() < 0.05,
                "k={k}: sqrt-scale width {width} vs normal {normal}"
            );
            // And the interval is centered near unity (small skew only).
            assert!((0.5 * (lo + hi) - 1.0).abs() < 0.01, "k={k}");
        }
    }

    #[test]
    fn poisson_width_is_monotone_in_event_count() {
        let mut prev = f64::INFINITY;
        for k in 1..2000u64 {
            let (lo, hi) = poisson_ci95(k);
            assert!(hi - lo <= prev + 1e-12, "width grew at k={k}");
            prev = hi - lo;
        }
    }

    #[test]
    fn descriptive_statistics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((stddev(&xs) - 1.2909944487358056).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!(mean(&[]).is_nan());
        assert_eq!(stddev(&[1.0]), 0.0);
    }
}
