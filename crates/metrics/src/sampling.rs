//! Adaptive sampling: stratified Neyman allocation and sequential early
//! stopping for campaign drivers.
//!
//! The paper's FIT/SDC figures are counting statistics, so most of a
//! fixed strike budget goes to confirming what the Poisson confidence
//! interval already knows. This module supplies the *decision* layer
//! shared by the beam and injection drivers:
//!
//! * [`SamplingConfig`] / [`SamplingPlan`] — the knob surface
//!   (`--adaptive`, `--ci-width`, `--strike-budget`);
//! * [`Planner`] — a per-cell sequential planner that allocates each
//!   round of strikes across fault-site strata (Neyman allocation from
//!   observed per-stratum SDC variance) and stops the cell once the
//!   relative `poisson_ci95` width crosses the target;
//! * [`largest_remainder`] — the deterministic integer apportionment
//!   both allocations use.
//!
//! Every decision is a pure function of completed-round statistics keyed
//! by strike index — never wall-clock, worker id, or arrival order — so
//! adaptive campaigns are byte-identical across thread counts and strike
//! batch sizes (DT001, DESIGN.md §4k).

use crate::stats::poisson_ci95;

/// Strikes per decision round. A round is the atomic unit of adaptive
/// execution: workers resolve a whole round in parallel, then the
/// planner recomputes the CI width and the next round's allocation from
/// the merged, index-sorted statistics. The constant is part of the
/// determinism contract — changing it changes adaptive results.
pub const ROUND_STRIKES: u32 = 32;

/// Default number of contiguous fault-site strata. Site spaces are laid
/// out region-major (operand regions first, then the compute chain), so
/// equal contiguous ranges track the operand/chain x lane structure.
pub const DEFAULT_STRATA: u32 = 4;

/// Tuning for one adaptive campaign cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingConfig {
    /// Target relative 95% CI width on the SDC count (the `hi - lo`
    /// multiplier spread of [`poisson_ci95`]). The cell stops once its
    /// width is at or below this target.
    pub ci_width: f64,
    /// Maximum strikes the cell may execute. `None` leaves the driver's
    /// fixed budget (the candidate count) as the cap.
    pub budget: Option<u64>,
    /// Number of contiguous site strata.
    pub strata: u32,
    /// Strikes per decision round.
    pub round: u32,
}

impl SamplingConfig {
    /// A config with the given CI-width target and default strata/round
    /// geometry.
    ///
    /// # Panics
    ///
    /// Panics if `ci_width` is not strictly positive and finite.
    pub fn new(ci_width: f64) -> SamplingConfig {
        assert!(
            ci_width.is_finite() && ci_width > 0.0,
            "ci-width must be positive, got {ci_width}"
        );
        SamplingConfig {
            ci_width,
            budget: None,
            strata: DEFAULT_STRATA,
            round: ROUND_STRIKES,
        }
    }

    /// Quick-scale preset: a loose 0.8 relative width, reached after a
    /// few tens of SDCs.
    pub fn quick() -> SamplingConfig {
        SamplingConfig::new(0.8)
    }

    /// Paper-scale preset: a 0.25 relative width (roughly 250 SDCs).
    pub fn paper() -> SamplingConfig {
        SamplingConfig::new(0.25)
    }

    /// Caps the cell's strike budget.
    pub fn with_budget(mut self, budget: u64) -> SamplingConfig {
        self.budget = Some(budget);
        self
    }

    /// Overrides the CI-width target.
    ///
    /// # Panics
    ///
    /// Panics if `ci_width` is not strictly positive and finite.
    pub fn with_ci_width(mut self, ci_width: f64) -> SamplingConfig {
        assert!(
            ci_width.is_finite() && ci_width > 0.0,
            "ci-width must be positive, got {ci_width}"
        );
        self.ci_width = ci_width;
        self
    }
}

/// How a campaign spends its strike budget.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SamplingPlan {
    /// The reference oracle: every candidate strike executes, uniform
    /// over the whole site space. Byte-identical to the pre-adaptive
    /// drivers.
    #[default]
    Fixed,
    /// Stratified allocation with sequential early stopping.
    Adaptive(SamplingConfig),
}

impl SamplingPlan {
    /// Whether this plan makes adaptive decisions.
    pub fn is_adaptive(&self) -> bool {
        matches!(self, SamplingPlan::Adaptive(_))
    }
}

/// Per-stratum tallies over completed rounds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StratumStats {
    /// Strikes executed in this stratum.
    pub executed: u64,
    /// SDC events observed in this stratum.
    pub events: u64,
}

impl StratumStats {
    /// Smoothed per-strike SDC standard deviation `sqrt(p(1-p))` with a
    /// half-event prior, so an all-quiet or all-loud stratum keeps a
    /// nonzero weight and can recover from an unlucky pilot.
    pub fn smoothed_sd(&self) -> f64 {
        let p = (self.events as f64 + 0.5) / (self.executed as f64 + 1.0);
        (p * (1.0 - p)).sqrt()
    }
}

/// Relative 95% CI width for a Poisson count: the `hi - lo` multiplier
/// spread of [`poisson_ci95`]. Zero events carry no rate information in
/// multiplier form, so the width is infinite — a cell with no SDCs runs
/// to its budget rather than stopping on a vacuous interval.
pub fn rel_ci_width(events: u64) -> f64 {
    if events == 0 {
        return f64::INFINITY;
    }
    let (lo, hi) = poisson_ci95(events);
    hi - lo
}

/// Splits `sites` into `k` contiguous `(lo, len)` strata; the remainder
/// of the division goes one site at a time to the lowest-index strata.
/// Strata beyond the site count come back empty (`len == 0`).
///
/// # Panics
///
/// Panics if `k` is zero.
pub fn strata_bounds(sites: u64, k: u32) -> Vec<(u64, u64)> {
    assert!(k > 0, "need at least one stratum");
    let k64 = u64::from(k);
    let base = sites / k64;
    let rem = sites % k64;
    let mut bounds = Vec::with_capacity(k as usize);
    let mut lo = 0u64;
    for h in 0..k64 {
        let len = base + u64::from(h < rem);
        bounds.push((lo, len));
        lo += len;
    }
    bounds
}

/// Apportions `total` integer strikes across strata proportionally to
/// `weights` by the largest-remainder method: floors first, then the
/// leftover strikes go to the largest fractional parts, ties broken by
/// the lower stratum index. Every stratum with positive weight gets at
/// least one strike when `total` allows. Fully deterministic — no RNG,
/// no iteration-order dependence.
pub fn largest_remainder(weights: &[f64], total: u64) -> Vec<u64> {
    let n = weights.len();
    if n == 0 || total == 0 {
        return vec![0; n];
    }
    let sum: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
    // Degenerate weights fall back to a uniform split.
    let uniform = vec![1.0; n];
    let (weights, sum) = if sum > 0.0 {
        (weights, sum)
    } else {
        (&uniform[..], n as f64)
    };
    let mut alloc = vec![0u64; n];
    let mut fracs: Vec<(f64, usize)> = Vec::with_capacity(n);
    let mut assigned = 0u64;
    for (h, w) in weights.iter().enumerate() {
        let w = if w.is_finite() && *w > 0.0 { *w } else { 0.0 };
        let ideal = total as f64 * w / sum;
        let floor = ideal.floor() as u64;
        alloc[h] = floor;
        assigned += floor;
        fracs.push((ideal - floor as f64, h));
    }
    // Stable sort by descending fraction; ties keep index order.
    fracs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut leftover = total.saturating_sub(assigned);
    for &(_, h) in &fracs {
        if leftover == 0 {
            break;
        }
        alloc[h] += 1;
        leftover -= 1;
    }
    // Floor of one strike per positively-weighted stratum, funded by the
    // largest allocations (ties: lower index donates last).
    let weighted: Vec<usize> = (0..n).filter(|&h| weights[h] > 0.0).collect();
    if total >= weighted.len() as u64 {
        for &h in &weighted {
            while alloc[h] == 0 {
                let donor = (0..n)
                    .filter(|&d| alloc[d] > 1)
                    .max_by(|&a, &b| alloc[a].cmp(&alloc[b]).then(b.cmp(&a)));
                match donor {
                    Some(d) => {
                        alloc[d] -= 1;
                        alloc[h] += 1;
                    }
                    None => break,
                }
            }
        }
    }
    alloc
}

/// The sequential planner for one adaptive campaign cell.
///
/// Drivers alternate [`Planner::next_round`] (get the slot -> stratum
/// schedule for the next round) with [`Planner::complete_round`] (feed
/// back per-stratum executed/event tallies). All state advances only at
/// round boundaries, from merged statistics — the planner never sees
/// wall-clock time, worker ids, or arrival order.
#[derive(Debug, Clone)]
pub struct Planner {
    config: SamplingConfig,
    bounds: Vec<(u64, u64)>,
    stats: Vec<StratumStats>,
    budget: u64,
    executed: u64,
    events: u64,
}

impl Planner {
    /// Creates a planner over `sites` fault sites with `budget` as the
    /// default strike cap. A budget set in the config *replaces* the
    /// default — it may exceed it, which is how cross-cell reallocation
    /// boosts an unconverged cell past its own candidate count.
    pub fn new(sites: u64, budget: u64, config: SamplingConfig) -> Planner {
        let budget = config.budget.unwrap_or(budget);
        let bounds = strata_bounds(sites, config.strata);
        let stats = vec![StratumStats::default(); bounds.len()];
        Planner {
            config,
            bounds,
            stats,
            budget,
            executed: 0,
            events: 0,
        }
    }

    /// The `(lo, len)` site range of each stratum.
    pub fn bounds(&self) -> &[(u64, u64)] {
        &self.bounds
    }

    /// Strikes executed over completed rounds.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// SDC events observed over completed rounds.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The strike cap in force for this cell.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Current relative CI width over the observed SDC count.
    pub fn ci_width(&self) -> f64 {
        rel_ci_width(self.events)
    }

    /// Whether the cell has reached its CI-width target.
    pub fn converged(&self) -> bool {
        self.ci_width() <= self.config.ci_width
    }

    /// Unbiased stratified per-strike SDC rate: `sum_h W_h * e_h / n_h`
    /// over sampled strata, with `W_h` the stratum's share of the site
    /// space. Strata not yet sampled contribute the rate of the sampled
    /// remainder (their weight is renormalized away).
    pub fn weighted_rate(&self) -> f64 {
        let sites: u64 = self.bounds.iter().map(|&(_, len)| len).sum();
        if sites == 0 || self.executed == 0 {
            return 0.0;
        }
        let mut rate = 0.0;
        let mut covered = 0.0;
        for (h, stats) in self.stats.iter().enumerate() {
            if stats.executed == 0 {
                continue;
            }
            let w = self.bounds[h].1 as f64 / sites as f64;
            rate += w * stats.events as f64 / stats.executed as f64;
            covered += w;
        }
        if covered > 0.0 {
            rate / covered
        } else {
            0.0
        }
    }

    /// The slot -> stratum schedule for the next round, or `None` once
    /// the cell converged or exhausted its budget. The pilot round is
    /// allocated proportionally to stratum size; every later round by
    /// Neyman allocation, `n_h` proportional to `W_h * s_h` with `s_h`
    /// the smoothed observed SDC standard deviation.
    pub fn next_round(&self) -> Option<Vec<usize>> {
        if self.converged() || self.executed >= self.budget {
            return None;
        }
        let n = u64::from(self.config.round).min(self.budget - self.executed);
        let weights: Vec<f64> = self
            .bounds
            .iter()
            .zip(&self.stats)
            .map(|(&(_, len), stats)| {
                let w = len as f64;
                if self.executed == 0 {
                    w
                } else {
                    w * stats.smoothed_sd()
                }
            })
            .collect();
        let alloc = largest_remainder(&weights, n);
        let mut schedule = Vec::with_capacity(n as usize);
        for (h, &count) in alloc.iter().enumerate() {
            schedule.extend(std::iter::repeat_n(h, count as usize));
        }
        Some(schedule)
    }

    /// Commits a completed round: `executed_by_stratum[h]` strikes ran in
    /// stratum `h` (usually the schedule's tally) and `events_by_stratum[h]`
    /// of them were SDCs.
    ///
    /// # Panics
    ///
    /// Panics if the slices do not have one entry per stratum.
    pub fn complete_round(&mut self, executed_by_stratum: &[u64], events_by_stratum: &[u64]) {
        assert_eq!(executed_by_stratum.len(), self.stats.len(), "stratum count");
        assert_eq!(events_by_stratum.len(), self.stats.len(), "stratum count");
        for (h, stats) in self.stats.iter_mut().enumerate() {
            stats.executed += executed_by_stratum[h];
            stats.events += events_by_stratum[h];
            self.executed += executed_by_stratum[h];
            self.events += events_by_stratum[h];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strata_cover_the_site_space_exactly() {
        for (sites, k) in [(100u64, 4u32), (103, 4), (7, 3), (2, 4), (1, 1)] {
            let bounds = strata_bounds(sites, k);
            assert_eq!(bounds.len(), k as usize);
            let mut expect_lo = 0;
            for &(lo, len) in &bounds {
                assert_eq!(lo, expect_lo, "sites={sites} k={k}");
                expect_lo += len;
            }
            assert_eq!(expect_lo, sites, "strata must partition the sites");
            // No stratum deviates from the even split by more than one.
            let lens: Vec<u64> = bounds.iter().map(|&(_, l)| l).collect();
            let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
            assert!(max - min <= 1);
        }
    }

    #[test]
    fn largest_remainder_is_exact_and_deterministic() {
        let w = [1.0, 1.0, 1.0, 1.0];
        assert_eq!(largest_remainder(&w, 32), vec![8, 8, 8, 8]);
        // Remainders go to the largest fractions, ties to lower index.
        assert_eq!(largest_remainder(&w, 30), vec![8, 8, 7, 7]);
        // Ideal shares 7.5 / 2.5 tie on the fraction; the lower index
        // takes the leftover strike.
        let w = [3.0, 1.0];
        assert_eq!(largest_remainder(&w, 10), vec![8, 2]);
        // Totals always add up.
        for total in 0..50u64 {
            let alloc = largest_remainder(&[0.3, 2.1, 0.0, 5.5], total);
            assert_eq!(alloc.iter().sum::<u64>(), total, "total={total}");
            assert_eq!(alloc[2], 0, "zero-weight stratum gets nothing");
        }
    }

    #[test]
    fn largest_remainder_floors_positive_weights() {
        // A tiny but positive weight still gets one strike when the
        // total allows — no stratum starves out of the pilot forever.
        let alloc = largest_remainder(&[100.0, 0.001, 100.0, 0.001], 32);
        assert!(alloc.iter().all(|&n| n >= 1), "{alloc:?}");
        assert_eq!(alloc.iter().sum::<u64>(), 32);
    }

    #[test]
    fn degenerate_weights_fall_back_to_uniform() {
        assert_eq!(largest_remainder(&[0.0, 0.0, 0.0], 9), vec![3, 3, 3]);
        assert_eq!(
            largest_remainder(&[f64::NAN, f64::INFINITY, -1.0], 3),
            vec![1, 1, 1]
        );
    }

    #[test]
    fn rel_ci_width_decreases_and_zero_is_infinite() {
        assert_eq!(rel_ci_width(0), f64::INFINITY);
        let mut prev = rel_ci_width(1);
        for k in 2..200u64 {
            let w = rel_ci_width(k);
            assert!(w <= prev + 1e-12, "width must not grow at k={k}");
            prev = w;
        }
        // ~30 events cross the loose quick target, ~250 the paper one.
        assert!(rel_ci_width(30) < 0.8 && rel_ci_width(20) > 0.7);
        assert!(rel_ci_width(250) < 0.25 && rel_ci_width(200) > 0.25);
    }

    #[test]
    fn planner_pilot_is_proportional_then_neyman_shifts_weight() {
        let config = SamplingConfig::new(0.1);
        let mut planner = Planner::new(400, 10_000, config);
        let pilot = planner.next_round().expect("pilot round");
        assert_eq!(pilot.len(), 32);
        let mut per = [0u64; 4];
        for &h in &pilot {
            per[h] += 1;
        }
        assert_eq!(per, [8, 8, 8, 8], "equal strata get a proportional pilot");

        // Stratum 2 shows all the variance: half its strikes are SDCs,
        // everything else is quiet. Neyman must favor it next round.
        planner.complete_round(&per, &[0, 0, 4, 0]);
        let round = planner.next_round().expect("second round");
        let mut per2 = [0u64; 4];
        for &h in &round {
            per2[h] += 1;
        }
        assert!(per2[2] > per2[0], "{per2:?}");
        assert!(per2[2] > per2[3], "{per2:?}");
        assert!(per2.iter().all(|&n| n >= 1), "floor of one: {per2:?}");
    }

    #[test]
    fn planner_stops_on_convergence_and_budget() {
        let config = SamplingConfig::new(0.8);
        let mut planner = Planner::new(100, 64, config);
        // Burn the budget without events: never converges, stops at 64.
        let r1 = planner.next_round().expect("round 1");
        planner.complete_round(&tally(&r1, 4), &[0; 4]);
        let r2 = planner.next_round().expect("round 2");
        assert_eq!(planner.executed(), 32);
        planner.complete_round(&tally(&r2, 4), &[0; 4]);
        assert_eq!(planner.executed(), 64);
        assert!(!planner.converged());
        assert!(planner.next_round().is_none(), "budget exhausted");

        // A loud cell converges long before the budget.
        let mut planner = Planner::new(100, 10_000, config);
        let r1 = planner.next_round().expect("round 1");
        planner.complete_round(&tally(&r1, 4), &[8, 8, 8, 8]);
        assert_eq!(planner.events(), 32);
        assert!(planner.converged(), "32 events beat a 0.8 width");
        assert!(planner.next_round().is_none());
    }

    #[test]
    fn weighted_rate_is_stratum_weighted() {
        let config = SamplingConfig::new(0.1);
        let mut planner = Planner::new(100, 1000, config);
        // Oversample stratum 0 at a high rate; the weighted estimate
        // must stay pinned to the per-stratum rates, not the pooled one.
        planner.complete_round(&[30, 10, 10, 10], &[30, 0, 0, 0]);
        let rate = planner.weighted_rate();
        assert!((rate - 0.25).abs() < 1e-12, "rate {rate}");
        // The raw pooled fraction would be 30/60 = 0.5 — biased.
        let pooled = planner.events() as f64 / planner.executed() as f64;
        assert!((pooled - 0.5).abs() < 1e-12);
    }

    #[test]
    fn config_budget_replaces_the_driver_default() {
        let config = SamplingConfig::new(0.01).with_budget(40);
        let planner = Planner::new(100, 1000, config);
        assert_eq!(planner.budget(), 40);
        // A boosted cell may exceed its own candidate count.
        let config = SamplingConfig::new(0.01).with_budget(5000);
        let planner = Planner::new(100, 1000, config);
        assert_eq!(planner.budget(), 5000);
        let planner = Planner::new(100, 1000, SamplingConfig::new(0.01));
        assert_eq!(planner.budget(), 1000, "unset budget keeps the default");
    }

    #[test]
    #[should_panic(expected = "ci-width must be positive")]
    fn zero_ci_width_rejected() {
        let _ = SamplingConfig::new(0.0);
    }

    fn tally(schedule: &[usize], k: usize) -> Vec<u64> {
        let mut per = vec![0u64; k];
        for &h in schedule {
            per[h] += 1;
        }
        per
    }
}
