//! Mean Executions Between Failures.

use crate::FitRate;
use std::fmt;

/// Mean Executions Between Failures: how many correct executions complete
/// before a failure, the paper's performance-reliability trade-off metric.
///
/// MEBF couples the error *rate* (FIT, per unit time) with the execution
/// *time*: `MEBF = 1 / (FIT x t_exec)` up to unit normalization — a slow
/// code at a given FIT completes fewer executions between failures than a
/// fast one (paper, Section 3.2, citing Rech et al. DSN 2014). Because
/// FIT is in arbitrary units, MEBF is too; only ratios matter.
///
/// # Example
///
/// ```rust
/// use mpr_metrics::{FitRate, Mebf};
///
/// let double = Mebf::from_fit(FitRate::from_au(10.0), 2.0);
/// let half = Mebf::from_fit(FitRate::from_au(5.0), 1.0);
/// // Half precision: half the FIT and half the time -> 4x the MEBF.
/// assert!((half.ratio_to(double) - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Mebf(f64);

impl Mebf {
    /// Computes MEBF from a FIT rate and the per-execution wall time in
    /// seconds.
    ///
    /// # Panics
    ///
    /// Panics if `exec_time_s` is not strictly positive and finite.
    pub fn from_fit(fit: FitRate, exec_time_s: f64) -> Mebf {
        assert!(
            exec_time_s.is_finite() && exec_time_s > 0.0,
            "execution time must be positive, got {exec_time_s}"
        );
        if fit.au() == 0.0 {
            return Mebf(f64::INFINITY);
        }
        // Failures per hour (a.u.) x hours per execution = failures per
        // execution; MEBF is its reciprocal.
        let failures_per_exec = fit.au() * (exec_time_s / 3600.0);
        Mebf(1.0 / failures_per_exec)
    }

    /// Executions completed between failures (arbitrary units).
    pub fn executions(&self) -> f64 {
        self.0
    }

    /// Ratio of this MEBF to a baseline.
    pub fn ratio_to(&self, baseline: Mebf) -> f64 {
        self.0 / baseline.0
    }

    /// Relative improvement over a baseline, e.g. `0.33` for "completes
    /// 33% more executions between failures".
    pub fn improvement_over(&self, baseline: Mebf) -> f64 {
        self.ratio_to(baseline) - 1.0
    }
}

impl fmt::Display for Mebf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_infinite() {
            f.write_str("inf executions (a.u.)")
        } else {
            write!(f, "{:.3e} executions (a.u.)", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mebf_decreases_with_fit_and_time() {
        let base = Mebf::from_fit(FitRate::from_au(1.0), 1.0);
        let worse_fit = Mebf::from_fit(FitRate::from_au(2.0), 1.0);
        let slower = Mebf::from_fit(FitRate::from_au(1.0), 2.0);
        assert!(worse_fit < base);
        assert!(slower < base);
        assert_eq!(worse_fit, slower); // FIT and time trade off symmetrically
    }

    #[test]
    fn zero_fit_means_infinite_mebf() {
        let m = Mebf::from_fit(FitRate::from_au(0.0), 1.0);
        assert!(m.executions().is_infinite());
    }

    #[test]
    fn improvement_is_ratio_minus_one() {
        let a = Mebf::from_fit(FitRate::from_au(1.0), 1.0);
        let b = Mebf::from_fit(FitRate::from_au(1.0), 1.33);
        assert!((b.improvement_over(a) - (1.0 / 1.33 - 1.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "execution time must be positive")]
    fn rejects_nonpositive_time() {
        let _ = Mebf::from_fit(FitRate::from_au(1.0), 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        let m = Mebf::from_fit(FitRate::from_au(2.0), 0.5);
        assert!(m.to_string().contains("executions"));
    }
}
