//! Log-binned severity histograms with text rendering.

use std::fmt;

/// A logarithmically binned histogram of SDC severities (relative
/// errors), rendered as text bars — the at-a-glance companion to a
/// [`crate::TreCurve`].
///
/// # Example
///
/// ```rust
/// use mpr_metrics::SeverityHistogram;
///
/// let h = SeverityHistogram::from_errors(&[1e-6, 1e-6, 2e-3, 0.5, f64::INFINITY]);
/// assert_eq!(h.total(), 5);
/// let text = h.to_string();
/// assert!(text.contains("1e-6"));
/// assert!(text.contains("inf"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SeverityHistogram {
    /// Count per decade bin; bin `i` covers `[10^(i+MIN_EXP), 10^(i+1+MIN_EXP))`.
    bins: Vec<u64>,
    /// Errors below the first bin (including exact zero).
    underflow: u64,
    /// Non-finite severities (NaN/infinity — unconditionally critical).
    infinite: u64,
}

/// Exponent of the first bin's lower edge.
const MIN_EXP: i32 = -9;
/// Exponent one past the last bin's upper edge.
const MAX_EXP: i32 = 1;

impl SeverityHistogram {
    /// Bins the given relative errors by decade from `1e-9` to `1e1`.
    pub fn from_errors(errors: &[f64]) -> SeverityHistogram {
        let nbins = (MAX_EXP - MIN_EXP) as usize;
        let mut h = SeverityHistogram {
            bins: vec![0; nbins],
            underflow: 0,
            infinite: 0,
        };
        for &e in errors {
            if !e.is_finite() {
                h.infinite += 1;
            } else if e < 10f64.powi(MIN_EXP) {
                h.underflow += 1;
            } else {
                let idx = (e.log10().floor() as i32 - MIN_EXP).clamp(0, nbins as i32 - 1) as usize;
                h.bins[idx] += 1;
            }
        }
        h
    }

    /// Total severities binned.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.infinite
    }

    /// Count of non-finite severities.
    pub fn infinite(&self) -> u64 {
        self.infinite
    }

    /// The decade bin edges and counts, low to high.
    pub fn decades(&self) -> Vec<(f64, u64)> {
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| (10f64.powi(MIN_EXP + i as i32), c))
            .collect()
    }
}

impl fmt::Display for SeverityHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let max = self
            .bins
            .iter()
            .chain([&self.underflow, &self.infinite])
            .cloned()
            .max()
            .unwrap_or(0)
            .max(1);
        let bar = |count: u64| "#".repeat(((count * 40) / max) as usize);
        writeln!(f, "{:>8}  {:>7}  distribution", "severity", "count")?;
        writeln!(
            f,
            "{:>8}  {:>7}  {}",
            "<1e-9",
            self.underflow,
            bar(self.underflow)
        )?;
        for (edge, count) in self.decades() {
            writeln!(
                f,
                "{:>8}  {:>7}  {}",
                format!("{edge:.0e}"),
                count,
                bar(count)
            )?;
        }
        writeln!(
            f,
            "{:>8}  {:>7}  {}",
            "inf",
            self.infinite,
            bar(self.infinite)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_land_in_the_right_decade() {
        let h = SeverityHistogram::from_errors(&[1.5e-6, 9.9e-6, 1e-5, 0.5]);
        let decades = h.decades();
        let find = |edge: f64| {
            decades
                .iter()
                .find(|(e, _)| (*e - edge).abs() < edge * 0.01)
                .unwrap()
                .1
        };
        assert_eq!(find(1e-6), 2);
        assert_eq!(find(1e-5), 1);
        assert_eq!(find(1e-1), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn extremes_are_captured() {
        let h = SeverityHistogram::from_errors(&[0.0, 1e-30, f64::INFINITY, f64::NAN, 100.0]);
        assert_eq!(h.infinite(), 2);
        assert_eq!(h.total(), 5);
        // 100.0 clamps into the top decade.
        assert_eq!(h.decades().last().unwrap().1, 1);
    }

    #[test]
    fn empty_histogram_renders() {
        let h = SeverityHistogram::from_errors(&[]);
        assert_eq!(h.total(), 0);
        assert!(h.to_string().contains("distribution"));
    }

    #[test]
    fn display_scales_bars_to_the_mode() {
        let errors: Vec<f64> = std::iter::repeat_n(1e-3, 40).chain([0.5]).collect();
        let text = SeverityHistogram::from_errors(&errors).to_string();
        let modal_line = text.lines().find(|l| l.contains("1e-3")).unwrap();
        assert!(modal_line.matches('#').count() == 40);
    }
}
