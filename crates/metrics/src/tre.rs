//! Tolerated Relative Error analysis.

use crate::FitRate;

/// The severity distribution of a campaign's SDC events, queried as "what
/// fraction of errors would a user tolerating relative error `t` still
/// count as failures?" (paper, Section 3.2 and Figures 4, 8, 11).
///
/// Each SDC event contributes its **worst** per-element relative error;
/// an event is tolerable at threshold `t` when that worst error is `<= t`.
///
/// # Example
///
/// ```rust
/// use mpr_metrics::TreCurve;
///
/// let curve = TreCurve::from_errors(vec![1e-5, 1e-4, 1e-2, f64::INFINITY]);
/// assert_eq!(curve.surviving_fraction(0.0), 1.0);   // strict users see all 4
/// assert_eq!(curve.surviving_fraction(1e-3), 0.5);  // two become tolerable
/// assert_eq!(curve.surviving_fraction(1.0), 0.25);  // NaN/inf never tolerable
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TreCurve {
    /// Worst relative error of each SDC event, sorted ascending.
    errors: Vec<f64>,
}

impl TreCurve {
    /// Builds a curve from the per-event worst relative errors.
    /// NaN severities are treated as infinitely wrong.
    pub fn from_errors(mut errors: Vec<f64>) -> TreCurve {
        for e in &mut errors {
            if e.is_nan() {
                *e = f64::INFINITY;
            }
        }
        errors.sort_by(f64::total_cmp);
        TreCurve { errors }
    }

    /// Number of SDC events behind the curve.
    pub fn event_count(&self) -> usize {
        self.errors.len()
    }

    /// Fraction of events still counted as errors at tolerance `tre`
    /// (an event survives when its severity is strictly greater).
    /// With no events the curve is identically zero.
    pub fn surviving_fraction(&self, tre: f64) -> f64 {
        if self.errors.is_empty() {
            return 0.0;
        }
        let tolerable = self.errors.partition_point(|&e| e <= tre);
        (self.errors.len() - tolerable) as f64 / self.errors.len() as f64
    }

    /// Fraction of events that become tolerable at tolerance `tre` — the
    /// "FIT reduction" the paper plots.
    pub fn tolerable_fraction(&self, tre: f64) -> f64 {
        1.0 - self.surviving_fraction(tre)
    }

    /// The FIT rate that remains when outputs within `tre` are accepted.
    pub fn surviving_fit(&self, base: FitRate, tre: f64) -> FitRate {
        base.scaled(self.surviving_fraction(tre))
    }

    /// Samples the curve on a standard log-spaced tolerance grid
    /// (the thresholds the paper's figures use: 0, then 10^-6 … 10^-1).
    pub fn sample_standard_grid(&self) -> Vec<(f64, f64)> {
        Self::standard_grid()
            .iter()
            .map(|&t| (t, self.surviving_fraction(t)))
            .collect()
    }

    /// The standard tolerance grid: `0` plus six decades from 1e-6 to 0.1.
    pub fn standard_grid() -> [f64; 7] {
        [0.0, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_is_monotone_nonincreasing() {
        let curve = TreCurve::from_errors(vec![1e-6, 5e-4, 5e-4, 0.3, 2.0]);
        let samples = curve.sample_standard_grid();
        for w in samples.windows(2) {
            assert!(w[1].1 <= w[0].1, "survival must not increase with TRE");
        }
    }

    #[test]
    fn empty_curve_is_zero() {
        let curve = TreCurve::from_errors(vec![]);
        assert_eq!(curve.surviving_fraction(0.0), 0.0);
        assert_eq!(curve.event_count(), 0);
    }

    #[test]
    fn boundary_is_inclusive_for_tolerance() {
        // An error exactly at the threshold is tolerated (|err| <= t).
        let curve = TreCurve::from_errors(vec![0.1]);
        assert_eq!(curve.surviving_fraction(0.1), 0.0);
        assert_eq!(curve.surviving_fraction(0.0999), 1.0);
    }

    #[test]
    fn nan_severity_never_tolerated() {
        let curve = TreCurve::from_errors(vec![f64::NAN]);
        assert_eq!(curve.surviving_fraction(1e9), 1.0);
    }

    #[test]
    fn surviving_fit_scales_base() {
        let curve = TreCurve::from_errors(vec![1e-5, 1e-1]);
        let base = FitRate::from_au(10.0);
        assert_eq!(curve.surviving_fit(base, 1e-3).au(), 5.0);
        assert_eq!(curve.surviving_fit(base, 0.0).au(), 10.0);
    }

    #[test]
    fn zero_severity_events_are_tolerable_even_at_zero() {
        // An "SDC" whose numeric severity is 0 (e.g. -0.0 vs +0.0 bit
        // mismatch) is tolerable at TRE 0.
        let curve = TreCurve::from_errors(vec![0.0, 0.5]);
        assert_eq!(curve.surviving_fraction(0.0), 0.5);
    }
}
