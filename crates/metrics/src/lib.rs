//! # mpr-metrics
//!
//! The reliability arithmetic of the study: every quantity the paper
//! reports is computed here from raw event counts.
//!
//! * [`Outcome`] / [`OutcomeCounts`] — the three fates of a transient
//!   fault (masked, Silent Data Corruption, Detected Unrecoverable Error)
//!   and their tallies.
//! * [`CrossSection`] and [`FitRate`] — events per unit fluence from a
//!   beam campaign, scaled to Failures-In-Time at the JEDEC terrestrial
//!   reference flux. Reported in arbitrary units, like the paper.
//! * [`Mebf`] — Mean Executions Between Failures, the paper's
//!   performance-reliability trade-off metric (Section 3.2).
//! * [`TreCurve`] — FIT-rate reduction as a function of the Tolerated
//!   Relative Error.
//! * [`Vulnerability`] — AVF/PVF estimates from injection campaigns with
//!   Wilson confidence intervals.
//! * [`sampling`] — stratified Neyman allocation and sequential early
//!   stopping, the decision layer of the adaptive campaign drivers.
//! * [`Table`] — fixed-width text tables used by every experiment report.
//!
//! # Example
//!
//! ```rust
//! use mpr_metrics::{CrossSection, Mebf, TreCurve};
//!
//! let xs = CrossSection::new(120, 4.0e10); // 120 SDCs over 4e10 n/cm^2
//! let fit = xs.fit_au();
//! let mebf = Mebf::from_fit(fit, 2.1); // 2.1 s per execution
//! assert!(mebf.executions() > 0.0);
//!
//! let curve = TreCurve::from_errors(vec![1e-6, 1e-4, 0.02, 0.5]);
//! assert_eq!(curve.surviving_fraction(1e-3), 0.5); // two of four exceed 0.1%
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod fit;
mod histogram;
mod mebf;
mod outcome;
mod report;
pub mod sampling;
pub mod stats;
mod tre;
mod vulnerability;

pub use fit::{CrossSection, FitRate};
pub use histogram::SeverityHistogram;
pub use mebf::Mebf;
pub use outcome::{Outcome, OutcomeCounts};
pub use report::{Table, TableError};
pub use sampling::{SamplingConfig, SamplingPlan};
pub use tre::TreCurve;
pub use vulnerability::Vulnerability;

/// JEDEC JESD89A reference flux for high-energy terrestrial neutrons at
/// sea level (New York City), in n/(cm^2 * h). Quoted in the paper as
/// `13 n/(cm^2 x h)`.
pub const TERRESTRIAL_FLUX_N_CM2_H: f64 = 13.0;
