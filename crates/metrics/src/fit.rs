//! Cross sections and Failures-In-Time rates.

use crate::stats::poisson_ci95_counts;
use crate::TERRESTRIAL_FLUX_N_CM2_H;
use std::fmt;

/// An observed event count over an accumulated particle fluence — the raw
/// result of a beam campaign for one (device, benchmark, precision)
/// configuration.
///
/// The quotient `events / fluence` is the device cross section for that
/// event class; multiplying by the terrestrial flux gives the FIT rate.
/// Like the paper, the crate only ever *reports* FIT in arbitrary units
/// ([`CrossSection::fit_au`]), so the absolute calibration never appears
/// in any output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossSection {
    events: u64,
    fluence: f64,
}

impl CrossSection {
    /// Creates a cross-section observation.
    ///
    /// # Panics
    ///
    /// Panics if `fluence` is not strictly positive and finite.
    pub fn new(events: u64, fluence: f64) -> CrossSection {
        assert!(
            fluence.is_finite() && fluence > 0.0,
            "fluence must be positive, got {fluence}"
        );
        CrossSection { events, fluence }
    }

    /// Number of observed events.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Accumulated fluence (particles per cm^2, simulation units).
    pub fn fluence(&self) -> f64 {
        self.fluence
    }

    /// Point estimate of the cross section (events per unit fluence).
    pub fn rate(&self) -> f64 {
        self.events as f64 / self.fluence
    }

    /// FIT rate in arbitrary units: cross section scaled by the JEDEC
    /// terrestrial flux and the FIT definition (failures per 1e9 hours).
    /// Only ratios of these values are meaningful, exactly as in the paper.
    pub fn fit_au(&self) -> FitRate {
        FitRate::from_au(self.rate() * TERRESTRIAL_FLUX_N_CM2_H * 1e9)
    }

    /// 95% confidence interval on the FIT estimate (Poisson counting
    /// statistics), in the same arbitrary units.
    ///
    /// Derived from absolute event-count bounds over the fluence, so a
    /// campaign that observed *zero* events still reports a positive
    /// upper bound (the exact 3.7-count limit) instead of a degenerate
    /// `(0, 0)` interval.
    pub fn fit_ci95(&self) -> (FitRate, FitRate) {
        let (lo, hi) = poisson_ci95_counts(self.events);
        let per_count = TERRESTRIAL_FLUX_N_CM2_H * 1e9 / self.fluence;
        (
            FitRate::from_au(lo * per_count),
            FitRate::from_au(hi * per_count),
        )
    }

    /// Pools two campaigns over the same configuration.
    pub fn merge(&self, other: &CrossSection) -> CrossSection {
        CrossSection::new(self.events + other.events, self.fluence + other.fluence)
    }
}

/// A Failures-In-Time rate in arbitrary units.
///
/// Arbitrary units mean: values from the same study can be compared and
/// divided, but carry no absolute physical meaning — mirroring the paper's
/// normalization "to prevent the leakage of business-sensitive data".
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct FitRate(f64);

impl FitRate {
    /// Wraps a raw arbitrary-unit value.
    ///
    /// # Panics
    ///
    /// Panics if the value is negative or not finite.
    pub fn from_au(au: f64) -> FitRate {
        assert!(au.is_finite() && au >= 0.0, "FIT must be >= 0, got {au}");
        FitRate(au)
    }

    /// The raw arbitrary-unit value.
    pub fn au(&self) -> f64 {
        self.0
    }

    /// Ratio of this rate to a baseline (e.g. half vs double precision).
    /// Returns infinity for a zero baseline with a nonzero numerator.
    pub fn ratio_to(&self, baseline: FitRate) -> f64 {
        if baseline.0 == 0.0 {
            if self.0 == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.0 / baseline.0
        }
    }

    /// Scales the rate by a survival fraction (used by TRE analysis).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn scaled(&self, fraction: f64) -> FitRate {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0,1], got {fraction}"
        );
        FitRate(self.0 * fraction)
    }
}

impl fmt::Display for FitRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} a.u.", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_section_rate_and_fit() {
        let xs = CrossSection::new(100, 1e10);
        assert_eq!(xs.rate(), 1e-8);
        let fit = xs.fit_au();
        assert!((fit.au() - 1e-8 * 13.0 * 1e9).abs() < 1e-9);
    }

    #[test]
    fn ci_brackets_point_estimate() {
        let xs = CrossSection::new(47, 5e9);
        let (lo, hi) = xs.fit_ci95();
        let point = xs.fit_au();
        assert!(lo.au() < point.au() && point.au() < hi.au());
    }

    #[test]
    fn zero_event_campaign_bounds_fit_from_above() {
        // Regression: the multiplier form of the interval collapsed a
        // zero-count campaign to (0, 0), claiming an exactly-zero FIT
        // with certainty. The count form keeps the 3.7-event limit.
        let xs = CrossSection::new(0, 5e9);
        assert_eq!(xs.fit_au().au(), 0.0);
        let (lo, hi) = xs.fit_ci95();
        assert_eq!(lo.au(), 0.0);
        assert!(hi.au() > 0.0, "zero events must still bound the rate");
        let expected = 3.7 / 5e9 * TERRESTRIAL_FLUX_N_CM2_H * 1e9;
        assert!((hi.au() - expected).abs() < 1e-12 * expected.max(1.0));
    }

    #[test]
    fn single_event_campaign_keeps_positive_lower_bound() {
        // One event: lo = (1 - z/2)^2 counts, hi = (1 + z/2)^2 counts,
        // both scaled by flux / fluence. The interval must bracket the
        // point estimate and keep a strictly positive (if tiny) floor.
        let xs = CrossSection::new(1, 2e9);
        let (lo, hi) = xs.fit_ci95();
        let point = xs.fit_au();
        assert!(lo.au() > 0.0, "single event keeps a nonzero lower bound");
        assert!(lo.au() < point.au() && point.au() < hi.au());
        let per_count = TERRESTRIAL_FLUX_N_CM2_H * 1e9 / 2e9;
        assert!((hi.au() - (1.0 + 1.959964f64 / 2.0).powi(2) * per_count).abs() < 1e-9);
    }

    #[test]
    fn large_count_ci_narrows_toward_the_point_estimate() {
        // 1e6 events: the relative half-width collapses to ~z/sqrt(k),
        // so the bounds hug the point estimate to within 0.3%.
        let xs = CrossSection::new(1_000_000, 1e12);
        let (lo, hi) = xs.fit_ci95();
        let point = xs.fit_au().au();
        assert!((hi.au() - lo.au()) / point < 0.005);
        assert!(lo.au() < point && point < hi.au());
    }

    #[test]
    fn merge_pools_events_and_fluence() {
        let a = CrossSection::new(10, 1e9);
        let b = CrossSection::new(30, 3e9);
        let m = a.merge(&b);
        assert_eq!(m.events(), 40);
        assert_eq!(m.fluence(), 4e9);
        assert_eq!(m.rate(), 1e-8);
    }

    #[test]
    #[should_panic(expected = "fluence must be positive")]
    fn zero_fluence_rejected() {
        let _ = CrossSection::new(1, 0.0);
    }

    #[test]
    fn fit_ratio_semantics() {
        let a = FitRate::from_au(4.0);
        let b = FitRate::from_au(2.0);
        assert_eq!(a.ratio_to(b), 2.0);
        assert_eq!(b.ratio_to(a), 0.5);
        assert_eq!(FitRate::from_au(0.0).ratio_to(FitRate::from_au(0.0)), 1.0);
        assert_eq!(a.ratio_to(FitRate::from_au(0.0)), f64::INFINITY);
    }

    #[test]
    fn fit_scaling_for_tre() {
        let fit = FitRate::from_au(10.0);
        assert_eq!(fit.scaled(0.37).au(), 3.7);
        assert_eq!(fit.scaled(0.0).au(), 0.0);
    }

    #[test]
    #[should_panic(expected = "fraction must be in [0,1]")]
    fn fit_scaling_rejects_out_of_range() {
        let _ = FitRate::from_au(1.0).scaled(1.5);
    }

    #[test]
    fn display_formats_units() {
        assert_eq!(FitRate::from_au(1.5).to_string(), "1.500 a.u.");
    }
}
