//! Fixed-width text tables for experiment reports.

use std::fmt;

/// Arity mismatch from fallible [`Table`] construction: a row whose cell
/// count differs from the table's header count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableError {
    expected: usize,
    got: usize,
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "row has {} cells, table has {} columns",
            self.got, self.expected
        )
    }
}

impl std::error::Error for TableError {}

/// A simple aligned text table with an optional title, used by every
/// table/figure regenerator in `mpr-core` and by the examples.
///
/// # Example
///
/// ```rust
/// use mpr_metrics::Table;
///
/// let mut t = Table::new(vec!["Benchmark", "Double", "Single", "Half"]);
/// t.row(vec!["MxM".into(), "2.730".into(), "2.100".into(), "2.310".into()]);
/// let text = t.to_string();
/// assert!(text.contains("MxM"));
/// assert!(text.lines().count() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: Option<String>,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        Table {
            title: None,
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Sets a title printed above the table.
    pub fn with_title<S: Into<String>>(mut self, title: S) -> Table {
        self.title = Some(title.into());
        self
    }

    /// Appends a row, rejecting arity mismatches as a value.
    ///
    /// # Errors
    ///
    /// Returns a [`TableError`] when the row length differs from the
    /// header count.
    pub fn try_row(&mut self, cells: Vec<String>) -> Result<&mut Table, TableError> {
        if cells.len() != self.headers.len() {
            return Err(TableError {
                expected: self.headers.len(),
                got: cells.len(),
            });
        }
        self.rows.push(cells);
        Ok(self)
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header count; the
    /// figure regenerators build rows with statically known arity, so a
    /// mismatch is a programming error. Use [`Table::try_row`] to handle
    /// it as a value instead.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        if let Err(e) = self.try_row(cells) {
            panic!("{e}");
        }
        self
    }

    /// Convenience: appends a row of displayable values.
    pub fn row_display<D: fmt::Display>(&mut self, cells: Vec<D>) -> &mut Table {
        self.row(cells.iter().map(|c| c.to_string()).collect())
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders as CSV (no quoting; cells must not contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        if let Some(title) = &self.title {
            writeln!(f, "{title}")?;
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for i in 0..ncols {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:<width$}", cells[i], width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * ncols.saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]).with_title("Demo");
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer-name".into(), "2".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "Demo");
        assert!(lines[1].starts_with("name"));
        // Both data rows align the value column at the same offset.
        let off_a = lines[3].find('1').unwrap();
        let off_b = lines[4].find('2').unwrap();
        assert_eq!(off_a, off_b);
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new(vec!["x", "y"]);
        t.row_display(vec![1, 2]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    #[should_panic(expected = "row has 1 cells")]
    fn wrong_arity_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
