//! Fault outcome classification.

use std::fmt;

/// The three fates of a transient fault (paper, Section 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The fault had no effect on the program output.
    Masked,
    /// Silent Data Corruption: the program completed with a wrong output.
    Sdc,
    /// Detected Unrecoverable Error: crash, hang, or uncorrectable memory
    /// event caught by the watchdog or machine-check hardware.
    Due,
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Outcome::Masked => "masked",
            Outcome::Sdc => "SDC",
            Outcome::Due => "DUE",
        })
    }
}

/// Tallies of fault outcomes from an injection or beam campaign.
///
/// # Example
///
/// ```rust
/// use mpr_metrics::{Outcome, OutcomeCounts};
///
/// let mut counts = OutcomeCounts::default();
/// counts.record(Outcome::Masked);
/// counts.record(Outcome::Sdc);
/// counts.record(Outcome::Sdc);
/// counts.record(Outcome::Due);
/// assert_eq!(counts.total(), 4);
/// assert_eq!(counts.sdc_fraction(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Faults with no observable effect.
    pub masked: u64,
    /// Silent data corruptions.
    pub sdc: u64,
    /// Detected unrecoverable errors.
    pub due: u64,
}

impl OutcomeCounts {
    /// Creates counts directly from the three tallies.
    pub fn new(masked: u64, sdc: u64, due: u64) -> OutcomeCounts {
        OutcomeCounts { masked, sdc, due }
    }

    /// Records one outcome.
    pub fn record(&mut self, outcome: Outcome) {
        match outcome {
            Outcome::Masked => self.masked += 1,
            Outcome::Sdc => self.sdc += 1,
            Outcome::Due => self.due += 1,
        }
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.masked + self.sdc + self.due
    }

    /// Fraction of faults that became SDCs (the AVF/PVF point estimate).
    /// Zero observations yield 0.
    pub fn sdc_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.sdc as f64 / self.total() as f64
        }
    }

    /// Fraction of faults that became DUEs.
    pub fn due_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.due as f64 / self.total() as f64
        }
    }

    /// Fraction with no observable effect.
    pub fn masked_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.masked as f64 / self.total() as f64
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: OutcomeCounts) {
        self.masked += other.masked;
        self.sdc += other.sdc;
        self.due += other.due;
    }
}

impl std::iter::FromIterator<Outcome> for OutcomeCounts {
    fn from_iter<I: IntoIterator<Item = Outcome>>(iter: I) -> OutcomeCounts {
        let mut counts = OutcomeCounts::default();
        for o in iter {
            counts.record(o);
        }
        counts
    }
}

impl std::iter::Sum for OutcomeCounts {
    fn sum<I: Iterator<Item = OutcomeCounts>>(iter: I) -> OutcomeCounts {
        let mut acc = OutcomeCounts::default();
        for c in iter {
            acc.merge(c);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_partition_unity() {
        let c = OutcomeCounts::new(70, 20, 10);
        let sum = c.masked_fraction() + c.sdc_fraction() + c.due_fraction();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(c.total(), 100);
    }

    #[test]
    fn empty_counts_are_safe() {
        let c = OutcomeCounts::default();
        assert_eq!(c.total(), 0);
        assert_eq!(c.sdc_fraction(), 0.0);
        assert_eq!(c.due_fraction(), 0.0);
        assert_eq!(c.masked_fraction(), 0.0);
    }

    #[test]
    fn from_iterator_and_merge() {
        let counts: OutcomeCounts = [Outcome::Sdc, Outcome::Masked, Outcome::Sdc]
            .into_iter()
            .collect();
        assert_eq!(counts, OutcomeCounts::new(1, 2, 0));

        let total: OutcomeCounts = vec![counts, OutcomeCounts::new(0, 0, 3)].into_iter().sum();
        assert_eq!(total, OutcomeCounts::new(1, 2, 3));
    }

    #[test]
    fn display_names() {
        assert_eq!(Outcome::Masked.to_string(), "masked");
        assert_eq!(Outcome::Sdc.to_string(), "SDC");
        assert_eq!(Outcome::Due.to_string(), "DUE");
    }
}
