//! Property tests for the metric invariants.

use mpr_metrics::stats::{poisson_ci95, wilson_ci95};
use mpr_metrics::{CrossSection, FitRate, Mebf, OutcomeCounts, TreCurve};
use proptest::prelude::*;

proptest! {
    #[test]
    fn tre_curve_is_monotone_nonincreasing(
        errors in proptest::collection::vec(0.0f64..10.0, 0..200),
        a in 0.0f64..1.0,
        b in 0.0f64..1.0,
    ) {
        let curve = TreCurve::from_errors(errors);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(curve.surviving_fraction(lo) >= curve.surviving_fraction(hi));
        prop_assert!((0.0..=1.0).contains(&curve.surviving_fraction(a)));
        // Survival + tolerable always partition unity.
        let s = curve.surviving_fraction(a) + curve.tolerable_fraction(a);
        if curve.event_count() > 0 {
            prop_assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn tre_curve_extremes(errors in proptest::collection::vec(1e-12f64..100.0, 1..100)) {
        let curve = TreCurve::from_errors(errors.clone());
        // Below the smallest error everything survives; at or above the
        // largest nothing does.
        let min = errors.iter().cloned().fold(f64::MAX, f64::min);
        let max = errors.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert_eq!(curve.surviving_fraction(min * 0.5), 1.0);
        prop_assert_eq!(curve.surviving_fraction(max), 0.0);
    }

    #[test]
    fn wilson_interval_is_ordered_and_bounded(s in 0u64..5000, extra in 0u64..5000) {
        let n = s + extra;
        let (lo, hi) = wilson_ci95(s, n);
        prop_assert!(lo <= hi);
        prop_assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        if n > 0 {
            let p = s as f64 / n as f64;
            prop_assert!(lo <= p + 1e-12 && p <= hi + 1e-12);
        }
    }

    #[test]
    fn poisson_interval_tightens_with_counts(k in 1u64..100000) {
        let (lo, hi) = poisson_ci95(k);
        let (lo2, hi2) = poisson_ci95(k * 4);
        prop_assert!(lo < 1.0 && 1.0 < hi);
        prop_assert!(hi2 - lo2 <= hi - lo + 1e-12);
    }

    #[test]
    fn poisson_width_is_monotone_nonincreasing(k in 1u64..1_000_000) {
        // Adjacent counts: one more event never widens the interval.
        // This is what sequential early stopping leans on — once a cell
        // crosses the width target it can never un-converge.
        let (lo, hi) = poisson_ci95(k);
        let (lo2, hi2) = poisson_ci95(k + 1);
        prop_assert!(hi2 - lo2 <= hi - lo + 1e-12, "width grew at k={k}");
        // CrossSection::fit_ci95 inherits the same monotonicity at a
        // fixed fluence.
        let a = CrossSection::new(k, 1e9).fit_ci95();
        let b = CrossSection::new(k + 1, 1e9).fit_ci95();
        let (wa, wb) = (a.1.au() - a.0.au(), b.1.au() - b.0.au());
        // Widths in counts scale by k, so compare relative widths.
        let point_a = CrossSection::new(k, 1e9).fit_au().au();
        let point_b = CrossSection::new(k + 1, 1e9).fit_au().au();
        prop_assert!(wb / point_b <= wa / point_a + 1e-12);
    }

    #[test]
    fn sampling_allocation_is_exact_and_floored(
        weights in proptest::collection::vec(0.0f64..100.0, 1..8),
        total in 0u64..500,
    ) {
        let alloc = mpr_metrics::sampling::largest_remainder(&weights, total);
        prop_assert_eq!(alloc.iter().sum::<u64>(), total);
        let positive = weights.iter().filter(|w| **w > 0.0).count() as u64;
        if total >= positive && positive > 0 {
            for (h, w) in weights.iter().enumerate() {
                if *w > 0.0 {
                    prop_assert!(alloc[h] >= 1, "stratum {h} starved: {alloc:?}");
                }
            }
        }
    }

    #[test]
    fn cross_section_merge_is_event_weighted(
        e1 in 0u64..1000, f1 in 1.0f64..1e6,
        e2 in 0u64..1000, f2 in 1.0f64..1e6,
    ) {
        let a = CrossSection::new(e1, f1);
        let b = CrossSection::new(e2, f2);
        let m = a.merge(&b);
        prop_assert_eq!(m.events(), e1 + e2);
        // The pooled rate lies between the two rates (or equals both).
        let (rmin, rmax) = if a.rate() <= b.rate() {
            (a.rate(), b.rate())
        } else {
            (b.rate(), a.rate())
        };
        prop_assert!(m.rate() >= rmin - 1e-18 && m.rate() <= rmax + 1e-18);
    }

    #[test]
    fn mebf_is_antitone_in_fit_and_time(
        fit1 in 1e-3f64..1e3, fit2 in 1e-3f64..1e3,
        t1 in 1e-3f64..1e3, t2 in 1e-3f64..1e3,
    ) {
        let m11 = Mebf::from_fit(FitRate::from_au(fit1), t1);
        let m21 = Mebf::from_fit(FitRate::from_au(fit2), t1);
        if fit1 < fit2 {
            prop_assert!(m11 > m21);
        }
        let m12 = Mebf::from_fit(FitRate::from_au(fit1), t2);
        if t1 < t2 {
            prop_assert!(m11 > m12);
        }
        // MEBF depends only on the product fit x time.
        let a = Mebf::from_fit(FitRate::from_au(fit1 * 2.0), t1);
        let b = Mebf::from_fit(FitRate::from_au(fit1), t1 * 2.0);
        prop_assert!((a.executions() / b.executions() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn outcome_counts_sum_matches_parts(
        parts in proptest::collection::vec((0u64..100, 0u64..100, 0u64..100), 0..20)
    ) {
        let total: OutcomeCounts = parts
            .iter()
            .map(|&(m, s, d)| OutcomeCounts::new(m, s, d))
            .sum();
        let expect = parts.iter().fold((0, 0, 0), |acc, &(m, s, d)| {
            (acc.0 + m, acc.1 + s, acc.2 + d)
        });
        prop_assert_eq!(total, OutcomeCounts::new(expect.0, expect.1, expect.2));
        let fsum = total.masked_fraction() + total.sdc_fraction() + total.due_fraction();
        if total.total() > 0 {
            prop_assert!((fsum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fit_scaling_composes(base in 0.0f64..1e6, f1 in 0.0f64..1.0, f2 in 0.0f64..1.0) {
        let fit = FitRate::from_au(base);
        let a = fit.scaled(f1).scaled(f2);
        let b = fit.scaled(f1 * f2);
        prop_assert!((a.au() - b.au()).abs() <= 1e-9 * base.max(1.0));
    }
}
