//! # mpr-arch
//!
//! Architecture models of the three devices the paper irradiates:
//!
//! * [`Fpga`] — the Xilinx Zynq-7000: a synthesis model mapping each
//!   circuit and precision to LUT/DSP/BRAM utilization, a configuration
//!   memory whose strikes are *persistent* (the corrupted circuit keeps
//!   producing wrong results until reprogrammed), and a timing model.
//! * [`XeonPhiKnc`] — the Intel Xeon Phi 3120A (Knights Corner): 57
//!   in-order cores with 512-bit VPUs processing 16 single or 8 double
//!   lanes per operation, MCA/ECC protection on the register file and
//!   memory, and a compiler model that allocates more vector registers for
//!   single precision (the paper's optimization-report observation).
//! * [`VoltaGpu`] — the NVIDIA Titan V: separate FP64 (2,688) and
//!   FP32/half2 (5,376) core pools, per-precision operation latencies
//!   (8/4/6 cycles), an unprotected register file, and triplicated HBM2
//!   output storage as in the paper's setup.
//!
//! All three implement [`Device`], which answers the two questions the
//! beam simulator asks: *how long does one execution of this workload
//! take* ([`Device::exec_time`]) and *what is exposed to the beam while it
//! runs* ([`Device::exposure`]). Every constant in the models lives in
//! [`calib`] with a citation to the paper sentence or vendor document it
//! comes from.
//!
//! # Example
//!
//! ```rust
//! use mpr_arch::{Device, VoltaGpu, WorkloadProfile};
//! use mpr_softfloat::Precision;
//!
//! let gpu = VoltaGpu::titan_v();
//! let micro = WorkloadProfile::micro_fma();
//! // Dependent-chain microbenchmarks are latency bound: 8/4/3 cycles per
//! // double/single/half op (Volta whitepaper; Jia et al. 2018).
//! let t_d = gpu.exec_time(&micro, Precision::Double);
//! let t_s = gpu.exec_time(&micro, Precision::Single);
//! let t_h = gpu.exec_time(&micro, Precision::Half);
//! assert!((t_d / t_s - 2.0).abs() < 0.05);
//! assert!((t_s / t_h - 4.0 / 3.0).abs() < 0.05);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod calib;
mod device;
mod fpga;
mod knc;
mod profile;
mod volta;

pub use device::{Device, Exposure, PersistentFaults};
pub use fpga::{Fpga, FpgaResources};
pub use knc::XeonPhiKnc;
pub use profile::{OpMix, WorkloadKind, WorkloadProfile};
pub use volta::VoltaGpu;
