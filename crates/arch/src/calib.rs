//! Calibration constants for the device models.
//!
//! Every constant here is either (a) a published microarchitectural
//! number quoted by the paper, or (b) a quantity the paper *measured* on
//! physical hardware (execution times, synthesis reports, compiler
//! register counts) that a functional simulator cannot derive and
//! therefore takes as input. Each constant cites its source. Everything
//! downstream — FIT, MEBF, AVF/PVF, TRE — is computed, never tabulated.

use mpr_softfloat::Precision;

// ---------------------------------------------------------------------------
// NVIDIA Titan V (Volta) — microarchitecture
// ---------------------------------------------------------------------------

/// Sustained SM clock under compute load, Hz (Titan V boost ~1.455 GHz;
/// sustained microbenchmark clocks reported around 1.35-1.38 GHz by Jia
/// et al., "Dissecting the NVIDIA Volta GPU architecture", 2018).
pub const VOLTA_FREQ_HZ: f64 = 1.37e9;

/// FP64 cores on the Titan V ("2,688 cores for double versus 5,376 cores
/// for single/half" — paper Section 3.1).
pub const VOLTA_FP64_CORES: f64 = 2688.0;

/// FP32 cores, which also execute packed half2 operations.
pub const VOLTA_FP32_CORES: f64 = 5376.0;

/// Dependent-operation latency in cycles: "8 clock cycles for double, 4
/// for single, and 6 for two half operations" (paper Section 3.1, citing
/// Jia et al.) — i.e. 3 cycles per half operation.
pub const fn volta_latency_cycles(precision: Precision) -> f64 {
    match precision {
        Precision::Double => 8.0,
        Precision::Single => 4.0,
        Precision::Half => 3.0,
    }
}

/// Peak arithmetic throughput, operations per cycle, whole chip:
/// FP64 issues on the 2,688-core pool, FP32 on the 5,376-core pool, and
/// half2 doubles the FP32 rate (consistent with the paper's per-SM
/// 95.08 / 191.39 / 365.71 GFLOP/s figures).
pub const fn volta_throughput_ops_per_cycle(precision: Precision) -> f64 {
    match precision {
        Precision::Double => VOLTA_FP64_CORES,
        Precision::Single => VOLTA_FP32_CORES,
        Precision::Half => 2.0 * VOLTA_FP32_CORES,
    }
}

/// Effective HBM2 bandwidth, bytes/s (Titan V peak 653 GB/s, derated for
/// the paper's non-coalesced MxM access pattern).
pub const VOLTA_MEM_BW: f64 = 4.0e11;

// --- Volta core-complexity model (exposure a.u. per active core) ----------
//
// The paper explains the microbenchmark FIT orderings by three competing
// properties (Section 6.1): per-core operand-width-dependent logic,
// precision-independent per-core control overhead multiplied by the
// *number of active cores* (5,376 for single/half vs 2,688 for double),
// and register bits. The constants below encode a datapath area model:
// adders grow linearly with operand width, multiplier arrays
// quadratically, and FMA adds a wide accumulate/normalize stage with a
// large width-independent component. Their ratios are chosen so the
// modeled exposures reproduce the orderings of Figure 10a; the absolute
// scale is arbitrary (FIT is reported in a.u.).

/// Precision-independent per-core control/dispatch exposure.
pub const VOLTA_CORE_CTRL: f64 = 800.0;
/// Adder datapath exposure per operand bit.
pub const VOLTA_ADD_PER_BIT: f64 = 25.0;
/// Multiplier array exposure per (operand bit)^2.
pub const VOLTA_MUL_PER_BIT2: f64 = 2.0;
/// FMA accumulate/normalize fixed exposure (width independent).
pub const VOLTA_FMA_FIXED: f64 = 4200.0;
/// FMA accumulate exposure per operand bit.
pub const VOLTA_FMA_PER_BIT: f64 = 20.0;
/// Divide/sqrt iterative unit: modeled as this multiple of MUL complexity.
pub const VOLTA_DIV_MUL_FACTOR: f64 = 4.0;

/// Fraction of a core's exposed area that is internal pipeline (wide
/// corruption on strike) rather than architectural register bits — the
/// driver of the AVF gap in Figure 12: the FP64 core is "more complex
/// (and then bigger)" (Section 6), the FP32 core serves both single and
/// half, giving them "the same per-operation vulnerability" (Section 6.2).
pub const fn volta_pipeline_fraction(precision: Precision) -> f64 {
    match precision {
        Precision::Double => 0.30,
        Precision::Single | Precision::Half => 0.12,
    }
}

/// Register-file exposure weight per live register bit (no ECC on the
/// Titan V register file — paper Section 3.2).
pub const VOLTA_REG_WEIGHT: f64 = 0.3;

/// Fraction of architectural register bits that are *live* (will be read
/// before being rewritten) at a random instant of a microbenchmark —
/// blind register injection lands in dead state the rest of the time.
pub const VOLTA_REG_LIVE_FRACTION: f64 = 0.25;

/// Residual SDC exposure of SECDED-protected arrays: the fraction of
/// strikes that defeat the code (multi-cell upsets spanning interleaved
/// words). Used by the ECC ablation (`VoltaGpu::tesla_v100`): the Tesla
/// V100 ships the same silicon as the Titan V *with* register-file and
/// cache ECC enabled.
pub const VOLTA_ECC_RESIDUAL_SDC: f64 = 0.04;

/// Fraction of protected-array strikes that become detected-but-
/// uncorrectable events (DUEs) under SECDED: double-bit detections.
pub const VOLTA_ECC_DUE_FRACTION: f64 = 0.10;

/// Exposure weight per cached data bit, scaled by the workload's memory
/// boundedness; this makes the memory-bound MxM's FIT dwarf LavaMD's
/// (Section 6.1: "the longer data sitting in caches or registers is
/// exposed, the higher the FIT rate").
pub const VOLTA_MEM_WEIGHT: f64 = 5.1;

/// On-chip cached-data capacity in bits (Titan V: 4.5 MB L2 plus L1/
/// shared slices ~ 6 MB total). A working set larger than this exposes
/// the cache *capacity*, making the cached-data exposure precision
/// independent for large problems — which is why MxM keeps the FMA-like
/// instruction-mix trend instead of a pure width trend.
pub const VOLTA_CACHED_BITS: f64 = 5.03e7;

/// Register-file capacity in bits (80 SMs x 256 KB). Register-hungry
/// applications clamp at this capacity: double precision halves the
/// resident thread count instead of doubling the exposed bits, so the
/// register exposure of occupancy-limited apps is precision independent.
pub const VOLTA_REGFILE_BITS: f64 = 1.68e8;

/// 32-bit registers allocated per value: "the number of instantiated 32
/// bits registers does not change significantly between single and half
/// precisions while for double it increases of about 2x" (Section 6).
pub const fn volta_regs_per_value(precision: Precision) -> f64 {
    match precision {
        Precision::Double => 2.0,
        Precision::Single | Precision::Half => 1.0,
    }
}

/// DUE exposure per second from scheduler / memory-interface state
/// (precision independent; Section 6.1).
pub const VOLTA_DUE_BASE: f64 = 5.0e5;
/// Additional DUE exposure per second per unit control density
/// ("microbenchmarks... their DUE rate is about 1/10 the DUE rate of
/// LavaMD and MxM" — control density drives the difference).
pub const VOLTA_DUE_CTRL: f64 = 4.5e6;
/// Extra DUE exposure multiplier for CNN detector frameworks ("object
/// detection CNNs have a much higher probability to experience DUEs" —
/// Section 6.1, citing dos Santos et al. DSN-W 2017).
pub const VOLTA_DUE_DETECTOR_FACTOR: f64 = 4.0;

/// Measured Titan V execution times, seconds (paper Table 3). The
/// microbenchmark rows are *derived* by the latency model and asserted
/// against the table in tests; the application rows are physical
/// measurements used as calibration (e.g. the half-precision YOLOv3
/// slowdown caused by framework conversion overhead cannot be derived
/// from first principles).
pub fn volta_app_time_s(kernel: &str, precision: Precision) -> Option<f64> {
    let (d, s, h) = match kernel {
        "LavaMD" => (1.071, 0.554, 0.291),
        "MxM" => (2.327, 1.909, 1.180),
        "YOLOv3" => (0.133, 0.079, 0.283),
        _ => return None,
    };
    Some(match precision {
        Precision::Double => d,
        Precision::Single => s,
        Precision::Half => h,
    })
}

// ---------------------------------------------------------------------------
// Intel Xeon Phi 3120A (Knights Corner)
// ---------------------------------------------------------------------------

/// Core count ("57 physical in-order cores" — paper Section 3.1).
pub const KNC_CORES: f64 = 57.0;

/// Core clock, Hz (3120A: 1.10 GHz).
pub const KNC_FREQ_HZ: f64 = 1.1e9;

/// Vector lanes per operation: "16 single precision or 8 double precision
/// per vector operations (half precision is not implemented)".
pub fn knc_lanes(precision: Precision) -> Option<f64> {
    match precision {
        Precision::Double => Some(8.0),
        Precision::Single => Some(16.0),
        Precision::Half => None,
    }
}

/// Vector registers allocated by the Intel compiler per kernel and
/// precision, from the paper's optimization-report analysis (Section 5):
/// "the single version uses 33% and 47% more registers than the double
/// version" for LavaMD and MxM; LUD "uses the same number of registers".
/// The register *file* is MCA/ECC-protected; the allocation count is the
/// paper's proxy for unprotected functional-unit and queue usage.
pub fn knc_vector_regs(kernel: &str, precision: Precision) -> f64 {
    let (d, s) = match kernel {
        "LavaMD" => (48.0, 64.0), // +33%
        "MxM" => (47.0, 69.0),    // +47%
        "LUD" => (60.0, 60.0),    // equal
        _ => (56.0, 56.0),
    };
    match precision {
        Precision::Double => d,
        Precision::Single => s,
        Precision::Half => 0.0,
    }
}

/// SDC exposure weight per allocated vector register (functional units
/// and internal queues exercised per register, unprotected by MCA).
pub const KNC_REG_WEIGHT: f64 = 260.0;

/// Fraction of variable injections that land in still-live data.
/// CAROL-FI interrupts the program at a random instant and flips a bit
/// of a random variable (Section 3.3); in a streaming kernel roughly
/// half the time that value has already been consumed.
pub const KNC_VARIABLE_LIVE_FRACTION: f64 = 0.5;

/// DUE exposure weight per active vector lane: "16 single precision ALUs
/// use twice the number of control bits than 8 double precision ALUs,
/// increasing the probability of faults in control bits, causing DUEs"
/// (Section 5.1).
pub const KNC_DUE_PER_LANE: f64 = 95.0;

/// Measured Xeon Phi execution times, seconds (paper Table 2), decomposed
/// as (vectorizable compute at double, serial/overhead, memory at double,
/// memory at single). Compute halves from double to single (16 vs 8
/// lanes); MxM's memory term *grows* for single because "the prefetch
/// could load more elements for double than single" (Section 5.4).
pub fn knc_time_components(kernel: &str) -> Option<KncTime> {
    match kernel {
        "LavaMD" => Some(KncTime {
            compute_d: 1.012,
            serial: 0.295,
            mem_d: 0.0,
            mem_s: 0.0,
        }),
        "LUD" => Some(KncTime {
            compute_d: 0.892,
            serial: 0.372,
            mem_d: 0.0,
            mem_s: 0.0,
        }),
        "MxM" => Some(KncTime {
            compute_d: 2.0,
            serial: 0.0,
            mem_d: 8.612,
            mem_s: 11.028,
        }),
        _ => None,
    }
}

/// Decomposed KNC execution-time components, seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KncTime {
    /// Vector compute time at double precision (halves for single).
    pub compute_d: f64,
    /// Precision-independent serial/overhead time.
    pub serial: f64,
    /// Memory stall time at double precision.
    pub mem_d: f64,
    /// Memory stall time at single precision (prefetch-efficiency
    /// dependent, may exceed `mem_d`).
    pub mem_s: f64,
}

// ---------------------------------------------------------------------------
// Xilinx Zynq-7000 FPGA
// ---------------------------------------------------------------------------

/// Configuration bits controlled per LUT (CLB slice share: LUT masks,
/// MUX selects, routing).
pub const FPGA_CONFIG_BITS_PER_LUT: f64 = 320.0;
/// Configuration bits per DSP48 slice (operating mode, routing).
pub const FPGA_CONFIG_BITS_PER_DSP: f64 = 1600.0;
/// Configuration bits per BRAM block (port config + routing; content
/// bits are data, not configuration).
pub const FPGA_CONFIG_BITS_PER_BRAM: f64 = 1200.0;

/// Fraction of configuration-bit strikes that alter circuit behaviour
/// (many configuration bits are don't-care for the implemented function:
/// unused LUT entries, inactive routing pips).
pub const FPGA_CONFIG_SENSITIVE_FRACTION: f64 = 0.35;

/// DSP48 slices consumed by one multiply-accumulate PE at each precision
/// (a DSP48E1 is a 25x18 multiplier: a 53-bit double significand needs a
/// ~9-DSP tiling, single ~4, half fits mostly in one plus glue).
pub fn fpga_dsp_per_mac(precision: Precision) -> f64 {
    match precision {
        Precision::Double => 8.0,
        Precision::Single => 4.0,
        Precision::Half => 2.0,
    }
}

/// Synthesized resource utilization, calibrated to the paper's Figure 2:
/// "going from double to single-precision reduces 45% the occupied area,
/// while from single to half-precision we save an additional 36%" for
/// MxM; for MNIST "53%" and "26%". Returned as (LUTs, DSPs, BRAMs).
pub fn fpga_resources(design: &str, precision: Precision) -> Option<(f64, f64, f64)> {
    // Double-precision baselines (plausible Zynq-7000 scale: the MNIST
    // accelerator is bigger than the 128x128 MxM array, matching the
    // paper's observation that MNIST "requires more resources").
    let (luts_d, dsps_d, brams_d) = match design {
        "MxM" => (23600.0, 96.0, 44.0),
        "MNIST" => (40800.0, 148.0, 92.0),
        _ => return None,
    };
    let single_scale = if design == "MxM" { 0.55 } else { 0.47 };
    let half_extra = if design == "MxM" { 0.64 } else { 0.74 };
    let scale = match precision {
        Precision::Double => 1.0,
        Precision::Single => single_scale,
        Precision::Half => single_scale * half_extra,
    };
    Some((luts_d * scale, dsps_d * scale, brams_d * scale))
}

/// Measured Zynq-7000 execution times, seconds (paper Table 1). Half
/// precision MxM is slightly *slower* than single on the FPGA: the
/// narrower DSP packing lowers the achievable clock for the deeper
/// reduction tree.
pub fn fpga_time_s(design: &str, precision: Precision) -> Option<f64> {
    let (d, s, h) = match design {
        "MxM" => (2.730, 2.100, 2.310),
        "MNIST" => (0.011, 0.009, 0.009),
        _ => return None,
    };
    Some(match precision {
        Precision::Double => d,
        Precision::Single => s,
        Precision::Half => h,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volta_latency_matches_paper_quotes() {
        assert_eq!(volta_latency_cycles(Precision::Double), 8.0);
        assert_eq!(volta_latency_cycles(Precision::Single), 4.0);
        // 6 cycles for two half operations.
        assert_eq!(volta_latency_cycles(Precision::Half) * 2.0, 6.0);
    }

    #[test]
    fn volta_throughput_ratios() {
        let d = volta_throughput_ops_per_cycle(Precision::Double);
        let s = volta_throughput_ops_per_cycle(Precision::Single);
        let h = volta_throughput_ops_per_cycle(Precision::Half);
        assert_eq!(s / d, 2.0);
        assert_eq!(h / s, 2.0);
    }

    #[test]
    fn knc_has_no_half_precision() {
        assert!(knc_lanes(Precision::Half).is_none());
        assert_eq!(knc_lanes(Precision::Single), Some(16.0));
        assert_eq!(knc_lanes(Precision::Double), Some(8.0));
    }

    #[test]
    fn knc_register_ratios_match_optimization_reports() {
        let lava = knc_vector_regs("LavaMD", Precision::Single)
            / knc_vector_regs("LavaMD", Precision::Double);
        let mxm =
            knc_vector_regs("MxM", Precision::Single) / knc_vector_regs("MxM", Precision::Double);
        let lud =
            knc_vector_regs("LUD", Precision::Single) / knc_vector_regs("LUD", Precision::Double);
        assert!((lava - 1.33).abs() < 0.01);
        assert!((mxm - 1.47).abs() < 0.01);
        assert_eq!(lud, 1.0);
    }

    #[test]
    fn knc_times_reassemble_table2() {
        // LavaMD 1.307/0.801, MxM 10.612/12.028, LUD 1.264/0.818.
        for (k, td, ts) in [
            ("LavaMD", 1.307, 0.801),
            ("MxM", 10.612, 12.028),
            ("LUD", 1.264, 0.818),
        ] {
            let c = knc_time_components(k).unwrap();
            let d = c.compute_d + c.serial + c.mem_d;
            let s = c.compute_d / 2.0 + c.serial + c.mem_s;
            assert!((d - td).abs() < 0.01, "{k} double: {d} vs {td}");
            assert!((s - ts).abs() < 0.01, "{k} single: {s} vs {ts}");
        }
    }

    #[test]
    fn fpga_area_reductions_match_figure2() {
        let area = |d: &str, p: Precision| {
            let (l, dsp, b) = fpga_resources(d, p).unwrap();
            l + dsp * 10.0 + b * 10.0 // any positive weighting preserves ratios
        };
        let mxm_ds = 1.0 - area("MxM", Precision::Single) / area("MxM", Precision::Double);
        let mxm_sh = 1.0 - area("MxM", Precision::Half) / area("MxM", Precision::Single);
        assert!((mxm_ds - 0.45).abs() < 0.01, "MxM d->s saves 45%: {mxm_ds}");
        assert!((mxm_sh - 0.36).abs() < 0.01, "MxM s->h saves 36%: {mxm_sh}");
        let mn_ds = 1.0 - area("MNIST", Precision::Single) / area("MNIST", Precision::Double);
        let mn_sh = 1.0 - area("MNIST", Precision::Half) / area("MNIST", Precision::Single);
        assert!((mn_ds - 0.53).abs() < 0.01);
        assert!((mn_sh - 0.26).abs() < 0.01);
    }

    #[test]
    fn mnist_uses_more_resources_than_mxm() {
        for p in [Precision::Double, Precision::Single, Precision::Half] {
            let (ml, md, mb) = fpga_resources("MxM", p).unwrap();
            let (nl, nd, nb) = fpga_resources("MNIST", p).unwrap();
            assert!(nl > ml && nd > md && nb > mb, "{p}");
        }
    }

    #[test]
    fn table1_and_table3_lookups() {
        assert_eq!(fpga_time_s("MxM", Precision::Double), Some(2.730));
        assert_eq!(fpga_time_s("MNIST", Precision::Half), Some(0.009));
        assert_eq!(fpga_time_s("LUD", Precision::Half), None);
        assert_eq!(volta_app_time_s("YOLOv3", Precision::Half), Some(0.283));
        assert!(volta_app_time_s("Micro-ADD", Precision::Half).is_none());
    }
}
