//! The NVIDIA Titan V (Volta) model.

use crate::calib::*;
use crate::{Device, Exposure, OpMix, WorkloadKind, WorkloadProfile};
use mpr_softfloat::{math::exp_terms, Precision};

/// The NVIDIA Titan V: dedicated mixed-precision hardware.
///
/// Unlike the Xeon Phi, Volta has *separate* core pools for double
/// (2,688) and single/half (5,376) operations, and a thread can drive one
/// FP32 core with two packed half operations (half2). The FIT rate
/// therefore depends on three competing properties (paper Section 6):
///
/// * per-core datapath complexity grows with operand width (quadratically
///   for multiplier arrays),
/// * the *number of active cores* doubles for single/half,
/// * register and resident-memory bits scale with the data width
///   (unprotected: the Titan V has no ECC).
///
/// [`VoltaGpu::exec_time`] is analytic for the latency-bound
/// microbenchmarks (8/4/3-cycle dependent chains) and calibrated to the
/// paper's Table 3 for the applications; [`VoltaGpu::exposure`]
/// implements the area model that reproduces Figure 10.
#[derive(Debug, Clone)]
pub struct VoltaGpu {
    name: String,
    ecc: bool,
}

impl VoltaGpu {
    /// The Titan V configuration irradiated in the paper: **no ECC** on
    /// the register file or caches (Section 3.2 — the authors triplicate
    /// output data in HBM2 to compensate).
    pub fn titan_v() -> VoltaGpu {
        VoltaGpu {
            name: "NVIDIA Titan V (Volta)".to_string(),
            ecc: false,
        }
    }

    /// The ECC ablation: the same GV100 silicon as shipped in the Tesla
    /// V100, with SECDED ECC enabled on the register file and caches.
    /// Protected-array strikes are mostly corrected (a small residual
    /// defeats the code) and a fraction surface as DUEs instead — the
    /// "what would the paper's GPU numbers look like on the datacenter
    /// part" question.
    pub fn tesla_v100() -> VoltaGpu {
        VoltaGpu {
            name: "NVIDIA Tesla V100 (Volta, ECC)".to_string(),
            ecc: true,
        }
    }

    /// Whether register file and caches are ECC protected.
    pub fn has_ecc(&self) -> bool {
        self.ecc
    }

    /// Per-active-core datapath exposure (a.u.) for one operation class
    /// at one precision.
    ///
    /// Half operations execute two-per-core (half2): the active logic is
    /// two 16-bit datapaths, which makes a half adder pair exactly as
    /// wide as one single adder — the mechanism behind "single and half
    /// precision have very similar FIT rates for ADD" (Section 6.1).
    fn core_complexity(op: MicroOp, precision: Precision) -> f64 {
        let (w, per_core_ops) = match precision {
            Precision::Double => (64.0, 1.0),
            Precision::Single => (32.0, 1.0),
            Precision::Half => (16.0, 2.0),
        };
        let add_path = VOLTA_ADD_PER_BIT * w * per_core_ops;
        let mul_array = VOLTA_MUL_PER_BIT2 * w * w * per_core_ops;
        VOLTA_CORE_CTRL
            + match op {
                MicroOp::Add => add_path,
                MicroOp::Mul => mul_array,
                MicroOp::Fma => {
                    // Product array + double-width accumulate path + the
                    // wide normalize/round stage.
                    mul_array
                        + VOLTA_ADD_PER_BIT * 2.0 * w * per_core_ops
                        + VOLTA_FMA_FIXED
                        + VOLTA_FMA_PER_BIT * w * per_core_ops
                }
                MicroOp::Div => VOLTA_DIV_MUL_FACTOR * mul_array,
            }
    }

    /// Mix-weighted active-core logic exposure for a workload.
    ///
    /// Transcendentals execute in software on GPUs (Section 6.3): each
    /// contributes the FMA complexity times the polynomial depth of the
    /// in-precision `exp` evaluation.
    fn logic_exposure(mix: &OpMix, precision: Precision) -> f64 {
        let cores = match precision {
            Precision::Double => VOLTA_FP64_CORES,
            Precision::Single | Precision::Half => VOLTA_FP32_CORES,
        };
        let fma = Self::core_complexity(MicroOp::Fma, precision);
        let per_op = mix.add * Self::core_complexity(MicroOp::Add, precision)
            + mix.mul * Self::core_complexity(MicroOp::Mul, precision)
            + mix.fma * fma
            + mix.div * Self::core_complexity(MicroOp::Div, precision)
            + mix.transcendental * fma * exp_terms(precision) as f64;
        cores * per_op
    }
}

#[derive(Debug, Clone, Copy)]
enum MicroOp {
    Add,
    Mul,
    Fma,
    Div,
}

impl Device for VoltaGpu {
    fn name(&self) -> &str {
        &self.name
    }

    fn supports(&self, _precision: Precision) -> bool {
        true // hardware double, single, and packed half
    }

    fn exec_time(&self, profile: &WorkloadProfile, precision: Precision) -> f64 {
        assert!(self.supports(precision));
        if let Some(t) = volta_app_time_s(&profile.name, precision) {
            return t; // measured Table 3 calibration for the applications
        }
        // Analytic model: dependent chains are latency bound, wide
        // parallel work is throughput bound; memory adds a width-scaled
        // streaming term.
        let chain_ops = profile.flops / profile.threads;
        let latency_bound = chain_ops * volta_latency_cycles(precision)
            / VOLTA_FREQ_HZ
            / profile.ilp.max(1.0).min(volta_latency_cycles(precision));
        let throughput_bound =
            profile.flops / (volta_throughput_ops_per_cycle(precision) * VOLTA_FREQ_HZ);
        let bytes = profile.value_traffic * precision.total_bits() as f64 / 8.0;
        let memory = bytes / VOLTA_MEM_BW;
        latency_bound.max(throughput_bound) + memory
    }

    fn exposure(&self, profile: &WorkloadProfile, precision: Precision) -> Exposure {
        assert!(self.supports(precision));
        let logic = Self::logic_exposure(&profile.mix, precision);

        // Live register bits: threads x registers x 32-bit words per
        // value (2 for double), clamped at the physical register file —
        // occupancy-limited apps trade threads for registers, so their
        // exposed register bits are capacity, not demand. No ECC on the
        // Titan V register file.
        let reg_demand =
            profile.threads * profile.regs_per_thread * volta_regs_per_value(precision) * 32.0;
        let regs = VOLTA_REG_WEIGHT * reg_demand.min(VOLTA_REGFILE_BITS);

        // Cached data waiting on the (slow, non-coalesced) memory
        // pipeline: exposure scales with the resident bits — width-
        // dependent until the working set overflows the caches — and
        // with how memory-bound the code is. HBM2 contents are
        // triplicated in the paper's setup, so only on-chip data counts.
        let ws_bits = profile.working_set_values * precision.total_bits() as f64;
        let mem = VOLTA_MEM_WEIGHT * ws_bits.min(VOLTA_CACHED_BITS) * profile.memory_boundedness;

        // DUE: scheduler/interface state plus control-flow density
        // (precision independent; integrated over time by the beam).
        let detector = if profile.kind == WorkloadKind::Detector {
            VOLTA_DUE_DETECTOR_FACTOR
        } else {
            1.0
        };
        let mut due = (VOLTA_DUE_BASE + VOLTA_DUE_CTRL * profile.control_density) * detector;

        // ECC ablation (Tesla V100): protected-array strikes are mostly
        // corrected; a residual defeats the interleaving and a further
        // fraction surfaces as detected-uncorrectable events.
        let (regs, mem) = if self.ecc {
            due += (regs + mem) * VOLTA_ECC_DUE_FRACTION;
            (regs * VOLTA_ECC_RESIDUAL_SDC, mem * VOLTA_ECC_RESIDUAL_SDC)
        } else {
            (regs, mem)
        };

        let compute = logic + regs + mem;
        // Pipeline (wide-corruption) fraction: the core-complexity share
        // of the compute exposure, floored by the per-core-family figure.
        let pipeline_fraction = volta_pipeline_fraction(precision) * (logic / compute).max(0.2);

        Exposure {
            compute,
            due,
            pipeline_fraction,
            persistence: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fit_order(mix: OpMix) -> (f64, f64, f64) {
        (
            VoltaGpu::logic_exposure(&mix, Precision::Double),
            VoltaGpu::logic_exposure(&mix, Precision::Single),
            VoltaGpu::logic_exposure(&mix, Precision::Half),
        )
    }

    #[test]
    fn mul_exposure_orders_double_single_half() {
        let (d, s, h) = fit_order(OpMix::pure_mul());
        assert!(d > s && s > h, "MUL: d={d:.3e} s={s:.3e} h={h:.3e}");
    }

    #[test]
    fn add_exposure_inverts_the_trend() {
        // "For ADD operations we observe the opposite trend... having
        // more active cores for single and half masks the benefit of
        // fewer bits" (Section 6.1) — and single == half exactly, since
        // two 16-bit adders equal one 32-bit adder on the same core count.
        let (d, s, h) = fit_order(OpMix::pure_add());
        assert!(d < s, "ADD: d={d:.3e} must be below s={s:.3e}");
        assert!((s - h).abs() / s < 1e-9, "ADD: single == half");
    }

    #[test]
    fn fma_exposure_single_highest_half_lowest() {
        let (d, s, h) = fit_order(OpMix::pure_fma());
        assert!(s > d, "FMA: s={s:.3e} must exceed d={d:.3e}");
        assert!(h < d, "FMA: h={h:.3e} must be lowest");
    }

    #[test]
    fn fma_exceeds_mul_exceeds_add() {
        for p in Precision::ALL {
            let add = VoltaGpu::logic_exposure(&OpMix::pure_add(), p);
            let mul = VoltaGpu::logic_exposure(&OpMix::pure_mul(), p);
            let fma = VoltaGpu::logic_exposure(&OpMix::pure_fma(), p);
            assert!(
                fma > mul && mul > add,
                "{p}: fma={fma:.3e} mul={mul:.3e} add={add:.3e}"
            );
        }
    }

    #[test]
    fn micro_times_match_table3() {
        // Table 3: Micro ~6.0s double, ~3.0s single, ~2.25s half.
        let gpu = VoltaGpu::titan_v();
        for profile in [
            WorkloadProfile::micro_add(),
            WorkloadProfile::micro_mul(),
            WorkloadProfile::micro_fma(),
        ] {
            let d = gpu.exec_time(&profile, Precision::Double);
            let s = gpu.exec_time(&profile, Precision::Single);
            let h = gpu.exec_time(&profile, Precision::Half);
            assert!((d - 6.0).abs() < 0.5, "{}: d={d}", profile.name);
            assert!((s - 3.0).abs() < 0.3, "{}: s={s}", profile.name);
            assert!((h - 2.25).abs() < 0.3, "{}: h={h}", profile.name);
        }
    }

    #[test]
    fn pipeline_fraction_double_exceeds_fp32_family() {
        let gpu = VoltaGpu::titan_v();
        let p = WorkloadProfile::micro_fma();
        let d = gpu.exposure(&p, Precision::Double).pipeline_fraction;
        let s = gpu.exposure(&p, Precision::Single).pipeline_fraction;
        let h = gpu.exposure(&p, Precision::Half).pipeline_fraction;
        assert!(d > s, "double core more complex: {d} vs {s}");
        assert!((s - h).abs() < 0.05, "single/half share the FP32 core");
    }

    #[test]
    fn ecc_ablation_suppresses_array_exposure() {
        let bare = VoltaGpu::titan_v();
        let ecc = VoltaGpu::tesla_v100();
        assert!(!bare.has_ecc() && ecc.has_ecc());
        // A memory-bound profile loses most of its compute exposure under
        // ECC and gains some DUE exposure.
        let prof = WorkloadProfile {
            name: "mem-bound".to_string(),
            flops: 1e10,
            mix: OpMix::pure_fma(),
            value_traffic: 1e9,
            threads: 2e5,
            regs_per_thread: 64.0,
            ilp: 4.0,
            working_set_values: 5e6,
            memory_boundedness: 0.8,
            control_density: 1.0,
            kind: WorkloadKind::Numeric,
        };
        for p in Precision::ALL {
            let b = bare.exposure(&prof, p);
            let e = ecc.exposure(&prof, p);
            assert!(
                e.compute < 0.6 * b.compute,
                "{p}: {} vs {}",
                e.compute,
                b.compute
            );
            assert!(e.due > b.due, "{p}: ECC adds detected-uncorrectable events");
        }
        // Register-resident micros keep their logic exposure: ECC helps
        // much less.
        let micro = WorkloadProfile::micro_mul();
        let b = bare.exposure(&micro, Precision::Single).compute;
        let e = ecc.exposure(&micro, Precision::Single).compute;
        assert!(e > 0.75 * b, "logic dominates micros: {e} vs {b}");
    }

    #[test]
    fn due_exposure_is_precision_independent_for_numeric_codes() {
        let gpu = VoltaGpu::titan_v();
        let p = WorkloadProfile::micro_mul();
        let d = gpu.exposure(&p, Precision::Double).due;
        let h = gpu.exposure(&p, Precision::Half).due;
        assert_eq!(d, h);
    }
}
