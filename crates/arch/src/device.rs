//! The device abstraction the beam simulator drives.

use crate::WorkloadProfile;
use mpr_softfloat::Precision;

/// What a device exposes to the beam while executing one workload, as
/// *rate weights*: multiplied by flux and execution time they give the
/// expected strike counts per run (arbitrary units; only ratios between
/// configurations matter, as in the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exposure {
    /// Weight for strikes in computation state (datapath, registers,
    /// resident data). Each such strike is resolved by injecting a fault
    /// into a live execution — it may be masked or become an SDC.
    pub compute: f64,
    /// Weight for strikes in control state (schedulers, sequencers,
    /// memory interfaces). These surface as DUEs.
    pub due: f64,
    /// Probability that a compute strike is a wide pipeline corruption
    /// rather than a single register bit flip (core-complexity dependent;
    /// feeds `mpr_fault::FaultModel::Pipeline`).
    pub pipeline_fraction: f64,
    /// `Some` when compute strikes are *persistent* (FPGA configuration
    /// memory): the corrupted circuit keeps mangling every operation
    /// mapped to the struck processing element until reprogramming.
    pub persistence: Option<PersistentFaults>,
}

/// Persistence semantics of FPGA configuration-memory strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistentFaults {
    /// Number of physical processing elements the computation is folded
    /// onto; a config strike corrupts one PE, i.e. every `pe_count`-th
    /// dynamic operation.
    pub pe_count: u64,
}

/// A device under the beam: answers how long a workload runs and what is
/// exposed while it does.
///
/// Implemented by [`crate::Fpga`], [`crate::XeonPhiKnc`] and
/// [`crate::VoltaGpu`].
pub trait Device: Sync {
    /// Device name for reports.
    fn name(&self) -> &str;

    /// Whether the device has hardware for this precision (the KNC has
    /// no half-precision support — paper Section 3.1).
    fn supports(&self, precision: Precision) -> bool;

    /// Wall-clock seconds for one execution of the workload.
    ///
    /// # Panics
    ///
    /// Panics if the precision is unsupported.
    fn exec_time(&self, profile: &WorkloadProfile, precision: Precision) -> f64;

    /// Beam exposure while executing the workload.
    ///
    /// # Panics
    ///
    /// Panics if the precision is unsupported.
    fn exposure(&self, profile: &WorkloadProfile, precision: Precision) -> Exposure;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposure_is_plain_data() {
        let e = Exposure {
            compute: 1.0,
            due: 0.1,
            pipeline_fraction: 0.2,
            persistence: Some(PersistentFaults { pe_count: 16 }),
        };
        let e2 = e;
        assert_eq!(e, e2);
        assert!(format!("{e:?}").contains("pe_count"));
    }
}
