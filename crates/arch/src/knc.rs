//! The Intel Xeon Phi 3120A (Knights Corner) model.

use crate::calib::*;
use crate::{Device, Exposure, WorkloadProfile};
use mpr_softfloat::Precision;

/// The Intel Xeon Phi coprocessor 3120A (Knights Corner).
///
/// The KNC has **no dedicated mixed-precision hardware**: the same
/// 512-bit VPU executes 16 single-precision or 8 double-precision lanes
/// per operation, and half precision does not exist (paper Section 3.1).
/// Consequently the FIT difference between precisions is decided not by
/// the silicon but by *how the compiler uses it* (Section 5): the single
/// versions of LavaMD and MxM allocate 33% / 47% more vector registers —
/// a proxy for higher functional-unit and internal-queue usage, which is
/// the unprotected area (the register file and memories are MCA/ECC
/// protected).
///
/// DUE exposure scales with the number of active lanes: "16 single
/// precision ALUs use twice the number of control bits than 8 double
/// precision ALUs" (Section 5.1).
#[derive(Debug, Clone)]
pub struct XeonPhiKnc {
    name: String,
}

impl XeonPhiKnc {
    /// The 3120A configuration irradiated in the paper.
    pub fn coprocessor_3120a() -> XeonPhiKnc {
        XeonPhiKnc {
            name: "Intel Xeon Phi 3120A (KNC)".to_string(),
        }
    }
}

impl Device for XeonPhiKnc {
    fn name(&self) -> &str {
        &self.name
    }

    fn supports(&self, precision: Precision) -> bool {
        knc_lanes(precision).is_some()
    }

    fn exec_time(&self, profile: &WorkloadProfile, precision: Precision) -> f64 {
        let lanes = knc_lanes(precision)
            // mpr-allow: panic-hygiene -- implements the Device trait's documented unsupported-precision panic
            .unwrap_or_else(|| panic!("KNC has no {precision}-precision hardware"));
        if let Some(c) = knc_time_components(&profile.name) {
            // Calibrated to the paper's Table 2: vector compute halves
            // from double (8 lanes) to single (16 lanes); memory time is
            // prefetch-efficiency dependent (MxM single is *slower*).
            let compute = c.compute_d * 8.0 / lanes;
            let mem = match precision {
                Precision::Double => c.mem_d,
                _ => c.mem_s,
            };
            return compute + c.serial + mem;
        }
        // Analytic fallback: vector throughput plus a streaming memory
        // term at two-thirds prefetch efficiency for single.
        let throughput = KNC_CORES * lanes * KNC_FREQ_HZ;
        let compute = profile.flops / throughput;
        let bytes = profile.value_traffic * precision.total_bits() as f64 / 8.0;
        let prefetch_eff = if precision == Precision::Single {
            0.66
        } else {
            1.0
        };
        let mem = bytes / (8.0e10 * prefetch_eff);
        compute + mem
    }

    fn exposure(&self, profile: &WorkloadProfile, precision: Precision) -> Exposure {
        let lanes = knc_lanes(precision)
            // mpr-allow: panic-hygiene -- implements the Device trait's documented unsupported-precision panic
            .unwrap_or_else(|| panic!("KNC has no {precision}-precision hardware"));
        // SDC-candidate exposure: functional units and internal queues,
        // proportional to the compiler's vector-register allocation (the
        // register file itself is ECC protected and contributes nothing).
        let regs = knc_vector_regs(&profile.name, precision);
        let compute = KNC_REG_WEIGHT * regs * KNC_CORES;

        // DUE exposure: control bits per active lane, scaled by how much
        // control flow the code carries.
        let due = KNC_DUE_PER_LANE * lanes * KNC_CORES * profile.control_density.max(0.1);

        Exposure {
            compute,
            due,
            // Same VPU executes both precisions: faults are register-level
            // single-bit flips; no precision-specific pipeline class.
            pipeline_fraction: 0.0,
            persistence: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OpMix, WorkloadKind};

    fn profile(name: &str) -> WorkloadProfile {
        WorkloadProfile {
            name: name.to_string(),
            flops: 1e11,
            mix: OpMix::pure_fma(),
            value_traffic: 1e8,
            threads: 228.0,
            regs_per_thread: 32.0,
            ilp: 4.0,
            working_set_values: 1e6,
            memory_boundedness: 0.3,
            control_density: 1.0,
            kind: WorkloadKind::Numeric,
        }
    }

    #[test]
    fn no_half_precision() {
        let knc = XeonPhiKnc::coprocessor_3120a();
        assert!(!knc.supports(Precision::Half));
        assert!(knc.supports(Precision::Single));
        assert!(knc.supports(Precision::Double));
    }

    #[test]
    #[should_panic(expected = "no half-precision hardware")]
    fn half_time_panics() {
        let knc = XeonPhiKnc::coprocessor_3120a();
        let _ = knc.exec_time(&profile("MxM"), Precision::Half);
    }

    #[test]
    fn table2_times_reproduced() {
        let knc = XeonPhiKnc::coprocessor_3120a();
        for (name, d, s) in [
            ("LavaMD", 1.307, 0.801),
            ("MxM", 10.612, 12.028),
            ("LUD", 1.264, 0.818),
        ] {
            let p = profile(name);
            let td = knc.exec_time(&p, Precision::Double);
            let ts = knc.exec_time(&p, Precision::Single);
            assert!((td - d).abs() < 0.02, "{name} double {td} vs {d}");
            assert!((ts - s).abs() < 0.02, "{name} single {ts} vs {s}");
        }
    }

    #[test]
    fn mxm_single_is_slower_than_double() {
        // The paper's Table 2 inversion: prefetching favors double.
        let knc = XeonPhiKnc::coprocessor_3120a();
        let p = profile("MxM");
        assert!(knc.exec_time(&p, Precision::Single) > knc.exec_time(&p, Precision::Double));
    }

    #[test]
    fn sdc_exposure_follows_register_allocation() {
        let knc = XeonPhiKnc::coprocessor_3120a();
        for (name, expect_ratio) in [("LavaMD", 1.33), ("MxM", 1.47), ("LUD", 1.0)] {
            let p = profile(name);
            let d = knc.exposure(&p, Precision::Double).compute;
            let s = knc.exposure(&p, Precision::Single).compute;
            assert!(
                (s / d - expect_ratio).abs() < 0.01,
                "{name}: single/double exposure {} vs {expect_ratio}",
                s / d
            );
        }
    }

    #[test]
    fn due_exposure_doubles_with_lane_count() {
        let knc = XeonPhiKnc::coprocessor_3120a();
        let p = profile("LUD");
        let d = knc.exposure(&p, Precision::Double).due;
        let s = knc.exposure(&p, Precision::Single).due;
        assert!((s / d - 2.0).abs() < 1e-9, "16 vs 8 lanes of control bits");
    }

    #[test]
    fn analytic_fallback_for_unknown_kernels() {
        let knc = XeonPhiKnc::coprocessor_3120a();
        let p = profile("SomethingElse");
        let td = knc.exec_time(&p, Precision::Double);
        let ts = knc.exec_time(&p, Precision::Single);
        assert!(td.is_finite() && ts.is_finite() && td > 0.0 && ts > 0.0);
        // Compute-dominated fallback: single is faster.
        assert!(ts < td);
    }
}
