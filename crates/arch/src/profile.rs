//! Static workload characterizations consumed by the device models.

/// Instruction-mix fractions of a workload's floating-point work.
///
/// The fractions must sum to 1; they weight the per-operation core
/// complexity in the exposure models (paper Section 6.1: LavaMD is >50%
/// MUL, MxM is FMA-dominated, which is why their FIT trends track the
/// corresponding microbenchmarks).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    /// Fraction of additions/subtractions.
    pub add: f64,
    /// Fraction of multiplications.
    pub mul: f64,
    /// Fraction of fused multiply-adds.
    pub fma: f64,
    /// Fraction of divisions / square roots (heavy iterative units).
    pub div: f64,
    /// Fraction of transcendental evaluations (exp), executed in software
    /// on GPUs and in a dedicated unit on the Xeon Phi (Section 6.3).
    pub transcendental: f64,
}

impl OpMix {
    /// Creates a mix, validating that the fractions sum to 1 (±1e-9).
    ///
    /// # Panics
    ///
    /// Panics if the fractions are negative or do not sum to one.
    pub fn new(add: f64, mul: f64, fma: f64, div: f64, transcendental: f64) -> OpMix {
        let parts = [add, mul, fma, div, transcendental];
        assert!(
            parts.iter().all(|&p| (0.0..=1.0).contains(&p)),
            "mix fractions must be in [0,1]"
        );
        let sum: f64 = parts.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "mix must sum to 1, got {sum}");
        OpMix {
            add,
            mul,
            fma,
            div,
            transcendental,
        }
    }

    /// A pure-ADD mix.
    pub fn pure_add() -> OpMix {
        OpMix::new(1.0, 0.0, 0.0, 0.0, 0.0)
    }

    /// A pure-MUL mix.
    pub fn pure_mul() -> OpMix {
        OpMix::new(0.0, 1.0, 0.0, 0.0, 0.0)
    }

    /// A pure-FMA mix.
    pub fn pure_fma() -> OpMix {
        OpMix::new(0.0, 0.0, 1.0, 0.0, 0.0)
    }
}

/// What kind of output the workload produces — drives how SDCs are
/// scored (numeric TRE vs classification vs detection criticality) and
/// precision-specific framework overheads (the half-precision YOLO
/// slowdown of Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Plain numeric output (MxM, LavaMD, LUD, microbenchmarks).
    Numeric,
    /// Image classifier (MNIST): criticality = misclassification.
    Classifier,
    /// Object detector (YOLOv3): criticality = detection/classification
    /// changes.
    Detector,
}

/// Static description of one benchmark at full experimental scale.
///
/// The fault-propagation kernels in `mpr-kernels` run a *scaled-down
/// proxy* of each benchmark (fault propagation probabilities are scale-
/// invariant for these regular codes); this profile carries the full-scale
/// operation and traffic counts that determine execution time and beam
/// exposure on each device.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Benchmark name as it appears in the paper's tables.
    pub name: String,
    /// Floating-point operations per execution (full scale).
    pub flops: f64,
    /// Instruction mix of those operations.
    pub mix: OpMix,
    /// Values moved between the device and main memory per execution.
    pub value_traffic: f64,
    /// Parallel thread contexts the workload occupies.
    pub threads: f64,
    /// Live floating-point values per thread context (register demand in
    /// single precision; the models derive the other precisions from it).
    pub regs_per_thread: f64,
    /// Instruction-level parallelism per thread: 1.0 for a dependent
    /// chain (microbenchmarks), larger when independent operations can
    /// overlap (real applications).
    pub ilp: f64,
    /// Distinct data values live in the memory hierarchy during the run.
    pub working_set_values: f64,
    /// Fraction of the execution spent stalled on memory (0 = register
    /// resident, like the microbenchmarks; ~0.7 for the paper's
    /// non-coalesced MxM).
    pub memory_boundedness: f64,
    /// Control-flow operations per FP operation, relative to a typical
    /// application (= 1.0). Microbenchmarks are designed to minimize it.
    pub control_density: f64,
    /// Output semantics.
    pub kind: WorkloadKind,
}

impl WorkloadProfile {
    /// The Micro-ADD profile: one billion dependent additions per thread,
    /// 256 threads per SM on 80 SMs, register-resident (Section 3.1).
    pub fn micro_add() -> WorkloadProfile {
        WorkloadProfile::micro("Micro-ADD", OpMix::pure_add())
    }

    /// The Micro-MUL profile.
    pub fn micro_mul() -> WorkloadProfile {
        WorkloadProfile::micro("Micro-MUL", OpMix::pure_mul())
    }

    /// The Micro-FMA profile.
    pub fn micro_fma() -> WorkloadProfile {
        WorkloadProfile::micro("Micro-FMA", OpMix::pure_fma())
    }

    fn micro(name: &str, mix: OpMix) -> WorkloadProfile {
        let threads = 256.0 * 80.0; // 256 threads/SM x 80 SMs
        WorkloadProfile {
            name: name.to_string(),
            flops: 1e9 * threads, // one billion ops per thread
            mix,
            value_traffic: threads * 2.0, // one seed in, one result out
            threads,
            regs_per_thread: 8.0,
            ilp: 1.0, // strictly dependent chain
            working_set_values: threads * 2.0,
            memory_boundedness: 0.0, // registers only (Section 3.1)
            control_density: 0.1,
            kind: WorkloadKind::Numeric,
        }
    }

    /// Is this one of the synthetic microbenchmarks?
    pub fn is_micro(&self) -> bool {
        self.name.starts_with("Micro")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_mix_validates() {
        let m = OpMix::new(0.25, 0.25, 0.5, 0.0, 0.0);
        assert_eq!(m.fma, 0.5);
        assert_eq!(OpMix::pure_mul().mul, 1.0);
    }

    #[test]
    #[should_panic(expected = "must sum to 1")]
    fn op_mix_rejects_bad_sum() {
        let _ = OpMix::new(0.5, 0.5, 0.5, 0.0, 0.0);
    }

    #[test]
    fn micro_profiles_are_latency_bound_chains() {
        for p in [
            WorkloadProfile::micro_add(),
            WorkloadProfile::micro_mul(),
            WorkloadProfile::micro_fma(),
        ] {
            assert_eq!(p.ilp, 1.0);
            assert!(p.is_micro());
            assert!(p.control_density < 1.0, "micros minimize control flow");
            assert_eq!(p.kind, WorkloadKind::Numeric);
        }
    }
}
