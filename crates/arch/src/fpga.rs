//! The Xilinx Zynq-7000 FPGA model.

use crate::calib::*;
use crate::{Device, Exposure, PersistentFaults, WorkloadProfile};
use mpr_softfloat::Precision;

/// Synthesized resource utilization of one circuit (paper Figure 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaResources {
    /// Look-up tables.
    pub luts: f64,
    /// DSP48 slices.
    pub dsps: f64,
    /// Block RAMs.
    pub brams: f64,
}

impl FpgaResources {
    /// Configuration-memory bits controlled by these resources.
    pub fn config_bits(&self) -> f64 {
        self.luts * FPGA_CONFIG_BITS_PER_LUT
            + self.dsps * FPGA_CONFIG_BITS_PER_DSP
            + self.brams * FPGA_CONFIG_BITS_PER_BRAM
    }
}

/// The Xilinx Zynq-7000 running a synthesized circuit.
///
/// On the FPGA the relationship between precision and reliability is the
/// paper's cleanest case (Section 4): the same algorithm synthesized at a
/// lower precision occupies proportionally less configuration memory, and
/// since strikes land uniformly in that memory, FIT is linear in the
/// exposed area. Two behaviours distinguish the FPGA from the fixed-
/// silicon devices:
///
/// * **Persistence** — a configuration-memory strike rewires the circuit;
///   every subsequent execution is corrupted until the device is
///   reprogrammed. The exposure therefore carries
///   [`PersistentFaults`] with the physical PE count, so the beam
///   simulator can corrupt *every operation mapped to the struck PE*
///   (the paper reprograms on each observed error, which the simulator
///   mirrors).
/// * **No DUEs** — "we have never observed any DUE during our experiments
///   with FPGAs" (bare-metal circuit, no scheduler to hang): the DUE
///   exposure is zero.
#[derive(Debug, Clone)]
pub struct Fpga {
    name: String,
}

impl Fpga {
    /// The Zynq-7000 configuration irradiated in the paper.
    pub fn zynq7000() -> Fpga {
        Fpga {
            name: "Xilinx Zynq-7000".to_string(),
        }
    }

    /// Synthesis results for a supported design.
    ///
    /// Returns `None` for circuits the study did not synthesize.
    pub fn resources(&self, design: &str, precision: Precision) -> Option<FpgaResources> {
        fpga_resources(design, precision).map(|(luts, dsps, brams)| FpgaResources {
            luts,
            dsps,
            brams,
        })
    }

    /// Number of physical multiply-accumulate processing elements the
    /// design folds its computation onto (bounded by the DSP budget).
    pub fn pe_count(&self, design: &str, precision: Precision) -> Option<u64> {
        self.resources(design, precision)
            .map(|r| (r.dsps / fpga_dsp_per_mac(precision)).round().max(1.0) as u64)
    }

    /// Area-normalized sensitivity (configuration bits per unit FIT) —
    /// the paper's per-gate sensitivity check (Section 4.1) divides
    /// resources by the error rate to show area explains the FIT trend.
    ///
    /// # Panics
    ///
    /// Panics if `design` is not one of the synthesized designs.
    pub fn per_gate_sensitivity(&self, design: &str, precision: Precision, fit_au: f64) -> f64 {
        let r = self.resources(design, precision).expect("unknown design");
        (r.luts + r.dsps + r.brams) / fit_au
    }
}

impl Device for Fpga {
    fn name(&self) -> &str {
        &self.name
    }

    fn supports(&self, _precision: Precision) -> bool {
        true // synthesis tailors the datapath to any precision
    }

    fn exec_time(&self, profile: &WorkloadProfile, precision: Precision) -> f64 {
        fpga_time_s(&profile.name, precision).unwrap_or_else(|| {
            // Analytic fallback: ops spread over the PE array at a
            // conservative 150 MHz fabric clock.
            let pes = self.pe_count(&profile.name, precision).unwrap_or(8).max(1) as f64;
            profile.flops / (pes * 1.5e8)
        })
    }

    fn exposure(&self, profile: &WorkloadProfile, precision: Precision) -> Exposure {
        let resources = self
            .resources(&profile.name, precision)
            .unwrap_or(FpgaResources {
                luts: 10_000.0,
                dsps: 40.0,
                brams: 20.0,
            });
        let pe_count = self.pe_count(&profile.name, precision).unwrap_or(8);
        Exposure {
            // Only functionally sensitive configuration bits matter; the
            // rest are don't-care entries and inactive routing.
            compute: resources.config_bits() * FPGA_CONFIG_SENSITIVE_FRACTION,
            due: 0.0,
            pipeline_fraction: 0.0,
            persistence: Some(PersistentFaults { pe_count }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OpMix, WorkloadKind};

    fn profile(name: &str) -> WorkloadProfile {
        WorkloadProfile {
            name: name.to_string(),
            flops: 4.2e6,
            mix: OpMix::pure_fma(),
            value_traffic: 5e4,
            threads: 1.0,
            regs_per_thread: 16.0,
            ilp: 16.0,
            working_set_values: 5e4,
            memory_boundedness: 0.2,
            control_density: 0.2,
            kind: WorkloadKind::Numeric,
        }
    }

    #[test]
    fn exposure_scales_linearly_with_area() {
        let fpga = Fpga::zynq7000();
        let p = profile("MxM");
        let d = fpga.exposure(&p, Precision::Double);
        let s = fpga.exposure(&p, Precision::Single);
        let h = fpga.exposure(&p, Precision::Half);
        // FIT proportional to area: the Figure 2 reductions carry over.
        assert!((s.compute / d.compute - 0.55).abs() < 0.01);
        assert!((h.compute / s.compute - 0.64).abs() < 0.01);
    }

    #[test]
    fn no_dues_on_the_fpga() {
        let fpga = Fpga::zynq7000();
        for p in Precision::ALL {
            assert_eq!(fpga.exposure(&profile("MNIST"), p).due, 0.0);
        }
    }

    #[test]
    fn strikes_are_persistent_with_sane_pe_counts() {
        let fpga = Fpga::zynq7000();
        let e = fpga.exposure(&profile("MxM"), Precision::Half);
        let pes = e.persistence.expect("FPGA faults persist").pe_count;
        // Half-precision MACs pack two per four DSPs: more PEs than double.
        let e_d = fpga.exposure(&profile("MxM"), Precision::Double);
        assert!(pes > e_d.persistence.unwrap().pe_count);
        assert!(pes >= 1);
    }

    #[test]
    fn table1_times_reproduced() {
        let fpga = Fpga::zynq7000();
        assert_eq!(fpga.exec_time(&profile("MxM"), Precision::Double), 2.730);
        assert_eq!(fpga.exec_time(&profile("MNIST"), Precision::Single), 0.009);
        // Half MxM is slightly slower than single on the FPGA (Table 1).
        assert!(
            fpga.exec_time(&profile("MxM"), Precision::Half)
                > fpga.exec_time(&profile("MxM"), Precision::Single)
        );
    }

    #[test]
    fn unknown_design_uses_fallback() {
        let fpga = Fpga::zynq7000();
        let t = fpga.exec_time(&profile("Custom"), Precision::Single);
        assert!(t > 0.0 && t.is_finite());
        assert!(fpga.exposure(&profile("Custom"), Precision::Single).compute > 0.0);
    }

    #[test]
    fn per_gate_sensitivity_is_area_over_fit() {
        let fpga = Fpga::zynq7000();
        let r = fpga.resources("MxM", Precision::Double).unwrap();
        let area = r.luts + r.dsps + r.brams;
        assert_eq!(
            fpga.per_gate_sensitivity("MxM", Precision::Double, 2.0),
            area / 2.0
        );
    }

    #[test]
    fn mnist_has_more_config_bits_than_mxm() {
        let fpga = Fpga::zynq7000();
        for p in Precision::ALL {
            let mxm = fpga.resources("MxM", p).unwrap().config_bits();
            let mnist = fpga.resources("MNIST", p).unwrap().config_bits();
            assert!(mnist > mxm, "{p}: MNIST is the bigger circuit");
        }
    }
}
