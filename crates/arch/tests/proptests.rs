//! Property tests on the architecture models.

use mpr_arch::{Device, Fpga, OpMix, VoltaGpu, WorkloadKind, WorkloadProfile, XeonPhiKnc};
use mpr_softfloat::Precision;
use proptest::prelude::*;

fn arbitrary_profile() -> impl Strategy<Value = WorkloadProfile> {
    (
        1e6f64..1e13,  // flops
        0.0f64..1.0,   // fma fraction (rest split add/mul)
        1e3f64..1e10,  // value traffic
        1.0f64..1e6,   // threads
        1.0f64..256.0, // regs per thread
        1.0f64..32.0,  // ilp
        1e3f64..1e8,   // working set
        0.0f64..1.0,   // memory boundedness
        0.0f64..4.0,   // control density
    )
        .prop_map(
            |(flops, fma, traffic, threads, regs, ilp, ws, bound, ctrl)| {
                let rest = 1.0 - fma;
                WorkloadProfile {
                    name: "synthetic".to_string(),
                    flops,
                    mix: OpMix::new(rest * 0.5, rest * 0.5, fma, 0.0, 0.0),
                    value_traffic: traffic,
                    threads,
                    regs_per_thread: regs,
                    ilp,
                    working_set_values: ws,
                    memory_boundedness: bound,
                    control_density: ctrl,
                    kind: WorkloadKind::Numeric,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_device_answers_any_profile(profile in arbitrary_profile()) {
        let devices: Vec<Box<dyn Device>> = vec![
            Box::new(VoltaGpu::titan_v()),
            Box::new(VoltaGpu::tesla_v100()),
            Box::new(XeonPhiKnc::coprocessor_3120a()),
            Box::new(Fpga::zynq7000()),
        ];
        for d in &devices {
            for p in Precision::ALL {
                if !d.supports(p) {
                    continue;
                }
                let t = d.exec_time(&profile, p);
                let e = d.exposure(&profile, p);
                prop_assert!(t.is_finite() && t > 0.0, "{} {p}", d.name());
                prop_assert!(e.compute.is_finite() && e.compute > 0.0);
                prop_assert!(e.due.is_finite() && e.due >= 0.0);
                prop_assert!((0.0..=1.0).contains(&e.pipeline_fraction));
            }
        }
    }

    #[test]
    fn gpu_micro_latency_scaling_is_invariant(profile in arbitrary_profile()) {
        // Micro-style latency-bound profiles keep the 8:4:3 time ratio
        // regardless of the chain length.
        let gpu = VoltaGpu::titan_v();
        let mut micro = profile;
        micro.ilp = 1.0;
        micro.threads = micro.threads.min(2000.0); // fewer chains than cores
        micro.value_traffic = micro.threads; // negligible memory
        micro.flops = micro.threads * 1e7; // long dependent chains dominate
        let d = gpu.exec_time(&micro, Precision::Double);
        let s = gpu.exec_time(&micro, Precision::Single);
        let h = gpu.exec_time(&micro, Precision::Half);
        prop_assert!((d / s - 2.0).abs() < 0.1, "d/s = {}", d / s);
        prop_assert!((s / h - 4.0 / 3.0).abs() < 0.1, "s/h = {}", s / h);
    }

    #[test]
    fn ecc_never_raises_sdc_exposure(profile in arbitrary_profile()) {
        let bare = VoltaGpu::titan_v();
        let ecc = VoltaGpu::tesla_v100();
        for p in Precision::ALL {
            let b = bare.exposure(&profile, p);
            let e = ecc.exposure(&profile, p);
            prop_assert!(e.compute <= b.compute + 1e-9);
            prop_assert!(e.due >= b.due - 1e-9, "ECC adds detected events");
        }
    }

    #[test]
    fn knc_due_exposure_scales_exactly_with_lanes(profile in arbitrary_profile()) {
        let knc = XeonPhiKnc::coprocessor_3120a();
        let d = knc.exposure(&profile, Precision::Double).due;
        let s = knc.exposure(&profile, Precision::Single).due;
        prop_assert!((s / d - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fpga_exposure_is_precision_monotone_for_studied_designs(
        name in prop_oneof![Just("MxM"), Just("MNIST")]
    ) {
        let fpga = Fpga::zynq7000();
        let profile = WorkloadProfile {
            name: name.to_string(),
            flops: 1e7,
            mix: OpMix::pure_fma(),
            value_traffic: 1e4,
            threads: 1.0,
            regs_per_thread: 8.0,
            ilp: 8.0,
            working_set_values: 1e4,
            memory_boundedness: 0.2,
            control_density: 0.2,
            kind: WorkloadKind::Numeric,
        };
        let d = fpga.exposure(&profile, Precision::Double).compute;
        let s = fpga.exposure(&profile, Precision::Single).compute;
        let h = fpga.exposure(&profile, Precision::Half).compute;
        prop_assert!(d > s && s > h, "{name}: {d} {s} {h}");
    }
}
