//! The contract between benchmarks and the fault-injection machinery.

use crate::hook::{FaultHook, GoldenHook, InjectHook, NullHook};
use crate::ValueFault;
use mpr_softfloat::Precision;

/// An injectable benchmark: one algorithm, runnable at any supported
/// precision, with every intermediate value exposed as a fault site.
///
/// Implementors write [`Workload::dispatch`] to route the requested
/// precision to a generic kernel that threads a [`FaultHook`] through its
/// computation; the provided methods derive everything the campaigns
/// need from that single entry point.
///
/// # Fast paths
///
/// The provided methods all route through `dispatch`, which erases the
/// hook behind `dyn FaultHook` — one virtual call per value touch.
/// Performance-critical workloads additionally override:
///
/// * [`Workload::dispatch_mono`] — the same dispatch, generic over the
///   hook, so golden and single-strike runs compile to static calls
///   (the kernel crates generate this alongside their precision
///   dispatch macro);
/// * [`Workload::run_from_site_into`] — incremental strike execution
///   that reuses the golden output for every output element the fault
///   provably cannot reach and recomputes only the dirty slice.
///
/// Every override carries the same contract: **byte-identical output to
/// the naive path** (DT001). Campaign results, and therefore the cached
/// campaign bytes, must not depend on which path executed a strike.
pub trait Workload: Sync {
    /// Benchmark name as used in the paper's tables ("MxM", "LavaMD", ...).
    fn name(&self) -> &str;

    /// Runs the algorithm at `precision`, passing every intermediate
    /// value through `hook`, and returns the output vector widened to
    /// `f64` (exact for all studied formats).
    fn dispatch(&self, precision: Precision, hook: &mut dyn FaultHook) -> Vec<f64>;

    /// Monomorphized [`Workload::dispatch`]: the hook type is a generic
    /// parameter, so a concrete hook compiles to static calls with the
    /// touch inlined into the kernel loop ([`NullHook`] disappears
    /// entirely). The default forwards to the `dyn` path; kernels
    /// override it via their dispatch macro. Not object-safe — this is
    /// the entry point for callers that hold the concrete workload, and
    /// the implementation detail behind the object-safe fast paths
    /// below.
    fn dispatch_mono<H: FaultHook>(&self, precision: Precision, hook: &mut H) -> Vec<f64>
    where
        Self: Sized,
    {
        self.dispatch(precision, hook)
    }

    /// Whether this workload can execute at `precision` (the Xeon Phi
    /// kernels, for example, have no half-precision variant).
    fn supports(&self, _precision: Precision) -> bool {
        true
    }

    /// Number of dynamic fault sites in one execution.
    fn site_count(&self, precision: Precision) -> u64 {
        let mut hook = GoldenHook::new();
        let _ = self.dispatch(precision, &mut hook);
        hook.sites()
    }

    /// The fault-free output.
    fn run_golden(&self, precision: Precision) -> Vec<f64> {
        let mut hook = NullHook;
        self.dispatch(precision, &mut hook)
    }

    /// Runs with `fault` applied to dynamic site `site`.
    fn run_with_fault(&self, precision: Precision, site: u64, fault: ValueFault) -> Vec<f64> {
        let mut hook = InjectHook::new(site, fault);
        self.dispatch(precision, &mut hook)
    }

    /// Fast-path strike: like [`Workload::run_with_fault`], but the
    /// caller supplies the golden output (campaigns already hold it) so
    /// an incremental implementation can copy every element the fault
    /// provably cannot reach and recompute only the dirty slice.
    ///
    /// `golden` must be exactly `self.run_golden(precision)`; the result
    /// is byte-identical to `run_with_fault(precision, site, fault)`.
    fn run_from_site(
        &self,
        precision: Precision,
        site: u64,
        fault: ValueFault,
        golden: &[f64],
    ) -> Vec<f64> {
        let mut out = Vec::with_capacity(golden.len());
        self.run_from_site_into(precision, site, fault, golden, &mut out);
        out
    }

    /// Buffer-reusing form of [`Workload::run_from_site`] for campaign
    /// inner loops: `out` is cleared and filled, so a worker can strike
    /// thousands of times into one allocation. The default ignores
    /// `golden` and re-runs the whole workload through the `dyn` path;
    /// incremental workloads override this method (and get
    /// `run_from_site` for free).
    fn run_from_site_into(
        &self,
        precision: Precision,
        site: u64,
        fault: ValueFault,
        golden: &[f64],
        out: &mut Vec<f64>,
    ) {
        let _ = golden;
        *out = self.run_with_fault(precision, site, fault);
    }

    /// Batched strike execution: runs every `(site, fault)` strike in
    /// `strikes` and hands each result to `each(index, output)` exactly
    /// once, where `index` is the strike's position in `strikes` and
    /// `output` is byte-identical to
    /// `run_with_fault(precision, site, fault)`.
    ///
    /// Results may arrive in **any order** — batched implementations
    /// group strikes by site region so one golden-prefix replay (or,
    /// for LUD, one checkpoint restore per elimination step) is
    /// amortized across the whole batch. Callers must key their
    /// bookkeeping on `index`, never on arrival order (the campaigns
    /// already tag observations by strike index for thread invariance,
    /// so batch-order invariance falls out of the same discipline).
    ///
    /// `each` returns `false` to request cancellation: the workload
    /// stops issuing callbacks as soon as practical (the default
    /// strike-at-a-time loop checks between strikes, preserving
    /// per-strike cancel granularity for slow or hostile workloads;
    /// batched overrides may finish the in-flight region first).
    ///
    /// `golden` must be exactly `self.run_golden(precision)`.
    fn run_strike_batch(
        &self,
        precision: Precision,
        strikes: &[(u64, ValueFault)],
        golden: &[f64],
        each: &mut dyn FnMut(usize, &[f64]) -> bool,
    ) {
        let mut out = Vec::with_capacity(golden.len());
        for (index, &(site, fault)) in strikes.iter().enumerate() {
            self.run_from_site_into(precision, site, fault, golden, &mut out);
            if !each(index, &out) {
                return;
            }
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use mpr_softfloat::FloatExt;

    /// A small deterministic workload used by the unit tests: a dot
    /// product of fixed vectors.
    #[derive(Debug)]
    pub struct Dot(pub usize);

    impl Dot {
        fn run<F: FloatExt>(&self, hook: &mut dyn FaultHook) -> Vec<f64> {
            let mut acc = F::zero();
            for i in 0..self.0 {
                let a = F::from_f64(0.25 + i as f64 * 0.5);
                let b = F::from_f64(1.5 - i as f64 * 0.25);
                let prod = hook.touch(a * b);
                acc = hook.touch(acc + prod);
            }
            vec![acc.to_f64()]
        }
    }

    impl Workload for Dot {
        fn name(&self) -> &str {
            "dot"
        }

        fn dispatch(&self, precision: Precision, hook: &mut dyn FaultHook) -> Vec<f64> {
            match precision {
                Precision::Double => self.run::<f64>(hook),
                Precision::Single => self.run::<f32>(hook),
                Precision::Half => self.run::<mpr_softfloat::Half>(hook),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::Dot;
    use super::*;

    #[test]
    fn site_count_is_deterministic_and_positive() {
        let w = Dot(8);
        let n = w.site_count(Precision::Single);
        assert_eq!(n, 16); // two touches per iteration
        assert_eq!(n, w.site_count(Precision::Single));
        // Same algorithm, same site count across precisions.
        assert_eq!(n, w.site_count(Precision::Double));
        assert_eq!(n, w.site_count(Precision::Half));
    }

    #[test]
    fn golden_runs_are_reproducible() {
        let w = Dot(8);
        for p in Precision::ALL {
            assert_eq!(w.run_golden(p), w.run_golden(p));
        }
    }

    #[test]
    fn lower_precision_golden_approximates_double() {
        let w = Dot(8);
        let d = w.run_golden(Precision::Double)[0];
        let s = w.run_golden(Precision::Single)[0];
        let h = w.run_golden(Precision::Half)[0];
        assert!((s - d).abs() / d.abs() < 1e-6);
        assert!((h - d).abs() / d.abs() < 1e-2);
        // And the representational error grows as precision shrinks.
        assert!((h - d).abs() >= (s - d).abs());
    }

    #[test]
    fn sign_flip_at_final_site_negates_contribution() {
        let w = Dot(4);
        let golden = w.run_golden(Precision::Double)[0];
        let last_site = w.site_count(Precision::Double) - 1;
        let faulty = w.run_with_fault(Precision::Double, last_site, ValueFault::BitFlip(63))[0];
        assert_eq!(faulty, -golden);
    }

    #[test]
    fn fault_past_the_end_is_masked() {
        let w = Dot(4);
        let golden = w.run_golden(Precision::Half);
        let faulty = w.run_with_fault(Precision::Half, 10_000, ValueFault::BitFlip(0));
        assert_eq!(golden, faulty);
    }

    #[test]
    fn default_strike_batch_matches_run_with_fault_and_honors_cancel() {
        let w = Dot(6);
        let p = Precision::Single;
        let golden = w.run_golden(p);
        let strikes: Vec<(u64, ValueFault)> = (0..8)
            .map(|i| (i as u64, ValueFault::BitFlip((i % 30) as u32)))
            .collect();
        let mut seen = vec![None; strikes.len()];
        w.run_strike_batch(p, &strikes, &golden, &mut |index, out| {
            seen[index] = Some(out.to_vec());
            true
        });
        for (i, &(site, fault)) in strikes.iter().enumerate() {
            assert_eq!(
                seen[i].as_deref(),
                Some(&w.run_with_fault(p, site, fault)[..]),
                "strike {i}"
            );
        }
        // A `false` return stops the default loop between strikes.
        let mut calls = 0;
        w.run_strike_batch(p, &strikes, &golden, &mut |_, _| {
            calls += 1;
            calls < 3
        });
        assert_eq!(calls, 3);
    }
}
