//! # mpr-fault
//!
//! The software fault-injection layer of the study, playing the role of
//! CAROL-FI (Oliveira et al., CF'17) in the paper's methodology: it
//! perturbs one value of a *live execution* of a benchmark and classifies
//! the outcome against the fault-free golden run.
//!
//! The crate defines:
//!
//! * [`ValueFault`] — what happens to a struck value (single/double bit
//!   flip, byte corruption, wide datapath corruption).
//! * [`FaultModel`] — distribution over [`ValueFault`]s used by a campaign.
//! * [`Workload`] — the contract a benchmark implements to be injectable:
//!   enumerate dynamic fault sites, run golden, run with one fault applied
//!   at a chosen site.
//! * [`hook`] — the instrumentation used by kernels to expose every
//!   intermediate value as a fault site with a single code path for
//!   golden, counting, and injected runs.
//! * [`InjectionCampaign`] — N seeded injections (parallelized with
//!   std::thread::scope), producing outcome counts, AVF/PVF estimates, and the
//!   per-SDC severity list that feeds the TRE analysis.
//!
//! # Example
//!
//! ```rust
//! use mpr_fault::{FaultModel, InjectionCampaign, Workload};
//! use mpr_fault::hook::FaultHook;
//! use mpr_softfloat::{FloatExt, Precision};
//!
//! /// A toy workload: sum of 1..=8 computed in the requested precision.
//! #[derive(Debug)]
//! struct Sum8;
//!
//! impl Sum8 {
//!     fn run<F: FloatExt>(&self, hook: &mut dyn FaultHook) -> Vec<f64> {
//!         let mut acc = F::zero();
//!         for i in 1..=8 {
//!             acc = hook.touch(acc + F::from_f64(i as f64));
//!         }
//!         vec![acc.to_f64()]
//!     }
//! }
//!
//! impl Workload for Sum8 {
//!     fn name(&self) -> &'static str { "sum8" }
//!     fn dispatch(&self, p: Precision, hook: &mut dyn FaultHook) -> Vec<f64> {
//!         match p {
//!             Precision::Double => self.run::<f64>(hook),
//!             Precision::Single => self.run::<f32>(hook),
//!             Precision::Half => self.run::<mpr_softfloat::Half>(hook),
//!         }
//!     }
//! }
//!
//! let report = InjectionCampaign::new(&Sum8, Precision::Single)
//!     .injections(200)
//!     .seed(7)
//!     .model(FaultModel::single_bit())
//!     .run();
//! assert_eq!(report.counts.total(), 200);
//! // Most single-bit flips in a live accumulator reach the output.
//! assert!(report.vulnerability().factor() > 0.5);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod campaign;
pub mod hook;
pub mod hostile;
mod model;
mod workload;

pub use campaign::{CampaignError, InjectionCampaign, InjectionReport};
pub use model::{FaultModel, ValueFault};
pub use workload::Workload;
