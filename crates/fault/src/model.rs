//! Fault models: what a particle strike does to a value.

use rand::Rng;

/// A concrete corruption applied to one `width`-bit value.
///
/// Bit indices are taken modulo the value width, so a fault sampled for a
/// wide register can be replayed on a narrower value without going out of
/// range (mirroring how a strike in a 32-bit physical register lands in
/// whatever value currently occupies it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueFault {
    /// Flip a single bit — the dominant terrestrial soft-error mode.
    BitFlip(u32),
    /// Flip two independent bits (multi-cell upset).
    DoubleBitFlip(u32, u32),
    /// XOR one byte of the representation with a nonzero pattern.
    ByteCorrupt {
        /// Which byte (0 = least significant), modulo the value width.
        byte: u32,
        /// Nonzero XOR pattern applied to that byte.
        xor: u8,
    },
    /// XOR the whole representation with a mask — a wide datapath
    /// corruption, e.g. a strike in a functional unit's internal pipeline
    /// that mangles the in-flight result.
    XorMask(u64),
    /// Force one bit to 1 — a persistent stuck-at fault (FPGA
    /// configuration upsets rewire logic into constant functions). A
    /// value whose bit already matches is *not* corrupted: the fault is
    /// present but not sensitized, the dominant masking mechanism of
    /// configuration-memory upsets.
    StuckHigh(u32),
    /// Force one bit to 0 (see [`ValueFault::StuckHigh`]).
    StuckLow(u32),
}

impl ValueFault {
    /// Applies the corruption to `bits`, treating only the low `width`
    /// bits as the value.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn apply(&self, bits: u64, width: u32) -> u64 {
        assert!((1..=64).contains(&width), "width must be in 1..=64");
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let corrupted = match *self {
            ValueFault::BitFlip(b) => bits ^ (1u64 << (b % width)),
            ValueFault::DoubleBitFlip(a, b) => bits ^ (1u64 << (a % width)) ^ (1u64 << (b % width)),
            ValueFault::ByteCorrupt { byte, xor } => {
                let shift = (byte % width.div_ceil(8)) * 8;
                bits ^ ((xor as u64) << shift)
            }
            ValueFault::XorMask(m) => bits ^ m,
            ValueFault::StuckHigh(b) => bits | (1u64 << (b % width)),
            ValueFault::StuckLow(b) => bits & !(1u64 << (b % width)),
        };
        corrupted & mask
    }
}

/// A distribution over [`ValueFault`]s, sampled per injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultModel {
    /// Always a single uniformly placed bit flip — the model CAROL-FI uses
    /// for the paper's PVF campaigns (Section 5.2).
    SingleBit,
    /// Two distinct uniformly placed bit flips.
    DoubleBit,
    /// One random byte XORed with a random nonzero pattern.
    RandomByte,
    /// A uniformly placed stuck-at-0/1 bit — the FPGA configuration-
    /// upset model (paper Section 4: the corrupted circuit persists
    /// until reprogramming; ~half the values already agree with the
    /// stuck level and are untouched).
    StuckBit,
    /// A mixture: with probability `pipeline_fraction` the strike hits the
    /// functional unit's internal pipeline and mangles the in-flight
    /// result with a wide XOR; otherwise it is a register single-bit flip.
    ///
    /// This is the GPU AVF model (paper Section 6.2): double-precision
    /// cores are more complex, so a larger fraction of their exposed area
    /// is pipeline logic rather than architectural register bits —
    /// `mpr-arch` supplies the per-core fraction.
    Pipeline {
        /// Probability that the fault is a wide pipeline corruption.
        pipeline_fraction: f64,
    },
}

impl FaultModel {
    /// The single-bit-flip model.
    pub fn single_bit() -> FaultModel {
        FaultModel::SingleBit
    }

    /// The pipeline-mixture model with the given wide-corruption
    /// probability.
    ///
    /// # Panics
    ///
    /// Panics if `pipeline_fraction` is outside `[0, 1]`.
    pub fn pipeline(pipeline_fraction: f64) -> FaultModel {
        assert!(
            (0.0..=1.0).contains(&pipeline_fraction),
            "pipeline fraction must be in [0,1], got {pipeline_fraction}"
        );
        FaultModel::Pipeline { pipeline_fraction }
    }

    /// Samples one concrete fault for a `width`-bit value.
    pub fn sample<R: Rng + ?Sized>(&self, width: u32, rng: &mut R) -> ValueFault {
        match *self {
            FaultModel::SingleBit => ValueFault::BitFlip(rng.gen_range(0..width)),
            FaultModel::DoubleBit => {
                let a = rng.gen_range(0..width);
                let mut b = rng.gen_range(0..width - 1);
                if b >= a {
                    b += 1;
                }
                ValueFault::DoubleBitFlip(a, b)
            }
            FaultModel::RandomByte => ValueFault::ByteCorrupt {
                byte: rng.gen_range(0..width.div_ceil(8)),
                xor: rng.gen_range(1..=u8::MAX),
            },
            FaultModel::StuckBit => {
                let bit = rng.gen_range(0..width);
                if rng.gen_bool(0.5) {
                    ValueFault::StuckHigh(bit)
                } else {
                    ValueFault::StuckLow(bit)
                }
            }
            FaultModel::Pipeline { pipeline_fraction } => {
                if rng.gen_bool(pipeline_fraction) {
                    // Wide corruption: at least one bit inside the width.
                    let mask = loop {
                        let m = rng.gen::<u64>() & (u64::MAX >> (64 - width));
                        if m != 0 {
                            break m;
                        }
                    };
                    ValueFault::XorMask(mask)
                } else {
                    ValueFault::BitFlip(rng.gen_range(0..width))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bit_flip_is_involutive_and_single_bit() {
        let f = ValueFault::BitFlip(5);
        let v = 0xDEAD_BEEFu64;
        let c = f.apply(v, 32);
        assert_eq!((c ^ v).count_ones(), 1);
        assert_eq!(f.apply(c, 32), v);
    }

    #[test]
    fn bit_index_wraps_to_width() {
        // Bit 20 on a 16-bit value lands on bit 4.
        let f = ValueFault::BitFlip(20);
        assert_eq!(f.apply(0, 16), 1 << 4);
    }

    #[test]
    fn double_flip_changes_two_bits() {
        let f = ValueFault::DoubleBitFlip(1, 9);
        assert_eq!(f.apply(0, 16).count_ones(), 2);
        // Colliding indices after wrapping still produce a valid value.
        let g = ValueFault::DoubleBitFlip(1, 17);
        assert_eq!(g.apply(0, 16), 0); // both land on bit 1 and cancel
    }

    #[test]
    fn byte_corrupt_stays_in_range() {
        let f = ValueFault::ByteCorrupt { byte: 1, xor: 0xFF };
        let c = f.apply(0, 16);
        assert_eq!(c, 0xFF00);
        // Byte index wraps for narrow values.
        let g = ValueFault::ByteCorrupt { byte: 2, xor: 0x0F };
        assert_eq!(g.apply(0, 16), 0x000F);
    }

    #[test]
    fn xor_mask_is_truncated_to_width() {
        let f = ValueFault::XorMask(u64::MAX);
        assert_eq!(f.apply(0, 16), 0xFFFF);
        assert_eq!(f.apply(0, 64), u64::MAX);
    }

    #[test]
    fn result_never_exceeds_width() {
        let mut rng = StdRng::seed_from_u64(42);
        for model in [
            FaultModel::SingleBit,
            FaultModel::DoubleBit,
            FaultModel::RandomByte,
            FaultModel::pipeline(0.5),
        ] {
            for width in [16u32, 32, 64] {
                for _ in 0..200 {
                    let fault = model.sample(width, &mut rng);
                    let out = fault.apply(u64::MAX >> (64 - width), width);
                    if width < 64 {
                        assert!(out < (1u64 << width), "{model:?} width={width}");
                    }
                }
            }
        }
    }

    #[test]
    fn sampled_faults_always_corrupt_something() {
        let mut rng = StdRng::seed_from_u64(7);
        for model in [
            FaultModel::SingleBit,
            FaultModel::RandomByte,
            FaultModel::pipeline(1.0),
        ] {
            for _ in 0..200 {
                let fault = model.sample(32, &mut rng);
                assert_ne!(fault.apply(0x1234, 32), 0x1234, "{fault:?}");
            }
        }
    }

    #[test]
    fn stuck_bits_sensitize_only_on_mismatch() {
        let hi = ValueFault::StuckHigh(3);
        assert_eq!(hi.apply(0b0000, 16), 0b1000);
        assert_eq!(hi.apply(0b1000, 16), 0b1000, "already high: masked");
        let lo = ValueFault::StuckLow(3);
        assert_eq!(lo.apply(0b1000, 16), 0b0000);
        assert_eq!(lo.apply(0b0000, 16), 0b0000, "already low: masked");
    }

    #[test]
    fn stuck_bit_model_samples_both_levels() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut highs = 0;
        let mut lows = 0;
        for _ in 0..200 {
            match FaultModel::StuckBit.sample(16, &mut rng) {
                ValueFault::StuckHigh(b) => {
                    assert!(b < 16);
                    highs += 1;
                }
                ValueFault::StuckLow(b) => {
                    assert!(b < 16);
                    lows += 1;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(highs > 50 && lows > 50);
    }

    #[test]
    fn pipeline_fraction_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            match FaultModel::pipeline(0.0).sample(32, &mut rng) {
                ValueFault::BitFlip(_) => {}
                other => panic!("expected BitFlip, got {other:?}"),
            }
            match FaultModel::pipeline(1.0).sample(32, &mut rng) {
                ValueFault::XorMask(_) => {}
                other => panic!("expected XorMask, got {other:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "pipeline fraction")]
    fn pipeline_fraction_validated() {
        let _ = FaultModel::pipeline(1.5);
    }
}
