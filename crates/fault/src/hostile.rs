//! Hostile instrumented workloads for exercising the harness's own
//! fault tolerance.
//!
//! The paper treats harness failures — hung boards, watchdog resets,
//! crashed runs — as first-class measurement events. These workloads
//! let the test suite and CI reproduce those events on demand inside
//! the simulator: a [`HostileWorkload`] computes a perfectly ordinary
//! deterministic kernel, but misbehaves in one controlled way chosen
//! by its [`HostileMode`].
//!
//! Two properties keep the determinism contract (DT001) intact:
//!
//! * Misbehavior is *attempt-dependent, output-independent*. A
//!   [`HostileMode::FlakyGolden`] workload panics on its first N golden
//!   runs and then computes the exact same bytes a never-failing run
//!   would have; a [`HostileMode::SlowStrike`] workload only wastes
//!   wall-clock time. Retried cells are therefore byte-identical to
//!   clean first runs.
//! * Flakiness is tracked in a process-global registry keyed by the
//!   workload's `tag`, not in `&self` — campaign drivers hold the
//!   workload behind `&dyn Workload` and may run golden on any thread.
//!   Distinct tags have independent failure schedules, so concurrent
//!   tests never interfere.

use crate::hook::{FaultHook, GoldenHook};
use crate::Workload;
use mpr_softfloat::{FloatExt, Precision};
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

/// How many values the hostile kernel folds; small enough that even a
/// deliberately slow strike keeps test campaigns cheap.
const KERNEL_LEN: usize = 24;

/// Process-global invocation registry for [`HostileMode::FlakyGolden`]:
/// tag → number of golden runs attempted so far. Entries persist for
/// the life of the process, so tests must use distinct tags.
static GOLDEN_ATTEMPTS: Mutex<BTreeMap<u64, u32>> = Mutex::new(BTreeMap::new());

/// The one controlled way a [`HostileWorkload`] misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HostileMode {
    /// The golden run panics on the first `panics` attempts (per tag),
    /// then succeeds forever after — the classic crash-on-first-boot
    /// device that a bounded retry recovers.
    FlakyGolden {
        /// Number of leading golden runs that panic.
        panics: u32,
    },
    /// Every dispatch sleeps `millis` before computing, so a campaign
    /// over this workload blows any watchdog deadline shorter than
    /// `millis x strikes` — while still completing each strike, which
    /// is what lets the cooperative cancellation poll fire. Nothing
    /// here ever blocks forever.
    SlowStrike {
        /// Milliseconds each dispatch sleeps before computing.
        millis: u64,
    },
    /// No misbehavior at all: a healthy control cell with the same
    /// kernel, for plans that mix healthy and hostile cells.
    WellBehaved,
}

/// A deterministic dot-product-style workload with scripted
/// misbehavior. See the [module docs](self) for the determinism
/// argument.
#[derive(Debug, Clone, Copy)]
pub struct HostileWorkload {
    tag: u64,
    mode: HostileMode,
}

impl HostileWorkload {
    /// Creates a hostile workload. `tag` seeds the kernel's constants
    /// (distinct tags compute distinct outputs) and keys the flaky
    /// registry (distinct tags fail independently).
    pub fn new(tag: u64, mode: HostileMode) -> HostileWorkload {
        HostileWorkload { tag, mode }
    }

    /// The registry / kernel tag.
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// The scripted misbehavior.
    pub fn mode(&self) -> HostileMode {
        self.mode
    }

    fn kernel<F: FloatExt>(&self, hook: &mut dyn FaultHook) -> Vec<f64> {
        // An ordinary fold with tag-dependent but exactly representable
        // coefficients, every intermediate exposed as a fault site.
        let mut acc = F::zero();
        for i in 0..KERNEL_LEN {
            let a = F::from_f64(0.25 + ((self.tag >> (i % 16)) & 3) as f64 * 0.5);
            let b = F::from_f64(1.5 - i as f64 * 0.0625);
            let prod = hook.touch(a * b);
            acc = hook.touch(acc + prod);
        }
        vec![acc.to_f64()]
    }
}

impl Workload for HostileWorkload {
    fn name(&self) -> &str {
        "hostile"
    }

    fn dispatch(&self, precision: Precision, hook: &mut dyn FaultHook) -> Vec<f64> {
        if let HostileMode::SlowStrike { millis } = self.mode {
            std::thread::sleep(Duration::from_millis(millis));
        }
        match precision {
            Precision::Double => self.kernel::<f64>(hook),
            Precision::Single => self.kernel::<f32>(hook),
            Precision::Half => self.kernel::<mpr_softfloat::Half>(hook),
        }
    }

    /// The fault-free output.
    ///
    /// # Panics
    ///
    /// In [`HostileMode::FlakyGolden`] mode the first `panics` calls
    /// (per tag, process-wide) panic deliberately; later calls succeed
    /// with the same bytes a never-failing run would produce.
    fn run_golden(&self, precision: Precision) -> Vec<f64> {
        if let HostileMode::FlakyGolden { panics } = self.mode {
            // mpr-allow: panic-reachability -- a poisoned hostile registry means a staged panic already unwound through the lock; re-propagating is part of the act
            let mut registry = GOLDEN_ATTEMPTS.lock().expect("hostile registry lock");
            let attempt = registry.entry(self.tag).or_insert(0);
            *attempt += 1;
            if *attempt <= panics {
                let n = *attempt;
                drop(registry);
                // mpr-allow: panic-reachability -- staged misbehavior is this type's entire job; the retry budget it burns is exactly what the fault-tolerance tests measure
                panic!(
                    "hostile workload {:#018x}: staged golden failure {n}/{panics}",
                    self.tag
                );
            }
        }
        let mut hook = GoldenHook::new();
        self.dispatch(precision, &mut hook)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flaky_golden_panics_then_recovers_with_identical_bytes() {
        let flaky = HostileWorkload::new(0xF1A2, HostileMode::FlakyGolden { panics: 2 });
        for n in 1..=2 {
            let err = std::panic::catch_unwind(|| flaky.run_golden(Precision::Single))
                .expect_err("staged failure");
            let msg = err.downcast_ref::<String>().expect("string payload");
            assert!(msg.contains(&format!("{n}/2")), "message {msg}");
        }
        let recovered = flaky.run_golden(Precision::Single);
        // Identical bytes to a never-failing workload with the same tag.
        let clean = HostileWorkload::new(0xF1A2, HostileMode::WellBehaved);
        let clean_out = clean.run_golden(Precision::Single);
        let a: Vec<u64> = recovered.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = clean_out.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn tags_fail_independently_and_shape_the_output() {
        let a = HostileWorkload::new(0xA11CE, HostileMode::FlakyGolden { panics: 1 });
        let b = HostileWorkload::new(0xB0B, HostileMode::WellBehaved);
        // b's golden runs are untouched by a's failure schedule.
        let out_b = b.run_golden(Precision::Double);
        assert!(std::panic::catch_unwind(|| a.run_golden(Precision::Double)).is_err());
        assert_eq!(out_b, b.run_golden(Precision::Double));
        // Distinct tags compute distinct kernels.
        assert_ne!(out_b, a.run_golden(Precision::Double));
    }

    #[test]
    fn slow_strike_completes_each_dispatch() {
        let slow = HostileWorkload::new(7, HostileMode::SlowStrike { millis: 1 });
        let healthy = HostileWorkload::new(7, HostileMode::WellBehaved);
        assert_eq!(
            slow.run_golden(Precision::Half),
            healthy.run_golden(Precision::Half),
            "sleeping never changes the computed bytes"
        );
        assert!(slow.site_count(Precision::Half) > 0);
    }
}
