//! Seeded, parallel fault-injection campaigns.

use crate::{FaultModel, Workload};
use mpr_metrics::sampling::{rel_ci_width, Planner, SamplingConfig, SamplingPlan};
use mpr_metrics::{Outcome, OutcomeCounts, TreCurve, Vulnerability};
use mpr_obs::{
    mix_seed, panic_message, CancelToken, Counter, Gauge, Recorder, Timer, NULL_RECORDER,
};
use mpr_softfloat::ulp::max_relative_error;
use mpr_softfloat::Precision;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};

/// Why a campaign driver failed to produce a report.
///
/// Both campaign drivers (`mpr-fault` injection and `mpr-beam`
/// exposure) share this error: the experiment engine maps it onto its
/// per-cell failure record, so a single bad cell never tears down a
/// whole plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// The cancellation token fired before every strike completed.
    /// All partial work is discarded — a cancelled campaign yields no
    /// result bytes, so determinism of *completed* campaigns is never
    /// at stake.
    Cancelled,
    /// A worker thread panicked; the captured panic message follows.
    WorkerPanic(String),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Cancelled => write!(f, "campaign cancelled by watchdog"),
            CampaignError::WorkerPanic(msg) => write!(f, "campaign worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for CampaignError {}

/// A fault-injection campaign: `n` independent injections into random
/// dynamic sites of a workload, each classified against the golden run.
///
/// This mirrors the paper's CAROL-FI methodology (Section 3.3): more than
/// 2,000 faults per application and data type, one fault per execution,
/// outcome scored by output comparison. Campaigns are deterministic in
/// the seed and parallelized across OS threads with `std::thread::scope`.
///
/// # Example
///
/// ```rust
/// # use mpr_fault::{FaultModel, InjectionCampaign, Workload};
/// # use mpr_fault::hook::FaultHook;
/// # use mpr_softfloat::{FloatExt, Precision};
/// # #[derive(Debug)]
/// # struct W;
/// # impl Workload for W {
/// #     fn name(&self) -> &'static str { "w" }
/// #     fn dispatch(&self, _p: Precision, hook: &mut dyn FaultHook) -> Vec<f64> {
/// #         let mut acc = 0f32;
/// #         for i in 0..32 { acc = hook.touch(acc + i as f32); }
/// #         vec![acc as f64]
/// #     }
/// # }
/// let report = InjectionCampaign::new(&W, Precision::Single)
///     .injections(100)
///     .seed(1)
///     .run();
/// let repeat = InjectionCampaign::new(&W, Precision::Single)
///     .injections(100)
///     .seed(1)
///     .run();
/// assert_eq!(report.counts, repeat.counts); // seeded determinism
/// ```
pub struct InjectionCampaign<'a> {
    workload: &'a dyn Workload,
    precision: Precision,
    injections: u64,
    seed: u64,
    model: FaultModel,
    live_fraction: f64,
    threads: usize,
    strike_batch: usize,
    sampling: SamplingPlan,
    golden: Option<&'a [f64]>,
    recorder: &'a dyn Recorder,
    scope: String,
    cancel: CancelToken,
}

impl std::fmt::Debug for InjectionCampaign<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InjectionCampaign")
            .field("workload", &self.workload.name())
            .field("precision", &self.precision)
            .field("injections", &self.injections)
            .field("seed", &self.seed)
            .field("model", &self.model)
            .field("live_fraction", &self.live_fraction)
            .field("threads", &self.threads)
            .field("strike_batch", &self.strike_batch)
            .field("sampling", &self.sampling)
            .finish()
    }
}

impl<'a> InjectionCampaign<'a> {
    /// Creates a campaign against `workload` at `precision` with default
    /// settings: 2,000 injections (the paper's minimum per configuration),
    /// single-bit flips, seed 0.
    ///
    /// # Panics
    ///
    /// Panics if the workload does not support the precision.
    pub fn new(workload: &'a dyn Workload, precision: Precision) -> InjectionCampaign<'a> {
        assert!(
            workload.supports(precision),
            "{} does not support {precision} precision",
            workload.name()
        );
        InjectionCampaign {
            workload,
            precision,
            injections: 2000,
            seed: 0,
            model: FaultModel::SingleBit,
            live_fraction: 1.0,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            strike_batch: 64,
            sampling: SamplingPlan::Fixed,
            golden: None,
            recorder: &NULL_RECORDER,
            scope: String::new(),
            cancel: CancelToken::unlimited(),
        }
    }

    /// Sets the number of injections.
    pub fn injections(mut self, n: u64) -> Self {
        self.injections = n;
        self
    }

    /// Sets the RNG seed; identical seeds reproduce identical campaigns.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the fault model.
    pub fn model(mut self, model: FaultModel) -> Self {
        self.model = model;
        self
    }

    /// Fraction of *register bit-flip* injections that land in live
    /// state. Architectural injection campaigns pick registers blindly;
    /// a flip in a dead or stale register is trivially masked (SASSIFI /
    /// CAROL-FI behave the same way). Wide pipeline corruptions always
    /// hit an in-flight operation and ignore this fraction.
    ///
    /// # Panics
    ///
    /// Panics if outside `(0, 1]`.
    pub fn live_fraction(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "live fraction must be in (0,1], got {fraction}"
        );
        self.live_fraction = fraction;
        self
    }

    /// Overrides the worker-thread count (defaults to the machine's
    /// available parallelism).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        self.threads = threads;
        self
    }

    /// Sets how many live strikes a worker hands to
    /// [`Workload::run_strike_batch`] per kernel pass (default 64).
    /// Batch size never changes results: per-strike RNG streams are
    /// derived from `(seed, injection index)` and every observation is
    /// tagged with its index, so `strike_batch(1)` and `strike_batch(64)`
    /// are byte-identical (DT001).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn strike_batch(mut self, batch: usize) -> Self {
        assert!(batch > 0, "strike batch must be at least 1");
        self.strike_batch = batch;
        self
    }

    /// Selects the strike-sampling strategy. [`SamplingPlan::Fixed`]
    /// (the default) executes every requested injection and is the
    /// reference oracle. [`SamplingPlan::Adaptive`] runs injections in
    /// rounds over stratified site ranges, reallocates each round by
    /// observed per-stratum SDC variance (Neyman allocation), and stops
    /// once the SDC-count confidence interval is narrower than the
    /// configured target — `injections` then acts as the strike budget.
    /// All adaptive decisions derive from completed-round statistics
    /// keyed by injection index, so results stay byte-identical across
    /// thread counts and strike batches (DT001).
    pub fn sampling(mut self, plan: SamplingPlan) -> Self {
        self.sampling = plan;
        self
    }

    /// Supplies a precomputed golden output, skipping the internal
    /// golden run. The caller must pass exactly
    /// `workload.run_golden(precision)` — the engine memoizes this per
    /// (workload × precision) so shared cells pay for it once.
    pub fn golden(mut self, golden: &'a [f64]) -> Self {
        self.golden = Some(golden);
        self
    }

    /// Attaches an observability recorder; every event this campaign
    /// records carries `scope` (typically the canonical cell key).
    /// Telemetry is read-only metadata — it never perturbs the
    /// campaign's RNG streams or results.
    pub fn telemetry(mut self, recorder: &'a dyn Recorder, scope: impl Into<String>) -> Self {
        self.recorder = recorder;
        self.scope = scope.into();
        self
    }

    /// Attaches a watchdog token (defaults to unlimited). Workers poll
    /// it at every batch boundary and again after every reported strike
    /// (so slow workloads on the default strike-at-a-time path keep
    /// per-injection granularity) and bail out cooperatively when it
    /// fires; [`InjectionCampaign::try_run`] then reports
    /// [`CampaignError::Cancelled`]. No thread is ever detached.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Runs the campaign and collects the report.
    ///
    /// # Panics
    ///
    /// Panics if the campaign is cancelled by its watchdog token or a
    /// worker panics; callers that need to survive either use
    /// [`InjectionCampaign::try_run`].
    pub fn run(&self) -> InjectionReport {
        match self.try_run() {
            Ok(report) => report,
            // mpr-allow: panic-reachability -- this is the documented contract of the convenience wrapper: it fires at the campaign boundary, after all cells drained, never inside a retried cell
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs the campaign, reporting watchdog cancellation and worker
    /// panics as structured errors instead of unwinding. On `Err` all
    /// partial work is discarded; a retried campaign with the same seed
    /// is byte-identical to an untroubled first run.
    pub fn try_run(&self) -> Result<InjectionReport, CampaignError> {
        let rec = self.recorder;
        let wall = Timer::start(rec, "campaign.wall", self.scope.clone());
        let golden_owned;
        let golden: &[f64] = match self.golden {
            Some(g) => g,
            None => {
                golden_owned = self.workload.run_golden(self.precision);
                &golden_owned
            }
        };
        let golden_bits: Vec<u64> = golden.iter().map(|v| v.to_bits()).collect();
        let sites = self.workload.site_count(self.precision);
        assert!(sites > 0, "workload exposes no fault sites");
        let width = self.precision.total_bits();

        // Partition the injection indices across worker threads; each
        // injection derives its own RNG from (seed, index) so the result
        // is independent of the thread count.
        let nthreads = self.threads.min(self.injections.max(1) as usize);
        let resolved = match self.sampling {
            SamplingPlan::Fixed => self.resolve_fixed(nthreads, sites, width, golden, &golden_bits),
            SamplingPlan::Adaptive(config) => {
                self.resolve_adaptive(config, nthreads, sites, width, golden, &golden_bits)
            }
        };
        let (counts, severities, busy_total, executed) = match resolved {
            Ok(r) => r,
            Err(e) => {
                wall.cancel();
                return Err(e);
            }
        };

        Counter::new(rec, "inject.injections", &self.scope).add(self.injections);
        Counter::new(rec, "inject.executed", &self.scope).add(executed);
        Counter::new(rec, "inject.strikes_saved", &self.scope)
            .add(self.injections.saturating_sub(executed));
        Counter::new(rec, "inject.sdc", &self.scope).add(counts.sdc);
        Counter::new(rec, "inject.due", &self.scope).add(counts.due);
        Counter::new(rec, "inject.masked", &self.scope).add(counts.masked);
        let ci_now = rel_ci_width(counts.sdc);
        if ci_now.is_finite() {
            Gauge::new(rec, "inject.ci_width", &self.scope).set(ci_now);
        }
        let wall_s = wall.stop();
        if wall_s > 0.0 {
            // Executed strikes, not the requested budget: an adaptive
            // campaign that stops early must not inflate throughput with
            // injections it never ran.
            Gauge::new(rec, "inject.strikes_per_s", &self.scope).set(executed as f64 / wall_s);
            Gauge::new(rec, "inject.utilization", &self.scope)
                .set(busy_total / (nthreads as f64 * wall_s));
        }

        Ok(InjectionReport {
            workload: self.workload.name().to_string(),
            precision: self.precision,
            counts,
            severities,
        })
    }

    /// Fixed-budget resolution: every requested injection executes.
    /// Returns `(counts, sorted severities, busy seconds, executed)`.
    fn resolve_fixed(
        &self,
        nthreads: usize,
        sites: u64,
        width: u32,
        golden: &[f64],
        golden_bits: &[u64],
    ) -> Result<(OutcomeCounts, Vec<f64>, f64, u64), CampaignError> {
        // Workers take injections in a thread stride; each SDC severity
        // is tagged with its injection index and the merge sorts on it,
        // so the severity vector is in injection order for *any* thread
        // count.
        // One worker's result: outcome tallies, index-tagged SDC
        // severities, and busy seconds.
        type WorkerPartial = (OutcomeCounts, Vec<(u64, f64)>, f64);
        let mut partials: Vec<WorkerPartial> = Vec::new();
        // Set by a worker only when it actually bailed out early, so a
        // deadline that expires just after the last strike completes
        // does not spuriously cancel a finished campaign.
        let aborted = AtomicBool::new(false);
        let mut worker_panic: Option<String> = None;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..nthreads {
                let campaign = &*self;
                let aborted = &aborted;
                handles.push(scope.spawn(move || {
                    let busy = Timer::start(
                        campaign.recorder,
                        "inject.worker_busy",
                        campaign.scope.clone(),
                    );
                    let mut counts = OutcomeCounts::default();
                    let mut severities = Vec::new();
                    // Gathered live strikes plus their injection indices,
                    // reused across batches.
                    let mut batch: Vec<(u64, crate::ValueFault)> =
                        Vec::with_capacity(campaign.strike_batch);
                    let mut indices: Vec<u64> = Vec::with_capacity(campaign.strike_batch);
                    let mut i = t as u64;
                    while i < campaign.injections {
                        // Watchdog poll at batch boundaries; slow
                        // workloads keep per-strike granularity through
                        // the callback's return value below.
                        if campaign.cancel.is_cancelled() {
                            aborted.store(true, Ordering::Relaxed);
                            break;
                        }
                        // Gather phase: draw up to `strike_batch` live
                        // strikes. Per-injection streams are derived
                        // through the shared splitmix64 avalanche from
                        // (seed, index) — batching regroups execution,
                        // never the draws, so results are independent of
                        // the batch size and the thread count alike.
                        batch.clear();
                        indices.clear();
                        while i < campaign.injections && batch.len() < campaign.strike_batch {
                            let mut rng = StdRng::seed_from_u64(mix_seed(campaign.seed, i));
                            let site = rng.gen_range(0..sites);
                            let fault = campaign.model.sample(width, &mut rng);
                            let dead = matches!(fault, crate::ValueFault::BitFlip(_))
                                && campaign.live_fraction < 1.0
                                && !rng.gen_bool(campaign.live_fraction);
                            if dead {
                                counts.record(Outcome::Masked);
                            } else {
                                batch.push((site, fault));
                                indices.push(i);
                            }
                            i += nthreads as u64;
                        }
                        if batch.is_empty() {
                            continue;
                        }
                        // Execute phase: the workload amortizes golden
                        // replays across the batch and reports each
                        // strike (in any order) through the callback;
                        // classification is keyed on the injection
                        // index, so outcome bytes cannot depend on
                        // arrival order (byte-identical to the
                        // strike-at-a-time path, per the Workload
                        // contract).
                        let mut bailed = false;
                        campaign.workload.run_strike_batch(
                            campaign.precision,
                            &batch,
                            golden,
                            &mut |b, out| {
                                let corrupted = out.len() != golden.len()
                                    || out.iter().zip(golden_bits).any(|(v, &g)| v.to_bits() != g);
                                if corrupted {
                                    counts.record(Outcome::Sdc);
                                    // mpr-allow: panic-reachability -- the batch contract keys callbacks by batch position (`b < batch.len() == indices.len()`); an out-of-range `b` is a workload-override bug the differential tests pin, not a recoverable strike failure
                                    severities.push((indices[b], max_relative_error(out, golden)));
                                } else {
                                    counts.record(Outcome::Masked);
                                }
                                if campaign.cancel.is_cancelled() {
                                    bailed = true;
                                    return false;
                                }
                                true
                            },
                        );
                        if bailed {
                            aborted.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                    (counts, severities, busy.stop())
                }));
            }
            for h in handles {
                // Every handle is joined even after a panic or abort —
                // the scope never re-raises, and the payload feeds the
                // structured failure path instead of a backtrace.
                match h.join() {
                    Ok(p) => partials.push(p),
                    Err(payload) => worker_panic = Some(panic_message(payload)),
                }
            }
        });

        if let Some(msg) = worker_panic {
            return Err(CampaignError::WorkerPanic(msg));
        }
        if aborted.load(Ordering::Relaxed) {
            return Err(CampaignError::Cancelled);
        }

        let mut counts = OutcomeCounts::default();
        let mut busy_total = 0.0;
        let mut tagged: Vec<(u64, f64)> = Vec::new();
        for (c, s, busy) in partials {
            counts.merge(c);
            tagged.extend(s);
            busy_total += busy;
        }
        tagged.sort_by_key(|&(i, _)| i);
        let severities: Vec<f64> = tagged.into_iter().map(|(_, s)| s).collect();
        Ok((counts, severities, busy_total, self.injections))
    }

    /// Adaptive resolution: injections execute in planner rounds over
    /// stratified site ranges; after each round the per-stratum Neyman
    /// weights and the stopping rule are recomputed from the merged
    /// round statistics. Every adaptive decision is a pure function of
    /// completed-round tallies keyed by injection index — never
    /// wall-clock, worker identity, or arrival order — so schedules and
    /// result bytes are identical for every thread count and strike
    /// batch (DT001).
    fn resolve_adaptive(
        &self,
        config: SamplingConfig,
        nthreads: usize,
        sites: u64,
        width: u32,
        golden: &[f64],
        golden_bits: &[u64],
    ) -> Result<(OutcomeCounts, Vec<f64>, f64, u64), CampaignError> {
        let mut planner = Planner::new(sites, self.injections, config);
        let bounds = planner.bounds().to_vec();
        let mut counts = OutcomeCounts::default();
        let mut tagged: Vec<(u64, f64)> = Vec::new();
        let mut busy_total = 0.0;
        let mut round_base = 0u64;
        while let Some(schedule) = planner.next_round() {
            let slots = schedule.len();
            let round_threads = nthreads.min(slots).max(1);
            type WorkerPartial = (OutcomeCounts, Vec<(u64, f64)>, f64);
            let mut partials: Vec<WorkerPartial> = Vec::new();
            let aborted = AtomicBool::new(false);
            let mut worker_panic: Option<String> = None;
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for t in 0..round_threads {
                    let campaign = &*self;
                    let aborted = &aborted;
                    let schedule = &schedule;
                    let bounds = &bounds;
                    handles.push(scope.spawn(move || {
                        let busy = Timer::start(
                            campaign.recorder,
                            "inject.worker_busy",
                            campaign.scope.clone(),
                        );
                        let mut counts = OutcomeCounts::default();
                        let mut severities = Vec::new();
                        let mut batch: Vec<(u64, crate::ValueFault)> =
                            Vec::with_capacity(campaign.strike_batch);
                        let mut indices: Vec<u64> = Vec::with_capacity(campaign.strike_batch);
                        // Workers stride over the round's schedule slots;
                        // the global injection index (round base + slot)
                        // seeds the per-strike RNG exactly like the fixed
                        // path does.
                        let mut s = t;
                        while s < slots {
                            if campaign.cancel.is_cancelled() {
                                aborted.store(true, Ordering::Relaxed);
                                break;
                            }
                            batch.clear();
                            indices.clear();
                            while s < slots && batch.len() < campaign.strike_batch {
                                let idx = round_base + s as u64;
                                let mut rng = StdRng::seed_from_u64(mix_seed(campaign.seed, idx));
                                // mpr-allow: panic-reachability -- the planner emits schedule entries that index its own bounds table (`schedule[..] < bounds.len()`, `s < slots == schedule.len()`); a violation is a planner bug the sampling unit tests pin, not a recoverable strike failure
                                let (lo, len) = bounds[schedule[s]];
                                let site = if len == 0 {
                                    lo
                                } else {
                                    lo + rng.gen_range(0..len)
                                };
                                let fault = campaign.model.sample(width, &mut rng);
                                let dead = matches!(fault, crate::ValueFault::BitFlip(_))
                                    && campaign.live_fraction < 1.0
                                    && !rng.gen_bool(campaign.live_fraction);
                                if dead {
                                    counts.record(Outcome::Masked);
                                } else {
                                    batch.push((site, fault));
                                    indices.push(idx);
                                }
                                s += round_threads;
                            }
                            if batch.is_empty() {
                                continue;
                            }
                            let mut bailed = false;
                            campaign.workload.run_strike_batch(
                                campaign.precision,
                                &batch,
                                golden,
                                &mut |b, out| {
                                    let corrupted = out.len() != golden.len()
                                        || out
                                            .iter()
                                            .zip(golden_bits)
                                            .any(|(v, &g)| v.to_bits() != g);
                                    if corrupted {
                                        counts.record(Outcome::Sdc);
                                        let sev = max_relative_error(out, golden);
                                        // mpr-allow: panic-reachability -- the batch contract keys callbacks by batch position (`b < batch.len() == indices.len()`); an out-of-range `b` is a workload-override bug the differential tests pin, not a recoverable strike failure
                                        severities.push((indices[b], sev));
                                    } else {
                                        counts.record(Outcome::Masked);
                                    }
                                    if campaign.cancel.is_cancelled() {
                                        bailed = true;
                                        return false;
                                    }
                                    true
                                },
                            );
                            if bailed {
                                aborted.store(true, Ordering::Relaxed);
                                break;
                            }
                        }
                        (counts, severities, busy.stop())
                    }));
                }
                for h in handles {
                    match h.join() {
                        Ok(p) => partials.push(p),
                        Err(payload) => worker_panic = Some(panic_message(payload)),
                    }
                }
            });

            if let Some(msg) = worker_panic {
                return Err(CampaignError::WorkerPanic(msg));
            }
            if aborted.load(Ordering::Relaxed) {
                return Err(CampaignError::Cancelled);
            }

            let mut round_sev: Vec<(u64, f64)> = Vec::new();
            for (c, s, busy) in partials {
                counts.merge(c);
                round_sev.extend(s);
                busy_total += busy;
            }
            // Per-stratum round tallies: every scheduled slot executed
            // (a cancelled round returns above), and each SDC maps back
            // to its stratum through the schedule slot it ran in.
            let mut executed_by = vec![0u64; bounds.len()];
            for &h in schedule.iter() {
                // mpr-allow: panic-reachability -- schedule entries index the planner's own bounds table; a violation is a planner bug the sampling unit tests pin
                executed_by[h] += 1;
            }
            let mut events_by = vec![0u64; bounds.len()];
            for &(idx, _) in &round_sev {
                // mpr-allow: panic-reachability -- every severity index lies in this round's slot range (`round_base..round_base + slots`) by construction
                events_by[schedule[(idx - round_base) as usize]] += 1;
            }
            planner.complete_round(&executed_by, &events_by);
            tagged.extend(round_sev);
            round_base += slots as u64;
        }
        tagged.sort_by_key(|&(i, _)| i);
        let severities: Vec<f64> = tagged.into_iter().map(|(_, s)| s).collect();
        Ok((counts, severities, busy_total, planner.executed()))
    }
}

/// The result of an [`InjectionCampaign`].
#[derive(Debug, Clone)]
pub struct InjectionReport {
    /// Workload name.
    pub workload: String,
    /// Precision the campaign ran at.
    pub precision: Precision,
    /// Outcome tallies (injection campaigns produce masked/SDC only;
    /// DUEs are a beam-level phenomenon modeled in `mpr-beam`).
    pub counts: OutcomeCounts,
    /// Worst relative error of each SDC, in injection order.
    pub severities: Vec<f64>,
}

impl InjectionReport {
    /// AVF/PVF estimate for this campaign.
    pub fn vulnerability(&self) -> Vulnerability {
        Vulnerability::from_counts(self.counts)
    }

    /// Severity distribution of the observed SDCs as a TRE curve.
    pub fn tre_curve(&self) -> TreCurve {
        TreCurve::from_errors(self.severities.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::testutil::Dot;

    #[test]
    fn campaign_is_deterministic_across_thread_counts() {
        let w = Dot(16);
        let one = InjectionCampaign::new(&w, Precision::Single)
            .injections(64)
            .seed(11)
            .threads(1)
            .run();
        let many = InjectionCampaign::new(&w, Precision::Single)
            .injections(64)
            .seed(11)
            .threads(7)
            .run();
        assert_eq!(one.counts, many.counts);
        // Severities come out in injection order regardless of the
        // thread interleaving, so the raw vectors match bit for bit.
        let a: Vec<u64> = one.severities.iter().map(|s| s.to_bits()).collect();
        let b: Vec<u64> = many.severities.iter().map(|s| s.to_bits()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let w = Dot(16);
        let a = InjectionCampaign::new(&w, Precision::Half)
            .injections(128)
            .seed(1)
            .run();
        let b = InjectionCampaign::new(&w, Precision::Half)
            .injections(128)
            .seed(2)
            .run();
        // Outcome counts may coincide, but severity lists almost surely
        // differ for live workloads.
        assert_ne!(a.severities, b.severities);
    }

    #[test]
    fn all_injections_are_classified() {
        let w = Dot(16);
        let r = InjectionCampaign::new(&w, Precision::Double)
            .injections(100)
            .run();
        assert_eq!(r.counts.total(), 100);
        assert_eq!(r.counts.sdc as usize, r.severities.len());
        assert_eq!(r.counts.due, 0);
    }

    #[test]
    fn severities_feed_a_tre_curve() {
        let w = Dot(32);
        let r = InjectionCampaign::new(&w, Precision::Half)
            .injections(300)
            .seed(5)
            .run();
        let curve = r.tre_curve();
        assert_eq!(curve.event_count() as u64, r.counts.sdc);
        // Survival at zero tolerance counts every SDC with nonzero error.
        assert!(curve.surviving_fraction(0.0) <= 1.0);
    }

    #[test]
    fn single_bit_flips_in_double_are_often_benign_in_magnitude() {
        // The mechanism behind the paper's TRE trends: most double-precision
        // mantissa bits are far below 0.1% relative significance.
        let w = Dot(32);
        let double = InjectionCampaign::new(&w, Precision::Double)
            .injections(400)
            .seed(9)
            .run();
        let half = InjectionCampaign::new(&w, Precision::Half)
            .injections(400)
            .seed(9)
            .run();
        let d_reduction = double.tre_curve().tolerable_fraction(1e-3);
        let h_reduction = half.tre_curve().tolerable_fraction(1e-3);
        assert!(
            d_reduction > h_reduction,
            "double {d_reduction} must tolerate more than half {h_reduction}"
        );
    }

    #[test]
    fn pre_fired_token_cancels_without_panicking() {
        let w = Dot(16);
        let token = CancelToken::unlimited();
        token.cancel();
        let err = InjectionCampaign::new(&w, Precision::Single)
            .injections(64)
            .seed(3)
            .cancel_token(token)
            .try_run()
            .expect_err("campaign must report cancellation");
        assert_eq!(err, CampaignError::Cancelled);
    }

    #[test]
    fn worker_panic_becomes_structured_error() {
        #[derive(Debug)]
        struct Exploding;
        impl Workload for Exploding {
            fn name(&self) -> &str {
                "exploding"
            }
            fn dispatch(&self, _p: Precision, _hook: &mut dyn crate::hook::FaultHook) -> Vec<f64> {
                panic!("strike handler exploded")
            }
            fn site_count(&self, _p: Precision) -> u64 {
                8
            }
        }
        let golden = [0.0];
        let err = InjectionCampaign::new(&Exploding, Precision::Single)
            .injections(4)
            .golden(&golden)
            .threads(2)
            .try_run()
            .expect_err("campaign must report the panic");
        assert_eq!(
            err,
            CampaignError::WorkerPanic("strike handler exploded".to_string())
        );
    }

    #[test]
    fn retry_after_cancellation_is_byte_identical_to_clean_run() {
        let w = Dot(16);
        let clean = InjectionCampaign::new(&w, Precision::Single)
            .injections(64)
            .seed(11)
            .run();
        // A cancelled attempt leaves no residue: re-running with the
        // same seed reproduces the clean campaign bit for bit (DT001).
        let token = CancelToken::unlimited();
        token.cancel();
        let _ = InjectionCampaign::new(&w, Precision::Single)
            .injections(64)
            .seed(11)
            .cancel_token(token)
            .try_run();
        let retried = InjectionCampaign::new(&w, Precision::Single)
            .injections(64)
            .seed(11)
            .run();
        assert_eq!(clean.counts, retried.counts);
        let a: Vec<u64> = clean.severities.iter().map(|s| s.to_bits()).collect();
        let b: Vec<u64> = retried.severities.iter().map(|s| s.to_bits()).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "does not support")]
    fn unsupported_precision_rejected() {
        #[derive(Debug)]
        struct NoHalf;
        impl Workload for NoHalf {
            fn name(&self) -> &str {
                "nohalf"
            }
            fn dispatch(&self, _p: Precision, _hook: &mut dyn crate::hook::FaultHook) -> Vec<f64> {
                vec![]
            }
            fn supports(&self, p: Precision) -> bool {
                p != Precision::Half
            }
        }
        let _ = InjectionCampaign::new(&NoHalf, Precision::Half);
    }
}
