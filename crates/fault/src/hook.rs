//! Execution instrumentation: every intermediate value a kernel produces
//! flows through a [`FaultHook`], making it an addressable fault site.
//!
//! A kernel writes its inner loop once:
//!
//! ```text
//! acc = hook.touch(acc.mul_add(a, b));
//! ```
//!
//! and the same code path serves three purposes:
//!
//! * [`GoldenHook`] passes values through untouched while counting them —
//!   one run yields both the golden output and the dynamic site count;
//! * [`InjectHook`] corrupts exactly one site (a transient strike);
//! * [`PeriodicHook`] corrupts every site handled by one physical
//!   processing element (a *persistent* FPGA configuration-memory fault:
//!   with `P`-way hardware parallelism, PE `p` executes the operations
//!   whose dynamic index is congruent to `p` mod `P`, and a corrupted PE
//!   mangles all of them until the device is reprogrammed).

use crate::ValueFault;
use mpr_softfloat::FloatExt;

/// Receives every intermediate value of a workload execution.
///
/// Object-safe by operating on raw representation bits; use
/// [`HookExt::touch`] (blanket-implemented for every hook, concrete or
/// `dyn`) from generic kernel code. Kernels whose inner loop is generic
/// over the hook type compile each touch to a static — usually inlined —
/// call; `dyn FaultHook` remains the boundary type campaigns hold.
pub trait FaultHook {
    /// Processes the `width`-bit value `bits`, returning the (possibly
    /// corrupted) replacement.
    fn touch_bits(&mut self, bits: u64, width: u32) -> u64;
}

impl dyn FaultHook + '_ {
    /// Typed pass-through: every call advances the dynamic site cursor.
    #[inline]
    pub fn touch<F: FloatExt>(&mut self, v: F) -> F {
        F::from_bits_u64(self.touch_bits(v.to_bits_u64(), F::PRECISION.total_bits()))
    }
}

/// Typed touch for any hook, statically dispatched when the hook type is
/// concrete. This is the monomorphized half of the hook protocol: a
/// kernel written as `fn run<F: FloatExt, H: FaultHook + ?Sized>` pays a
/// virtual call per touch only when instantiated with `dyn FaultHook`;
/// instantiated with [`NullHook`] / [`InjectHook`] / [`GoldenHook`] the
/// touch inlines to (at most) a cursor increment and a compare.
pub trait HookExt: FaultHook {
    /// Typed pass-through: every call advances the dynamic site cursor.
    #[inline]
    fn touch<F: FloatExt>(&mut self, v: F) -> F {
        F::from_bits_u64(self.touch_bits(v.to_bits_u64(), F::PRECISION.total_bits()))
    }
}

impl<H: FaultHook + ?Sized> HookExt for H {}

/// Pure pass-through: no counting, no corruption. Golden runs through a
/// monomorphized dispatch path with a `NullHook` compile to the bare
/// kernel arithmetic — the hook disappears entirely under inlining.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullHook;

impl FaultHook for NullHook {
    #[inline]
    fn touch_bits(&mut self, bits: u64, _width: u32) -> u64 {
        bits
    }
}

/// Counts sites and never corrupts: produces the golden output and the
/// dynamic site count in one run.
#[derive(Debug, Default)]
pub struct GoldenHook {
    sites: u64,
}

impl GoldenHook {
    /// Creates a fresh counting hook.
    pub fn new() -> GoldenHook {
        GoldenHook::default()
    }

    /// Number of sites seen so far.
    pub fn sites(&self) -> u64 {
        self.sites
    }
}

impl FaultHook for GoldenHook {
    #[inline]
    fn touch_bits(&mut self, bits: u64, _width: u32) -> u64 {
        self.sites += 1;
        bits
    }
}

/// Applies one fault at one dynamic site — a transient particle strike.
#[derive(Debug)]
pub struct InjectHook {
    target: u64,
    fault: ValueFault,
    cursor: u64,
    hit: bool,
}

impl InjectHook {
    /// Corrupts the value at dynamic site `target` with `fault`.
    pub fn new(target: u64, fault: ValueFault) -> InjectHook {
        InjectHook {
            target,
            fault,
            cursor: 0,
            hit: false,
        }
    }

    /// `true` once the targeted site has been reached and corrupted.
    pub fn fired(&self) -> bool {
        self.hit
    }
}

impl FaultHook for InjectHook {
    #[inline]
    fn touch_bits(&mut self, bits: u64, width: u32) -> u64 {
        let site = self.cursor;
        self.cursor += 1;
        if site == self.target {
            self.hit = true;
            self.fault.apply(bits, width)
        } else {
            bits
        }
    }
}

/// Corrupts every site executed by one physical processing element — the
/// persistent-fault model for FPGA configuration-memory strikes.
#[derive(Debug)]
pub struct PeriodicHook {
    offset: u64,
    period: u64,
    fault: ValueFault,
    cursor: u64,
    hits: u64,
}

impl PeriodicHook {
    /// Corrupts sites congruent to `offset` modulo `period` (the
    /// operations mapped to one of `period` physical PEs).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or `offset >= period`.
    pub fn new(offset: u64, period: u64, fault: ValueFault) -> PeriodicHook {
        assert!(period > 0, "period must be positive");
        assert!(offset < period, "offset {offset} must be < period {period}");
        PeriodicHook {
            offset,
            period,
            fault,
            cursor: 0,
            hits: 0,
        }
    }

    /// Number of operations corrupted so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }
}

impl FaultHook for PeriodicHook {
    #[inline]
    fn touch_bits(&mut self, bits: u64, width: u32) -> u64 {
        let site = self.cursor;
        self.cursor += 1;
        if site % self.period == self.offset {
            self.hits += 1;
            self.fault.apply(bits, width)
        } else {
            bits
        }
    }
}

/// Applies several independent transient faults in one execution — the
/// error-*accumulation* scenario the paper's FPGA methodology explicitly
/// avoids by reprogramming at each observed error (Section 4), and the
/// regime a device without scrubbing would drift into.
#[derive(Debug)]
pub struct MultiStrikeHook {
    /// Sorted (site, fault) pairs still to fire.
    strikes: Vec<(u64, ValueFault)>,
    cursor: u64,
    fired: usize,
}

impl MultiStrikeHook {
    /// Creates a hook applying each `(site, fault)` pair. Duplicate
    /// sites apply their faults in sequence.
    pub fn new(mut strikes: Vec<(u64, ValueFault)>) -> MultiStrikeHook {
        strikes.sort_by_key(|&(site, _)| site);
        MultiStrikeHook {
            strikes,
            cursor: 0,
            fired: 0,
        }
    }

    /// How many strikes have fired so far.
    pub fn fired(&self) -> usize {
        self.fired
    }
}

impl FaultHook for MultiStrikeHook {
    #[inline]
    fn touch_bits(&mut self, bits: u64, width: u32) -> u64 {
        let site = self.cursor;
        self.cursor += 1;
        let mut out = bits;
        while let Some(&(s, fault)) = self.strikes.get(self.fired) {
            if s != site {
                break;
            }
            out = fault.apply(out, width);
            self.fired += 1;
        }
        out
    }
}

/// Observes values without corrupting them: collects the magnitude
/// census of a workload's fault-site population, which explains *where*
/// a kernel is vulnerable (e.g. the tiny high-order Horner terms of a
/// double-precision transcendental).
#[derive(Debug, Default)]
pub struct TracingHook {
    sites: u64,
    zeros: u64,
    subnormal_or_tiny: u64,
    log2_magnitudes: Vec<i32>,
}

impl TracingHook {
    /// Creates a fresh tracer.
    pub fn new() -> TracingHook {
        TracingHook::default()
    }

    /// Number of sites observed.
    pub fn sites(&self) -> u64 {
        self.sites
    }

    /// Sites holding exactly zero.
    pub fn zeros(&self) -> u64 {
        self.zeros
    }

    /// Floor of log2 |value| for every nonzero finite site, in order.
    pub fn log2_magnitudes(&self) -> &[i32] {
        &self.log2_magnitudes
    }

    /// Fraction of sites whose magnitude is below `2^threshold_log2` —
    /// the "tiny intermediate" share whose exponent-bit corruption is
    /// catastrophic.
    pub fn tiny_fraction(&self, threshold_log2: i32) -> f64 {
        if self.sites == 0 {
            return 0.0;
        }
        let tiny = self
            .log2_magnitudes
            .iter()
            .filter(|&&m| m < threshold_log2)
            .count() as u64
            + self.zeros
            + self.subnormal_or_tiny;
        tiny as f64 / self.sites as f64
    }
}

impl FaultHook for TracingHook {
    fn touch_bits(&mut self, bits: u64, width: u32) -> u64 {
        self.sites += 1;
        // Interpret through f64 for a uniform magnitude scale: widths
        // below 64 are widened exactly by the caller's representation.
        let v = match width {
            64 => f64::from_bits(bits),
            32 => f32::from_bits(bits as u32) as f64,
            16 => mpr_softfloat::Half::from_bits(bits as u16).to_f64(),
            _ => bits as f64, // fixed-point staging registers
        };
        if v == 0.0 {
            self.zeros += 1;
        } else if !v.is_finite() || v.abs() < 1e-300 {
            self.subnormal_or_tiny += 1;
        } else {
            self.log2_magnitudes.push(v.abs().log2().floor() as i32);
        }
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_softfloat::Half;

    fn run_chain(hook: &mut dyn FaultHook) -> f64 {
        let mut acc = 0.0f64;
        for i in 1..=10 {
            acc = hook.touch(acc + i as f64);
        }
        acc
    }

    #[test]
    fn golden_hook_counts_and_preserves() {
        let mut hook = GoldenHook::new();
        let out = run_chain(&mut hook);
        assert_eq!(out, 55.0);
        assert_eq!(hook.sites(), 10);
    }

    #[test]
    fn inject_hook_hits_exactly_one_site() {
        // Flip the sign bit of the value at site 4 (the partial sum 15).
        let mut hook = InjectHook::new(4, ValueFault::BitFlip(63));
        let out = run_chain(&mut hook);
        assert!(hook.fired());
        // 1+2+3+4+5 = 15 negated, then +6..+10 = 40 - 15 - 15 = 25... i.e.
        // final = 55 - 2*15.
        assert_eq!(out, 25.0);
    }

    #[test]
    fn inject_hook_past_the_end_never_fires() {
        let mut hook = InjectHook::new(1000, ValueFault::BitFlip(0));
        let out = run_chain(&mut hook);
        assert_eq!(out, 55.0);
        assert!(!hook.fired());
    }

    #[test]
    fn periodic_hook_corrupts_every_pe_operation() {
        // Period 2, offset 0: sites 0,2,4,6,8 are corrupted.
        let mut hook = PeriodicHook::new(0, 2, ValueFault::BitFlip(63));
        let _ = run_chain(&mut hook);
        assert_eq!(hook.hits(), 5);
    }

    #[test]
    #[should_panic(expected = "must be < period")]
    fn periodic_hook_validates_offset() {
        let _ = PeriodicHook::new(3, 2, ValueFault::BitFlip(0));
    }

    #[test]
    fn multi_strike_applies_each_fault_once() {
        let mut hook = MultiStrikeHook::new(vec![
            (2, ValueFault::BitFlip(63)),
            (7, ValueFault::BitFlip(63)),
        ]);
        let out = run_chain(&mut hook);
        assert_eq!(hook.fired(), 2);
        // Accumulated faults compose: site 2 negates the partial sum 6
        // (downstream state shifts by -12), so site 7 holds 24, not 36;
        // negating it yields 55 - 12 - 48 = -5.
        assert_eq!(out, -5.0);
    }

    #[test]
    fn multi_strike_stacks_duplicate_sites() {
        // Two sign flips on the same site cancel.
        let mut hook = MultiStrikeHook::new(vec![
            (4, ValueFault::BitFlip(63)),
            (4, ValueFault::BitFlip(63)),
        ]);
        let out = run_chain(&mut hook);
        assert_eq!(out, 55.0);
        assert_eq!(hook.fired(), 2);
    }

    #[test]
    fn tracing_hook_census() {
        let mut hook = TracingHook::new();
        let out = run_chain(&mut hook);
        assert_eq!(out, 55.0, "tracing never corrupts");
        assert_eq!(hook.sites(), 10);
        assert_eq!(hook.zeros(), 0);
        // Partial sums 1..=55: log2 magnitudes from 0 to 5.
        assert_eq!(hook.log2_magnitudes().len(), 10);
        assert_eq!(hook.log2_magnitudes()[0], 0);
        assert_eq!(*hook.log2_magnitudes().last().unwrap(), 5);
        // Everything is >= 1, so nothing is tiny below 2^0.
        assert_eq!(hook.tiny_fraction(0), 0.0);
        assert!(hook.tiny_fraction(6) > 0.99);
    }

    #[test]
    fn touch_respects_value_width() {
        // A bit-31 flip on a Half must be rejected by the width check...
        // so the fault constructor masks to the width instead: flipping
        // bit 31 of a 16-bit value wraps onto bit 15 (sign).
        let mut hook = InjectHook::new(0, ValueFault::BitFlip(15));
        let h: Half = (&mut hook as &mut dyn FaultHook).touch(Half::ONE);
        assert_eq!(h.to_f64(), -1.0);
    }
}
