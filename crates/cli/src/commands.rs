//! Command execution.

use crate::args::{
    duration_of, ChaosOpts, Command, DeviceArg, ModelArg, SamplingOpts, Scale, StudyOpts,
    WorkloadArg,
};
use mpr_core::Study;
use mpr_exp::{
    failure_table, CellKey, CellKind, CellResult, ChaosConfig, ChaosFs, ClassifierId, DeviceId,
    Engine, ExperimentPlan, RealFs, ResultStore, SamplingConfig, SamplingPlan, Vfs, WorkloadId,
};
use mpr_fault::FaultModel;
use mpr_kernels::MicroKernelOp;
use mpr_metrics::sampling::rel_ci_width;
use mpr_metrics::{SeverityHistogram, Table};
use mpr_obs::{JsonlRecorder, Recorder};
use mpr_softfloat::Precision;
use std::sync::Arc;
use std::time::Duration;

/// Runs a parsed command, returning the process exit code.
pub fn run(command: Command) -> i32 {
    if let Some(opts) = command.study_opts() {
        if let Some(code) = resume_preflight(opts) {
            return code;
        }
    }
    match command {
        Command::Help => {
            println!("{}", crate::args::USAGE);
            0
        }
        Command::Tables { opts } => {
            let (study, rec) = study_with_profile(&opts);
            print_tables(&study);
            finish_profile(rec)
        }
        Command::Figures { opts } => {
            let (study, rec) = study_with_profile(&opts);
            print_figures(&study);
            finish_profile(rec)
        }
        Command::Ablations { opts } => {
            let (study, rec) = study_with_profile(&opts);
            print_ablations(&study);
            finish_profile(rec)
        }
        Command::Report { opts } => {
            let (study, rec) = study_with_profile(&opts);
            print_tables(&study);
            print_figures(&study);
            print_ablations(&study);
            let store = study.engine().store();
            println!(
                "experiment cells: {} executed, {} memory hits, {} disk hits, {} quarantined",
                store.executed(),
                store.mem_hits(),
                store.disk_hits(),
                store.quarantined()
            );
            print_convergence(store);
            finish_profile(rec)
        }
        Command::Validate { opts } => {
            let (study, rec) = study_with_profile(&opts);
            let report = study.validate_shapes();
            println!("{}", report.to_table());
            let code = if report.all_passed() { 0 } else { 1 };
            code.max(finish_profile(rec))
        }
        Command::Export { dir, opts } => {
            let (study, rec) = study_with_profile(&opts);
            let code = match study.export_csv(std::path::Path::new(&dir)) {
                Ok(paths) => {
                    println!("wrote {} artifacts to {dir}", paths.len());
                    0
                }
                Err(e) => {
                    eprintln!("export failed: {e}");
                    1
                }
            };
            code.max(finish_profile(rec))
        }
        Command::Campaign {
            device,
            workload,
            precision,
            strikes,
            hours,
            seed,
            threads,
            retries,
            cell_timeout,
            sampling,
        } => run_campaign(
            device,
            workload,
            precision,
            strikes,
            hours,
            sampling_plan(&sampling, Scale::Quick),
            engine_of(seed, threads, retries, cell_timeout),
        ),
        Command::Inject {
            workload,
            precision,
            injections,
            model,
            seed,
            threads,
            retries,
            cell_timeout,
            sampling,
        } => run_inject(
            workload,
            precision,
            injections,
            model,
            sampling_plan(&sampling, Scale::Quick),
            engine_of(seed, threads, retries, cell_timeout),
        ),
        Command::Chaos { opts } => run_chaos(opts),
        Command::Analyze {
            json,
            root,
            baseline,
        } => run_analyze(json, &root, baseline.as_deref()),
    }
}

/// The fixed hostile-run plan: six accumulation cells (GEMM and
/// micro-ADD across the three precisions) — small enough to finish in
/// milliseconds, wide enough to exercise many cache commits.
fn chaos_plan() -> ExperimentPlan {
    let mut plan = ExperimentPlan::new();
    for workload in [WorkloadId::Gemm { dim: 8 }, micro_id(MicroKernelOp::Add)] {
        for precision in [Precision::Double, Precision::Single, Precision::Half] {
            plan.push(CellKey {
                device: DeviceId::Zynq7000,
                workload,
                precision,
                kind: CellKind::Accumulate {
                    faults: 4,
                    trials: 6,
                },
            });
        }
    }
    plan
}

/// Runs the fixed campaign against a (possibly hostile) filesystem and
/// reports the chaos ledger. Exit codes: 0 clean, 1 the simulated
/// crash point was reached (rerun with `--resume`), 3 cell failures.
fn run_chaos(opts: ChaosOpts) -> i32 {
    let dir = std::path::Path::new(&opts.cache_dir);
    if opts.resume {
        // Informational only: a hostile run may have "crashed" before
        // the manifest ever committed, so a missing ledger just means
        // the whole plan runs (the cache decides what re-executes).
        match mpr_exp::Manifest::load(dir) {
            None => println!(
                "resume: no manifest in {} yet; running the full plan",
                dir.display()
            ),
            Some(manifest) => println!(
                "resume: manifest records {} cells, {} unfinished",
                manifest.cells.len(),
                manifest.unfinished().len()
            ),
        }
    }
    let hostile = opts.rate > 0.0 || opts.crash_at.is_some();
    let chaos = hostile.then(|| {
        Arc::new(ChaosFs::new(ChaosConfig {
            seed: opts.seed,
            rate: opts.rate,
            crash_at: opts.crash_at,
        }))
    });
    let vfs: Arc<dyn Vfs> = match &chaos {
        Some(c) => c.clone(),
        None => Arc::new(RealFs),
    };
    let store = Arc::new(ResultStore::with_cache_dir_on(dir, vfs));
    let engine = Engine::new(2019)
        .with_threads(threads_from_env(opts.threads))
        .with_retries(opts.retries)
        .with_store(store);
    let results = engine.try_run(&chaos_plan());
    let failures: Vec<_> = results
        .iter()
        .filter_map(|r| r.as_ref().err().cloned())
        .collect();
    let ok = results.len() - failures.len();
    let store = engine.store();
    println!(
        "cells: {ok} ok, {} failed ({} executed, {} memory hits, {} disk hits, {} quarantined)",
        failures.len(),
        store.executed(),
        store.mem_hits(),
        store.disk_hits(),
        store.quarantined()
    );
    let mut crashed = false;
    if let Some(chaos) = &chaos {
        let stats = chaos.stats();
        crashed = stats.crashed;
        let mut t = Table::new(vec!["quantity", "value"]).with_title(format!(
            "chaos ledger (seed {}, rate {}, crash-at {})",
            opts.seed,
            opts.rate,
            opts.crash_at
                .map_or_else(|| "off".to_string(), |k| k.to_string())
        ));
        t.row(vec!["filesystem ops".into(), stats.ops.to_string()]);
        t.row(vec!["survived clean".into(), stats.survived.to_string()]);
        for (kind, n) in &stats.injected {
            if *n > 0 {
                t.row(vec![format!("injected {kind}"), n.to_string()]);
            }
        }
        t.row(vec![
            "crash point reached".into(),
            if crashed { "yes".into() } else { "no".into() },
        ]);
        println!("{t}");
        println!(
            "chaos: ops={} injected={} survived={} crashed={}",
            stats.ops,
            stats.injected_total(),
            stats.survived,
            if crashed { "yes" } else { "no" }
        );
    }
    if !failures.is_empty() {
        eprintln!("{}", failure_table(&failures));
        return 3;
    }
    if crashed {
        println!("simulated crash reached; rerun with --resume to finish the campaign");
        return 1;
    }
    0
}

fn print_tables(study: &Study) {
    println!("{}", study.table1_fpga_times());
    println!("{}", study.table2_knc_times());
    println!("{}", study.table3_gpu_times());
}

fn print_figures(study: &Study) {
    println!("{}", study.fig2_fpga_resources().to_table());
    println!("{}", study.fig3_fpga_fit().to_table());
    println!("{}", study.fig4_fpga_tre().to_table());
    println!("{}", study.fig5_fpga_mebf().to_table());
    println!("{}", study.fig6_knc_fit().to_table());
    println!("{}", study.fig7_knc_pvf().to_table());
    println!("{}", study.fig8_knc_tre().to_table());
    println!("{}", study.fig9_knc_mebf().to_table());
    println!("{}", study.fig10_gpu_fit().to_table());
    println!("{}", study.fig11_gpu_tre().to_table());
    println!("{}", study.fig12_gpu_avf().to_table());
    println!("{}", study.fig13_gpu_mebf().to_table());
}

fn print_ablations(study: &Study) {
    println!("{}", study.ablation_gpu_ecc().to_table());
    println!("{}", study.ablation_fault_models().to_table());
    println!("{}", study.ablation_fault_accumulation().to_table());
}

/// Per-cell convergence: strikes executed against the fixed budget and
/// the relative CI width each campaign landed on. Accumulation cells
/// have no strike budget and are skipped; all-fixed studies still list
/// their cells (executed == budget, saved == 0) so the table doubles
/// as an execution ledger.
fn print_convergence(store: &ResultStore) {
    let mut t = Table::new(vec!["cell", "budget", "executed", "saved", "ci width"])
        .with_title("per-cell convergence".to_string());
    let mut rows = 0u32;
    for (key, result) in store.snapshot() {
        let (budget, executed, width) = match &result {
            CellResult::Beam(r) => (r.candidates, r.executed, r.ci_width()),
            CellResult::Inject(r) => {
                let Some(budget) = inject_budget(&key) else {
                    continue;
                };
                (budget, r.counts.total(), rel_ci_width(r.counts.sdc))
            }
            CellResult::Accumulate(_) => continue,
        };
        t.row(vec![
            cell_label(&key),
            budget.to_string(),
            executed.to_string(),
            budget.saturating_sub(executed).to_string(),
            if width.is_finite() {
                format!("{width:.3}")
            } else {
                "inf".to_string()
            },
        ]);
        rows += 1;
    }
    if rows > 0 {
        println!("{t}");
    }
}

/// A store key shortened for table display: the per-run `seed=` and
/// schema-version prefixes are dropped, the device/workload/precision/
/// kind tokens kept verbatim.
fn cell_label(store_key: &str) -> String {
    store_key
        .splitn(3, ';')
        .nth(2)
        .unwrap_or(store_key)
        .to_string()
}

/// The strike budget of an injection cell, recovered from its store
/// key: the adaptive `b:` override when present (a reallocation-boosted
/// rerun), otherwise the `n=` request. `None` when the key doesn't
/// carry either token.
fn inject_budget(store_key: &str) -> Option<u64> {
    let field = |marker: &str| -> Option<u64> {
        let rest = store_key.split(marker).nth(1)?;
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        digits.parse().ok()
    };
    field(";b:").or_else(|| field("inj:n="))
}

fn run_analyze(json: bool, root: &str, baseline: Option<&str>) -> i32 {
    match mpr_analyze::analyze_workspace(std::path::Path::new(root)) {
        Ok(analysis) => {
            if json {
                println!("{}", analysis.to_json());
            } else {
                print!("{}", analysis.to_text());
            }
            if let Some(path) = baseline {
                // Baseline mode gates on drift, not on cleanliness: a
                // deliberately-accepted finding set stays green until
                // it changes.
                let text = match std::fs::read_to_string(path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("analyze failed: baseline {path}: {e}");
                        return 2;
                    }
                };
                let base = match mpr_analyze::Analysis::from_json(&text) {
                    Ok(b) => b,
                    Err(e) => {
                        eprintln!("analyze failed: baseline {path}: {e}");
                        return 2;
                    }
                };
                return match mpr_analyze::diff_reports(&base, &analysis) {
                    Some(diff) => {
                        eprint!("{diff}");
                        1
                    }
                    None => 0,
                };
            }
            if analysis.clean() {
                0
            } else {
                1
            }
        }
        Err(e) => {
            eprintln!("analyze failed: {e}");
            2
        }
    }
}

/// Resolves the worker-thread budget: the `--threads` flag wins, then
/// the `MPR_THREADS` environment variable, then 0 (all cores).
fn resolve_threads(flag: Option<usize>, env: Option<&str>) -> usize {
    flag.or_else(|| env.and_then(|s| s.trim().parse().ok()))
        .unwrap_or(0)
}

fn threads_from_env(flag: Option<usize>) -> usize {
    resolve_threads(flag, std::env::var("MPR_THREADS").ok().as_deref())
}

/// Resolves the watchdog deadline: the `--cell-timeout` flag wins, then
/// the `MPR_CELL_TIMEOUT` environment variable (same grammar), then no
/// deadline. An unparsable environment value is reported and ignored.
fn resolve_cell_timeout(flag: Option<Duration>, env: Option<&str>) -> Option<Duration> {
    flag.or_else(|| {
        let v = env?.trim();
        match duration_of(v) {
            Ok(d) => Some(d),
            Err(e) => {
                eprintln!("ignoring MPR_CELL_TIMEOUT: {e}");
                None
            }
        }
    })
}

fn cell_timeout_from_env(flag: Option<Duration>) -> Option<Duration> {
    resolve_cell_timeout(flag, std::env::var("MPR_CELL_TIMEOUT").ok().as_deref())
}

/// The engine behind the single-campaign commands, with the
/// fault-tolerance knobs applied.
fn engine_of(
    seed: u64,
    threads: Option<usize>,
    retries: u32,
    cell_timeout: Option<Duration>,
) -> Engine {
    Engine::new(seed)
        .with_threads(threads_from_env(threads))
        .with_retries(retries)
        .with_cell_timeout(cell_timeout_from_env(cell_timeout))
}

/// Handles `--resume` before any cells run: names the subset the run
/// will re-execute, or exits 2 when the cache has no manifest yet.
fn resume_preflight(opts: &StudyOpts) -> Option<i32> {
    if !opts.resume {
        return None;
    }
    // The parser guarantees `--resume` comes with `--cache-dir`.
    let dir = std::path::Path::new(opts.cache_dir.as_deref()?);
    let Some(manifest) = mpr_exp::Manifest::load(dir) else {
        eprintln!(
            "nothing to resume: no campaign manifest in {} (run once with --cache-dir first)",
            dir.display()
        );
        return Some(2);
    };
    let unfinished = manifest.unfinished().len();
    if unfinished == 0 {
        println!(
            "resume: all {} recorded cells completed; cached results will be reused",
            manifest.cells.len()
        );
    } else {
        println!(
            "resume: re-executing {} unfinished of {} recorded cells:",
            unfinished,
            manifest.cells.len()
        );
        for (key, status) in manifest
            .cells
            .iter()
            .filter(|(_, s)| s.state != mpr_exp::CellState::Ok)
        {
            println!("  [{}] {key} ({} attempts)", status.state, status.attempts);
        }
    }
    None
}

/// Builds the strike-sampling plan from the parsed flags: fixed unless
/// `--adaptive`, starting from the scale's CI-width preset and refined
/// by `--ci-width` / `--strike-budget`.
fn sampling_plan(opts: &SamplingOpts, scale: Scale) -> SamplingPlan {
    if !opts.adaptive {
        return SamplingPlan::Fixed;
    }
    let mut config = match scale {
        Scale::Quick => SamplingConfig::quick(),
        Scale::Paper => SamplingConfig::paper(),
    };
    if let Some(w) = opts.ci_width {
        config = config.with_ci_width(w);
    }
    if let Some(b) = opts.strike_budget {
        config = config.with_budget(b);
    }
    SamplingPlan::Adaptive(config)
}

fn study(opts: &StudyOpts) -> Study {
    let mut study = match opts.scale {
        Scale::Quick => Study::quick(2019),
        Scale::Paper => Study::paper(2019),
    }
    .with_sampling(sampling_plan(&opts.sampling, opts.scale))
    .with_threads(threads_from_env(opts.threads))
    .with_retries(opts.retries)
    .with_cell_timeout(cell_timeout_from_env(opts.cell_timeout));
    if let Some(dir) = &opts.cache_dir {
        study = study.with_cache_dir(dir);
    }
    study
}

/// Builds the study and, when `--profile` was given, attaches a JSONL
/// recorder writing to the requested path.
fn study_with_profile(opts: &StudyOpts) -> (Study, Option<Arc<JsonlRecorder>>) {
    let mut study = study(opts);
    let rec = opts
        .profile
        .as_ref()
        .map(|path| Arc::new(JsonlRecorder::to_path(path)));
    if let Some(rec) = &rec {
        study = study.with_recorder(rec.clone() as Arc<dyn Recorder>);
    }
    (study, rec)
}

/// Flushes the profile log (if any) and prints its rendered summary.
/// Returns the exit-code contribution: 0 normally, 1 if the log could
/// not be written back or parsed.
fn finish_profile(rec: Option<Arc<JsonlRecorder>>) -> i32 {
    let Some(rec) = rec else { return 0 };
    rec.flush();
    let Some(path) = rec.path() else { return 0 };
    println!("profile log: {}", path.display());
    if crate::profile::print_profile(path) {
        0
    } else {
        1
    }
}

fn device_id(arg: DeviceArg) -> DeviceId {
    match arg {
        DeviceArg::Gpu => DeviceId::TitanV,
        DeviceArg::GpuEcc => DeviceId::TeslaV100,
        DeviceArg::Knc => DeviceId::Knc3120a,
        DeviceArg::Fpga => DeviceId::Zynq7000,
    }
}

/// The CLI's fixed mid-size workload proxies (between the study's
/// quick and paper scales).
fn workload_id(arg: WorkloadArg) -> WorkloadId {
    match arg {
        WorkloadArg::Mxm => WorkloadId::Gemm { dim: 16 },
        WorkloadArg::Lavamd => WorkloadId::LavaMd {
            boxes: 2,
            particles: 4,
            knc_unit: false,
        },
        WorkloadArg::LavamdKnc => WorkloadId::LavaMd {
            boxes: 2,
            particles: 4,
            knc_unit: true,
        },
        WorkloadArg::Lud => WorkloadId::Lud { dim: 20 },
        WorkloadArg::MicroAdd => micro_id(MicroKernelOp::Add),
        WorkloadArg::MicroMul => micro_id(MicroKernelOp::Mul),
        WorkloadArg::MicroFma => micro_id(MicroKernelOp::Fma),
        WorkloadArg::Mnist => WorkloadId::Mnist { seed: 0x313 },
        WorkloadArg::Yolo => WorkloadId::Yolo,
    }
}

fn micro_id(op: MicroKernelOp) -> WorkloadId {
    WorkloadId::Micro {
        op,
        threads: 32,
        iters: 256,
    }
}

fn classifier_for(workload: &WorkloadId) -> ClassifierId {
    match workload {
        WorkloadId::Mnist { .. } => ClassifierId::MnistLogits,
        WorkloadId::Yolo => ClassifierId::YoloDetections,
        _ => ClassifierId::None,
    }
}

/// Checks precision support with distinct messages for the device and
/// the workload; returns the exit code on failure.
fn check_supported(key: &CellKey) -> Option<i32> {
    let device = key.device.build();
    let workload = key.workload.build();
    if matches!(key.kind, CellKind::Beam { .. }) && !device.supports(key.precision) {
        eprintln!(
            "{} has no {}-precision hardware",
            device.name(),
            key.precision
        );
        return Some(2);
    }
    if !workload.supports(key.precision) {
        eprintln!(
            "{} has no {}-precision implementation",
            workload.name(),
            key.precision
        );
        return Some(2);
    }
    None
}

fn run_campaign(
    device_arg: DeviceArg,
    workload_arg: WorkloadArg,
    precision: Precision,
    strikes: u64,
    hours: f64,
    sampling: SamplingPlan,
    engine: Engine,
) -> i32 {
    let key = CellKey {
        device: device_id(device_arg),
        workload: workload_id(workload_arg),
        precision,
        kind: CellKind::Beam {
            hours,
            target_candidates: strikes,
            classifier: classifier_for(&workload_id(workload_arg)),
            sampling,
        },
    };
    if let Some(code) = check_supported(&key) {
        return code;
    }
    let cell = match engine.try_run_one(&key) {
        Ok(cell) => cell,
        Err(failure) => return report_failure(failure),
    };
    let result = cell.beam();

    let mut t = Table::new(vec!["quantity", "value"]).with_title(format!(
        "{} / {} / {precision}",
        result.device, result.workload
    ));
    t.row(vec![
        "exec time".into(),
        format!("{:.3} s", result.exec_time_s),
    ]);
    t.row(vec!["runs".into(), format!("{:.0}", result.runs)]);
    t.row(vec![
        "compute strikes".into(),
        result.candidates.to_string(),
    ]);
    if result.executed != result.candidates {
        t.row(vec!["executed strikes".into(), result.executed.to_string()]);
        t.row(vec![
            "strikes saved".into(),
            result.strikes_saved().to_string(),
        ]);
    }
    t.row(vec!["SDC events".into(), result.sdc.events().to_string()]);
    t.row(vec!["DUE events".into(), result.due.events().to_string()]);
    t.row(vec![
        "SDC FIT".into(),
        format!("{:.3e} a.u.", result.fit_sdc().au()),
    ]);
    t.row(vec![
        "DUE FIT".into(),
        format!("{:.3e} a.u.", result.fit_due().au()),
    ]);
    t.row(vec![
        "MEBF".into(),
        format!("{:.3e} a.u.", result.mebf().executions()),
    ]);
    let curve = result.tre_curve();
    t.row(vec![
        "tolerable @0.1%".into(),
        format!("{:.1}%", curve.tolerable_fraction(1e-3) * 100.0),
    ]);
    t.row(vec![
        "tolerable @1%".into(),
        format!("{:.1}%", curve.tolerable_fraction(1e-2) * 100.0),
    ]);
    println!("{t}");
    println!("SDC severity distribution (max relative error per event):");
    println!("{}", SeverityHistogram::from_errors(&result.severities));
    0
}

/// Renders a structured failure table on stderr instead of letting a
/// panic backtrace through; exit code 3 distinguishes "the cell failed"
/// from usage (1) and unsupported-configuration (2) errors.
fn report_failure(failure: mpr_exp::CellFailure) -> i32 {
    eprintln!("{}", failure_table(&[failure]));
    3
}

fn run_inject(
    workload_arg: WorkloadArg,
    precision: Precision,
    injections: u64,
    model: ModelArg,
    sampling: SamplingPlan,
    engine: Engine,
) -> i32 {
    let workload = workload_id(workload_arg);
    let model = match model {
        ModelArg::Single => FaultModel::SingleBit,
        ModelArg::Double => FaultModel::DoubleBit,
        ModelArg::Byte => FaultModel::RandomByte,
    };
    // Injection bypasses the device's execution units: the device slot
    // only namespaces the cell (same convention as the study).
    let key = CellKey {
        device: match workload {
            WorkloadId::Micro { .. } | WorkloadId::Yolo => DeviceId::TitanV,
            WorkloadId::Mnist { .. } => DeviceId::Zynq7000,
            _ => DeviceId::Knc3120a,
        },
        workload,
        precision,
        kind: CellKind::Inject {
            injections,
            model,
            live_fraction: 1.0,
            sampling,
        },
    };
    if let Some(code) = check_supported(&key) {
        return code;
    }
    let cell = match engine.try_run_one(&key) {
        Ok(cell) => cell,
        Err(failure) => return report_failure(failure),
    };
    let report = cell.inject();

    let v = report.vulnerability();
    let mut t = Table::new(vec!["quantity", "value"])
        .with_title(format!("{} / {precision} / {model:?}", report.workload));
    t.row(vec!["injections".into(), report.counts.total().to_string()]);
    t.row(vec!["masked".into(), report.counts.masked.to_string()]);
    t.row(vec!["SDC".into(), report.counts.sdc.to_string()]);
    t.row(vec!["vulnerability".into(), v.to_string()]);
    println!("{t}");
    println!("SDC severity distribution:");
    println!("{}", SeverityHistogram::from_errors(&report.severities));
    0
}

#[cfg(test)]
mod tests {
    use super::{cell_label, inject_budget, resolve_threads, run_analyze};

    #[test]
    fn inject_budget_reads_request_and_adaptive_override() {
        let fixed = "seed=00000000000007e3;v2;dev=knc;wl=gemm:12;p=half;\
                     k=inj:n=400,m=sb,lf=3ff0000000000000";
        assert_eq!(inject_budget(fixed), Some(400));
        // The adaptive `b:` override (a reallocation-boosted rerun)
        // wins over the `n=` request; `b:-` means no override.
        let boosted = "seed=00000000000007e3;v2;dev=knc;wl=gemm:12;p=half;\
                       k=inj:n=400,m=sb,lf=3ff0000000000000,\
                       a=w:3fe999999999999a;b:512;s:4;r:32";
        assert_eq!(inject_budget(boosted), Some(512));
        let unboosted = "k=inj:n=400,m=sb,a=w:3fe999999999999a;b:-;s:4;r:32";
        assert_eq!(inject_budget(unboosted), Some(400));
        assert_eq!(inject_budget("k=acc:k=3,t=40"), None);
    }

    #[test]
    fn cell_label_strips_seed_and_version_prefixes() {
        let key = "seed=00000000000007e3;v2;dev=knc;wl=gemm:12;p=half;k=inj:n=400";
        assert_eq!(cell_label(key), "dev=knc;wl=gemm:12;p=half;k=inj:n=400");
        assert_eq!(cell_label("no-prefix"), "no-prefix");
    }

    fn temp_tree(tag: &str, rel: &str, source: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mpr_cli_{tag}_{}", std::process::id()));
        let file = dir.join(rel);
        std::fs::create_dir_all(file.parent().expect("parent")).expect("temp tree");
        std::fs::write(&file, source).expect("write source");
        dir
    }

    #[test]
    fn analyze_exits_zero_on_clean_tree() {
        let dir = temp_tree("clean", "crates/kernels/src/lib.rs", "//! Clean.\n");
        assert_eq!(
            run_analyze(false, dir.to_str().expect("utf-8 path"), None),
            0
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn analyze_exits_nonzero_on_leaky_tree() {
        let src = "//! Leaky.\nfn gain<F: FloatExt>() -> F {\n    F::one() * 0.5\n}\n";
        let dir = temp_tree("bad", "crates/kernels/src/lib.rs", src);
        assert_eq!(
            run_analyze(true, dir.to_str().expect("utf-8 path"), None),
            1
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn analyze_exits_two_on_missing_root() {
        assert_eq!(run_analyze(false, "/nonexistent/mpr-root", None), 2);
    }

    #[test]
    fn analyze_baseline_gates_on_drift_not_cleanliness() {
        // A leaky tree with a matching baseline passes; once the
        // baseline no longer matches, the diff fails the gate.
        let src = "//! Leaky.\nfn gain<F: FloatExt>() -> F {\n    F::one() * 0.5\n}\n";
        let dir = temp_tree("base", "crates/kernels/src/lib.rs", src);
        let root = dir.to_str().expect("utf-8 path");
        let current = mpr_analyze::analyze_workspace(&dir).expect("scan succeeds");
        assert!(!current.clean());
        let baseline_path = dir.join("baseline.json");
        std::fs::write(&baseline_path, current.to_json()).expect("write baseline");
        let baseline = baseline_path.to_str().expect("utf-8 path");
        assert_eq!(run_analyze(false, root, Some(baseline)), 0);
        // Drift: the baseline claims no findings.
        std::fs::write(
            &baseline_path,
            "{\"errors\":0,\"files_scanned\":1,\"findings\":[]}",
        )
        .expect("write baseline");
        assert_eq!(run_analyze(false, root, Some(baseline)), 1);
        // A missing or malformed baseline is an operational error.
        assert_eq!(run_analyze(false, root, Some("/nonexistent/base.json")), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn thread_budget_resolution_order() {
        // Flag beats environment beats the all-cores default.
        assert_eq!(resolve_threads(Some(4), Some("8")), 4);
        assert_eq!(resolve_threads(None, Some("8")), 8);
        assert_eq!(resolve_threads(None, Some(" 2 ")), 2);
        assert_eq!(resolve_threads(None, Some("many")), 0);
        assert_eq!(resolve_threads(None, None), 0);
    }

    #[test]
    fn cell_timeout_resolution_order() {
        use super::resolve_cell_timeout;
        use std::time::Duration;
        let flag = Some(Duration::from_secs(9));
        assert_eq!(resolve_cell_timeout(flag, Some("5s")), flag);
        assert_eq!(
            resolve_cell_timeout(None, Some("250ms")),
            Some(Duration::from_millis(250))
        );
        assert_eq!(resolve_cell_timeout(None, Some("forever")), None);
        assert_eq!(resolve_cell_timeout(None, None), None);
    }

    #[test]
    fn resume_without_manifest_exits_two() {
        use super::resume_preflight;
        use crate::args::StudyOpts;
        let dir = std::env::temp_dir().join(format!("mpr_cli_resume_{}", std::process::id()));
        let opts = StudyOpts {
            cache_dir: Some(dir.to_string_lossy().into_owned()),
            resume: true,
            ..StudyOpts::default()
        };
        assert_eq!(resume_preflight(&opts), Some(2));
        assert_eq!(
            resume_preflight(&StudyOpts::default()),
            None,
            "no --resume, no preflight"
        );
    }
}
