//! Command execution.

use crate::args::{Command, DeviceArg, ModelArg, Scale, WorkloadArg};
use mpr_arch::{Device, Fpga, VoltaGpu, WorkloadProfile, XeonPhiKnc};
use mpr_beam::{BeamCampaign, BeamSession};
use mpr_core::Study;
use mpr_fault::{FaultModel, InjectionCampaign, Workload};
use mpr_kernels::{profiles as kprofiles, Gemm, LavaMd, Lud, Micro, MicroKernelOp};
use mpr_metrics::{SeverityHistogram, Table};
use mpr_nn::{profiles as nprofiles, Mnist, TinyYolo};
use mpr_softfloat::Precision;

/// Runs a parsed command, returning the process exit code.
pub fn run(command: Command) -> i32 {
    match command {
        Command::Help => {
            println!("{}", crate::args::USAGE);
            0
        }
        Command::Tables { scale } => {
            let study = study(scale);
            println!("{}", study.table1_fpga_times());
            println!("{}", study.table2_knc_times());
            println!("{}", study.table3_gpu_times());
            0
        }
        Command::Figures { scale } => {
            let study = study(scale);
            println!("{}", study.fig2_fpga_resources().to_table());
            println!("{}", study.fig3_fpga_fit().to_table());
            println!("{}", study.fig4_fpga_tre().to_table());
            println!("{}", study.fig5_fpga_mebf().to_table());
            println!("{}", study.fig6_knc_fit().to_table());
            println!("{}", study.fig7_knc_pvf().to_table());
            println!("{}", study.fig8_knc_tre().to_table());
            println!("{}", study.fig9_knc_mebf().to_table());
            println!("{}", study.fig10_gpu_fit().to_table());
            println!("{}", study.fig11_gpu_tre().to_table());
            println!("{}", study.fig12_gpu_avf().to_table());
            println!("{}", study.fig13_gpu_mebf().to_table());
            0
        }
        Command::Ablations { scale } => {
            let study = study(scale);
            println!("{}", study.ablation_gpu_ecc().to_table());
            println!("{}", study.ablation_fault_models().to_table());
            println!("{}", study.ablation_fault_accumulation().to_table());
            0
        }
        Command::Validate { scale } => {
            let report = study(scale).validate_shapes();
            println!("{}", report.to_table());
            if report.all_passed() {
                0
            } else {
                1
            }
        }
        Command::Export { dir, scale } => {
            let study = study(scale);
            match study.export_csv(std::path::Path::new(&dir)) {
                Ok(paths) => {
                    println!("wrote {} artifacts to {dir}", paths.len());
                    0
                }
                Err(e) => {
                    eprintln!("export failed: {e}");
                    1
                }
            }
        }
        Command::Campaign {
            device,
            workload,
            precision,
            strikes,
            hours,
            seed,
        } => run_campaign(device, workload, precision, strikes, hours, seed),
        Command::Inject {
            workload,
            precision,
            injections,
            model,
            seed,
        } => run_inject(workload, precision, injections, model, seed),
        Command::Analyze { json, root } => run_analyze(json, &root),
    }
}

fn run_analyze(json: bool, root: &str) -> i32 {
    match mpr_analyze::analyze_workspace(std::path::Path::new(root)) {
        Ok(analysis) => {
            if json {
                println!("{}", analysis.to_json());
            } else {
                print!("{}", analysis.to_text());
            }
            if analysis.clean() {
                0
            } else {
                1
            }
        }
        Err(e) => {
            eprintln!("analyze failed: {e}");
            2
        }
    }
}

fn study(scale: Scale) -> Study {
    match scale {
        Scale::Quick => Study::quick(2019),
        Scale::Paper => Study::paper(2019),
    }
}

fn device_of(arg: DeviceArg) -> Box<dyn Device> {
    match arg {
        DeviceArg::Gpu => Box::new(VoltaGpu::titan_v()),
        DeviceArg::GpuEcc => Box::new(VoltaGpu::tesla_v100()),
        DeviceArg::Knc => Box::new(XeonPhiKnc::coprocessor_3120a()),
        DeviceArg::Fpga => Box::new(Fpga::zynq7000()),
    }
}

fn workload_of(arg: WorkloadArg, device: DeviceArg) -> (Box<dyn Workload>, WorkloadProfile) {
    match arg {
        WorkloadArg::Mxm => (
            Box::new(Gemm::new(16)),
            match device {
                DeviceArg::Knc => kprofiles::mxm_knc(),
                DeviceArg::Fpga => kprofiles::mxm_fpga(),
                _ => kprofiles::mxm_gpu(),
            },
        ),
        WorkloadArg::Lavamd => (
            Box::new(LavaMd::new(2, 4)),
            match device {
                DeviceArg::Knc => kprofiles::lavamd_knc(),
                _ => kprofiles::lavamd_gpu(),
            },
        ),
        WorkloadArg::LavamdKnc => (
            Box::new(LavaMd::new(2, 4).for_knc()),
            kprofiles::lavamd_knc(),
        ),
        WorkloadArg::Lud => (Box::new(Lud::new(20)), kprofiles::lud_knc()),
        WorkloadArg::MicroAdd => (
            Box::new(Micro::new(MicroKernelOp::Add, 32, 256)),
            kprofiles::micro(MicroKernelOp::Add),
        ),
        WorkloadArg::MicroMul => (
            Box::new(Micro::new(MicroKernelOp::Mul, 32, 256)),
            kprofiles::micro(MicroKernelOp::Mul),
        ),
        WorkloadArg::MicroFma => (
            Box::new(Micro::new(MicroKernelOp::Fma, 32, 256)),
            kprofiles::micro(MicroKernelOp::Fma),
        ),
        WorkloadArg::Mnist => (Box::new(Mnist::new()), nprofiles::mnist_fpga()),
        WorkloadArg::Yolo => (Box::new(TinyYolo::new()), nprofiles::yolo_gpu()),
    }
}

fn run_campaign(
    device_arg: DeviceArg,
    workload_arg: WorkloadArg,
    precision: Precision,
    strikes: u64,
    hours: f64,
    seed: u64,
) -> i32 {
    let device = device_of(device_arg);
    let (workload, profile) = workload_of(workload_arg, device_arg);
    if !device.supports(precision) {
        eprintln!("{} has no {precision}-precision hardware", device.name());
        return 2;
    }
    if !workload.supports(precision) {
        eprintln!(
            "{} has no {precision}-precision implementation",
            workload.name()
        );
        return 2;
    }
    let session = BeamSession {
        hours,
        target_candidates: strikes,
        seed,
        threads: 0,
    };
    let result = BeamCampaign::new(device.as_ref(), workload.as_ref(), &profile, precision)
        .session(session)
        .run();

    let mut t = Table::new(vec!["quantity", "value"]).with_title(format!(
        "{} / {} / {precision}",
        result.device, result.workload
    ));
    t.row(vec![
        "exec time".into(),
        format!("{:.3} s", result.exec_time_s),
    ]);
    t.row(vec!["runs".into(), format!("{:.0}", result.runs)]);
    t.row(vec![
        "compute strikes".into(),
        result.candidates.to_string(),
    ]);
    t.row(vec!["SDC events".into(), result.sdc.events().to_string()]);
    t.row(vec!["DUE events".into(), result.due.events().to_string()]);
    t.row(vec![
        "SDC FIT".into(),
        format!("{:.3e} a.u.", result.fit_sdc().au()),
    ]);
    t.row(vec![
        "DUE FIT".into(),
        format!("{:.3e} a.u.", result.fit_due().au()),
    ]);
    t.row(vec![
        "MEBF".into(),
        format!("{:.3e} a.u.", result.mebf().executions()),
    ]);
    let curve = result.tre_curve();
    t.row(vec![
        "tolerable @0.1%".into(),
        format!("{:.1}%", curve.tolerable_fraction(1e-3) * 100.0),
    ]);
    t.row(vec![
        "tolerable @1%".into(),
        format!("{:.1}%", curve.tolerable_fraction(1e-2) * 100.0),
    ]);
    println!("{t}");
    println!("SDC severity distribution (max relative error per event):");
    println!("{}", SeverityHistogram::from_errors(&result.severities));
    0
}

fn run_inject(
    workload_arg: WorkloadArg,
    precision: Precision,
    injections: u64,
    model: ModelArg,
    seed: u64,
) -> i32 {
    let (workload, _) = workload_of(workload_arg, DeviceArg::Gpu);
    if !workload.supports(precision) {
        eprintln!(
            "{} has no {precision}-precision implementation",
            workload.name()
        );
        return 2;
    }
    let model = match model {
        ModelArg::Single => FaultModel::SingleBit,
        ModelArg::Double => FaultModel::DoubleBit,
        ModelArg::Byte => FaultModel::RandomByte,
    };
    let report = InjectionCampaign::new(workload.as_ref(), precision)
        .injections(injections)
        .seed(seed)
        .model(model)
        .run();
    let v = report.vulnerability();
    let mut t = Table::new(vec!["quantity", "value"])
        .with_title(format!("{} / {precision} / {model:?}", report.workload));
    t.row(vec!["injections".into(), report.counts.total().to_string()]);
    t.row(vec!["masked".into(), report.counts.masked.to_string()]);
    t.row(vec!["SDC".into(), report.counts.sdc.to_string()]);
    t.row(vec!["vulnerability".into(), v.to_string()]);
    println!("{t}");
    println!("SDC severity distribution:");
    println!("{}", SeverityHistogram::from_errors(&report.severities));
    0
}

#[cfg(test)]
mod tests {
    use super::run_analyze;

    fn temp_tree(tag: &str, rel: &str, source: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mpr_cli_{tag}_{}", std::process::id()));
        let file = dir.join(rel);
        std::fs::create_dir_all(file.parent().expect("parent")).expect("temp tree");
        std::fs::write(&file, source).expect("write source");
        dir
    }

    #[test]
    fn analyze_exits_zero_on_clean_tree() {
        let dir = temp_tree("clean", "crates/kernels/src/lib.rs", "//! Clean.\n");
        assert_eq!(run_analyze(false, dir.to_str().expect("utf-8 path")), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn analyze_exits_nonzero_on_leaky_tree() {
        let src = "//! Leaky.\nfn gain<F: FloatExt>() -> F {\n    F::one() * 0.5\n}\n";
        let dir = temp_tree("bad", "crates/kernels/src/lib.rs", src);
        assert_eq!(run_analyze(true, dir.to_str().expect("utf-8 path")), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn analyze_exits_two_on_missing_root() {
        assert_eq!(run_analyze(false, "/nonexistent/mpr-root"), 2);
    }
}
