//! `mpr` — the command-line front end of the mixed-precision reliability
//! study. Run `mpr help` for usage.

mod args;
mod commands;
mod profile;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match args::parse(&argv) {
        Ok(command) => commands::run(command),
        Err(e) => {
            eprintln!("{e}");
            2
        }
    };
    std::process::exit(code);
}
